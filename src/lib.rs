//! Facade crate for the FACS-P reproduction.
//!
//! This crate re-exports the whole workspace under one roof so examples,
//! integration tests and downstream users can depend on a single package:
//!
//! * [`fuzzy`] — the general-purpose Mamdani fuzzy-logic library;
//! * [`cellsim`] — the discrete-event wireless cellular network simulator;
//! * [`scc`] — the Shadow Cluster Concept admission baseline;
//! * [`facs`] — the FACS and FACS-P fuzzy admission controllers (the
//!   paper's contribution);
//! * [`sweep`] — declarative scenario specs and the deterministic
//!   parallel experiment engine (`facs-sweep`);
//! * [`admitd`] — the admission-decision server: the batched request
//!   path, wire protocol and load generator behind the `admitd` binary
//!   (`facs-admitd`).
//!
//! The `telemetry` cargo feature switches the default simulator recorder
//! from the zero-cost no-op to a live registry (see
//! [`cellsim::telemetry`] and the README's Observability section);
//! reports are byte-identical either way.
//!
//! # Quickstart
//!
//! ```
//! use facs_suite::prelude::*;
//!
//! let mut controller = FacsPController::paper_default();
//! let mut sim = Simulator::new(SimConfig::paper_default());
//! let report = sim.run_batch(&mut controller, 30);
//! assert!(report.accepted > 0);
//! ```
//!
//! See `examples/` for runnable end-to-end scenarios and the `facs-bench`
//! crate for the binaries that regenerate every figure of the paper.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use admitd;
pub use cellsim;
pub use facs;
pub use fuzzy;
pub use scc;
pub use sweep;

/// Commonly used types from every crate in the workspace.
pub mod prelude {
    pub use admitd::{Server, ServerConfig, ServerSummary, World, WorldConfig};
    pub use cellsim::telemetry::{NoopRecorder, Recorder, Registry, TelemetrySnapshot};
    pub use cellsim::traffic::TrafficConfig;
    pub use cellsim::{
        AdmissionController, AdmissionDecision, AdmissionRequest, AlwaysAccept, BaseStation,
        BoxedController, CallRequest, CapacityThreshold, CellGrid, CellId, DurationPolicy,
        FaultEvent, FaultKind, FaultPlan, GroupConfig, Metrics, MmppConfig, MobilityModel, Point,
        ServiceClass, ShardConfig, ShardReport, ShardedSimulator, SimConfig, SimReport, SimRng,
        Simulator, StatAccumulator, SummaryStats, TraceConfig, TrafficGenerator, TrafficMix,
        TrafficModel, UserState,
    };
    pub use facs::{
        DifferentiatedService, FacsConfig, FacsController, FacsPConfig, FacsPController, Flc1,
        Flc2, Flc2Lut, PaperParams, PriorityPolicy, RequestPriority,
    };
    pub use fuzzy::prelude::*;
    pub use scc::{SccAdmission, SccConfig};
    pub use sweep::{
        all_builtins, builtin, builtin_names, host_parallelism, ControllerSpec, CurveReport,
        LoadMode, PointReport, RunReport, ScenarioSpec, SweepProgress, SweepRunner,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn facade_quickstart_runs() {
        let mut controller = FacsPController::paper_default();
        let mut sim = Simulator::new(SimConfig::paper_default());
        let report = sim.run_batch(&mut controller, 30);
        assert_eq!(report.offered, 30);
        assert!(report.accepted > 0);
    }
}
