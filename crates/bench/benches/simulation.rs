//! Benchmarks of the simulation substrate: batch and Poisson runs of the
//! discrete-event simulator under each admission controller.

use bench::ControllerKind;
use cellsim::sim::{SimConfig, Simulator};
use cellsim::traffic::{TrafficConfig, TrafficGenerator};
use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_traffic_generation(c: &mut Criterion) {
    c.bench_function("traffic/generate 1000 requests", |b| {
        b.iter(|| {
            let mut gen = TrafficGenerator::new(TrafficConfig::paper_default(), 7);
            black_box(gen.generate_poisson(1000))
        })
    });
}

fn bench_batch_runs(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulation/run_batch_100");
    for kind in [
        ControllerKind::AlwaysAccept,
        ControllerKind::Facs,
        ControllerKind::FacsP,
        ControllerKind::Scc,
    ] {
        group.bench_with_input(
            BenchmarkId::from_parameter(kind.label()),
            &kind,
            |b, kind| {
                b.iter(|| {
                    let mut controller = kind.build();
                    let mut sim = Simulator::new(SimConfig::paper_default().with_seed(3));
                    black_box(sim.run_batch(controller.as_mut(), 100))
                })
            },
        );
    }
    group.finish();
}

fn bench_poisson_multicell(c: &mut Criterion) {
    c.bench_function("simulation/poisson 500 requests, 7 cells, facs-p", |b| {
        b.iter(|| {
            let mut cfg = SimConfig::paper_default().with_seed(5).with_grid_radius(1);
            cfg.cell_radius_m = 400.0;
            cfg.traffic.mean_interarrival_s = 2.0;
            cfg.traffic.mean_holding_s = 240.0;
            let mut controller = ControllerKind::FacsP.build();
            let mut sim = Simulator::new(cfg);
            black_box(sim.run_poisson(controller.as_mut(), 500))
        })
    });
}

/// The sweep-worker shape: one simulator re-armed per cell with `reset`,
/// so every internal buffer is reused instead of rebuilt.
fn bench_simulator_reuse(c: &mut Criterion) {
    let cfg = SimConfig::paper_default().with_seed(7);
    let mut group = c.benchmark_group("simulation/poisson_2000");
    group.bench_function("fresh simulator per run", |b| {
        let mut controller = ControllerKind::AlwaysAccept.build();
        b.iter(|| {
            let mut sim = Simulator::new(cfg.clone());
            black_box(sim.run_poisson(controller.as_mut(), 2000))
        })
    });
    group.bench_function("reused simulator (reset)", |b| {
        let mut controller = ControllerKind::AlwaysAccept.build();
        let mut sim = Simulator::new(cfg.clone());
        b.iter(|| {
            sim.reset(cfg.clone());
            black_box(sim.run_poisson(controller.as_mut(), 2000))
        })
    });
    group.finish();
}

criterion_group!(
    name = simulation;
    config = Criterion::default().sample_size(20);
    targets = bench_traffic_generation, bench_batch_runs, bench_poisson_multicell, bench_simulator_reuse
);
criterion_main!(simulation);
