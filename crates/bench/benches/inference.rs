//! Micro-benchmarks of the fuzzy inference pipeline: FLC1, FLC2, and the
//! complete FACS-P decision, plus the general-purpose engine primitives.
//! These quantify the per-request cost the paper's "suitable for real-time
//! operation" claim rests on.

use cellsim::geometry::CellId;
use cellsim::sim::{AdmissionController, AdmissionRequest};
use cellsim::station::BaseStation;
use cellsim::traffic::ServiceClass;
use criterion::{black_box, criterion_group, criterion_main, Criterion};
use facs::{FacsController, FacsPController, Flc1, Flc2};
use fuzzy::prelude::*;

fn request(class: ServiceClass, speed: f64, angle: f64) -> AdmissionRequest {
    AdmissionRequest {
        id: 1,
        cell: CellId::origin(),
        time: 0.0,
        class,
        bandwidth: class.paper_bandwidth(),
        holding_time: 180.0,
        speed_kmh: speed,
        angle_deg: angle,
        distance_m: Some(420.0),
        is_handoff: false,
    }
}

fn bench_membership(c: &mut Criterion) {
    let tri = MembershipFunction::triangular(0.0, 30.0, 60.0).unwrap();
    let trap = MembershipFunction::trapezoidal(30.0, 60.0, 120.0, 120.0).unwrap();
    c.bench_function("membership/triangular", |b| {
        b.iter(|| black_box(tri.membership(black_box(42.0))))
    });
    c.bench_function("membership/trapezoidal", |b| {
        b.iter(|| black_box(trap.membership(black_box(42.0))))
    });
}

fn bench_flc1(c: &mut Criterion) {
    let flc1 = Flc1::paper_default().unwrap();
    c.bench_function("flc1/correction_value", |b| {
        b.iter(|| {
            black_box(flc1.correction_value(black_box(63.0), black_box(27.0), black_box(5.0)))
        })
    });
}

fn bench_flc2(c: &mut Criterion) {
    let flc2 = Flc2::paper_default().unwrap();
    c.bench_function("flc2/decision_value", |b| {
        b.iter(|| black_box(flc2.decision_value(black_box(0.7), black_box(5.0), black_box(23.0))))
    });
}

fn bench_full_decision(c: &mut Criterion) {
    let mut station = BaseStation::paper_default();
    station
        .admit(100, ServiceClass::Video, 10, 0.0, 600.0, false)
        .unwrap();
    station
        .admit(101, ServiceClass::Voice, 5, 0.0, 600.0, false)
        .unwrap();
    let req = request(ServiceClass::Voice, 72.0, 15.0);

    let mut facsp = FacsPController::paper_default();
    c.bench_function("controller/facs-p decide", |b| {
        b.iter(|| black_box(facsp.decide(black_box(&req), black_box(&station))))
    });

    let mut facs = FacsController::paper_default();
    c.bench_function("controller/facs decide", |b| {
        b.iter(|| black_box(facs.decide(black_box(&req), black_box(&station))))
    });

    let mut scc = scc::SccAdmission::default();
    c.bench_function("controller/scc decide", |b| {
        b.iter(|| black_box(scc.decide(black_box(&req), black_box(&station))))
    });
}

fn bench_engine_construction(c: &mut Criterion) {
    c.bench_function("construction/flc1+flc2", |b| {
        b.iter(|| {
            let f1 = Flc1::paper_default().unwrap();
            let f2 = Flc2::paper_default().unwrap();
            black_box((f1, f2))
        })
    });
}

criterion_group!(
    name = inference;
    config = Criterion::default().sample_size(30);
    targets = bench_membership, bench_flc1, bench_flc2, bench_full_decision, bench_engine_construction
);
criterion_main!(inference);
