//! Criterion suite over the admission hot path: one benchmark per
//! execution model (interpreted, compiled, LUT) at each layer (single
//! inference, decision, end-to-end controller `decide` / `decide_batch`).
//!
//! The `perf` bin times the same paths with plain `Instant` loops and
//! writes the `BENCH_perf.json` baseline; this suite is the interactive
//! `cargo bench -p facs-bench --bench perf` view.

use cellsim::geometry::CellId;
use cellsim::sim::{AdmissionController, AdmissionDecision, AdmissionRequest};
use cellsim::station::BaseStation;
use cellsim::traffic::ServiceClass;
use criterion::{black_box, criterion_group, criterion_main, Criterion};
use facs::{FacsController, FacsPController, Flc1, Flc2};

fn request(class: ServiceClass, speed: f64, angle: f64) -> AdmissionRequest {
    AdmissionRequest {
        id: 1,
        cell: CellId::origin(),
        time: 0.0,
        class,
        bandwidth: class.paper_bandwidth(),
        holding_time: 180.0,
        speed_kmh: speed,
        angle_deg: angle,
        distance_m: Some(420.0),
        is_handoff: false,
    }
}

fn bench_inference_models(c: &mut Criterion) {
    let flc1 = Flc1::paper_default().unwrap();
    let engine = flc1.engine().clone();
    let compiled = flc1.compiled().clone();
    let mut scratch = compiled.scratch();
    let inputs = [63.0, 27.0, 5.0];

    let mut group = c.benchmark_group("inference");
    group.bench_function("interpreted (string-keyed)", |b| {
        b.iter(|| {
            engine
                .infer(black_box(&inputs))
                .unwrap()
                .crisp_or("Cv", 0.5)
        })
    });
    group.bench_function("compiled infer_into", |b| {
        b.iter(|| black_box(compiled.infer_into(black_box(&inputs), &mut scratch)[0]))
    });
    group.finish();
}

fn bench_lut_decision(c: &mut Criterion) {
    let flc2 = Flc2::paper_default().unwrap();
    let lut = flc2.compile_lut().unwrap();
    let mut group = c.benchmark_group("decision");
    group.bench_function("flc2 compiled", |b| {
        b.iter(|| black_box(flc2.decision_value(black_box(0.7), black_box(5.0), black_box(23.0))))
    });
    group.bench_function("flc2 lut", |b| {
        b.iter(|| black_box(lut.decision_value(black_box(0.7), black_box(5.0), black_box(23.0))))
    });
    group.finish();
}

fn bench_controller_decide(c: &mut Criterion) {
    let mut station = BaseStation::paper_default();
    station
        .admit(100, ServiceClass::Video, 10, 0.0, 600.0, false)
        .unwrap();
    station
        .admit(101, ServiceClass::Voice, 5, 0.0, 600.0, false)
        .unwrap();
    let req = request(ServiceClass::Voice, 72.0, 15.0);

    let mut group = c.benchmark_group("decide");
    let mut facsp = FacsPController::paper_default();
    group.bench_function("facs-p", |b| {
        b.iter(|| black_box(facsp.decide(black_box(&req), black_box(&station))))
    });
    let mut facsp_lut = FacsPController::paper_default_lut();
    group.bench_function("facs-p-lut", |b| {
        b.iter(|| black_box(facsp_lut.decide(black_box(&req), black_box(&station))))
    });
    let mut facs = FacsController::paper_default();
    group.bench_function("facs", |b| {
        b.iter(|| black_box(facs.decide(black_box(&req), black_box(&station))))
    });
    let mut scc = scc::SccAdmission::default();
    group.bench_function("scc", |b| {
        b.iter(|| black_box(scc.decide(black_box(&req), black_box(&station))))
    });
    group.finish();
}

fn bench_decide_batch(c: &mut Criterion) {
    let station = BaseStation::paper_default();
    let batch: Vec<AdmissionRequest> = (0..32)
        .map(|i| {
            request(
                [ServiceClass::Text, ServiceClass::Voice, ServiceClass::Video][i % 3],
                3.75 * i as f64,
                11.25 * i as f64 - 180.0,
            )
        })
        .collect();
    let mut out: Vec<AdmissionDecision> = Vec::with_capacity(batch.len());

    let mut group = c.benchmark_group("decide_batch(32)");
    let mut facsp = FacsPController::paper_default();
    group.bench_function("facs-p", |b| {
        b.iter(|| {
            facsp.decide_batch(black_box(&batch), black_box(&station), &mut out);
            black_box(out.len())
        })
    });
    let mut facsp_lut = FacsPController::paper_default_lut();
    group.bench_function("facs-p-lut", |b| {
        b.iter(|| {
            facsp_lut.decide_batch(black_box(&batch), black_box(&station), &mut out);
            black_box(out.len())
        })
    });
    group.finish();
}

criterion_group!(
    name = perf;
    config = Criterion::default().sample_size(50);
    targets = bench_inference_models, bench_lut_decision, bench_controller_decide, bench_decide_batch
);
criterion_main!(perf);
