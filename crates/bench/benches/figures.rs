//! One Criterion target per paper figure: each measures the cost of
//! regenerating the figure with a reduced (quick) sweep, so `cargo bench`
//! exercises the exact code paths behind Figs. 7–10.  The full-resolution
//! tables are produced by the `fig7`…`fig10` and `all_figures` binaries.

use bench::{fig10_series, fig7_series, fig8_series, fig9_series, ExperimentConfig};
use criterion::{black_box, criterion_group, criterion_main, Criterion};

fn quick() -> ExperimentConfig {
    ExperimentConfig {
        request_counts: vec![20, 60],
        repetitions: 2,
        ..ExperimentConfig::paper_default()
    }
}

fn bench_fig7(c: &mut Criterion) {
    let cfg = quick();
    c.bench_function("figures/fig7 facs vs scc (quick sweep)", |b| {
        b.iter(|| black_box(fig7_series(black_box(&cfg))))
    });
}

fn bench_fig8(c: &mut Criterion) {
    let cfg = quick();
    c.bench_function("figures/fig8 speed sweep (quick sweep)", |b| {
        b.iter(|| black_box(fig8_series(black_box(&cfg))))
    });
}

fn bench_fig9(c: &mut Criterion) {
    let cfg = quick();
    c.bench_function("figures/fig9 angle sweep (quick sweep)", |b| {
        b.iter(|| black_box(fig9_series(black_box(&cfg))))
    });
}

fn bench_fig10(c: &mut Criterion) {
    let cfg = quick();
    c.bench_function("figures/fig10 facs-p vs facs (quick sweep)", |b| {
        b.iter(|| black_box(fig10_series(black_box(&cfg))))
    });
}

criterion_group!(
    name = figures;
    config = Criterion::default().sample_size(10);
    targets = bench_fig7, bench_fig8, bench_fig9, bench_fig10
);
criterion_main!(figures);
