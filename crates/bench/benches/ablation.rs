//! Ablation benches for the design choices called out in DESIGN.md §7:
//!
//! * defuzzification method (centroid vs. mean-of-maxima vs. bisector),
//! * inference norms (min–max vs. product–sum),
//! * the priority policy of FACS-P (paper default vs. disabled).
//!
//! Each target measures the cost of the alternative and prints (once, via
//! `eprintln!`) the result it yields on a reference input so the quality
//! impact is visible alongside the timing.

use cellsim::sim::{SimConfig, Simulator};
use criterion::{black_box, criterion_group, criterion_main, Criterion};
use facs::{FacsPConfig, FacsPController, Flc2};
use fuzzy::defuzz::Defuzzifier;
use fuzzy::norms::TNorm;
use fuzzy::prelude::*;

fn bench_defuzzifiers(c: &mut Criterion) {
    let flc2 = Flc2::paper_default().unwrap();
    let out = flc2.engine().infer(&[0.7, 5.0, 23.0]).unwrap();
    let mut group = c.benchmark_group("ablation/defuzzifier");
    for (name, method) in [
        ("centroid", Defuzzifier::Centroid),
        ("bisector", Defuzzifier::Bisector),
        ("mean_of_maxima", Defuzzifier::MeanOfMaxima),
    ] {
        let value = out.crisp_with("AR", method).unwrap();
        eprintln!("ablation/defuzzifier/{name}: A/R = {value:.4}");
        group.bench_function(name, |b| {
            b.iter(|| black_box(out.crisp_with(black_box("AR"), method).unwrap()))
        });
    }
    group.finish();
}

fn bench_inference_norms(c: &mut Criterion) {
    // Rebuild FLC2 with the product t-norm to compare against the Mamdani
    // min–max pair used by the paper.
    let build = |norm: TNorm| {
        let paper = Flc2::paper_default().unwrap();
        let mut engine = MamdaniEngine::builder()
            .input(paper.engine().inputs()[0].clone())
            .input(paper.engine().inputs()[1].clone())
            .input(paper.engine().inputs()[2].clone())
            .output(paper.engine().outputs()[0].clone())
            .and_norm(norm)
            .build()
            .unwrap();
        engine.set_rules(paper.engine().rules().clone()).unwrap();
        engine
    };
    let mut group = c.benchmark_group("ablation/inference_norm");
    for (name, norm) in [("min", TNorm::Minimum), ("product", TNorm::Product)] {
        let engine = build(norm);
        let value = engine.infer(&[0.7, 5.0, 23.0]).unwrap().crisp_or("AR", 0.0);
        eprintln!("ablation/inference_norm/{name}: A/R = {value:.4}");
        group.bench_function(name, |b| {
            b.iter(|| {
                black_box(
                    engine
                        .infer(black_box(&[0.7, 5.0, 23.0]))
                        .unwrap()
                        .crisp_or("AR", 0.0),
                )
            })
        });
    }
    group.finish();
}

fn bench_priority_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation/priority_policy");
    group.sample_size(10);
    for (name, config) in [
        ("paper_default", FacsPConfig::paper_default()),
        ("disabled", FacsPConfig::paper_default().without_priority()),
    ] {
        let mut controller = FacsPController::new(config).unwrap();
        let mut sim = Simulator::new(SimConfig::paper_default().with_seed(11));
        let report = sim.run_batch(&mut controller, 80);
        eprintln!(
            "ablation/priority_policy/{name}: acceptance = {:.1}%",
            report.acceptance_percentage
        );
        group.bench_function(name, |b| {
            b.iter(|| {
                let mut controller = FacsPController::new(config).unwrap();
                let mut sim = Simulator::new(SimConfig::paper_default().with_seed(11));
                black_box(sim.run_batch(&mut controller, 80))
            })
        });
    }
    group.finish();
}

criterion_group!(
    name = ablation;
    config = Criterion::default().sample_size(20);
    targets = bench_defuzzifiers, bench_inference_norms, bench_priority_ablation
);
criterion_main!(ablation);
