//! The tracked performance baseline: timed runs of every decision path.
//!
//! [`run`] measures the admission hot path at each layer of the
//! compile/execute split — the string-keyed interpreted engine, the
//! compiled allocation-free engine, the LUT backend, and the end-to-end
//! `decide` / `decide_batch` of every controller — and [`PerfReport`]
//! serialises the result as the `BENCH_perf.json` artifact the `perf` bin
//! writes.  CI runs the quick mode and fails when the artifact is empty or
//! malformed, so the perf trajectory of the hot path is tracked across
//! PRs.

use cellsim::geometry::CellId;
use cellsim::sim::{
    AdmissionController, AdmissionDecision, AdmissionRequest, AlwaysAccept, SimConfig, Simulator,
};
use cellsim::station::BaseStation;
use cellsim::traffic::ServiceClass;
use facs::{FacsController, FacsPController, Flc1, Flc2};
use serde::{Deserialize, Serialize};
use std::time::Instant;
use sweep::{builtin, SweepRunner};

/// One timed case.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PerfCase {
    /// Case name (stable across runs; the JSON key consumers track).
    pub name: String,
    /// Mean wall-clock nanoseconds per iteration.
    pub ns_per_iter: f64,
    /// Timed iterations.
    pub iters: u64,
}

/// Sweep throughput at one worker count.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SweepThroughput {
    /// Worker threads the sweep ran with.
    pub threads: usize,
    /// Finished `(controller, load, replication)` cells per second.
    pub cells_per_sec: f64,
}

/// The serialisable perf baseline.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PerfReport {
    /// Whether the quick (CI) iteration budget was used.
    pub quick: bool,
    /// All timed cases.
    pub cases: Vec<PerfCase>,
    /// Headline number: interpreted vs compiled speedup of the full
    /// FACS-P decision cascade (FLC1 + FLC2), `interpreted_ns /
    /// compiled_ns`.
    pub facs_decision_speedup: f64,
    /// Interpreted vs LUT speedup of the same cascade.
    pub facs_decision_speedup_lut: f64,
    /// Whole-simulation throughput: events per second through
    /// `run_poisson` on the paper-default configuration under the
    /// admit-if-it-fits controller — the engine-core headline (the
    /// decision-dominated variants are separate `sim/` cases).
    pub sim_events_per_sec: f64,
    /// End-to-end sweep throughput of the paper-default scenario at
    /// 1/2/4 worker threads.
    pub sweep_cells_per_sec: Vec<SweepThroughput>,
}

impl PerfReport {
    /// The timed case named `name`, if present.
    #[must_use]
    pub fn case(&self, name: &str) -> Option<&PerfCase> {
        self.cases.iter().find(|c| c.name == name)
    }

    /// Pretty JSON document of the report.
    #[must_use]
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).unwrap_or_else(|_| "{}".to_string())
    }

    /// Plain-text table of the report.
    #[must_use]
    pub fn render_table(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{:<44} {:>14} {:>10}\n",
            "case", "ns/iter", "iters"
        ));
        for c in &self.cases {
            out.push_str(&format!(
                "{:<44} {:>14.1} {:>10}\n",
                c.name, c.ns_per_iter, c.iters
            ));
        }
        out.push_str(&format!(
            "\nFACS-P decision speedup (interpreted -> compiled): {:.1}x\n",
            self.facs_decision_speedup
        ));
        out.push_str(&format!(
            "FACS-P decision speedup (interpreted -> LUT):      {:.1}x\n",
            self.facs_decision_speedup_lut
        ));
        out.push_str(&format!(
            "Simulator throughput (paper-default, always-accept): {:.2}M events/s\n",
            self.sim_events_per_sec / 1e6
        ));
        for s in &self.sweep_cells_per_sec {
            out.push_str(&format!(
                "Sweep throughput (paper-default, {} thread{}):      {:.0} cells/s\n",
                s.threads,
                if s.threads == 1 { "" } else { "s" },
                s.cells_per_sec
            ));
        }
        out
    }
}

/// Time `routine` over `iters` iterations (after one warm-up call).
fn time_case(name: &str, iters: u64, mut routine: impl FnMut() -> f64) -> PerfCase {
    let mut sink = routine();
    let start = Instant::now();
    for _ in 0..iters {
        sink += std::hint::black_box(routine());
    }
    let elapsed = start.elapsed();
    std::hint::black_box(sink);
    PerfCase {
        name: name.to_string(),
        ns_per_iter: elapsed.as_nanos() as f64 / iters as f64,
        iters,
    }
}

/// Time whole `run_poisson` simulations on the paper-default
/// configuration, reporting nanoseconds *per processed event* (so
/// `1e9 / ns_per_iter` is the engine's events-per-second throughput).
/// One warm-up run sizes every reused buffer; the timed runs then reuse
/// the same simulator via `reset`, exactly like a sweep worker.
fn time_sim_events(name: &str, controller: &mut dyn AdmissionController, quick: bool) -> PerfCase {
    let requests = if quick { 4_000 } else { 20_000 };
    let runs = if quick { 3 } else { 5 };
    let config = SimConfig::paper_default().with_seed(0xBEEF);
    let mut sim = Simulator::new(config.clone());
    std::hint::black_box(sim.run_poisson(controller, requests));
    let mut events = 0u64;
    let start = Instant::now();
    for _ in 0..runs {
        sim.reset(config.clone());
        std::hint::black_box(sim.run_poisson(controller, requests));
        events += sim.events_processed();
    }
    let elapsed = start.elapsed();
    PerfCase {
        name: name.to_string(),
        ns_per_iter: elapsed.as_nanos() as f64 / events as f64,
        iters: events,
    }
}

/// Time full paper-default sweeps at one worker count, reporting
/// nanoseconds *per finished cell* (so `1e9 / ns_per_iter` is cells per
/// second).
fn time_sweep_cells(threads: usize, quick: bool) -> PerfCase {
    let spec = builtin("paper-default").expect("paper-default is built in");
    let spec = if quick { spec.quick() } else { spec };
    let cells_per_run =
        (spec.controllers.len() * spec.load_points.len() * spec.replications) as u64;
    let runs = if quick { 3 } else { 1 };
    let runner = SweepRunner::with_threads(threads);
    std::hint::black_box(runner.run(&spec).expect("built-in spec is valid"));
    let start = Instant::now();
    for _ in 0..runs {
        std::hint::black_box(runner.run(&spec).expect("built-in spec is valid"));
    }
    let elapsed = start.elapsed();
    let cells = cells_per_run * runs;
    PerfCase {
        name: format!("sweep/paper-default cells ({threads} thread)"),
        ns_per_iter: elapsed.as_nanos() as f64 / cells as f64,
        iters: cells,
    }
}

fn probe_request(class: ServiceClass, speed: f64, angle: f64) -> AdmissionRequest {
    AdmissionRequest {
        id: 1,
        cell: CellId::origin(),
        time: 0.0,
        class,
        bandwidth: class.paper_bandwidth(),
        holding_time: 180.0,
        speed_kmh: speed,
        angle_deg: angle,
        distance_m: Some(420.0),
        is_handoff: false,
    }
}

/// Run the whole suite.  `quick` trims the iteration budget for CI smoke
/// runs; case names and structure are identical in both modes.
#[must_use]
pub fn run(quick: bool) -> PerfReport {
    let iters: u64 = if quick { 2_000 } else { 50_000 };
    let mut cases = Vec::new();

    // --- fuzzy layer: one FLC1 inference, each execution model ----------
    let flc1 = Flc1::paper_default().expect("paper parameters are valid");
    let engine = flc1.engine().clone();
    let inputs = [63.0, 27.0, 5.0];
    cases.push(time_case("fuzzy/flc1 interpreted infer", iters, || {
        engine
            .infer(std::hint::black_box(&inputs))
            .unwrap()
            .crisp_or("Cv", 0.5)
    }));
    let compiled = flc1.compiled().clone();
    let mut scratch = compiled.scratch();
    cases.push(time_case(
        "fuzzy/flc1 compiled infer_into",
        iters * 10,
        || compiled.infer_into(std::hint::black_box(&inputs), &mut scratch)[0],
    ));

    // --- LUT layer: one FLC2 decision from the tabulated surface --------
    let flc2 = Flc2::paper_default().expect("paper parameters are valid");
    cases.push(time_case(
        "fuzzy/flc2 compiled decision",
        iters * 10,
        || {
            flc2.decision_value(
                std::hint::black_box(0.7),
                std::hint::black_box(5.0),
                std::hint::black_box(23.0),
            )
        },
    ));
    let lut = flc2.compile_lut().expect("paper parameters tabulate");
    cases.push(time_case("lut/flc2 decision", iters * 10, || {
        lut.decision_value(
            std::hint::black_box(0.7),
            std::hint::black_box(5.0),
            std::hint::black_box(23.0),
        )
    }));

    // --- controller layer: end-to-end decide per controller -------------
    let mut station = BaseStation::paper_default();
    station
        .admit(100, ServiceClass::Video, 10, 0.0, 600.0, false)
        .expect("station empty");
    station
        .admit(101, ServiceClass::Voice, 5, 0.0, 600.0, false)
        .expect("station has room");
    let req = probe_request(ServiceClass::Voice, 72.0, 15.0);

    let mut facsp = FacsPController::paper_default();
    cases.push(time_case("controller/facs-p decide", iters, || {
        facsp
            .decide(std::hint::black_box(&req), std::hint::black_box(&station))
            .score
    }));
    let mut facsp_lut = FacsPController::paper_default_lut();
    cases.push(time_case("controller/facs-p-lut decide", iters, || {
        facsp_lut
            .decide(std::hint::black_box(&req), std::hint::black_box(&station))
            .score
    }));
    let mut facs = FacsController::paper_default();
    cases.push(time_case("controller/facs decide", iters, || {
        facs.decide(std::hint::black_box(&req), std::hint::black_box(&station))
            .score
    }));
    let mut scc = scc::SccAdmission::default();
    cases.push(time_case("controller/scc decide", iters, || {
        scc.decide(std::hint::black_box(&req), std::hint::black_box(&station))
            .score
    }));

    // --- batch path: one tick's arrivals in one decide_batch pass -------
    let batch: Vec<AdmissionRequest> = (0..32)
        .map(|i| {
            probe_request(
                [ServiceClass::Text, ServiceClass::Voice, ServiceClass::Video][i % 3],
                3.75 * i as f64,
                11.25 * i as f64 - 180.0,
            )
        })
        .collect();
    let mut decisions: Vec<AdmissionDecision> = Vec::with_capacity(batch.len());
    cases.push(time_case(
        "controller/facs-p decide_batch(32)",
        iters / 16,
        || {
            facsp.decide_batch(
                std::hint::black_box(&batch),
                std::hint::black_box(&station),
                &mut decisions,
            );
            decisions[0].score
        },
    ));

    // --- the headline: interpreted vs compiled/LUT full cascade ---------
    let interpreted_cascade = {
        let flc1_engine = flc1.engine().clone();
        let flc2_engine = flc2.engine().clone();
        time_case("cascade/facs-p interpreted (flc1+flc2)", iters, || {
            let cv = flc1_engine
                .infer(std::hint::black_box(&[72.0, 15.0, 5.0]))
                .unwrap()
                .crisp_or("Cv", 0.5)
                .clamp(0.0, 1.0);
            flc2_engine
                .infer(std::hint::black_box(&[cv, 5.0, 15.0]))
                .unwrap()
                .crisp_or("AR", 0.0)
                .clamp(-1.0, 1.0)
        })
    };
    let compiled_cascade = time_case("cascade/facs-p compiled (flc1+flc2)", iters * 4, || {
        let cv = flc1.correction_value(
            std::hint::black_box(72.0),
            std::hint::black_box(15.0),
            std::hint::black_box(5.0),
        );
        flc2.decision_value(cv, std::hint::black_box(5.0), std::hint::black_box(15.0))
    });
    let lut_cascade = time_case("cascade/facs-p lut (flc1+lut)", iters * 4, || {
        let cv = flc1.correction_value(
            std::hint::black_box(72.0),
            std::hint::black_box(15.0),
            std::hint::black_box(5.0),
        );
        lut.decision_value(cv, std::hint::black_box(5.0), std::hint::black_box(15.0))
    });
    let facs_decision_speedup = interpreted_cascade.ns_per_iter / compiled_cascade.ns_per_iter;
    let facs_decision_speedup_lut = interpreted_cascade.ns_per_iter / lut_cascade.ns_per_iter;
    cases.push(interpreted_cascade);
    cases.push(compiled_cascade);
    cases.push(lut_cascade);

    // --- whole-simulation throughput: events/sec through run_poisson -----
    let engine_case = time_sim_events(
        "sim/paper-default poisson events (always-accept)",
        &mut AlwaysAccept,
        quick,
    );
    let sim_events_per_sec = 1e9 / engine_case.ns_per_iter;
    cases.push(engine_case);
    cases.push(time_sim_events(
        "sim/paper-default poisson events (facs-p-lut)",
        &mut FacsPController::paper_default_lut(),
        quick,
    ));

    // --- end-to-end sweep throughput at 1/2/4 workers --------------------
    let mut sweep_cells_per_sec = Vec::new();
    for threads in [1usize, 2, 4] {
        let case = time_sweep_cells(threads, quick);
        sweep_cells_per_sec.push(SweepThroughput {
            threads,
            cells_per_sec: 1e9 / case.ns_per_iter,
        });
        cases.push(case);
    }

    PerfReport {
        quick,
        cases,
        facs_decision_speedup,
        facs_decision_speedup_lut,
        sim_events_per_sec,
        sweep_cells_per_sec,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_produces_a_complete_report() {
        let report = run(true);
        assert!(report.quick);
        assert!(report.cases.len() >= 10);
        for case in &report.cases {
            assert!(
                case.ns_per_iter.is_finite() && case.ns_per_iter > 0.0,
                "{} has a bogus timing",
                case.name
            );
            assert!(case.iters > 0);
        }
        assert!(report.case("cascade/facs-p compiled (flc1+flc2)").is_some());
        assert!(report.facs_decision_speedup > 0.0);
        assert!(report.facs_decision_speedup_lut > 0.0);
        // The end-to-end cases the CI perf gate requires.
        assert!(report
            .case("sim/paper-default poisson events (always-accept)")
            .is_some());
        assert!(report
            .case("sim/paper-default poisson events (facs-p-lut)")
            .is_some());
        for threads in [1, 2, 4] {
            assert!(report
                .case(&format!("sweep/paper-default cells ({threads} thread)"))
                .is_some());
        }
        assert!(report.sim_events_per_sec.is_finite() && report.sim_events_per_sec > 0.0);
        assert_eq!(report.sweep_cells_per_sec.len(), 3);
        for s in &report.sweep_cells_per_sec {
            assert!(s.cells_per_sec.is_finite() && s.cells_per_sec > 0.0);
        }
    }

    #[test]
    fn report_round_trips_through_json() {
        let report = run(true);
        let json = report.to_json();
        assert!(json.contains("\"cases\""));
        let back: PerfReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back, report);
        assert!(!report.render_table().is_empty());
    }
}
