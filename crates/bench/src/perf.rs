//! The tracked performance baseline: timed runs of every decision path.
//!
//! [`run`] measures the admission hot path at each layer of the
//! compile/execute split — the string-keyed interpreted engine, the
//! compiled allocation-free engine, the LUT backend, and the end-to-end
//! `decide` / `decide_batch` of every controller — and [`PerfReport`]
//! serialises the result as the `BENCH_perf.json` artifact the `perf` bin
//! writes.  CI runs the quick mode and fails when the artifact is empty or
//! malformed, so the perf trajectory of the hot path is tracked across
//! PRs.

use admitd::{BenchConfig, Server, ServerConfig, World, WorldConfig};
use cellsim::geometry::CellId;
use cellsim::shard::{ShardConfig, ShardedSimulator};
use cellsim::sim::{
    AdmissionController, AdmissionDecision, AdmissionRequest, AlwaysAccept, SimConfig, Simulator,
};
use cellsim::station::BaseStation;
use cellsim::telemetry::{
    LabelPair, NoopRecorder, Recorder, Registry, SpanSnapshot, TelemetrySnapshot,
};
use cellsim::traffic::{MmppConfig, ServiceClass, TrafficModel};
use facs::{FacsController, FacsPController, Flc1, Flc2};
use serde::{Deserialize, Serialize};
use std::time::Instant;
use sweep::{builtin, host_parallelism, ControllerSpec, SweepRunner};

/// One timed case.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PerfCase {
    /// Case name (stable across runs; the JSON key consumers track).
    pub name: String,
    /// Mean wall-clock nanoseconds per iteration.
    pub ns_per_iter: f64,
    /// Timed iterations.
    pub iters: u64,
}

/// Sweep throughput at one worker count.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SweepThroughput {
    /// Worker threads the sweep ran with.
    pub threads: usize,
    /// Finished `(controller, load, replication)` cells per second.
    pub cells_per_sec: f64,
}

/// Metro-scale sharded-engine throughput at one thread count.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ShardThroughput {
    /// Spatial shards the grid was partitioned into.
    pub shards: usize,
    /// Worker threads driving the shards.
    pub threads: usize,
    /// Total events per second through the sharded engine (per-shard
    /// three-stream events plus barrier-merge replays).
    pub events_per_sec: f64,
    /// Peak simultaneously-active connections across the whole metro —
    /// identical at every thread count by the determinism contract.
    pub peak_concurrent_users: u64,
}

/// The serialisable perf baseline.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PerfReport {
    /// Whether the quick (CI) iteration budget was used.
    pub quick: bool,
    /// `std::thread::available_parallelism` of the measuring host.
    /// Thread-scaling gates are only meaningful relative to this: a
    /// 1-core container cannot show parallel speedup no matter how good
    /// the engine is, so [`PerfReport::scaling_regressions`] conditions
    /// its ≥1.6x demand on the host actually having ≥4 cores.
    pub host_parallelism: usize,
    /// All timed cases.
    pub cases: Vec<PerfCase>,
    /// Headline number: interpreted vs compiled speedup of the full
    /// FACS-P decision cascade (FLC1 + FLC2), `interpreted_ns /
    /// compiled_ns`.
    pub facs_decision_speedup: f64,
    /// Interpreted vs LUT speedup of the same cascade.
    pub facs_decision_speedup_lut: f64,
    /// Whole-simulation throughput: events per second through
    /// `run_poisson` on the paper-default configuration under the
    /// admit-if-it-fits controller — the engine-core headline (the
    /// decision-dominated variants are separate `sim/` cases).
    pub sim_events_per_sec: f64,
    /// End-to-end sweep throughput of the paper-default scenario at
    /// 1/2/4 worker threads.
    pub sweep_cells_per_sec: Vec<SweepThroughput>,
    /// Metro-scale sharded-engine throughput at 1/2/4 worker threads
    /// (2107 cells; ≥1M peak concurrent users in the full run).
    pub metro: Vec<ShardThroughput>,
    /// Decision throughput of the `admitd` server over loopback TCP:
    /// scenario replay through the pipelined binary protocol and the
    /// micro-batched `decide_batch` path, best observed requests per
    /// second across the `server/` cases.  Defaults to 0 when loading a
    /// baseline recorded before the server existed.
    #[serde(default)]
    pub server_requests_per_sec: f64,
}

impl PerfReport {
    /// The timed case named `name`, if present.
    #[must_use]
    pub fn case(&self, name: &str) -> Option<&PerfCase> {
        self.cases.iter().find(|c| c.name == name)
    }

    /// Pretty JSON document of the report.
    #[must_use]
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).unwrap_or_else(|_| "{}".to_string())
    }

    /// Thread-scaling violations of this report, as human-readable
    /// descriptions; empty when the scaling story is healthy.
    ///
    /// Two tiers, both keyed on the *measuring host's* core count:
    ///
    /// * always: adding threads must never cost throughput — the
    ///   4-thread sweep and metro numbers must stay within 10 % of the
    ///   1-thread ones (the slack absorbs timer noise on 1-core hosts,
    ///   where 4 capped workers degenerate to the sequential path);
    /// * on hosts with ≥4 cores: the metro sharded engine must scale at
    ///   least [`Self::REQUIRED_METRO_SCALING`]x from 1 to 4 threads.
    #[must_use]
    pub fn scaling_regressions(&self) -> Vec<String> {
        let mut problems = Vec::new();
        let pair = |entries: &[(usize, f64)]| -> Option<(f64, f64)> {
            let one = entries.iter().find(|(t, _)| *t == 1)?.1;
            let four = entries.iter().find(|(t, _)| *t == 4)?.1;
            Some((one, four))
        };

        let sweep: Vec<(usize, f64)> = self
            .sweep_cells_per_sec
            .iter()
            .map(|s| (s.threads, s.cells_per_sec))
            .collect();
        match pair(&sweep) {
            Some((one, four)) => {
                if four < one * Self::NO_SLOWDOWN_FACTOR {
                    problems.push(format!(
                        "sweep throughput regresses with threads: {four:.0} cells/s at 4 \
                         threads vs {one:.0} at 1"
                    ));
                }
            }
            None => problems.push("report lacks 1- and 4-thread sweep entries".to_string()),
        }

        let metro: Vec<(usize, f64)> = self
            .metro
            .iter()
            .map(|m| (m.threads, m.events_per_sec))
            .collect();
        match pair(&metro) {
            Some((one, four)) => {
                if four < one * Self::NO_SLOWDOWN_FACTOR {
                    problems.push(format!(
                        "metro shard throughput regresses with threads: {four:.0} events/s \
                         at 4 threads vs {one:.0} at 1"
                    ));
                }
                if self.host_parallelism >= 4 && four < one * Self::REQUIRED_METRO_SCALING {
                    problems.push(format!(
                        "metro shard scaling below {:.1}x on a {}-core host: {:.2}x \
                         ({four:.0} events/s at 4 threads vs {one:.0} at 1)",
                        Self::REQUIRED_METRO_SCALING,
                        self.host_parallelism,
                        four / one,
                    ));
                }
            }
            None => problems.push("report lacks 1- and 4-thread metro entries".to_string()),
        }

        problems
    }

    /// 4-thread throughput may not drop below this fraction of 1-thread.
    pub const NO_SLOWDOWN_FACTOR: f64 = 0.9;
    /// Required metro 1→4-thread speedup on hosts with ≥4 cores.
    pub const REQUIRED_METRO_SCALING: f64 = 1.6;
    /// Instrumented runs may cost at most this factor over their
    /// uninstrumented twins (≤5 % overhead).
    pub const MAX_TELEMETRY_OVERHEAD: f64 = 1.05;

    /// Telemetry-overhead violations, as human-readable descriptions;
    /// empty when every instrumented case is within
    /// [`Self::MAX_TELEMETRY_OVERHEAD`] of its uninstrumented twin.
    ///
    /// Cases pair by name: a case whose name contains the `, telemetry`
    /// marker is compared against the case named identically without it
    /// (e.g. `sim/... (always-accept, telemetry, 20000 req)` vs
    /// `sim/... (always-accept, 20000 req)`).  Both timings come from the
    /// *same* run of the same binary, so no cross-machine normalisation is
    /// needed — the ratio is the overhead.  A `, telemetry` case with no
    /// twin in the report is itself a violation: the gate must never pass
    /// vacuously because a rename broke the pairing.
    #[must_use]
    pub fn telemetry_overhead_regressions(&self) -> Vec<String> {
        const MARKER: &str = ", telemetry,";
        let mut problems = Vec::new();
        for case in &self.cases {
            if !case.name.contains(MARKER) {
                continue;
            }
            let plain_name = case.name.replace(MARKER, ",");
            let Some(plain) = self.case(&plain_name) else {
                problems.push(format!(
                    "telemetry case `{}` has no uninstrumented twin `{plain_name}`",
                    case.name
                ));
                continue;
            };
            if !(plain.ns_per_iter.is_finite() && plain.ns_per_iter > 0.0) {
                problems.push(format!("case `{plain_name}` has a bogus timing"));
                continue;
            }
            let ratio = case.ns_per_iter / plain.ns_per_iter;
            if ratio > Self::MAX_TELEMETRY_OVERHEAD {
                problems.push(format!(
                    "telemetry overhead {:.1} % on `{plain_name}` exceeds the {:.0} % budget \
                     ({:.1} ns/iter instrumented vs {:.1} plain)",
                    (ratio - 1.0) * 100.0,
                    (Self::MAX_TELEMETRY_OVERHEAD - 1.0) * 100.0,
                    case.ns_per_iter,
                    plain.ns_per_iter,
                ));
            }
        }
        problems
    }

    /// Plain-text table of the report.
    #[must_use]
    pub fn render_table(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{:<58} {:>14} {:>10}\n",
            "case", "ns/iter", "iters"
        ));
        for c in &self.cases {
            out.push_str(&format!(
                "{:<58} {:>14.1} {:>10}\n",
                c.name, c.ns_per_iter, c.iters
            ));
        }
        out.push_str(&format!(
            "\nFACS-P decision speedup (interpreted -> compiled): {:.1}x\n",
            self.facs_decision_speedup
        ));
        out.push_str(&format!(
            "FACS-P decision speedup (interpreted -> LUT):      {:.1}x\n",
            self.facs_decision_speedup_lut
        ));
        out.push_str(&format!(
            "Simulator throughput (paper-default, always-accept): {:.2}M events/s\n",
            self.sim_events_per_sec / 1e6
        ));
        for s in &self.sweep_cells_per_sec {
            out.push_str(&format!(
                "Sweep throughput (paper-default, {} thread{}):      {:.0} cells/s\n",
                s.threads,
                if s.threads == 1 { "" } else { "s" },
                s.cells_per_sec
            ));
        }
        for m in &self.metro {
            out.push_str(&format!(
                "Metro shard throughput ({} shards, {} thread{}):    {:.2}M events/s, \
                 peak {} concurrent users\n",
                m.shards,
                m.threads,
                if m.threads == 1 { "" } else { "s" },
                m.events_per_sec / 1e6,
                m.peak_concurrent_users
            ));
        }
        if self.server_requests_per_sec > 0.0 {
            out.push_str(&format!(
                "Server replay throughput (admitd, loopback TCP):    {:.0} requests/s\n",
                self.server_requests_per_sec
            ));
        }
        out.push_str(&format!(
            "Measured on a host with {} core(s)\n",
            self.host_parallelism
        ));
        out
    }
}

/// One case that slowed down past the comparison tolerance.
#[derive(Debug, Clone, PartialEq)]
pub struct Regression {
    /// Case name.
    pub name: String,
    /// Baseline nanoseconds per iteration.
    pub baseline_ns: f64,
    /// Current nanoseconds per iteration.
    pub current_ns: f64,
    /// `current / baseline`, unnormalised.
    pub raw_ratio: f64,
    /// `current / (baseline * scale)` — how far past the
    /// machine-normalised baseline the case landed.
    pub normalised_ratio: f64,
}

/// Compare a fresh perf run against a committed baseline, normalising
/// away machine speed.
///
/// CI runners and the machines baselines were recorded on differ in
/// absolute speed, so raw `ns_per_iter` ratios alone would flag
/// everything (or nothing).  The per-case ratios `current/baseline` are
/// normalised by their median — the typical machine-speed factor between
/// the two runs — and a case counts as regressed only when it is more
/// than `tolerance` (e.g. `0.3` = 30 %) slower by **both** measures:
///
/// * the normalised ratio, so a uniformly slower machine (every ratio
///   and the median shift together) flags nothing, while a genuine
///   single-case regression (moves its own ratio, barely shifts the
///   median) stands out; and
/// * the raw ratio, so a *non-uniformly faster* current run cannot
///   manufacture regressions — after the `--check` retry loop min-merges
///   attempts, most cases drop well below the baseline while cases
///   already at their floor stay flat, and demanding raw evidence keeps
///   those flat cases (measured at baseline speed!) from being flagged
///   merely for not improving as much as the median did.
///
/// A real regression is slower by both measures on a comparable machine;
/// what the dual condition deliberately forgives is a regression masked
/// by a much faster machine — the machine-invariant speedup-retention
/// and scaling gates in the `perf` bin cover that quadrant.
///
/// Cases present only in one report are skipped: renames and new cases
/// must not fail CI retroactively.  Returns regressions sorted worst
/// first.
#[must_use]
pub fn compare_reports(
    current: &PerfReport,
    baseline: &PerfReport,
    tolerance: f64,
) -> Vec<Regression> {
    let mut ratios: Vec<(usize, f64)> = Vec::new();
    for (i, case) in current.cases.iter().enumerate() {
        if let Some(base) = baseline.case(&case.name) {
            if base.ns_per_iter > 0.0 && case.ns_per_iter.is_finite() {
                ratios.push((i, case.ns_per_iter / base.ns_per_iter));
            }
        }
    }
    if ratios.is_empty() {
        return Vec::new();
    }
    let mut sorted: Vec<f64> = ratios.iter().map(|&(_, r)| r).collect();
    sorted.sort_by(f64::total_cmp);
    let scale = if sorted.len() % 2 == 1 {
        sorted[sorted.len() / 2]
    } else {
        (sorted[sorted.len() / 2 - 1] + sorted[sorted.len() / 2]) / 2.0
    };

    let mut regressions: Vec<Regression> = ratios
        .into_iter()
        .filter_map(|(i, ratio)| {
            let normalised = ratio / scale;
            (normalised > 1.0 + tolerance && ratio > 1.0 + tolerance).then(|| {
                let case = &current.cases[i];
                Regression {
                    name: case.name.clone(),
                    baseline_ns: baseline
                        .case(&case.name)
                        .expect("matched above")
                        .ns_per_iter,
                    current_ns: case.ns_per_iter,
                    raw_ratio: ratio,
                    normalised_ratio: normalised,
                }
            })
        })
        .collect();
    regressions.sort_by(|a, b| b.normalised_ratio.total_cmp(&a.normalised_ratio));
    regressions
}

/// Merge two runs of the same suite into the best-observed report:
/// per-case minimum `ns_per_iter`, per-thread-count maximum throughput,
/// and headline speedups recomputed from the merged cases.
///
/// This backs the `--check` retry loop in the `perf` bin.  Sustained CPU
/// contention on a shared host can slow one case's entire measurement
/// window in a single run, and no within-run estimator can see through
/// that — but a genuine regression slows the case in *every* run, so the
/// min across independent attempts separates transient noise from real
/// slowdowns.
#[must_use]
pub fn merge_best(a: &PerfReport, b: &PerfReport) -> PerfReport {
    let mut cases = a.cases.clone();
    for case in &b.cases {
        match cases.iter_mut().find(|c| c.name == case.name) {
            Some(existing) => {
                if case.ns_per_iter < existing.ns_per_iter {
                    *existing = case.clone();
                }
            }
            None => cases.push(case.clone()),
        }
    }

    let ratio = |num: &str, den: &str, fallback: f64| -> f64 {
        match (
            cases.iter().find(|c| c.name == num),
            cases.iter().find(|c| c.name == den),
        ) {
            (Some(n), Some(d)) if d.ns_per_iter > 0.0 => n.ns_per_iter / d.ns_per_iter,
            _ => fallback,
        }
    };
    let facs_decision_speedup = ratio(
        "cascade/facs-p interpreted (flc1+flc2)",
        "cascade/facs-p compiled (flc1+flc2)",
        a.facs_decision_speedup.max(b.facs_decision_speedup),
    );
    let facs_decision_speedup_lut = ratio(
        "cascade/facs-p interpreted (flc1+flc2)",
        "cascade/facs-p lut (flc1+lut)",
        a.facs_decision_speedup_lut.max(b.facs_decision_speedup_lut),
    );

    let mut sweep_cells_per_sec = a.sweep_cells_per_sec.clone();
    for entry in &b.sweep_cells_per_sec {
        match sweep_cells_per_sec
            .iter_mut()
            .find(|s| s.threads == entry.threads)
        {
            Some(existing) => {
                existing.cells_per_sec = existing.cells_per_sec.max(entry.cells_per_sec);
            }
            None => sweep_cells_per_sec.push(*entry),
        }
    }
    let mut metro = a.metro.clone();
    for entry in &b.metro {
        match metro
            .iter_mut()
            .find(|m| m.threads == entry.threads && m.shards == entry.shards)
        {
            Some(existing) => {
                existing.events_per_sec = existing.events_per_sec.max(entry.events_per_sec);
            }
            None => metro.push(*entry),
        }
    }

    PerfReport {
        quick: a.quick && b.quick,
        host_parallelism: a.host_parallelism.max(b.host_parallelism),
        cases,
        facs_decision_speedup,
        facs_decision_speedup_lut,
        sim_events_per_sec: a.sim_events_per_sec.max(b.sim_events_per_sec),
        sweep_cells_per_sec,
        metro,
        server_requests_per_sec: a.server_requests_per_sec.max(b.server_requests_per_sec),
    }
}

/// Time `routine` over `iters` iterations (after one warm-up call),
/// split into fixed-size batches and reporting the *fastest* batch.
///
/// The minimum is the standard noise-robust location estimator for
/// microbenchmarks: scheduler preemption, frequency scaling and cache
/// pollution only ever make a batch slower, so the fastest batch is the
/// closest observation of the code's true cost — means on a shared
/// 1-core container were measured swinging 25 %+ between otherwise
/// identical runs, which is useless under a 30 % regression budget.
///
/// The batch size is a constant [`BATCH_ITERS`] rather than a fraction
/// of `iters`: quick and full mode must measure the *same* quantity
/// ("mean of the cleanest short window") for `--check` comparisons to
/// be apples-to-apples.  With `iters`-proportional batches the full
/// baseline's multi-millisecond windows almost always absorbed a
/// preemption slice while quick's sub-millisecond windows often landed
/// clean, skewing the two modes by different per-case amounts.  A full
/// run simply gets more batches, i.e. more chances at a clean window —
/// a small uniform bias the median normalisation in [`compare_reports`]
/// absorbs.
fn time_case(name: &str, iters: u64, mut routine: impl FnMut() -> f64) -> PerfCase {
    const BATCH_ITERS: u64 = 250;
    let mut sink = routine();
    let batch_iters = BATCH_ITERS.min(iters.max(1));
    let mut best_ns = f64::INFINITY;
    let mut timed = 0u64;
    while timed < iters {
        let start = Instant::now();
        for _ in 0..batch_iters {
            sink += std::hint::black_box(routine());
        }
        let batch_ns = start.elapsed().as_nanos() as f64 / batch_iters as f64;
        best_ns = best_ns.min(batch_ns);
        timed += batch_iters;
    }
    std::hint::black_box(sink);
    PerfCase {
        name: name.to_string(),
        ns_per_iter: best_ns,
        iters: timed,
    }
}

/// Time whole `run_poisson` simulations on the paper-default
/// configuration, reporting nanoseconds *per processed event* of the
/// fastest run (so `1e9 / ns_per_iter` is the engine's events-per-second
/// throughput).  One warm-up run sizes every reused buffer; the timed
/// runs then reuse the same simulator via `reset`, exactly like a sweep
/// worker.  The request count is part of the case name: quick and full
/// mode time different workloads, and [`compare_reports`] must never
/// compare a 4k-request run against a 20k-request baseline.
fn time_sim_events(label: &str, controller: &mut dyn AdmissionController, quick: bool) -> PerfCase {
    // An explicit `NoopRecorder` rather than the default alias, so this
    // case times the uninstrumented engine even if some other crate in
    // the build graph unified the `telemetry` feature on.
    time_sim_events_with::<NoopRecorder>(label, controller, quick).0
}

/// The generic core of [`time_sim_events`]: times `Simulator<R>` and also
/// returns the simulator's final telemetry snapshot (empty for the no-op
/// recorder).  Used with [`Registry`] to measure the instrumented engine
/// for the telemetry-overhead gate — same workload, same seed, same case
/// naming scheme, with `, telemetry` spliced into the label so
/// [`PerfReport::telemetry_overhead_regressions`] can pair the two.
fn time_sim_events_with<R: Recorder>(
    label: &str,
    controller: &mut dyn AdmissionController,
    quick: bool,
) -> (PerfCase, TelemetrySnapshot) {
    let requests = if quick { 4_000 } else { 20_000 };
    let runs = if quick { 3 } else { 5 };
    let config = SimConfig::paper_default().with_seed(0xBEEF);
    let mut sim = Simulator::<R>::with_telemetry(config.clone());
    std::hint::black_box(sim.run_poisson(controller, requests));
    let mut events = 0u64;
    let mut best_ns = f64::INFINITY;
    for _ in 0..runs {
        sim.reset(config.clone());
        let start = Instant::now();
        std::hint::black_box(sim.run_poisson(controller, requests));
        let elapsed = start.elapsed();
        events += sim.events_processed();
        best_ns = best_ns.min(elapsed.as_nanos() as f64 / sim.events_processed() as f64);
    }
    let case = PerfCase {
        name: format!("sim/paper-default poisson events ({label}, {requests} req)"),
        ns_per_iter: best_ns,
        iters: events,
    };
    (case, sim.telemetry())
}

/// Time the engine under bursty MMPP arrivals (the `flash_crowd`
/// preset on the paper's cell), reporting nanoseconds per processed
/// event of the fastest run.  The bursty generator's state machine sits
/// on the arrival pre-generation path, so this case pins its cost
/// relative to the plain-Poisson `sim/` case above; the request count
/// stays in the name for the same quick-vs-full reason.
fn time_burst_events(controller: &mut dyn AdmissionController, quick: bool) -> PerfCase {
    let requests = if quick { 4_000 } else { 20_000 };
    let runs = if quick { 3 } else { 5 };
    let config = SimConfig::paper_default()
        .with_seed(0xBEEF)
        .with_traffic_model(TrafficModel::Mmpp(MmppConfig::flash_crowd()));
    let mut sim = Simulator::<NoopRecorder>::with_telemetry(config.clone());
    std::hint::black_box(sim.run_poisson(controller, requests));
    let mut events = 0u64;
    let mut best_ns = f64::INFINITY;
    for _ in 0..runs {
        sim.reset(config.clone());
        let start = Instant::now();
        std::hint::black_box(sim.run_poisson(controller, requests));
        let elapsed = start.elapsed();
        events += sim.events_processed();
        best_ns = best_ns.min(elapsed.as_nanos() as f64 / sim.events_processed() as f64);
    }
    PerfCase {
        name: format!("sim/burst events (mmpp flash-crowd, always-accept, {requests} req)"),
        ns_per_iter: best_ns,
        iters: events,
    }
}

/// Time full paper-default sweeps at one worker count, reporting
/// nanoseconds *per finished cell* of the fastest run (so
/// `1e9 / ns_per_iter` is cells per second).  Quick mode sweeps the
/// trimmed `spec.quick()` workload, so its cases carry a `, quick`
/// suffix and are never compared against full-mode baselines.
fn time_sweep_cells(threads: usize, quick: bool) -> PerfCase {
    let spec = builtin("paper-default").expect("paper-default is built in");
    let spec = if quick { spec.quick() } else { spec };
    let cells_per_run =
        (spec.controllers.len() * spec.load_points.len() * spec.replications) as u64;
    let runs = 3;
    let runner = SweepRunner::with_threads(threads);
    std::hint::black_box(runner.run(&spec).expect("built-in spec is valid"));
    let mut best_ns = f64::INFINITY;
    for _ in 0..runs {
        let start = Instant::now();
        std::hint::black_box(runner.run(&spec).expect("built-in spec is valid"));
        let run_ns = start.elapsed().as_nanos() as f64 / cells_per_run as f64;
        best_ns = best_ns.min(run_ns);
    }
    PerfCase {
        name: format!(
            "sweep/paper-default cells ({threads} thread{})",
            if quick { ", quick" } else { "" }
        ),
        ns_per_iter: best_ns,
        iters: cells_per_run * runs,
    }
}

/// Time one metro-scale run of the sharded engine at a given worker
/// thread count, reporting nanoseconds *per processed event* and the peak
/// concurrent population.
///
/// The shard count is fixed at 16 for every thread count so the partition
/// (and, by the determinism contract, every counter in the report) is
/// identical across the 1/2/4-thread headline entries — only wall clock
/// may differ.  Quick mode runs the first metro load point (200k
/// requests, ~190k peak users); the full baseline runs the saturating top
/// load point, where the metro holds over a million concurrent users.
fn time_metro_events(threads: usize, quick: bool) -> (PerfCase, ShardThroughput) {
    const SHARDS: usize = 16;
    let spec = builtin("metro").expect("metro is built in");
    // The guard-channel threshold controller: capacity-relative (the
    // paper's absolute-BU controllers are mistuned at 2000 BU) and still
    // exercising a real reject path, unlike always-accept.
    let controller = spec.controllers[1];
    let load_index = if quick { 0 } else { spec.load_points.len() - 1 };
    let requests = spec.load_points[load_index];
    let config = spec.sim_config(&controller, load_index, 0);
    // Two timed runs, keeping the faster: a single multi-second sample is
    // one sustained-contention window away from recording a 20 % dent in
    // the committed headline throughput.
    let runs = 2;
    let mut events = 0u64;
    let mut peak = 0u64;
    let mut best_ns = f64::INFINITY;
    for _ in 0..runs {
        let mut sim = ShardedSimulator::new(
            config.clone(),
            ShardConfig::new(SHARDS).with_threads(threads),
        );
        let mut factory = || controller.build();
        let start = Instant::now();
        std::hint::black_box(sim.run_poisson(&mut factory, requests));
        let elapsed = start.elapsed();
        events = sim.events_processed();
        peak = sim.peak_concurrent_users();
        best_ns = best_ns.min(elapsed.as_nanos() as f64 / events as f64);
    }
    let case = PerfCase {
        name: format!("shard/metro events ({SHARDS} shards, {threads} thread, {requests} req)"),
        ns_per_iter: best_ns,
        iters: events * runs,
    };
    let throughput = ShardThroughput {
        shards: SHARDS,
        threads,
        events_per_sec: 1e9 / best_ns,
        peak_concurrent_users: peak,
    };
    (case, throughput)
}

/// Time scenario replay through a real `admitd` server on loopback TCP
/// at one client-connection count, reporting nanoseconds *per answered
/// request* of the fastest run (so `1e9 / ns_per_iter` is the server's
/// requests-per-second throughput).
///
/// Every run gets a fresh world and server: replaying the same arrival
/// stream against warm state would re-admit already-known connection
/// ids and rewind the per-cell clock, which is not the workload the
/// case claims to measure.  The world's capacity is raised far above
/// the paper's 50 BU so the steady-state population (arrival rate x
/// holding time, well under the limit) never saturates the station —
/// every frame reaches the controller through the micro-batched
/// `decide_batch` path instead of dying on the cheap `can_fit`
/// fast-reject.  The per-connection request count is part of the case
/// name: quick and full mode time different workloads, and
/// [`compare_reports`] must never mix them.
fn time_server_requests(connections: usize, quick: bool) -> PerfCase {
    let requests_per_connection = if quick { 5_000 } else { 25_000 };
    let runs = if quick { 2 } else { 3 };
    let spec = ControllerSpec::FacsPLut;
    let mut world_config = WorldConfig::paper_default();
    world_config.station_capacity = 1_000_000;
    let mut best_ns = f64::INFINITY;
    let mut answered = 0u64;
    for _ in 0..runs {
        let world = std::sync::Arc::new(World::new(&world_config, &spec.label(), || spec.build()));
        let server = Server::bind(
            std::sync::Arc::clone(&world),
            "127.0.0.1:0",
            ServerConfig::default(),
        )
        .expect("bind loopback");
        let addr = server.local_addr().expect("bound address").to_string();
        let shutdown = server.shutdown_handle();
        let handle = std::thread::spawn(move || server.run());
        let config = BenchConfig {
            addr,
            connections,
            requests_per_connection,
            sim: SimConfig::paper_default().with_seed(0xBEEF),
            ..BenchConfig::default()
        };
        let report = admitd::client::run(&config).expect("loopback replay");
        shutdown.store(true, std::sync::atomic::Ordering::SeqCst);
        handle
            .join()
            .expect("server thread")
            .expect("clean server shutdown");
        assert_eq!(report.errors, 0, "loopback replay must not error");
        answered += report.requests;
        best_ns = best_ns.min(1e9 / report.requests_per_sec);
    }
    PerfCase {
        name: format!(
            "server/replay pipelined (facs-p-lut, {connections} conn, \
             {requests_per_connection} req/conn)"
        ),
        ns_per_iter: best_ns,
        iters: answered,
    }
}

fn probe_request(class: ServiceClass, speed: f64, angle: f64) -> AdmissionRequest {
    AdmissionRequest {
        id: 1,
        cell: CellId::origin(),
        time: 0.0,
        class,
        bandwidth: class.paper_bandwidth(),
        holding_time: 180.0,
        speed_kmh: speed,
        angle_deg: angle,
        distance_m: Some(420.0),
        is_handoff: false,
    }
}

/// Run the whole suite.  `quick` trims the iteration budget for CI smoke
/// runs.  Where quick mode times a genuinely different workload (sim
/// request count, sweep spec, metro load point) the workload is part of
/// the case name, so [`compare_reports`] between a quick run and a full
/// baseline silently skips those cases instead of mis-comparing them —
/// only the pure microbenchmarks (identical per-iteration work in both
/// modes) share names across modes.
#[must_use]
pub fn run(quick: bool) -> PerfReport {
    run_with_telemetry(quick).0
}

/// [`run`], also returning a telemetry snapshot of the suite itself: the
/// instrumented simulator's full registry (counters, histograms, gauges,
/// spans from the `, telemetry` sim case) plus one `bench_case_ns` span
/// per timed case carrying the min-of-batches result.  Exported by
/// `perf --telemetry PATH` in Prometheus or JSON form.
#[must_use]
pub fn run_with_telemetry(quick: bool) -> (PerfReport, TelemetrySnapshot) {
    // The microbenchmarks keep the full iteration budget even in quick
    // mode: they cost ~2 s total, and an identical budget means quick and
    // full runs measure matched cases identically (same batch count, same
    // min-of-batches sampling depth) — essential for the `--check`
    // comparison, where a shallower quick estimate would read as a
    // regression.  Quick mode trims only the expensive end-to-end
    // workloads (sim request count, sweep spec, metro load point), whose
    // cases carry the workload in their names and are never compared
    // cross-mode.
    let iters: u64 = 50_000;
    let mut cases = Vec::new();

    // --- fuzzy layer: one FLC1 inference, each execution model ----------
    let flc1 = Flc1::paper_default().expect("paper parameters are valid");
    let engine = flc1.engine().clone();
    let inputs = [63.0, 27.0, 5.0];
    cases.push(time_case("fuzzy/flc1 interpreted infer", iters, || {
        engine
            .infer(std::hint::black_box(&inputs))
            .unwrap()
            .crisp_or("Cv", 0.5)
    }));
    let compiled = flc1.compiled().clone();
    let mut scratch = compiled.scratch();
    cases.push(time_case(
        "fuzzy/flc1 compiled infer_into",
        iters * 10,
        || compiled.infer_into(std::hint::black_box(&inputs), &mut scratch)[0],
    ));

    // --- LUT layer: one FLC2 decision from the tabulated surface --------
    let flc2 = Flc2::paper_default().expect("paper parameters are valid");
    cases.push(time_case(
        "fuzzy/flc2 compiled decision",
        iters * 10,
        || {
            flc2.decision_value(
                std::hint::black_box(0.7),
                std::hint::black_box(5.0),
                std::hint::black_box(23.0),
            )
        },
    ));
    let lut = flc2.compile_lut().expect("paper parameters tabulate");
    cases.push(time_case("lut/flc2 decision", iters * 10, || {
        lut.decision_value(
            std::hint::black_box(0.7),
            std::hint::black_box(5.0),
            std::hint::black_box(23.0),
        )
    }));

    // --- controller layer: end-to-end decide per controller -------------
    let mut station = BaseStation::paper_default();
    station
        .admit(100, ServiceClass::Video, 10, 0.0, 600.0, false)
        .expect("station empty");
    station
        .admit(101, ServiceClass::Voice, 5, 0.0, 600.0, false)
        .expect("station has room");
    let req = probe_request(ServiceClass::Voice, 72.0, 15.0);

    let mut facsp = FacsPController::paper_default();
    cases.push(time_case("controller/facs-p decide", iters, || {
        facsp
            .decide(std::hint::black_box(&req), std::hint::black_box(&station))
            .score
    }));
    let mut facsp_lut = FacsPController::paper_default_lut();
    cases.push(time_case("controller/facs-p-lut decide", iters, || {
        facsp_lut
            .decide(std::hint::black_box(&req), std::hint::black_box(&station))
            .score
    }));
    let mut facs = FacsController::paper_default();
    cases.push(time_case("controller/facs decide", iters, || {
        facs.decide(std::hint::black_box(&req), std::hint::black_box(&station))
            .score
    }));
    let mut scc = scc::SccAdmission::default();
    cases.push(time_case("controller/scc decide", iters, || {
        scc.decide(std::hint::black_box(&req), std::hint::black_box(&station))
            .score
    }));

    // --- batch path: one tick's arrivals in one decide_batch pass -------
    let batch: Vec<AdmissionRequest> = (0..32)
        .map(|i| {
            probe_request(
                [ServiceClass::Text, ServiceClass::Voice, ServiceClass::Video][i % 3],
                3.75 * i as f64,
                11.25 * i as f64 - 180.0,
            )
        })
        .collect();
    let mut decisions: Vec<AdmissionDecision> = Vec::with_capacity(batch.len());
    // Each timed iteration decides the whole 32-request batch, but every
    // neighbouring case in the table is per-decision, so the case reports
    // ns *per decision* (whole-batch time / 32) and says so in its name —
    // a new name, so `--check` never compares it against the old
    // whole-batch baseline entries.
    let mut batch_case = time_case(
        "controller/facs-p decide_batch(32, ns/decision)",
        iters / 16,
        || {
            facsp.decide_batch(
                std::hint::black_box(&batch),
                std::hint::black_box(&station),
                &mut decisions,
            );
            decisions[0].score
        },
    );
    batch_case.ns_per_iter /= batch.len() as f64;
    batch_case.iters *= batch.len() as u64;
    cases.push(batch_case);

    // --- the headline: interpreted vs compiled/LUT full cascade ---------
    let interpreted_cascade = {
        let flc1_engine = flc1.engine().clone();
        let flc2_engine = flc2.engine().clone();
        time_case("cascade/facs-p interpreted (flc1+flc2)", iters, || {
            let cv = flc1_engine
                .infer(std::hint::black_box(&[72.0, 15.0, 5.0]))
                .unwrap()
                .crisp_or("Cv", 0.5)
                .clamp(0.0, 1.0);
            flc2_engine
                .infer(std::hint::black_box(&[cv, 5.0, 15.0]))
                .unwrap()
                .crisp_or("AR", 0.0)
                .clamp(-1.0, 1.0)
        })
    };
    let compiled_cascade = time_case("cascade/facs-p compiled (flc1+flc2)", iters * 4, || {
        let cv = flc1.correction_value(
            std::hint::black_box(72.0),
            std::hint::black_box(15.0),
            std::hint::black_box(5.0),
        );
        flc2.decision_value(cv, std::hint::black_box(5.0), std::hint::black_box(15.0))
    });
    let lut_cascade = time_case("cascade/facs-p lut (flc1+lut)", iters * 4, || {
        let cv = flc1.correction_value(
            std::hint::black_box(72.0),
            std::hint::black_box(15.0),
            std::hint::black_box(5.0),
        );
        lut.decision_value(cv, std::hint::black_box(5.0), std::hint::black_box(15.0))
    });
    let facs_decision_speedup = interpreted_cascade.ns_per_iter / compiled_cascade.ns_per_iter;
    let facs_decision_speedup_lut = interpreted_cascade.ns_per_iter / lut_cascade.ns_per_iter;
    cases.push(interpreted_cascade);
    cases.push(compiled_cascade);
    cases.push(lut_cascade);

    // --- whole-simulation throughput: events/sec through run_poisson -----
    let engine_case = time_sim_events("always-accept", &mut AlwaysAccept, quick);
    let sim_events_per_sec = 1e9 / engine_case.ns_per_iter;
    cases.push(engine_case);
    // The same workload through the instrumented recorder.  Its case name
    // differs from the plain one only by the `, telemetry` marker, which
    // is how `telemetry_overhead_regressions` pairs them; the snapshot it
    // produces is the sim-layer slice of the `--telemetry` export.
    let (telem_case, sim_snapshot) =
        time_sim_events_with::<Registry>("always-accept, telemetry", &mut AlwaysAccept, quick);
    cases.push(telem_case);
    cases.push(time_sim_events(
        "facs-p-lut",
        &mut FacsPController::paper_default_lut(),
        quick,
    ));
    // The same engine under bursty MMPP arrivals, pinning the bursty
    // generator's cost next to the plain-Poisson case.
    cases.push(time_burst_events(&mut AlwaysAccept, quick));

    // --- end-to-end sweep throughput at 1/2/4 workers --------------------
    let mut sweep_cells_per_sec = Vec::new();
    for threads in [1usize, 2, 4] {
        let case = time_sweep_cells(threads, quick);
        sweep_cells_per_sec.push(SweepThroughput {
            threads,
            cells_per_sec: 1e9 / case.ns_per_iter,
        });
        cases.push(case);
    }

    // --- metro-scale sharded engine at 1/2/4 workers ---------------------
    let mut metro = Vec::new();
    for threads in [1usize, 2, 4] {
        let (case, throughput) = time_metro_events(threads, quick);
        metro.push(throughput);
        cases.push(case);
    }

    // --- admission service: scenario replay over loopback TCP -----------
    let mut server_requests_per_sec = 0.0f64;
    for connections in [1usize, 4] {
        let case = time_server_requests(connections, quick);
        server_requests_per_sec = server_requests_per_sec.max(1e9 / case.ns_per_iter);
        cases.push(case);
    }

    let report = PerfReport {
        quick,
        host_parallelism: host_parallelism(),
        cases,
        facs_decision_speedup,
        facs_decision_speedup_lut,
        sim_events_per_sec,
        sweep_cells_per_sec,
        metro,
        server_requests_per_sec,
    };
    let snapshot = compose_bench_snapshot(&report, sim_snapshot);
    (report, snapshot)
}

/// Fold the suite's results into one exportable snapshot: the
/// instrumented sim run's registry series, then one `bench_case_ns` span
/// per case (count = iterations, min/max = best ns/iter — the only
/// per-iteration statistic min-of-batches timing retains).
fn compose_bench_snapshot(report: &PerfReport, sim: TelemetrySnapshot) -> TelemetrySnapshot {
    let mut snapshot = sim;
    for case in &report.cases {
        let ns = if case.ns_per_iter.is_finite() && case.ns_per_iter > 0.0 {
            case.ns_per_iter
        } else {
            0.0
        };
        snapshot.spans.push(SpanSnapshot {
            name: "bench_case_ns".to_string(),
            help: "Best-batch nanoseconds per iteration of each perf case".to_string(),
            labels: vec![LabelPair {
                key: "case".to_string(),
                value: case.name.clone(),
            }],
            count: case.iters,
            total_ns: (ns * case.iters as f64) as u64,
            min_ns: ns as u64,
            max_ns: ns as u64,
        });
    }
    snapshot
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_produces_a_complete_report() {
        let report = run(true);
        assert!(report.quick);
        assert!(report.cases.len() >= 10);
        for case in &report.cases {
            assert!(
                case.ns_per_iter.is_finite() && case.ns_per_iter > 0.0,
                "{} has a bogus timing",
                case.name
            );
            assert!(case.iters > 0);
        }
        assert!(report.case("cascade/facs-p compiled (flc1+flc2)").is_some());
        assert!(report.facs_decision_speedup > 0.0);
        assert!(report.facs_decision_speedup_lut > 0.0);
        // The end-to-end cases the CI perf gate requires.  Their names
        // encode the quick-mode workload so `--check` never compares them
        // against the full-mode baseline entries.
        assert!(report
            .case("sim/paper-default poisson events (always-accept, 4000 req)")
            .is_some());
        assert!(report
            .case("sim/paper-default poisson events (always-accept, telemetry, 4000 req)")
            .is_some());
        assert!(report
            .case("sim/paper-default poisson events (facs-p-lut, 4000 req)")
            .is_some());
        assert!(report
            .case("sim/burst events (mmpp flash-crowd, always-accept, 4000 req)")
            .is_some());
        for threads in [1, 2, 4] {
            assert!(report
                .case(&format!(
                    "sweep/paper-default cells ({threads} thread, quick)"
                ))
                .is_some());
            assert!(report
                .case(&format!(
                    "shard/metro events (16 shards, {threads} thread, 200000 req)"
                ))
                .is_some());
        }
        for connections in [1, 4] {
            assert!(report
                .case(&format!(
                    "server/replay pipelined (facs-p-lut, {connections} conn, 5000 req/conn)"
                ))
                .is_some());
        }
        assert!(report.server_requests_per_sec.is_finite() && report.server_requests_per_sec > 0.0);
        assert!(report.sim_events_per_sec.is_finite() && report.sim_events_per_sec > 0.0);
        assert_eq!(report.sweep_cells_per_sec.len(), 3);
        for s in &report.sweep_cells_per_sec {
            assert!(s.cells_per_sec.is_finite() && s.cells_per_sec > 0.0);
        }
        assert_eq!(report.metro.len(), 3);
        for m in &report.metro {
            assert!(m.events_per_sec.is_finite() && m.events_per_sec > 0.0);
            // Even the quick load point holds a six-figure population.
            assert!(m.peak_concurrent_users > 100_000);
        }
        // Thread count must never change the simulated outcome.
        assert!(report
            .metro
            .windows(2)
            .all(|w| w[0].peak_concurrent_users == w[1].peak_concurrent_users));
        assert!(report.host_parallelism >= 1);
    }

    #[test]
    fn report_round_trips_through_json() {
        let report = run(true);
        let json = report.to_json();
        assert!(json.contains("\"cases\""));
        let back: PerfReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back, report);
        assert!(!report.render_table().is_empty());
    }

    /// A synthetic report with the given `(name, ns_per_iter)` cases and
    /// healthy scaling entries.
    fn synthetic(cases: &[(&str, f64)]) -> PerfReport {
        PerfReport {
            quick: true,
            host_parallelism: 8,
            cases: cases
                .iter()
                .map(|(name, ns)| PerfCase {
                    name: (*name).to_string(),
                    ns_per_iter: *ns,
                    iters: 100,
                })
                .collect(),
            facs_decision_speedup: 10.0,
            facs_decision_speedup_lut: 50.0,
            sim_events_per_sec: 1e6,
            sweep_cells_per_sec: vec![
                SweepThroughput {
                    threads: 1,
                    cells_per_sec: 1000.0,
                },
                SweepThroughput {
                    threads: 4,
                    cells_per_sec: 3200.0,
                },
            ],
            metro: vec![
                ShardThroughput {
                    shards: 16,
                    threads: 1,
                    events_per_sec: 1e6,
                    peak_concurrent_users: 1_200_000,
                },
                ShardThroughput {
                    shards: 16,
                    threads: 4,
                    events_per_sec: 2e6,
                    peak_concurrent_users: 1_200_000,
                },
            ],
            server_requests_per_sec: 250_000.0,
        }
    }

    #[test]
    fn comparison_ignores_uniform_machine_speed_differences() {
        let baseline = synthetic(&[("a", 100.0), ("b", 200.0), ("c", 400.0), ("d", 800.0)]);
        // Everything exactly 3x slower: a slower machine, not a regression.
        let current = synthetic(&[("a", 300.0), ("b", 600.0), ("c", 1200.0), ("d", 2400.0)]);
        assert!(compare_reports(&current, &baseline, 0.3).is_empty());
    }

    #[test]
    fn comparison_flags_a_single_genuine_regression() {
        let baseline = synthetic(&[("a", 100.0), ("b", 200.0), ("c", 400.0), ("d", 800.0)]);
        // Machine is 2x slower overall, but `c` alone regressed 4x.
        let current = synthetic(&[("a", 200.0), ("b", 400.0), ("c", 1600.0), ("d", 1600.0)]);
        let regressions = compare_reports(&current, &baseline, 0.3);
        assert_eq!(regressions.len(), 1);
        assert_eq!(regressions[0].name, "c");
        assert!(regressions[0].normalised_ratio > 1.3);
    }

    #[test]
    fn comparison_requires_raw_evidence_too() {
        let baseline = synthetic(&[("a", 100.0), ("b", 200.0), ("c", 400.0), ("d", 800.0)]);
        // A min-merged retry run: most cases found much cleaner windows
        // (40 % below baseline) while `d` was already at its floor.  `d`
        // towers over the shrunken median, but at baseline speed in
        // absolute terms it is no regression.
        let current = synthetic(&[("a", 60.0), ("b", 120.0), ("c", 240.0), ("d", 800.0)]);
        assert!(compare_reports(&current, &baseline, 0.3).is_empty());
        // Whereas slow by both measures is flagged even in that skew.
        let regressed = synthetic(&[("a", 60.0), ("b", 120.0), ("c", 240.0), ("d", 1200.0)]);
        let regressions = compare_reports(&regressed, &baseline, 0.3);
        assert_eq!(regressions.len(), 1);
        assert_eq!(regressions[0].name, "d");
        assert!(regressions[0].raw_ratio > 1.3);
        assert!(regressions[0].normalised_ratio > 1.3);
    }

    #[test]
    fn comparison_skips_renamed_and_new_cases() {
        let baseline = synthetic(&[("a", 100.0), ("gone", 50.0)]);
        let current = synthetic(&[("a", 100.0), ("new", 9999.0)]);
        assert!(compare_reports(&current, &baseline, 0.3).is_empty());
        assert!(compare_reports(&baseline, &baseline, 0.3).is_empty());
    }

    #[test]
    fn scaling_gate_passes_healthy_reports_and_catches_regressions() {
        let healthy = synthetic(&[("a", 100.0)]);
        assert!(healthy.scaling_regressions().is_empty());

        // 4 threads slower than 1: always a failure, any host.
        let mut inverted = synthetic(&[("a", 100.0)]);
        inverted.metro[1].events_per_sec = 0.5e6;
        inverted.host_parallelism = 1;
        let problems = inverted.scaling_regressions();
        assert_eq!(problems.len(), 1);
        assert!(problems[0].contains("metro"));

        // Flat scaling: fine on a 1-core host, a failure on a 4-core one.
        let mut flat = synthetic(&[("a", 100.0)]);
        flat.metro[1].events_per_sec = 1e6;
        flat.host_parallelism = 1;
        assert!(flat.scaling_regressions().is_empty());
        flat.host_parallelism = 4;
        let problems = flat.scaling_regressions();
        assert_eq!(problems.len(), 1);
        assert!(problems[0].contains("1.6"));

        // Missing entries are themselves a failure.
        let mut missing = synthetic(&[("a", 100.0)]);
        missing.metro.clear();
        assert!(!missing.scaling_regressions().is_empty());
    }

    #[test]
    fn telemetry_gate_pairs_cases_by_the_marker_in_their_names() {
        let plain = "sim/paper-default poisson events (always-accept, 20000 req)";
        let telem = "sim/paper-default poisson events (always-accept, telemetry, 20000 req)";

        // 4 % overhead: within the 5 % budget.
        let ok = synthetic(&[(plain, 100.0), (telem, 104.0)]);
        assert!(ok.telemetry_overhead_regressions().is_empty());

        // 10 % overhead: flagged, naming the plain case.
        let slow = synthetic(&[(plain, 100.0), (telem, 110.0)]);
        let problems = slow.telemetry_overhead_regressions();
        assert_eq!(problems.len(), 1);
        assert!(problems[0].contains(plain), "{}", problems[0]);

        // A marker case without its twin must fail, not pass vacuously.
        let orphan = synthetic(&[(telem, 104.0)]);
        assert_eq!(orphan.telemetry_overhead_regressions().len(), 1);

        // No instrumented cases at all: nothing to gate.
        let none = synthetic(&[(plain, 100.0)]);
        assert!(none.telemetry_overhead_regressions().is_empty());
    }

    #[test]
    fn quick_telemetry_snapshot_covers_the_suite() {
        let (report, snapshot) = run_with_telemetry(true);
        // One bench span per case, after the instrumented sim's own spans.
        let bench_spans: Vec<_> = snapshot
            .spans
            .iter()
            .filter(|s| s.name == "bench_case_ns")
            .collect();
        assert_eq!(bench_spans.len(), report.cases.len());
        // The instrumented sim run contributes real counter series.
        assert!(snapshot
            .counters
            .iter()
            .any(|c| c.name == "sim_events_total" && c.value > 0));
        // The exposition both parses as Prometheus text and lints clean.
        cellsim::telemetry::lint_prometheus(&snapshot.to_prometheus())
            .expect("perf exposition lints clean");
    }

    #[test]
    fn merge_best_keeps_the_fastest_observation_of_every_metric() {
        let mut first = synthetic(&[("a", 100.0), ("b", 500.0), ("only-first", 7.0)]);
        first.sim_events_per_sec = 1e6;
        let mut second = synthetic(&[("a", 300.0), ("b", 250.0), ("only-second", 9.0)]);
        second.sim_events_per_sec = 2e6;
        second.sweep_cells_per_sec[1].cells_per_sec = 4000.0;
        second.metro[0].events_per_sec = 1.5e6;
        second.server_requests_per_sec = 400_000.0;

        let merged = merge_best(&first, &second);
        assert_eq!(merged.case("a").unwrap().ns_per_iter, 100.0);
        assert_eq!(merged.case("b").unwrap().ns_per_iter, 250.0);
        assert_eq!(merged.case("only-first").unwrap().ns_per_iter, 7.0);
        assert_eq!(merged.case("only-second").unwrap().ns_per_iter, 9.0);
        assert_eq!(merged.sim_events_per_sec, 2e6);
        assert_eq!(merged.sweep_cells_per_sec[1].cells_per_sec, 4000.0);
        assert_eq!(merged.metro[0].events_per_sec, 1.5e6);
        assert_eq!(merged.server_requests_per_sec, 400_000.0);
        // No cascade cases in the synthetic reports, so the headline
        // speedups fall back to the better of the two runs.
        assert_eq!(merged.facs_decision_speedup, 10.0);
        // Note: per-entry maxima drawn from different runs can yield a
        // worse 4t/1t *ratio* than either run showed (here 2.0/1.5 =
        // 1.33x < 1.6x), which is why the `perf` bin evaluates the
        // scaling gate on each fresh attempt, never on a merged report.
        assert!(!merged.scaling_regressions().is_empty());
    }

    #[test]
    fn merge_best_recomputes_headline_speedups_from_merged_cases() {
        let interp = "cascade/facs-p interpreted (flc1+flc2)";
        let compiled = "cascade/facs-p compiled (flc1+flc2)";
        let lut = "cascade/facs-p lut (flc1+lut)";
        // First run: contended compiled case.  Second run: contended
        // interpreted case.  The merged speedup uses the best of each.
        let first = synthetic(&[(interp, 1000.0), (compiled, 500.0), (lut, 50.0)]);
        let second = synthetic(&[(interp, 2000.0), (compiled, 100.0), (lut, 40.0)]);
        let merged = merge_best(&first, &second);
        assert_eq!(merged.facs_decision_speedup, 1000.0 / 100.0);
        assert_eq!(merged.facs_decision_speedup_lut, 1000.0 / 40.0);
    }
}
