//! Workload definitions and sweeps for every figure in the paper.
//!
//! All four result figures plot the **percentage of accepted calls** (y)
//! against the **number of requesting connections** (x, 0–100) for a 40-BU
//! base station with the 70/20/10 % text/voice/video mix (Section 4).  The
//! requesting connections arrive over a fixed observation window and hold
//! their bandwidth for an exponentially distributed time, so the offered
//! load grows with the number of requesting connections and the capacity
//! becomes binding in the second half of the sweep — reproducing the
//! downward-sloping curves of the paper.
//!
//! | Figure | Series | Workload twist |
//! |---|---|---|
//! | Fig. 7 | FACS vs. SCC | shared arrival sequences, some on-going (handoff) traffic |
//! | Fig. 8 | FACS-P at 4/10/30/60 km/h | user speed fixed per series |
//! | Fig. 9 | FACS-P at 0/30/50/60/90° | user angle fixed per series |
//! | Fig. 10 | FACS-P vs. FACS | shared arrival sequences, on-going (handoff) traffic |

use cellsim::shard::BoxedController;
use cellsim::sim::{SimConfig, Simulator};
use cellsim::traffic::TrafficConfig;
use cellsim::MobilityModel;
use serde::{Deserialize, Serialize};
use sweep::{ControllerSpec, LoadMode, RunReport, ScenarioSpec, SweepRunner};

/// Which admission controller a series uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ControllerKind {
    /// The proposed FACS-P controller.
    FacsP,
    /// The authors' previous FACS controller.
    Facs,
    /// The Shadow Cluster Concept baseline.
    Scc,
    /// Admit-if-it-fits upper bound (not in the paper; used by ablations).
    AlwaysAccept,
}

impl ControllerKind {
    /// Human-readable label used in tables and JSON output.
    #[must_use]
    pub fn label(&self) -> &'static str {
        match self {
            ControllerKind::FacsP => "FACS-P",
            ControllerKind::Facs => "FACS",
            ControllerKind::Scc => "SCC",
            ControllerKind::AlwaysAccept => "always-accept",
        }
    }

    /// The scenario-spec form of this controller choice.
    #[must_use]
    pub fn spec(&self) -> ControllerSpec {
        match self {
            ControllerKind::FacsP => ControllerSpec::FacsP,
            ControllerKind::Facs => ControllerSpec::Facs,
            ControllerKind::Scc => ControllerSpec::Scc,
            ControllerKind::AlwaysAccept => ControllerSpec::AlwaysAccept,
        }
    }

    /// Instantiate the controller.
    #[must_use]
    pub fn build(&self) -> BoxedController {
        self.spec().build()
    }
}

/// Shared experiment parameters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExperimentConfig {
    /// The x-axis: numbers of requesting connections to sweep.
    pub request_counts: Vec<usize>,
    /// Observation window over which the requesting connections arrive
    /// (seconds).
    pub window_s: f64,
    /// Mean call holding time (seconds).
    pub mean_holding_s: f64,
    /// Fraction of requests that are handoffs of on-going connections.
    pub handoff_fraction: f64,
    /// Number of independent repetitions (different seeds) averaged per
    /// point.
    pub repetitions: usize,
    /// Base RNG seed; every `(controller, load point, repetition)` cell
    /// derives its own stream via [`sweep::ScenarioSpec::seed_for`]'s
    /// SplitMix64 hash.
    pub base_seed: u64,
    /// Speed/direction correlation strength passed to the traffic
    /// generator (see
    /// [`cellsim::traffic::TrafficConfig::direction_predictability`]).
    pub direction_predictability: f64,
}

impl ExperimentConfig {
    /// The configuration used for the reproduction: x = 10, 20, …, 100
    /// requesting connections arriving over a 450-second window with a
    /// 180-second mean holding time, averaged over 10 seeds.
    ///
    /// With the paper's 2.7-BU mean request size the offered load crosses
    /// the 40-BU capacity at roughly 40–50 requesting connections, matching
    /// the knee of the paper's curves.
    #[must_use]
    pub fn paper_default() -> Self {
        Self {
            request_counts: (1..=10).map(|i| i * 10).collect(),
            window_s: 450.0,
            mean_holding_s: 180.0,
            handoff_fraction: 0.0,
            repetitions: 20,
            base_seed: 0x2009,
            direction_predictability: 1.0,
        }
    }

    /// A cheaper configuration for CI / Criterion runs (fewer points and
    /// repetitions).
    #[must_use]
    pub fn quick() -> Self {
        Self {
            request_counts: vec![20, 50, 80],
            repetitions: 3,
            ..Self::paper_default()
        }
    }

    /// Override the handoff (on-going connection) fraction.
    #[must_use]
    pub fn with_handoff_fraction(mut self, fraction: f64) -> Self {
        self.handoff_fraction = fraction.clamp(0.0, 1.0);
        self
    }

    /// Override the repetition count (at least 1).
    #[must_use]
    pub fn with_repetitions(mut self, repetitions: usize) -> Self {
        self.repetitions = repetitions.max(1);
        self
    }

    /// Override the base RNG seed (the `--seed` flag of the figure bins).
    #[must_use]
    pub fn with_base_seed(mut self, seed: u64) -> Self {
        self.base_seed = seed;
        self
    }
}

impl Default for ExperimentConfig {
    fn default() -> Self {
        Self::paper_default()
    }
}

/// One plotted series: a label plus `(requesting connections, % accepted)`
/// points.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FigureSeries {
    /// Series label (e.g. "FACS-P", "speed = 30 km/h").
    pub label: String,
    /// `(x, y)` points: number of requesting connections and percentage of
    /// accepted calls.
    pub points: Vec<(usize, f64)>,
}

impl FigureSeries {
    /// The y value at a given x, if that x was swept.
    #[must_use]
    pub fn value_at(&self, x: usize) -> Option<f64> {
        self.points.iter().find(|(px, _)| *px == x).map(|(_, y)| *y)
    }

    /// Mean y value over all points.
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.points.is_empty() {
            return 0.0;
        }
        self.points.iter().map(|(_, y)| y).sum::<f64>() / self.points.len() as f64
    }
}

/// Build the [`ScenarioSpec`] of one figure sweep: the paper's single
/// 40-BU cell driven by `cfg`'s load axis, with the listed controllers
/// compared on shared arrival sequences.
///
/// `fixed_speed` / `fixed_angle` pin the corresponding user parameter for
/// the whole series (Figs. 8 and 9); `None` draws them uniformly from the
/// paper's ranges.
#[must_use]
pub fn figure_scenario(
    kinds: &[ControllerKind],
    cfg: &ExperimentConfig,
    fixed_speed: Option<f64>,
    fixed_angle: Option<f64>,
) -> ScenarioSpec {
    let mut traffic = TrafficConfig::paper_default();
    traffic.mean_holding_s = cfg.mean_holding_s;
    traffic.handoff_fraction = cfg.handoff_fraction;
    traffic.direction_predictability = cfg.direction_predictability.clamp(0.0, 1.0);
    if let Some(s) = fixed_speed {
        traffic = traffic.with_fixed_speed(s);
    }
    if let Some(a) = fixed_angle {
        traffic = traffic.with_fixed_angle(a);
    }
    ScenarioSpec {
        name: "figure-sweep".to_string(),
        description: "Requesting-connections sweep of the paper's evaluation".to_string(),
        grid_radius_cells: 0,
        cell_radius_m: 1000.0,
        station_capacity: 40,
        traffic,
        traffic_model: cellsim::TrafficModel::Poisson,
        fault_plan: cellsim::FaultPlan::new(),
        mobility: MobilityModel::paper_default(),
        utilization_sample_interval_s: 0.0,
        controllers: kinds.iter().map(ControllerKind::spec).collect(),
        load_mode: LoadMode::RequestsPerWindow {
            window_s: cfg.window_s,
        },
        load_points: cfg.request_counts.clone(),
        replications: cfg.repetitions.max(1),
        base_seed: cfg.base_seed,
    }
}

/// Convert an engine [`RunReport`] into plotted series: one
/// `(load, mean acceptance %)` curve per controller, in report order.
#[must_use]
pub fn series_from_report(report: &RunReport) -> Vec<FigureSeries> {
    report
        .curves
        .iter()
        .map(|curve| FigureSeries {
            label: curve.controller.clone(),
            points: curve
                .points
                .iter()
                .map(|p| (p.load, p.acceptance.mean))
                .collect(),
        })
        .collect()
}

/// Sweep the number of requesting connections for several controllers at
/// once (shared arrival sequences, one engine pass) and return one
/// acceptance-percentage curve per controller.
#[must_use]
pub fn acceptance_curves(
    kinds: &[ControllerKind],
    cfg: &ExperimentConfig,
    fixed_speed: Option<f64>,
    fixed_angle: Option<f64>,
) -> Vec<FigureSeries> {
    let spec = figure_scenario(kinds, cfg, fixed_speed, fixed_angle);
    let report = SweepRunner::new()
        .run(&spec)
        .expect("figure scenarios are statically valid");
    series_from_report(&report)
}

/// Sweep the number of requesting connections for one controller and return
/// the acceptance-percentage curve.
///
/// `fixed_speed` / `fixed_angle` pin the corresponding user parameter for
/// the whole series (Figs. 8 and 9); `None` draws them uniformly from the
/// paper's ranges.
pub fn acceptance_curve(
    kind: ControllerKind,
    cfg: &ExperimentConfig,
    fixed_speed: Option<f64>,
    fixed_angle: Option<f64>,
) -> FigureSeries {
    acceptance_curves(&[kind], cfg, fixed_speed, fixed_angle)
        .pop()
        .expect("one controller in, one series out")
}

/// Fig. 7 — percentage of accepted calls vs. number of requesting
/// connections for the previous FACS system and the SCC baseline.
///
/// A share of the offered connections are handoffs of on-going calls
/// (`handoff_fraction = 0.3` by default here), because SCC's reservation
/// behaviour only matters when there is on-going traffic to protect.
#[must_use]
pub fn fig7_series(cfg: &ExperimentConfig) -> Vec<FigureSeries> {
    let cfg = cfg
        .clone()
        .with_handoff_fraction(cfg.handoff_fraction.max(0.3));
    acceptance_curves(
        &[ControllerKind::Facs, ControllerKind::Scc],
        &cfg,
        None,
        None,
    )
}

/// Fig. 8 — FACS-P acceptance vs. number of requesting connections for
/// fixed user speeds of 4, 10, 30 and 60 km/h.
#[must_use]
pub fn fig8_series(cfg: &ExperimentConfig) -> Vec<FigureSeries> {
    [4.0, 10.0, 30.0, 60.0]
        .into_iter()
        .map(|speed| {
            let mut s = acceptance_curve(ControllerKind::FacsP, cfg, Some(speed), None);
            s.label = format!("speed = {speed:.0} km/h");
            s
        })
        .collect()
}

/// Fig. 9 — FACS-P acceptance vs. number of requesting connections for
/// fixed user angles of 0, 30, 50, 60 and 90 degrees.
#[must_use]
pub fn fig9_series(cfg: &ExperimentConfig) -> Vec<FigureSeries> {
    [0.0, 30.0, 50.0, 60.0, 90.0]
        .into_iter()
        .map(|angle| {
            let mut s = acceptance_curve(ControllerKind::FacsP, cfg, None, Some(angle));
            s.label = format!("angle = {angle:.0} deg");
            s
        })
        .collect()
}

/// Fig. 10 — FACS-P (proposed) vs. FACS (previous) acceptance under a
/// workload with on-going (handoff) traffic.
#[must_use]
pub fn fig10_series(cfg: &ExperimentConfig) -> Vec<FigureSeries> {
    let cfg = cfg
        .clone()
        .with_handoff_fraction(cfg.handoff_fraction.max(0.35));
    acceptance_curves(
        &[ControllerKind::FacsP, ControllerKind::Facs],
        &cfg,
        None,
        None,
    )
}

/// One row of the supplementary "QoS of on-going connections" comparison.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QosRow {
    /// Controller label.
    pub controller: String,
    /// Percentage of offered connections accepted.
    pub acceptance_percentage: f64,
    /// Probability that an admitted connection is dropped (failed handoff).
    pub dropping_probability: f64,
    /// Acceptance ratio of handoff attempts.
    pub handoff_acceptance: f64,
}

/// Supplementary experiment backing the paper's headline conclusion that
/// *"the proposed system keeps a higher QoS of on-going connections"*: a
/// saturated 7-cell network with fast users, where every controller faces
/// the same offered load and the dropping probability of admitted calls is
/// compared.  Lower dropping = better protection of on-going connections.
#[must_use]
pub fn qos_protection_rows(total_requests: usize, seed: u64) -> Vec<QosRow> {
    [
        ControllerKind::FacsP,
        ControllerKind::Facs,
        ControllerKind::Scc,
        ControllerKind::AlwaysAccept,
    ]
    .into_iter()
    .map(|kind| {
        let mut cfg = SimConfig::paper_default()
            .with_seed(seed)
            .with_grid_radius(1);
        cfg.cell_radius_m = 250.0;
        cfg.traffic = TrafficConfig {
            mean_interarrival_s: 1.5,
            mean_holding_s: 400.0,
            min_speed_kmh: 40.0,
            max_speed_kmh: 120.0,
            ..TrafficConfig::paper_default()
        };
        let mut controller = kind.build();
        let mut sim = Simulator::new(cfg);
        let report = sim.run_poisson(controller.as_mut(), total_requests);
        let (ho_offered, ho_accepted, _) = report.metrics.handoffs();
        QosRow {
            controller: kind.label().to_string(),
            acceptance_percentage: report.acceptance_percentage,
            dropping_probability: report.dropping_probability,
            handoff_acceptance: if ho_offered == 0 {
                1.0
            } else {
                ho_accepted as f64 / ho_offered as f64
            },
        }
    })
    .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> ExperimentConfig {
        ExperimentConfig {
            request_counts: vec![10, 60],
            repetitions: 2,
            ..ExperimentConfig::paper_default()
        }
    }

    #[test]
    fn acceptance_curve_has_one_point_per_count() {
        let s = acceptance_curve(ControllerKind::AlwaysAccept, &tiny(), None, None);
        assert_eq!(s.points.len(), 2);
        assert_eq!(s.points[0].0, 10);
        assert_eq!(s.points[1].0, 60);
        for (_, y) in &s.points {
            assert!(*y >= 0.0 && *y <= 100.0);
        }
    }

    #[test]
    fn acceptance_declines_with_offered_load() {
        let s = acceptance_curve(ControllerKind::FacsP, &tiny(), None, None);
        let low = s.value_at(10).unwrap();
        let high = s.value_at(60).unwrap();
        assert!(
            low >= high,
            "acceptance should not increase with load: {s:?}"
        );
        assert!(low > 80.0, "light load should be mostly accepted: {low}");
    }

    #[test]
    fn curves_are_deterministic() {
        let a = acceptance_curve(ControllerKind::Facs, &tiny(), None, None);
        let b = acceptance_curve(ControllerKind::Facs, &tiny(), None, None);
        assert_eq!(a, b);
    }

    #[test]
    fn figure_scenario_maps_config_onto_the_spec() {
        let cfg = tiny();
        let spec = figure_scenario(&[ControllerKind::FacsP], &cfg, None, None);
        assert_eq!(spec.base_seed, cfg.base_seed);
        assert_eq!(spec.load_points, cfg.request_counts);
        assert_eq!(spec.replications, cfg.repetitions);
        assert!(spec.validate().is_ok());
        // Cell seeds come from the spec's hashed derivation: distinct per
        // replication and reproducible from the base seed alone.
        let c = ControllerKind::FacsP.spec();
        assert_ne!(spec.seed_for(&c, 0, 0), spec.seed_for(&c, 0, 1));
        let again = figure_scenario(&[ControllerKind::FacsP], &cfg, None, None);
        assert_eq!(spec.seed_for(&c, 1, 1), again.seed_for(&c, 1, 1));
    }

    #[test]
    fn joint_sweeps_match_individual_curves() {
        // One engine pass over several controllers must give the same
        // series as sweeping each controller alone: cells are seeded per
        // (load, replication), independently of the controller list.
        let cfg = tiny();
        let joint = acceptance_curves(
            &[ControllerKind::Facs, ControllerKind::Scc],
            &cfg,
            None,
            None,
        );
        assert_eq!(joint.len(), 2);
        assert_eq!(
            joint[0],
            acceptance_curve(ControllerKind::Facs, &cfg, None, None)
        );
        assert_eq!(
            joint[1],
            acceptance_curve(ControllerKind::Scc, &cfg, None, None)
        );
    }

    #[test]
    fn controller_kinds_build_with_their_labels() {
        for kind in [
            ControllerKind::FacsP,
            ControllerKind::Facs,
            ControllerKind::Scc,
            ControllerKind::AlwaysAccept,
        ] {
            let c = kind.build();
            assert!(!kind.label().is_empty());
            let _ = c.name();
        }
    }

    #[test]
    fn figure_series_helpers() {
        let s = FigureSeries {
            label: "x".into(),
            points: vec![(10, 90.0), (20, 70.0)],
        };
        assert_eq!(s.value_at(10), Some(90.0));
        assert_eq!(s.value_at(15), None);
        assert!((s.mean() - 80.0).abs() < 1e-12);
    }

    #[test]
    fn qos_rows_cover_all_controllers() {
        let rows = qos_protection_rows(300, 7);
        assert_eq!(rows.len(), 4);
        for row in &rows {
            assert!(row.acceptance_percentage >= 0.0 && row.acceptance_percentage <= 100.0);
            assert!(row.dropping_probability >= 0.0 && row.dropping_probability <= 1.0);
            assert!(row.handoff_acceptance >= 0.0 && row.handoff_acceptance <= 1.0);
        }
        assert_eq!(rows[0].controller, "FACS-P");
        assert_eq!(rows[3].controller, "always-accept");
    }

    #[test]
    fn quick_config_is_smaller_than_paper_default() {
        let q = ExperimentConfig::quick();
        let p = ExperimentConfig::paper_default();
        assert!(q.request_counts.len() < p.request_counts.len());
        assert!(q.repetitions < p.repetitions);
    }
}
