//! Shared command-line parsing for the figure bins.
//!
//! Every figure bin (`fig7` … `fig10`, `all_figures`) accepts the same
//! flags:
//!
//! * `--quick` — the reduced CI sweep ([`ExperimentConfig::quick`]);
//! * `--seed N` — override the base RNG seed of the sweep;
//! * `--json PATH` — write the series JSON to `PATH` instead of stdout
//!   (`all_figures` also accepts an existing directory and writes one
//!   `figN.json` per figure into it).

use crate::experiments::ExperimentConfig;
use std::path::Path;

/// Parsed figure-bin flags.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FigureArgs {
    /// Use the reduced CI sweep.
    pub quick: bool,
    /// Base-seed override.
    pub seed: Option<u64>,
    /// Destination for the series JSON (stdout when absent).
    pub json: Option<String>,
}

impl FigureArgs {
    /// Parse from an argument list (binary name already stripped).
    pub fn parse<I, S>(argv: I) -> Result<Self, String>
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let argv: Vec<String> = argv.into_iter().map(Into::into).collect();
        let mut args = Self::default();
        let mut it = argv.iter();
        while let Some(arg) = it.next() {
            match arg.as_str() {
                "--quick" => args.quick = true,
                "--seed" => {
                    let raw = it.next().ok_or("--seed needs a value")?;
                    args.seed = Some(raw.parse().map_err(|e| format!("--seed: {e}"))?);
                }
                "--json" => {
                    args.json = Some(it.next().ok_or("--json needs a path")?.clone());
                }
                other => {
                    return Err(format!(
                        "unknown argument `{other}`; expected [--quick] [--seed N] [--json PATH]"
                    ));
                }
            }
        }
        Ok(args)
    }

    /// Parse the process arguments, exiting with a message on bad flags.
    #[must_use]
    pub fn parse_env() -> Self {
        match Self::parse(std::env::args().skip(1)) {
            Ok(args) => args,
            Err(message) => {
                eprintln!("{message}");
                std::process::exit(2);
            }
        }
    }

    /// The experiment configuration these flags select.
    #[must_use]
    pub fn experiment_config(&self) -> ExperimentConfig {
        let cfg = if self.quick {
            ExperimentConfig::quick()
        } else {
            ExperimentConfig::paper_default()
        };
        match self.seed {
            Some(seed) => cfg.with_base_seed(seed),
            None => cfg,
        }
    }

    /// Deliver a JSON document: to the `--json` path when given (created or
    /// truncated), to stdout otherwise.
    pub fn emit_json(&self, doc: &str) -> Result<(), String> {
        match &self.json {
            Some(path) => std::fs::write(Path::new(path), doc)
                .map_err(|e| format!("could not write {path}: {e}")),
            None => {
                println!("{doc}");
                Ok(())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_all_flags() {
        let args = FigureArgs::parse(["--quick", "--seed", "42", "--json", "/tmp/x.json"]).unwrap();
        assert!(args.quick);
        assert_eq!(args.seed, Some(42));
        assert_eq!(args.json.as_deref(), Some("/tmp/x.json"));
        assert_eq!(
            FigureArgs::parse(Vec::<String>::new()).unwrap(),
            FigureArgs::default()
        );
    }

    #[test]
    fn rejects_bad_flags() {
        assert!(FigureArgs::parse(["--nope"]).is_err());
        assert!(FigureArgs::parse(["--seed"]).is_err());
        assert!(FigureArgs::parse(["--seed", "abc"]).is_err());
        assert!(FigureArgs::parse(["--json"]).is_err());
    }

    #[test]
    fn config_reflects_flags() {
        let quick = FigureArgs::parse(["--quick", "--seed", "7"])
            .unwrap()
            .experiment_config();
        assert_eq!(quick.base_seed, 7);
        assert_eq!(
            quick.request_counts,
            ExperimentConfig::quick().request_counts
        );
        let full = FigureArgs::default().experiment_config();
        assert_eq!(full.base_seed, ExperimentConfig::paper_default().base_seed);
    }

    #[test]
    fn emit_json_writes_to_the_given_path() {
        let path = std::env::temp_dir().join("facs-bench-cli-test.json");
        let args = FigureArgs {
            json: Some(path.to_string_lossy().into_owned()),
            ..FigureArgs::default()
        };
        args.emit_json("{\"ok\":true}").unwrap();
        let back = std::fs::read_to_string(&path).unwrap();
        assert_eq!(back, "{\"ok\":true}");
        let _ = std::fs::remove_file(&path);
    }
}
