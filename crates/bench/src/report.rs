//! Plain-text, JSON and CSV rendering of experiment results.

use crate::experiments::{FigureSeries, QosRow};
use sweep::RunReport;

/// Render the supplementary QoS-protection comparison as a plain-text
/// table.
#[must_use]
pub fn render_qos_table(title: &str, rows: &[QosRow]) -> String {
    let mut out = String::new();
    out.push_str(title);
    out.push('\n');
    out.push_str(&"=".repeat(title.len()));
    out.push('\n');
    out.push_str(&format!(
        "{:>15}  {:>12}  {:>12}  {:>18}\n",
        "controller", "accepted %", "dropping", "handoff acceptance"
    ));
    for r in rows {
        out.push_str(&format!(
            "{:>15}  {:>11.1}%  {:>12.4}  {:>17.1}%\n",
            r.controller,
            r.acceptance_percentage,
            r.dropping_probability,
            100.0 * r.handoff_acceptance
        ));
    }
    out
}

/// Render a set of series as a plain-text table: one row per x value, one
/// column per series — the same rows the paper plots.
#[must_use]
pub fn render_table(title: &str, series: &[FigureSeries]) -> String {
    let mut out = String::new();
    out.push_str(title);
    out.push('\n');
    out.push_str(&"=".repeat(title.len()));
    out.push('\n');
    if series.is_empty() {
        out.push_str("(no series)\n");
        return out;
    }
    // Header.
    out.push_str(&format!("{:>10}", "requests"));
    for s in series {
        out.push_str(&format!("  {:>18}", s.label));
    }
    out.push('\n');
    // Collect the union of x values, sorted.
    let mut xs: Vec<usize> = series
        .iter()
        .flat_map(|s| s.points.iter().map(|(x, _)| *x))
        .collect();
    xs.sort_unstable();
    xs.dedup();
    for x in xs {
        out.push_str(&format!("{x:>10}"));
        for s in series {
            match s.value_at(x) {
                Some(y) => out.push_str(&format!("  {y:>17.1}%")),
                None => out.push_str(&format!("  {:>18}", "-")),
            }
        }
        out.push('\n');
    }
    out
}

/// Serialise a set of series to pretty-printed JSON (used to refresh
/// `EXPERIMENTS.md` mechanically).
#[must_use]
pub fn series_to_json(figure: &str, series: &[FigureSeries]) -> String {
    #[derive(serde::Serialize)]
    struct Doc<'a> {
        figure: &'a str,
        y_axis: &'a str,
        x_axis: &'a str,
        series: &'a [FigureSeries],
    }
    serde_json::to_string_pretty(&Doc {
        figure,
        y_axis: "percentage of accepted calls",
        x_axis: "number of requesting connections",
        series,
    })
    .unwrap_or_else(|_| "{}".to_string())
}

/// Serialise a sweep engine's [`RunReport`] (full aggregates: mean / std /
/// 95 % CI and merged counters) to pretty-printed JSON.
#[must_use]
pub fn run_report_to_json(report: &RunReport) -> String {
    report.to_json()
}

/// Flatten a sweep engine's [`RunReport`] to CSV, one row per
/// `(controller, load)` cell.
#[must_use]
pub fn run_report_to_csv(report: &RunReport) -> String {
    report.to_csv()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<FigureSeries> {
        vec![
            FigureSeries {
                label: "FACS".into(),
                points: vec![(10, 95.0), (50, 70.5)],
            },
            FigureSeries {
                label: "SCC".into(),
                points: vec![(10, 90.0), (50, 75.0)],
            },
        ]
    }

    #[test]
    fn table_contains_all_labels_and_values() {
        let t = render_table("Fig. 7", &sample());
        assert!(t.contains("Fig. 7"));
        assert!(t.contains("FACS"));
        assert!(t.contains("SCC"));
        assert!(t.contains("95.0%"));
        assert!(t.contains("70.5%"));
        assert!(t.contains("requests"));
    }

    #[test]
    fn table_handles_empty_series_list() {
        let t = render_table("empty", &[]);
        assert!(t.contains("no series"));
    }

    #[test]
    fn table_marks_missing_points() {
        let series = vec![
            FigureSeries {
                label: "a".into(),
                points: vec![(10, 95.0)],
            },
            FigureSeries {
                label: "b".into(),
                points: vec![(20, 90.0)],
            },
        ];
        let t = render_table("partial", &series);
        assert!(t.contains('-'));
    }

    #[test]
    fn qos_table_renders_rows() {
        let rows = vec![QosRow {
            controller: "FACS-P".into(),
            acceptance_percentage: 61.2,
            dropping_probability: 0.012,
            handoff_acceptance: 0.97,
        }];
        let t = render_qos_table("QoS", &rows);
        assert!(t.contains("FACS-P"));
        assert!(t.contains("61.2%"));
        assert!(t.contains("0.0120"));
        assert!(t.contains("97.0%"));
    }

    #[test]
    fn json_roundtrips() {
        let json = series_to_json("fig7", &sample());
        let value: serde_json::Value = serde_json::from_str(&json).unwrap();
        assert_eq!(value["figure"], "fig7");
        assert_eq!(value["series"].as_array().unwrap().len(), 2);
        assert_eq!(value["series"][0]["label"], "FACS");
    }

    #[test]
    fn run_report_writers_delegate_to_the_engine() {
        use crate::experiments::{figure_scenario, ControllerKind, ExperimentConfig};
        use sweep::SweepRunner;
        let cfg = ExperimentConfig {
            request_counts: vec![20],
            repetitions: 2,
            ..ExperimentConfig::paper_default()
        };
        let spec = figure_scenario(&[ControllerKind::AlwaysAccept], &cfg, None, None);
        let report = SweepRunner::with_threads(2).run(&spec).unwrap();
        let json = run_report_to_json(&report);
        let value: serde_json::Value = serde_json::from_str(&json).unwrap();
        assert_eq!(value["scenario"], "figure-sweep");
        let csv = run_report_to_csv(&report);
        assert!(csv.starts_with("scenario,controller,load"));
        assert_eq!(csv.lines().count(), 2, "header + one cell");
    }
}
