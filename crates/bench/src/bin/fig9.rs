//! Regenerate Fig. 9 of the paper.
//!
//! ```text
//! cargo run --release -p facs-bench --bin fig9 [-- --quick]
//! ```

use bench::{fig9_series, render_table, series_to_json, ExperimentConfig};

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let cfg = if quick {
        ExperimentConfig::quick()
    } else {
        ExperimentConfig::paper_default()
    };
    let series = fig9_series(&cfg);
    println!(
        "{}",
        render_table(
            "Fig. 9 — FACS-P acceptance for different user angles",
            &series
        )
    );
    println!("{}", series_to_json("fig9", &series));
}
