//! Regenerate Fig. 9 of the paper.
//!
//! ```text
//! cargo run --release -p facs-bench --bin fig9 [-- --quick] [--seed N] [--json PATH]
//! ```

use bench::{fig9_series, render_table, series_to_json, FigureArgs};

fn main() {
    let args = FigureArgs::parse_env();
    let series = fig9_series(&args.experiment_config());
    println!(
        "{}",
        render_table(
            "Fig. 9 — FACS-P acceptance for different user angles",
            &series
        )
    );
    if let Err(e) = args.emit_json(&series_to_json("fig9", &series)) {
        eprintln!("{e}");
        std::process::exit(1);
    }
}
