//! Measure the admission hot path and write the `BENCH_perf.json`
//! baseline.
//!
//! ```text
//! cargo run --release -p facs-bench --bin perf -- [--quick] [--json [PATH]]
//! ```
//!
//! `--quick` trims the iteration budget (the CI smoke mode); `--json`
//! writes the report to `PATH` (default `BENCH_perf.json`) instead of only
//! printing the table.  The process exits non-zero if the produced report
//! is empty, so CI can gate on it.

use bench::perf;

struct Args {
    quick: bool,
    json: Option<String>,
}

fn parse_args() -> Result<Args, String> {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut args = Args {
        quick: false,
        json: None,
    };
    let mut i = 0;
    while i < argv.len() {
        match argv[i].as_str() {
            "--quick" => args.quick = true,
            "--json" => {
                // Optional value: `--json path` or bare `--json` for the
                // default baseline file name.
                if i + 1 < argv.len() && !argv[i + 1].starts_with("--") {
                    args.json = Some(argv[i + 1].clone());
                    i += 1;
                } else {
                    args.json = Some("BENCH_perf.json".to_string());
                }
            }
            other => {
                return Err(format!(
                    "unknown argument `{other}`; expected [--quick] [--json [PATH]]"
                ));
            }
        }
        i += 1;
    }
    Ok(args)
}

fn main() {
    let args = match parse_args() {
        Ok(args) => args,
        Err(message) => {
            eprintln!("{message}");
            std::process::exit(2);
        }
    };
    let report = perf::run(args.quick);
    print!("{}", report.render_table());
    if report.cases.is_empty() {
        eprintln!("perf run produced no cases");
        std::process::exit(1);
    }
    if let Some(path) = &args.json {
        if let Err(e) = std::fs::write(path, report.to_json()) {
            eprintln!("could not write {path}: {e}");
            std::process::exit(1);
        }
        eprintln!("wrote {path}");
    }
}
