//! Measure the admission hot path and write the `BENCH_perf.json`
//! baseline.
//!
//! ```text
//! cargo run --release -p facs-bench --bin perf -- \
//!     [--quick] [--json [PATH]] [--check BASELINE] [--telemetry PATH]
//! ```
//!
//! `--quick` trims the end-to-end workloads (the CI smoke mode); `--json`
//! writes the report to `PATH` (default `BENCH_perf.json`) instead of only
//! printing the table.  `--check BASELINE` compares the fresh run against
//! a committed baseline report and exits non-zero if any case regressed
//! more than 30 % beyond the machine-speed-normalised baseline, if a
//! headline interpreted-vs-compiled speedup lost more than 30 % of its
//! baseline value, or if the report's own thread-scaling or
//! telemetry-overhead gates fail — this is the CI perf-regression gate.
//! A failing check is retried up to two more times with the per-case
//! minima merged across attempts, so a transiently contended measurement
//! window does not fail the build but a persistent regression (slow in
//! every attempt) does.  `--telemetry PATH` writes the suite's telemetry
//! snapshot — Prometheus text exposition when the path ends in `.prom`,
//! JSON otherwise.  The process also exits non-zero if the produced
//! report is empty.

use bench::perf;
use bench::perf::PerfReport;

struct Args {
    quick: bool,
    json: Option<String>,
    check: Option<String>,
    telemetry: Option<String>,
}

fn parse_args() -> Result<Args, String> {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut args = Args {
        quick: false,
        json: None,
        check: None,
        telemetry: None,
    };
    let mut i = 0;
    while i < argv.len() {
        match argv[i].as_str() {
            "--quick" => args.quick = true,
            "--json" => {
                // Optional value: `--json path` or bare `--json` for the
                // default baseline file name.
                if i + 1 < argv.len() && !argv[i + 1].starts_with("--") {
                    args.json = Some(argv[i + 1].clone());
                    i += 1;
                } else {
                    args.json = Some("BENCH_perf.json".to_string());
                }
            }
            "--check" => {
                if i + 1 < argv.len() && !argv[i + 1].starts_with("--") {
                    args.check = Some(argv[i + 1].clone());
                    i += 1;
                } else {
                    return Err("--check requires a baseline report path".to_string());
                }
            }
            "--telemetry" => {
                if i + 1 < argv.len() && !argv[i + 1].starts_with("--") {
                    args.telemetry = Some(argv[i + 1].clone());
                    i += 1;
                } else {
                    return Err("--telemetry requires an output path".to_string());
                }
            }
            other => {
                return Err(format!(
                    "unknown argument `{other}`; expected [--quick] [--json [PATH]] \
                     [--check BASELINE] [--telemetry PATH]"
                ));
            }
        }
        i += 1;
    }
    Ok(args)
}

/// Tolerated per-case slowdown beyond the machine-speed-normalised
/// baseline before `--check` fails.
const CHECK_TOLERANCE: f64 = 0.3;

/// Fraction of a baseline headline speedup the fresh run must retain.
/// The interpreted-vs-compiled ratios are measured within one run, so
/// machine speed and run-wide contention cancel — they are the most
/// noise-immune regression signal in the report.
const SPEEDUP_RETENTION: f64 = 0.7;

/// Measurement attempts before a failing `--check` is final.
const MAX_CHECK_ATTEMPTS: u32 = 3;

fn load_baseline(baseline_path: &str) -> Result<PerfReport, String> {
    let text = std::fs::read_to_string(baseline_path)
        .map_err(|e| format!("could not read baseline {baseline_path}: {e}"))?;
    serde_json::from_str(&text)
        .map_err(|e| format!("could not parse baseline {baseline_path}: {e}"))
}

/// The baseline-relative gates: per-case budget and speedup retention.
/// These run against the *merged* best-observed report — minima only ever
/// improve, so retrying helps exactly when the slowdown was transient.
/// The scaling gate is deliberately NOT here: per-entry maxima merged
/// from different runs can show a worse 4t/1t ratio than any single run,
/// so scaling is judged on each fresh attempt instead.
fn baseline_failures(report: &PerfReport, baseline: &PerfReport) -> Vec<String> {
    let mut failures = Vec::new();
    for r in perf::compare_reports(report, baseline, CHECK_TOLERANCE) {
        failures.push(format!(
            "{}: {:.1} ns/iter vs baseline {:.1} — {:.2}x raw, {:.2}x the machine-normalised \
             baseline",
            r.name, r.current_ns, r.baseline_ns, r.raw_ratio, r.normalised_ratio
        ));
    }
    for (label, current, base) in [
        (
            "interpreted→compiled cascade speedup",
            report.facs_decision_speedup,
            baseline.facs_decision_speedup,
        ),
        (
            "interpreted→LUT cascade speedup",
            report.facs_decision_speedup_lut,
            baseline.facs_decision_speedup_lut,
        ),
    ] {
        if current < base * SPEEDUP_RETENTION {
            failures.push(format!(
                "{label} dropped to {current:.1}x vs baseline {base:.1}x \
                 (must retain ≥{:.0} %)",
                SPEEDUP_RETENTION * 100.0
            ));
        }
    }
    failures
}

fn main() {
    let args = match parse_args() {
        Ok(args) => args,
        Err(message) => {
            eprintln!("{message}");
            std::process::exit(2);
        }
    };
    let (mut report, mut telemetry) = perf::run_with_telemetry(args.quick);
    let mut check_failures: Option<Vec<String>> = None;

    if let Some(baseline_path) = &args.check {
        let baseline = match load_baseline(baseline_path) {
            Ok(baseline) => baseline,
            Err(message) => {
                eprintln!("{message}");
                std::process::exit(1);
            }
        };
        // The scaling and telemetry-overhead gates pass as soon as any
        // single attempt is healthy (judged on fresh runs — see
        // `baseline_failures` for why never on merged ones; merged minima
        // could additionally pair an instrumented timing from one attempt
        // with a plain timing from another, which is not an overhead
        // measurement at all).
        let mut scaling_failures = report.scaling_regressions();
        let mut overhead_failures = report.telemetry_overhead_regressions();
        for attempt in 1..=MAX_CHECK_ATTEMPTS {
            let mut failures = baseline_failures(&report, &baseline);
            failures.extend(scaling_failures.clone());
            failures.extend(overhead_failures.clone());
            if failures.is_empty() {
                eprintln!(
                    "perf check passed on attempt {attempt}: {} cases within {:.0} % of {}",
                    report.cases.len(),
                    CHECK_TOLERANCE * 100.0,
                    baseline_path
                );
                check_failures = None;
                break;
            }
            check_failures = Some(failures.clone());
            if attempt < MAX_CHECK_ATTEMPTS {
                eprintln!(
                    "perf check attempt {attempt}/{MAX_CHECK_ATTEMPTS} failed (re-measuring; \
                     a transient slow window passes on retry, a real regression will \
                     not):\n  {}",
                    failures.join("\n  ")
                );
                let (fresh, fresh_telemetry) = perf::run_with_telemetry(args.quick);
                if !scaling_failures.is_empty() {
                    scaling_failures = fresh.scaling_regressions();
                }
                if !overhead_failures.is_empty() {
                    overhead_failures = fresh.telemetry_overhead_regressions();
                }
                report = perf::merge_best(&report, &fresh);
                telemetry = fresh_telemetry;
            }
        }
    }

    print!("{}", report.render_table());
    if report.cases.is_empty() {
        eprintln!("perf run produced no cases");
        std::process::exit(1);
    }
    if let Some(path) = &args.json {
        if let Err(e) = std::fs::write(path, report.to_json()) {
            eprintln!("could not write {path}: {e}");
            std::process::exit(1);
        }
        eprintln!("wrote {path}");
    }
    if let Some(path) = &args.telemetry {
        let text = if path.ends_with(".prom") {
            telemetry.to_prometheus()
        } else {
            telemetry.to_json()
        };
        if let Err(e) = std::fs::write(path, text) {
            eprintln!("could not write {path}: {e}");
            std::process::exit(1);
        }
        eprintln!("wrote {path}");
    }
    if let Some(failures) = check_failures {
        eprintln!(
            "perf check failed after {MAX_CHECK_ATTEMPTS} attempts against {}:\n  {}",
            args.check.as_deref().unwrap_or_default(),
            failures.join("\n  ")
        );
        std::process::exit(1);
    }
}
