//! Regenerate every figure of the paper in one run.
//!
//! ```text
//! cargo run --release -p facs-bench --bin all_figures [-- --quick] [--json DIR]
//! ```

use bench::{
    fig10_series, fig7_series, fig8_series, fig9_series, qos_protection_rows, render_qos_table,
    render_table, series_to_json, ExperimentConfig,
};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let json_dir = args
        .iter()
        .position(|a| a == "--json")
        .and_then(|i| args.get(i + 1))
        .cloned();
    let cfg = if quick {
        ExperimentConfig::quick()
    } else {
        ExperimentConfig::paper_default()
    };

    let figures = [
        ("fig7", "Fig. 7 — FACS vs. SCC", fig7_series(&cfg)),
        (
            "fig8",
            "Fig. 8 — FACS-P for different user speeds",
            fig8_series(&cfg),
        ),
        (
            "fig9",
            "Fig. 9 — FACS-P for different user angles",
            fig9_series(&cfg),
        ),
        ("fig10", "Fig. 10 — FACS-P vs. FACS", fig10_series(&cfg)),
    ];
    for (id, title, series) in &figures {
        println!("{}", render_table(title, series));
        if let Some(dir) = &json_dir {
            let path = std::path::Path::new(dir).join(format!("{id}.json"));
            if let Err(e) = std::fs::write(&path, series_to_json(id, series)) {
                eprintln!("warning: could not write {}: {e}", path.display());
            }
        }
    }

    // Supplementary: the paper's headline conclusion that FACS-P "keeps a
    // higher QoS of on-going connections", measured as the dropping
    // probability of admitted calls in a saturated 7-cell network.
    let requests = if quick { 300 } else { 1500 };
    let rows = qos_protection_rows(requests, 0x9005);
    println!(
        "{}",
        render_qos_table(
            "Supplementary — QoS of on-going connections (saturated 7-cell network)",
            &rows
        )
    );
}
