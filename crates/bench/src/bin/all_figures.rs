//! Regenerate every figure of the paper in one run.
//!
//! ```text
//! cargo run --release -p facs-bench --bin all_figures [-- --quick] [--seed N] [--json PATH]
//! ```
//!
//! `--json PATH` writes the series JSON to `PATH`: if `PATH` is an
//! existing directory, one `figN.json` file per figure is written into
//! it; otherwise a single combined document lands at `PATH`.

use bench::{
    fig10_series, fig7_series, fig8_series, fig9_series, qos_protection_rows, render_qos_table,
    render_table, series_to_json, FigureArgs, FigureSeries,
};

#[derive(serde::Serialize)]
struct CombinedDoc<'a> {
    figure: &'a str,
    title: &'a str,
    series: &'a [FigureSeries],
}

fn main() {
    let args = FigureArgs::parse_env();
    let cfg = args.experiment_config();

    let figures = [
        ("fig7", "Fig. 7 — FACS vs. SCC", fig7_series(&cfg)),
        (
            "fig8",
            "Fig. 8 — FACS-P for different user speeds",
            fig8_series(&cfg),
        ),
        (
            "fig9",
            "Fig. 9 — FACS-P for different user angles",
            fig9_series(&cfg),
        ),
        ("fig10", "Fig. 10 — FACS-P vs. FACS", fig10_series(&cfg)),
    ];
    for (_, title, series) in &figures {
        println!("{}", render_table(title, series));
    }

    if let Some(path) = &args.json {
        let target = std::path::Path::new(path);
        let result = if target.is_dir() {
            figures.iter().try_for_each(|(id, _, series)| {
                let file = target.join(format!("{id}.json"));
                std::fs::write(&file, series_to_json(id, series))
                    .map_err(|e| format!("could not write {}: {e}", file.display()))
            })
        } else {
            let docs: Vec<CombinedDoc<'_>> = figures
                .iter()
                .map(|(id, title, series)| CombinedDoc {
                    figure: id,
                    title,
                    series,
                })
                .collect();
            let doc = serde_json::to_string_pretty(&docs).unwrap_or_else(|_| "[]".to_string());
            std::fs::write(target, doc).map_err(|e| format!("could not write {path}: {e}"))
        };
        if let Err(e) = result {
            eprintln!("{e}");
            std::process::exit(1);
        }
    }

    // Supplementary: the paper's headline conclusion that FACS-P "keeps a
    // higher QoS of on-going connections", measured as the dropping
    // probability of admitted calls in a saturated 7-cell network.
    let requests = if args.quick { 300 } else { 1500 };
    let rows = qos_protection_rows(requests, args.seed.unwrap_or(0x9005));
    println!(
        "{}",
        render_qos_table(
            "Supplementary — QoS of on-going connections (saturated 7-cell network)",
            &rows
        )
    );
}
