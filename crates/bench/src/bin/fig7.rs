//! Regenerate Fig. 7 of the paper.
//!
//! ```text
//! cargo run --release -p facs-bench --bin fig7 [-- --quick] [--seed N] [--json PATH]
//! ```

use bench::{fig7_series, render_table, series_to_json, FigureArgs};

fn main() {
    let args = FigureArgs::parse_env();
    let series = fig7_series(&args.experiment_config());
    println!(
        "{}",
        render_table(
            "Fig. 7 — percentage of accepted calls: FACS vs. SCC",
            &series
        )
    );
    if let Err(e) = args.emit_json(&series_to_json("fig7", &series)) {
        eprintln!("{e}");
        std::process::exit(1);
    }
}
