//! Regenerate Fig. 7 of the paper.
//!
//! ```text
//! cargo run --release -p facs-bench --bin fig7 [-- --quick]
//! ```

use bench::{fig7_series, render_table, series_to_json, ExperimentConfig};

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let cfg = if quick {
        ExperimentConfig::quick()
    } else {
        ExperimentConfig::paper_default()
    };
    let series = fig7_series(&cfg);
    println!(
        "{}",
        render_table(
            "Fig. 7 — percentage of accepted calls: FACS vs. SCC",
            &series
        )
    );
    println!("{}", series_to_json("fig7", &series));
}
