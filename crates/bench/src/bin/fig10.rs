//! Regenerate Fig. 10 of the paper.
//!
//! ```text
//! cargo run --release -p facs-bench --bin fig10 [-- --quick] [--seed N] [--json PATH]
//! ```

use bench::{fig10_series, render_table, series_to_json, FigureArgs};

fn main() {
    let args = FigureArgs::parse_env();
    let series = fig10_series(&args.experiment_config());
    println!(
        "{}",
        render_table(
            "Fig. 10 — percentage of accepted calls: FACS-P vs. FACS",
            &series
        )
    );
    if let Err(e) = args.emit_json(&series_to_json("fig10", &series)) {
        eprintln!("{e}");
        std::process::exit(1);
    }
}
