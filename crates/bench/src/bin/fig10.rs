//! Regenerate Fig. 10 of the paper.
//!
//! ```text
//! cargo run --release -p facs-bench --bin fig10 [-- --quick]
//! ```

use bench::{fig10_series, render_table, series_to_json, ExperimentConfig};

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let cfg = if quick {
        ExperimentConfig::quick()
    } else {
        ExperimentConfig::paper_default()
    };
    let series = fig10_series(&cfg);
    println!(
        "{}",
        render_table(
            "Fig. 10 — percentage of accepted calls: FACS-P vs. FACS",
            &series
        )
    );
    println!("{}", series_to_json("fig10", &series));
}
