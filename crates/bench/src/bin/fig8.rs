//! Regenerate Fig. 8 of the paper.
//!
//! ```text
//! cargo run --release -p facs-bench --bin fig8 [-- --quick]
//! ```

use bench::{fig8_series, render_table, series_to_json, ExperimentConfig};

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let cfg = if quick {
        ExperimentConfig::quick()
    } else {
        ExperimentConfig::paper_default()
    };
    let series = fig8_series(&cfg);
    println!(
        "{}",
        render_table(
            "Fig. 8 — FACS-P acceptance for different user speeds",
            &series
        )
    );
    println!("{}", series_to_json("fig8", &series));
}
