//! Regenerate Fig. 8 of the paper.
//!
//! ```text
//! cargo run --release -p facs-bench --bin fig8 [-- --quick] [--seed N] [--json PATH]
//! ```

use bench::{fig8_series, render_table, series_to_json, FigureArgs};

fn main() {
    let args = FigureArgs::parse_env();
    let series = fig8_series(&args.experiment_config());
    println!(
        "{}",
        render_table(
            "Fig. 8 — FACS-P acceptance for different user speeds",
            &series
        )
    );
    if let Err(e) = args.emit_json(&series_to_json("fig8", &series)) {
        eprintln!("{e}");
        std::process::exit(1);
    }
}
