//! The dense-state engine's steady-state guarantee: once a [`Simulator`]
//! has warmed up (arrival buffer, event heap, station storage, user slab
//! and scratch vectors all sized by a first run), further runs perform no
//! heap allocation beyond the single `String` that labels the returned
//! report — and the event loop itself performs none at all.
//!
//! Asserted with a counting global allocator, mirroring
//! `fuzzy/tests/zero_alloc.rs`.  This file holds exactly one test: the
//! allocation counter is global, so a concurrently running sibling test
//! would pollute the count.

use cellsim::sim::{AlwaysAccept, SimConfig, Simulator};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

/// A `System` wrapper that counts every allocation and reallocation.
struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

// SAFETY: delegates verbatim to `System`; the counter has no safety impact.
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static COUNTING: CountingAllocator = CountingAllocator;

#[test]
fn warmed_up_runs_allocate_only_the_report_label() {
    // A multi-cell Poisson workload exercises every storage layer: the
    // arrival buffer, the run-time event heap, departures, handoffs, the
    // user slab and the expiry scratch.  Utilisation sampling stays off —
    // its sample series is owned by the report, so a sampled run hands its
    // buffer away by design.
    let mut cfg = SimConfig::paper_default()
        .with_seed(0xA110C)
        .with_grid_radius(1)
        .with_cell_radius(300.0);
    cfg.traffic.mean_interarrival_s = 2.0;
    cfg.traffic.mean_holding_s = 240.0;
    cfg.traffic.min_speed_kmh = 40.0;

    let mut sim = Simulator::new(cfg.clone());
    let mut controller = AlwaysAccept;

    // Warm-up: the first run grows every buffer to the working-set size.
    let warm = sim.run_poisson(&mut controller, 1_000);
    assert!(warm.accepted > 0);

    // Steady state: identical workload (same seed via reset), so every
    // buffer is already large enough.  The only permitted allocation is
    // the report's `controller: String` label, built once per run.
    sim.reset(cfg.clone());
    let before = ALLOCATIONS.load(Ordering::SeqCst);
    let report = sim.run_poisson(&mut controller, 1_000);
    let after = ALLOCATIONS.load(Ordering::SeqCst);
    assert_eq!(report, warm, "reset must replay the warm-up run exactly");
    assert!(
        after - before <= 1,
        "steady-state run_poisson allocated {} times (expected ≤ 1: the report label)",
        after - before
    );

    // The batch driver has the same property.
    let batch_cfg = SimConfig::paper_default().with_seed(0xBA7C);
    sim.reset(batch_cfg.clone());
    let warm_batch = sim.run_batch(&mut controller, 500);
    sim.reset(batch_cfg);
    let before = ALLOCATIONS.load(Ordering::SeqCst);
    let batch = sim.run_batch(&mut controller, 500);
    let after = ALLOCATIONS.load(Ordering::SeqCst);
    assert_eq!(batch, warm_batch);
    assert!(
        after - before <= 1,
        "steady-state run_batch allocated {} times (expected ≤ 1: the report label)",
        after - before
    );
}
