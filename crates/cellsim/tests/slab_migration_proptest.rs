//! Generational-handle safety under cross-shard migration, and the
//! ordering law of the epoch handoff-queue merge.
//!
//! The sharded engine moves per-connection state between per-shard
//! [`Slab`]s on every cross-shard handoff: the source shard `remove`s the
//! user, the merge phase `insert`s it into the target shard.  Two safety
//! properties make that sound:
//!
//! * **stale handles miss** — once a connection migrates away, any event
//!   still carrying its old [`SlotId`] (a departure scheduled before the
//!   handoff, say) must resolve to `None`, even after the slot has been
//!   recycled for a different connection;
//! * **no slot aliasing** — a live handle never reads another
//!   connection's state, no matter how the free list interleaves.
//!
//! The merge phase replays deferred handoff admissions in
//! `(time, connection_id, rank)` order; [`MergeKey`]'s `Ord` is that
//! contract, so its lawfulness (total order, agreement with the field
//! tuple, heap-pop order) is pinned here too.

use cellsim::shard::{RANK_ADMIT, RANK_HANDOFF, RANK_RELEASE};
use cellsim::slab::{Slab, SlotId};
use cellsim::MergeKey;
use proptest::prelude::*;
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::collections::HashMap;

/// A migration script step over a bank of slabs.
#[derive(Debug, Clone)]
enum Step {
    /// Insert a fresh connection (payload = its unique id) into slab `s`.
    Insert { s: usize },
    /// Migrate the `k`-th live connection to slab `to` (remove + insert).
    Migrate { k: usize, to: usize },
    /// Remove the `k`-th live connection entirely.
    Remove { k: usize },
}

fn step_strategy(slabs: usize) -> impl Strategy<Value = Step> {
    prop_oneof![
        3 => (0..slabs).prop_map(|s| Step::Insert { s }),
        2 => (any::<usize>(), 0..slabs).prop_map(|(k, to)| Step::Migrate { k, to }),
        2 => any::<usize>().prop_map(|k| Step::Remove { k }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Drive a random insert/migrate/remove script across a bank of
    /// slabs (one per "shard") while tracking, for every connection ever
    /// created, the full history of handles it was reachable through.
    /// At every step: the current handle of each live connection reads
    /// exactly its own payload, and every superseded handle misses.
    #[test]
    fn migration_never_aliases_and_stale_handles_miss(
        slab_count in 2usize..5,
        steps in prop::collection::vec(step_strategy(4), 1..120),
    ) {
        let mut slabs: Vec<Slab<u64>> = (0..slab_count).map(|_| Slab::new()).collect();
        // id -> (slab, handle) for live connections, in creation order.
        let mut live: Vec<(u64, usize, SlotId)> = Vec::new();
        // Every (slab, handle) pair that was ever valid but no longer is.
        let mut stale: Vec<(u64, usize, SlotId)> = Vec::new();
        let mut next_id = 0u64;

        for step in steps {
            match step {
                Step::Insert { s } => {
                    let s = s % slab_count;
                    let id = next_id;
                    next_id += 1;
                    let handle = slabs[s].insert(id);
                    live.push((id, s, handle));
                }
                Step::Migrate { k, to } => {
                    if live.is_empty() {
                        continue;
                    }
                    let k = k % live.len();
                    let to = to % slab_count;
                    let (id, from, handle) = live[k];
                    let moved = slabs[from].remove(handle)
                        .expect("live handle must resolve");
                    prop_assert_eq!(moved, id, "migration read the wrong connection");
                    stale.push((id, from, handle));
                    let new_handle = slabs[to].insert(moved);
                    live[k] = (id, to, new_handle);
                }
                Step::Remove { k } => {
                    if live.is_empty() {
                        continue;
                    }
                    let k = k % live.len();
                    let (id, s, handle) = live.swap_remove(k);
                    let removed = slabs[s].remove(handle)
                        .expect("live handle must resolve");
                    prop_assert_eq!(removed, id, "removal read the wrong connection");
                    stale.push((id, s, handle));
                }
            }

            // No aliasing: every live handle reads its own payload.
            for &(id, s, handle) in &live {
                prop_assert_eq!(
                    slabs[s].get(handle).copied(),
                    Some(id),
                    "live handle must read its own connection"
                );
            }
            // Stale handles miss — even when the slot index was recycled
            // for a newer connection (the generation must differ).
            for &(_, s, handle) in &stale {
                prop_assert!(
                    slabs[s].get(handle).is_none(),
                    "stale handle must miss after migration/removal"
                );
            }
        }

        // Population book-keeping survived the whole script.
        let total: usize = slabs.iter().map(Slab::len).sum();
        prop_assert_eq!(total, live.len());
        // Distinct live connections occupy distinct slots per slab.
        for (s, slab) in slabs.iter().enumerate() {
            let mut seen = HashMap::new();
            for &(id, ls, handle) in &live {
                if ls == s {
                    prop_assert!(
                        seen.insert(handle.index(), id).is_none(),
                        "two live connections share a slot in one slab"
                    );
                }
            }
            prop_assert_eq!(seen.len(), slab.len());
        }
    }

    /// `MergeKey` is the merge phase's replay order: a strict
    /// lexicographic (time, connection_id, rank) comparison.  Pinned as a
    /// law over arbitrary keys, including exact time ties.
    #[test]
    fn merge_key_order_is_lexicographic_and_total(
        mut keys in prop::collection::vec(
            (
                prop_oneof![Just(0.0f64), Just(5.0), Just(17.25), 0.0f64..100.0],
                0u64..40,
                prop_oneof![Just(RANK_RELEASE), Just(RANK_ADMIT), Just(RANK_HANDOFF)],
            )
                .prop_map(|(t, id, rank)| MergeKey::new(t, id, rank)),
            2..60,
        ),
    ) {
        // Agreement with the reference tuple order (total_cmp on time).
        for a in &keys {
            for b in &keys {
                let reference = a
                    .time
                    .total_cmp(&b.time)
                    .then(a.connection_id.cmp(&b.connection_id))
                    .then(a.rank.cmp(&b.rank));
                prop_assert_eq!(a.cmp(b), reference);
                // Antisymmetry.
                prop_assert_eq!(a.cmp(b), b.cmp(a).reverse());
            }
        }

        // Heap-pop order (how the merge queue consumes keys) equals the
        // sorted order — the property the barrier merge relies on.
        let mut heap: BinaryHeap<Reverse<MergeKey>> =
            keys.iter().copied().map(Reverse).collect();
        let mut popped = Vec::with_capacity(keys.len());
        while let Some(Reverse(k)) = heap.pop() {
            popped.push(k);
        }
        keys.sort();
        prop_assert_eq!(popped, keys);
    }
}
