//! Property-based tests for the metric merge algebra.
//!
//! The sweep and shard engines both rely on partial aggregates combining
//! into the same result as one sequential pass: [`Metrics::merge`] folds
//! per-shard counters, and [`StatAccumulator::merge`] (Chan et al.'s
//! parallel Welford update) folds per-worker replication statistics.
//! These tests pin the algebraic laws that make that sound: identity,
//! associativity (exact), and commutativity of every order-insensitive
//! component (counters exactly, float moments up to tolerance).

use cellsim::metrics::{Metrics, StatAccumulator};
use cellsim::traffic::ServiceClass;
use proptest::prelude::*;

/// One recorded simulation outcome, drawn from the op strategy below.
#[derive(Debug, Clone, Copy)]
enum Op {
    Offered {
        class: usize,
        handoff: bool,
    },
    Accepted {
        class: usize,
        bw: u32,
        handoff: bool,
    },
    Blocked {
        class: usize,
        handoff: bool,
    },
    Completed {
        class: usize,
    },
    Dropped {
        class: usize,
    },
    Utilization {
        occupied: u32,
        capacity: u32,
    },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0usize..3, any::<bool>()).prop_map(|(class, handoff)| Op::Offered { class, handoff }),
        (0usize..3, 1u32..12, any::<bool>()).prop_map(|(class, bw, handoff)| Op::Accepted {
            class,
            bw,
            handoff
        }),
        (0usize..3, any::<bool>()).prop_map(|(class, handoff)| Op::Blocked { class, handoff }),
        (0usize..3).prop_map(|class| Op::Completed { class }),
        (0usize..3).prop_map(|class| Op::Dropped { class }),
        (0u32..40, 1u32..40)
            .prop_map(|(occupied, capacity)| Op::Utilization { occupied, capacity }),
    ]
}

fn build(ops: &[Op]) -> Metrics {
    let mut m = Metrics::new();
    for (i, op) in ops.iter().enumerate() {
        match *op {
            Op::Offered { class, handoff } => m.record_offered(ServiceClass::ALL[class], handoff),
            Op::Accepted { class, bw, handoff } => {
                m.record_accepted(ServiceClass::ALL[class], bw, handoff);
            }
            Op::Blocked { class, handoff } => m.record_blocked(ServiceClass::ALL[class], handoff),
            Op::Completed { class } => m.record_completed(ServiceClass::ALL[class]),
            Op::Dropped { class } => m.record_dropped(ServiceClass::ALL[class]),
            Op::Utilization { occupied, capacity } => {
                m.record_utilization(i as f64, occupied.min(capacity), capacity);
            }
        }
    }
    m
}

fn merged(a: &Metrics, b: &Metrics) -> Metrics {
    let mut out = a.clone();
    out.merge(b);
    out
}

/// The order-insensitive face of a [`Metrics`]: every counter, plus the
/// utilisation mean/sample-count (the per-sample time series is ordered
/// by construction, so commutativity is only expected of the aggregate).
fn counter_fingerprint(m: &Metrics) -> (Vec<u64>, (u64, u64, u64), usize) {
    let per_class = ServiceClass::ALL
        .iter()
        .flat_map(|&c| {
            let cm = m.class(c);
            [
                cm.offered,
                cm.accepted,
                cm.blocked,
                cm.dropped,
                cm.completed,
                cm.bandwidth_admitted,
            ]
        })
        .collect();
    (per_class, m.handoffs(), m.utilization_samples().len())
}

fn accumulate(values: &[f64]) -> StatAccumulator {
    let mut acc = StatAccumulator::new();
    for &v in values {
        acc.push(v);
    }
    acc
}

fn close(a: f64, b: f64) -> bool {
    (a - b).abs() <= 1e-9 * a.abs().max(b.abs()).max(1.0)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn metrics_merge_identity(ops in prop::collection::vec(op_strategy(), 0..60)) {
        let m = build(&ops);
        prop_assert_eq!(merged(&m, &Metrics::new()), m.clone());
        prop_assert_eq!(merged(&Metrics::new(), &m), m);
    }

    #[test]
    fn metrics_merge_is_associative(
        a in prop::collection::vec(op_strategy(), 0..40),
        b in prop::collection::vec(op_strategy(), 0..40),
        c in prop::collection::vec(op_strategy(), 0..40),
    ) {
        let (a, b, c) = (build(&a), build(&b), build(&c));
        prop_assert_eq!(merged(&merged(&a, &b), &c), merged(&a, &merged(&b, &c)));
    }

    #[test]
    fn metrics_merge_counters_are_commutative(
        a in prop::collection::vec(op_strategy(), 0..40),
        b in prop::collection::vec(op_strategy(), 0..40),
    ) {
        let (a, b) = (build(&a), build(&b));
        let ab = merged(&a, &b);
        let ba = merged(&b, &a);
        prop_assert_eq!(counter_fingerprint(&ab), counter_fingerprint(&ba));
        // The utilisation time series concatenates in merge order, so only
        // its aggregate is order-free (same samples, reduced in a
        // different order ⇒ float tolerance).
        prop_assert!(close(ab.mean_utilization(), ba.mean_utilization()));
    }

    #[test]
    fn metrics_merge_equals_sequential_recording(
        a in prop::collection::vec(op_strategy(), 0..40),
        b in prop::collection::vec(op_strategy(), 0..40),
    ) {
        // Two partial aggregates merge to the same counters as one pass
        // over the concatenated op stream.
        let mut all = a.clone();
        all.extend_from_slice(&b);
        let whole = build(&all);
        let parts = merged(&build(&a), &build(&b));
        prop_assert_eq!(counter_fingerprint(&parts).0, counter_fingerprint(&whole).0);
        prop_assert_eq!(parts.handoffs(), whole.handoffs());
        prop_assert_eq!(
            parts.utilization_samples().len(),
            whole.utilization_samples().len()
        );
    }

    #[test]
    fn stat_accumulator_merge_identity(
        values in prop::collection::vec(-1e3f64..1e3, 0..50),
    ) {
        let acc = accumulate(&values);
        let mut left = acc;
        left.merge(&StatAccumulator::new());
        prop_assert_eq!(left, acc);
        let mut right = StatAccumulator::new();
        right.merge(&acc);
        prop_assert_eq!(right, acc);
    }

    #[test]
    fn stat_accumulator_merge_is_commutative_up_to_tolerance(
        a in prop::collection::vec(-1e3f64..1e3, 0..50),
        b in prop::collection::vec(-1e3f64..1e3, 0..50),
    ) {
        let (a, b) = (accumulate(&a), accumulate(&b));
        let mut ab = a;
        ab.merge(&b);
        let mut ba = b;
        ba.merge(&a);
        prop_assert_eq!(ab.count(), ba.count());
        prop_assert!(close(ab.mean(), ba.mean()), "mean {} vs {}", ab.mean(), ba.mean());
        prop_assert!(
            close(ab.std_dev(), ba.std_dev()),
            "std_dev {} vs {}",
            ab.std_dev(),
            ba.std_dev()
        );
    }

    #[test]
    fn stat_accumulator_merge_is_associative_up_to_tolerance(
        a in prop::collection::vec(-1e3f64..1e3, 0..30),
        b in prop::collection::vec(-1e3f64..1e3, 0..30),
        c in prop::collection::vec(-1e3f64..1e3, 0..30),
    ) {
        let (a, b, c) = (accumulate(&a), accumulate(&b), accumulate(&c));
        let mut left = a;
        left.merge(&b);
        left.merge(&c);
        let mut bc = b;
        bc.merge(&c);
        let mut right = a;
        right.merge(&bc);
        prop_assert_eq!(left.count(), right.count());
        prop_assert!(close(left.mean(), right.mean()));
        prop_assert!(close(left.std_dev(), right.std_dev()));
    }

    #[test]
    fn stat_accumulator_merge_matches_sequential_push(
        a in prop::collection::vec(-1e3f64..1e3, 0..50),
        b in prop::collection::vec(-1e3f64..1e3, 0..50),
    ) {
        let mut all = a.clone();
        all.extend_from_slice(&b);
        let whole = accumulate(&all);
        let mut parts = accumulate(&a);
        parts.merge(&accumulate(&b));
        prop_assert_eq!(parts.count(), whole.count());
        prop_assert!(close(parts.mean(), whole.mean()));
        prop_assert!(close(parts.std_dev(), whole.std_dev()));
    }
}
