//! Property-based tests for the cellular simulator substrate.

use cellsim::geometry::{normalize_angle, CellGrid, CellId, Point};
use cellsim::mobility::UserState;
use cellsim::sim::{AlwaysAccept, CapacityThreshold, SimConfig, Simulator};
use cellsim::station::BaseStation;
use cellsim::traffic::{
    DurationPolicy, GroupConfig, MmppConfig, ServiceClass, TraceConfig, TraceEntry, TrafficConfig,
    TrafficGenerator, TrafficModel,
};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn normalize_angle_is_idempotent_and_in_range(deg in -100_000.0f64..100_000.0) {
        let n = normalize_angle(deg);
        prop_assert!(n > -180.0 - 1e-9 && n <= 180.0 + 1e-9);
        prop_assert!((normalize_angle(n) - n).abs() < 1e-9);
    }

    #[test]
    fn hex_distance_is_a_metric(
        q1 in -8i32..8, r1 in -8i32..8,
        q2 in -8i32..8, r2 in -8i32..8,
        q3 in -8i32..8, r3 in -8i32..8,
    ) {
        let a = CellId::new(q1, r1);
        let b = CellId::new(q2, r2);
        let c = CellId::new(q3, r3);
        // identity, symmetry, triangle inequality
        prop_assert_eq!(a.distance(&a), 0);
        prop_assert_eq!(a.distance(&b), b.distance(&a));
        prop_assert!(a.distance(&c) <= a.distance(&b) + b.distance(&c));
        if a != b {
            prop_assert!(a.distance(&b) > 0);
        }
    }

    #[test]
    fn cell_at_inverts_center_of(radius in 0u32..4, idx in 0usize..37) {
        let grid = CellGrid::new(radius, 400.0);
        let cells = grid.cells();
        let cell = cells[idx % cells.len()];
        prop_assert_eq!(grid.cell_at(&grid.center_of(&cell)), cell);
    }

    #[test]
    fn angle_to_station_is_antisymmetric_under_heading_flip(
        x in -500.0f64..500.0, y in -500.0f64..500.0, heading in -180.0f64..180.0,
    ) {
        // Skip the degenerate "standing on the station" case.
        prop_assume!(x.abs() > 1.0 || y.abs() > 1.0);
        let station = Point::new(0.0, 0.0);
        let u1 = UserState::new(Point::new(x, y), 50.0, heading);
        let u2 = UserState::new(Point::new(x, y), 50.0, heading + 180.0);
        let a1 = u1.angle_to_station(&station).abs();
        let a2 = u2.angle_to_station(&station).abs();
        // Opposite headings give supplementary |angles|.
        prop_assert!((a1 + a2 - 180.0).abs() < 1e-6, "a1={a1} a2={a2}");
    }

    #[test]
    fn advance_moves_proportionally_to_speed(speed in 1.0f64..120.0, dt in 0.1f64..100.0) {
        let u = UserState::new(Point::new(0.0, 0.0), speed, 37.0);
        let moved = u.advanced(dt);
        let dist = moved.position.distance(&u.position);
        prop_assert!((dist - speed / 3.6 * dt).abs() < 1e-6);
    }

    #[test]
    fn station_occupancy_never_exceeds_capacity(
        capacity in 1u32..200,
        requests in proptest::collection::vec((0u64..10_000, 0usize..3, 1u32..15), 1..100),
    ) {
        let mut station = BaseStation::new(CellId::origin(), Point::default(), capacity);
        for (id, class_idx, bw) in requests {
            let class = ServiceClass::ALL[class_idx];
            let _ = station.admit(id, class, bw, 0.0, 100.0, false);
            prop_assert!(station.occupied() <= station.capacity());
            prop_assert_eq!(station.occupied(), station.rtc() + station.nrtc());
        }
    }

    #[test]
    fn station_counters_balance_after_any_admit_release_sequence(
        capacity in 1u32..100,
        ops in proptest::collection::vec((0u64..40, 0usize..3, 1u32..12, 0usize..4), 1..120),
    ) {
        // Drive a station through an arbitrary interleaving of admissions
        // and the three release paths; after every single operation the
        // RTC + NRTC split must equal the bandwidth of the live
        // connections, equal the occupied counter, and fit the capacity.
        let mut station = BaseStation::new(CellId::origin(), Point::default(), capacity);
        let mut clock = 0.0;
        for (id, class_idx, bw, op) in ops {
            clock += 1.0;
            match op {
                0 => {
                    let class = ServiceClass::ALL[class_idx];
                    let _ = station.admit(id, class, bw, clock, 5.0 + bw as f64, false);
                }
                1 => {
                    let _ = station.release(id);
                }
                2 => {
                    let _ = station.drop_connection(id);
                }
                _ => {
                    let _ = station.release_expired(clock);
                }
            }
            let live_bandwidth: u32 = station.connections().map(|c| c.bandwidth).sum();
            prop_assert_eq!(station.rtc() + station.nrtc(), live_bandwidth);
            prop_assert_eq!(station.occupied(), live_bandwidth);
            prop_assert!(station.occupied() <= station.capacity());
        }
    }

    #[test]
    fn station_release_restores_all_bandwidth(
        ids in proptest::collection::hash_set(0u64..1000, 1..30),
    ) {
        let mut station = BaseStation::new(CellId::origin(), Point::default(), 10_000);
        let ids: Vec<u64> = ids.into_iter().collect();
        for &id in &ids {
            station.admit(id, ServiceClass::Voice, 5, 0.0, 10.0, false).unwrap();
        }
        for &id in &ids {
            station.release(id).unwrap();
        }
        prop_assert_eq!(station.occupied(), 0);
        prop_assert_eq!(station.rtc(), 0);
        prop_assert_eq!(station.nrtc(), 0);
        prop_assert_eq!(station.total_released(), ids.len() as u64);
    }

    #[test]
    fn traffic_generator_respects_configured_ranges(
        seed in 0u64..1000,
        lo in 0.0f64..60.0,
        hi_extra in 0.0f64..60.0,
    ) {
        let hi = lo + hi_extra;
        let cfg = TrafficConfig {
            min_speed_kmh: lo,
            max_speed_kmh: hi,
            ..TrafficConfig::paper_default()
        };
        let mut gen = TrafficGenerator::new(cfg, seed);
        for r in gen.generate_batch(200) {
            prop_assert!(r.speed_kmh >= lo - 1e-9 && r.speed_kmh <= hi + 1e-9);
            prop_assert!(r.angle_deg >= -180.0 && r.angle_deg <= 180.0);
            prop_assert!(r.bandwidth == 1 || r.bandwidth == 5 || r.bandwidth == 10);
        }
    }

    #[test]
    fn acceptance_never_exceeds_offered(n in 0usize..150, seed in 0u64..100) {
        let mut sim = Simulator::new(SimConfig::paper_default().with_seed(seed));
        let mut controller = AlwaysAccept;
        let report = sim.run_batch(&mut controller, n);
        prop_assert_eq!(report.offered, n as u64);
        prop_assert!(report.accepted <= report.offered);
        prop_assert!(report.acceptance_percentage >= 0.0 && report.acceptance_percentage <= 100.0);
        let station = sim.station(&CellId::origin()).unwrap();
        prop_assert!(station.occupied() <= station.capacity());
    }

    #[test]
    fn stricter_threshold_never_accepts_more(n in 10usize..120, seed in 0u64..50) {
        let run = |threshold: f64| {
            let mut sim = Simulator::new(SimConfig::paper_default().with_seed(seed));
            let mut c = CapacityThreshold::new(threshold, 1.0);
            sim.run_batch(&mut c, n).accepted
        };
        let strict = run(0.4);
        let loose = run(0.9);
        prop_assert!(strict <= loose, "strict {strict} > loose {loose}");
    }

    #[test]
    fn identical_seeds_identical_reports(n in 1usize..100, seed in 0u64..200) {
        let run = || {
            let mut sim = Simulator::new(SimConfig::paper_default().with_seed(seed));
            let mut controller = AlwaysAccept;
            let r = sim.run_batch(&mut controller, n);
            (r.accepted, r.metrics.bandwidth_admitted())
        };
        prop_assert_eq!(run(), run());
    }

    /// Every bursty model is a pure function of its seed: two generators
    /// built from the same `(model, seed)` pair must emit bit-identical
    /// request streams (arrival-time bits, class, holding-time bits).
    #[test]
    fn bursty_models_are_bit_identical_for_identical_seeds(
        seed in 0u64..500,
        model_idx in 0usize..3,
        n in 1usize..200,
    ) {
        let model = match model_idx {
            0 => TrafficModel::Mmpp(MmppConfig::flash_crowd()),
            1 => TrafficModel::Trace(
                TraceConfig::new(vec![
                    TraceEntry { inter_arrival_s: 0.5, duration_s: 60.0, class: ServiceClass::Voice },
                    TraceEntry { inter_arrival_s: 4.0, duration_s: 10.0, class: ServiceClass::Text },
                ])
                .with_duration(DurationPolicy::Randomized),
            ),
            _ => TrafficModel::Groups(GroupConfig::new(2, 9)),
        };
        let stream = |m: &TrafficModel| -> Vec<(u64, ServiceClass, u64)> {
            let mut generator =
                TrafficGenerator::with_model(TrafficConfig::paper_default(), m, seed);
            (0..n)
                .map(|_| {
                    let call = generator.next_request();
                    (call.arrival_time.to_bits(), call.class, call.holding_time.to_bits())
                })
                .collect()
        };
        prop_assert_eq!(stream(&model), stream(&model));
    }

    /// MMPP arrival times are non-decreasing and finite for any positive
    /// state parameters — the state-cycling clock can never run backwards
    /// or produce NaN, whatever the sojourn/rate mix.
    #[test]
    fn mmpp_clock_is_monotone_for_any_positive_parameters(
        seed in 0u64..200,
        quiet_mult in 0.01f64..1.0,
        burst_mult in 1.0f64..20.0,
        sojourn in 1.0f64..500.0,
        n in 1usize..150,
    ) {
        let model = TrafficModel::Mmpp(
            MmppConfig::new().state(quiet_mult, sojourn).state(burst_mult, sojourn),
        );
        let mut generator =
            TrafficGenerator::with_model(TrafficConfig::paper_default(), &model, seed);
        let mut last = 0.0f64;
        for _ in 0..n {
            let t = generator.next_request().arrival_time;
            prop_assert!(t.is_finite() && t >= last, "clock went from {last} to {t}");
            last = t;
        }
    }
}
