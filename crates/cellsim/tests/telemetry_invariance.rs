//! Telemetry must be observation-only: reports are **byte-identical**
//! with the recorder on and off, in either cargo feature mode.
//!
//! Both recorder types are always available (the `telemetry` feature only
//! selects which one `Simulator::new` defaults to), so this test pins the
//! contract from a single binary by instantiating the engines with each
//! recorder explicitly and comparing their serialised reports.

use cellsim::shard::{BoxedController, ShardConfig, ShardedSimulator};
use cellsim::sim::{AlwaysAccept, SimConfig, Simulator};
use cellsim::telemetry::{NoopRecorder, Registry};
use cellsim::traffic::TrafficConfig;

fn config(seed: u64) -> SimConfig {
    SimConfig::paper_default()
        .with_seed(seed)
        .with_grid_radius(2)
        .with_cell_radius(300.0)
        .with_traffic(TrafficConfig {
            mean_interarrival_s: 1.0,
            mean_holding_s: 300.0,
            min_speed_kmh: 60.0,
            max_speed_kmh: 120.0,
            ..TrafficConfig::paper_default()
        })
        .with_utilization_sampling(60.0)
}

fn json<T: serde::Serialize>(value: &T) -> String {
    serde_json::to_string_pretty(value).expect("report serialises")
}

#[test]
fn sequential_reports_are_byte_identical_with_telemetry_on_and_off() {
    let cfg = config(0x7E1E);

    let mut noop = Simulator::<NoopRecorder>::with_telemetry(cfg.clone());
    let mut instrumented = Simulator::<Registry>::with_telemetry(cfg.clone());
    let mut default = Simulator::new(cfg);

    let report_noop = noop.run_poisson(&mut AlwaysAccept, 2000);
    let report_instr = instrumented.run_poisson(&mut AlwaysAccept, 2000);
    let report_default = default.run_poisson(&mut AlwaysAccept, 2000);

    assert_eq!(json(&report_noop), json(&report_instr));
    assert_eq!(json(&report_noop), json(&report_default));

    assert!(
        noop.telemetry().is_empty(),
        "no-op recorder records nothing"
    );
    let snapshot = instrumented.telemetry();
    assert!(
        !snapshot.is_empty(),
        "instrumented run must produce telemetry"
    );
    assert!(
        snapshot
            .counters
            .iter()
            .any(|c| c.name == "sim_events_total" && c.value > 0),
        "event counters must be populated"
    );
}

#[test]
fn sharded_reports_are_byte_identical_with_telemetry_on_and_off() {
    let cfg = config(0xBEEF);
    let sharding = ShardConfig::new(4).with_threads(2);
    let mut factory: Box<dyn FnMut() -> BoxedController> = Box::new(|| Box::new(AlwaysAccept));

    let mut noop = ShardedSimulator::<NoopRecorder>::with_telemetry(cfg.clone(), sharding);
    let mut instrumented = ShardedSimulator::<Registry>::with_telemetry(cfg.clone(), sharding);
    let mut default = ShardedSimulator::new(cfg, sharding);

    let report_noop = noop.run_poisson(&mut factory, 2000);
    let report_instr = instrumented.run_poisson(&mut factory, 2000);
    let report_default = default.run_poisson(&mut factory, 2000);

    assert_eq!(json(&report_noop), json(&report_instr));
    assert_eq!(json(&report_noop), json(&report_default));

    assert!(
        noop.telemetry().is_empty(),
        "no-op recorder records nothing"
    );
    let snapshot = instrumented.telemetry();
    assert!(
        snapshot
            .histograms
            .iter()
            .any(|h| h.name == "shard_epoch_ns" && h.count > 0),
        "per-epoch shard timing must be populated"
    );
    assert!(
        snapshot
            .counters
            .iter()
            .any(|c| c.name == "shard_merge_tasks_total" && c.value > 0),
        "barrier merges must be counted"
    );
}

/// Telemetry accumulates across runs; `reset_telemetry` starts a fresh
/// window without perturbing the next run's report.
#[test]
fn reset_telemetry_clears_the_window_and_keeps_reports_identical() {
    let cfg = config(0x5EED);
    let mut sim = Simulator::<Registry>::with_telemetry(cfg.clone());
    let first = sim.run_poisson(&mut AlwaysAccept, 500);
    assert!(sim.telemetry().counters.iter().any(|c| c.value > 0));
    sim.reset(cfg);
    sim.reset_telemetry();
    // The registry still exposes every schema-defined series (zero-valued
    // series are part of the exposition), but all values are cleared.
    let cleared = sim.telemetry();
    assert!(cleared.counters.iter().all(|c| c.value == 0));
    assert!(cleared.histograms.iter().all(|h| h.count == 0));
    assert!(cleared.gauges.iter().all(|g| g.value == 0));
    assert!(cleared.spans.iter().all(|s| s.count == 0));
    assert!(cleared.traces.is_empty());
    let second = sim.run_poisson(&mut AlwaysAccept, 500);
    assert_eq!(json(&first), json(&second));
    assert!(sim.telemetry().counters.iter().any(|c| c.value > 0));
}

/// The whole-stack exposition (sim + shard series) must parse as valid
/// Prometheus text.
#[test]
fn exposition_of_a_real_run_lints_clean() {
    let cfg = config(0xFACE);
    let mut factory: Box<dyn FnMut() -> BoxedController> = Box::new(|| Box::new(AlwaysAccept));
    let mut sim = ShardedSimulator::<Registry>::with_telemetry(cfg, ShardConfig::new(3));
    sim.run_poisson(&mut factory, 1000);
    let text = sim.telemetry().to_prometheus();
    cellsim::telemetry::lint_prometheus(&text).expect("exposition must lint clean");
}
