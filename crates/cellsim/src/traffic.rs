//! Multimedia traffic: service classes, traffic mixes and call generation.
//!
//! The paper's workload (Section 4): text, voice and video connections make
//! up 70 %, 20 % and 10 % of requests and require 1, 5 and 10 bandwidth
//! units respectively.  Voice and video are *real-time* services (they feed
//! the RTC counter of FACS-P); text is *non-real-time* (NRTC).

use crate::geometry::normalize_angle;
use crate::rng::SimRng;
use crate::{Bandwidth, SimTime};
use serde::{Deserialize, Serialize};

/// The three multimedia service classes of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum ServiceClass {
    /// Non-real-time data (1 BU).
    Text,
    /// Real-time voice (5 BU).
    Voice,
    /// Real-time video (10 BU).
    Video,
}

impl ServiceClass {
    /// All classes, in paper order.
    pub const ALL: [ServiceClass; 3] =
        [ServiceClass::Text, ServiceClass::Voice, ServiceClass::Video];

    /// The bandwidth the paper assigns to this class (1 / 5 / 10 BU).
    #[must_use]
    pub fn paper_bandwidth(&self) -> Bandwidth {
        match self {
            ServiceClass::Text => 1,
            ServiceClass::Voice => 5,
            ServiceClass::Video => 10,
        }
    }

    /// `true` for classes with real-time QoS constraints (voice, video).
    ///
    /// This is the "Differentiated service (Ds)" classification of FACS-P:
    /// real-time connections are counted in the RTC, the rest in the NRTC.
    #[must_use]
    pub fn is_real_time(&self) -> bool {
        matches!(self, ServiceClass::Voice | ServiceClass::Video)
    }

    /// Short lowercase label.
    #[must_use]
    pub fn label(&self) -> &'static str {
        match self {
            ServiceClass::Text => "text",
            ServiceClass::Voice => "voice",
            ServiceClass::Video => "video",
        }
    }

    /// Index into [`ServiceClass::ALL`].
    #[must_use]
    pub fn index(&self) -> usize {
        match self {
            ServiceClass::Text => 0,
            ServiceClass::Voice => 1,
            ServiceClass::Video => 2,
        }
    }
}

impl std::fmt::Display for ServiceClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// The proportions of the three service classes in the offered traffic and
/// the per-class bandwidth demands.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrafficMix {
    /// Fraction of requests that are text (non-real-time).
    pub text_fraction: f64,
    /// Fraction of requests that are voice.
    pub voice_fraction: f64,
    /// Fraction of requests that are video.
    pub video_fraction: f64,
    /// Bandwidth of one text connection (BU).
    pub text_bandwidth: Bandwidth,
    /// Bandwidth of one voice connection (BU).
    pub voice_bandwidth: Bandwidth,
    /// Bandwidth of one video connection (BU).
    pub video_bandwidth: Bandwidth,
}

impl TrafficMix {
    /// The paper's mix: 70 % text (1 BU), 20 % voice (5 BU), 10 % video
    /// (10 BU).
    #[must_use]
    pub fn paper_default() -> Self {
        Self {
            text_fraction: 0.7,
            voice_fraction: 0.2,
            video_fraction: 0.1,
            text_bandwidth: 1,
            voice_bandwidth: 5,
            video_bandwidth: 10,
        }
    }

    /// A custom mix; the fractions are normalised so they need not sum to 1.
    #[must_use]
    pub fn new(text: f64, voice: f64, video: f64) -> Self {
        Self {
            text_fraction: text.max(0.0),
            voice_fraction: voice.max(0.0),
            video_fraction: video.max(0.0),
            ..Self::paper_default()
        }
    }

    /// The bandwidth this mix assigns to `class`.
    #[must_use]
    pub fn bandwidth_of(&self, class: ServiceClass) -> Bandwidth {
        match class {
            ServiceClass::Text => self.text_bandwidth,
            ServiceClass::Voice => self.voice_bandwidth,
            ServiceClass::Video => self.video_bandwidth,
        }
    }

    /// The (normalised) probability of `class` in this mix.
    #[must_use]
    pub fn fraction_of(&self, class: ServiceClass) -> f64 {
        let total = self.text_fraction + self.voice_fraction + self.video_fraction;
        if total <= 0.0 {
            return 0.0;
        }
        let raw = match class {
            ServiceClass::Text => self.text_fraction,
            ServiceClass::Voice => self.voice_fraction,
            ServiceClass::Video => self.video_fraction,
        };
        raw / total
    }

    /// Mean bandwidth of a request drawn from this mix (BU).
    #[must_use]
    pub fn mean_bandwidth(&self) -> f64 {
        ServiceClass::ALL
            .iter()
            .map(|&c| self.fraction_of(c) * f64::from(self.bandwidth_of(c)))
            .sum()
    }

    /// Draw a service class according to the mix.
    pub fn sample_class(&self, rng: &mut SimRng) -> ServiceClass {
        let idx =
            rng.weighted_choice(&[self.text_fraction, self.voice_fraction, self.video_fraction]);
        ServiceClass::ALL[idx]
    }
}

impl Default for TrafficMix {
    fn default() -> Self {
        Self::paper_default()
    }
}

/// One call / connection request as offered to the admission controller.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CallRequest {
    /// Monotonically increasing identifier.
    pub id: u64,
    /// Time at which the request is made (seconds).
    pub arrival_time: SimTime,
    /// Service class of the request.
    pub class: ServiceClass,
    /// Requested bandwidth (BU).
    pub bandwidth: Bandwidth,
    /// Requested holding time (seconds); the call ends this long after
    /// admission unless dropped.
    pub holding_time: SimTime,
    /// User speed in km/h at request time.
    pub speed_kmh: f64,
    /// User direction relative to the serving base station, in degrees
    /// (0° = heading straight at the base station, ±180° = heading directly
    /// away).  This is the `An` input of FLC1.
    pub angle_deg: f64,
    /// `true` if this is a handoff of an on-going connection from a
    /// neighbouring cell (handoffs carry priority over new calls).
    pub is_handoff: bool,
}

impl CallRequest {
    /// `true` if the request belongs to a real-time class.
    #[must_use]
    pub fn is_real_time(&self) -> bool {
        self.class.is_real_time()
    }
}

/// Parameters of the call generator.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrafficConfig {
    /// Service mix and per-class bandwidths.
    pub mix: TrafficMix,
    /// Mean inter-arrival time between consecutive requests (seconds).
    /// The paper sweeps the *number* of requesting connections rather than
    /// the rate, so the experiment harness typically generates a fixed count
    /// with [`TrafficGenerator::generate_batch`].
    pub mean_interarrival_s: f64,
    /// Mean call holding time (seconds).
    pub mean_holding_s: f64,
    /// Minimum user speed (km/h).
    pub min_speed_kmh: f64,
    /// Maximum user speed (km/h) — the paper uses 0..120 km/h.
    pub max_speed_kmh: f64,
    /// Minimum user angle (degrees) — the paper uses −180°.
    pub min_angle_deg: f64,
    /// Maximum user angle (degrees) — the paper uses +180°.
    pub max_angle_deg: f64,
    /// Fraction of requests that are handoffs of on-going connections
    /// (0 reproduces the paper's new-call experiments).
    pub handoff_fraction: f64,
    /// Strength of the speed/direction correlation in `[0, 1]`.
    ///
    /// The paper's evaluation argues that *"with the increase of the user
    /// speed, the user direction can not be changed easily, this results in
    /// a better prediction of the user direction"*: fast users travel on
    /// roads roughly radial to the serving base station, so their measured
    /// angle concentrates around 0°, while slow (pedestrian) users point in
    /// arbitrary directions.  With predictability `p`, a user at speed `v`
    /// draws its angle uniformly from `±spread` where
    /// `spread = 180° − p · 200° · v / 120 km/h` (never below 25°);
    /// `p = 0` (the default) keeps the angle fully uniform over the
    /// configured range.
    pub direction_predictability: f64,
}

impl TrafficConfig {
    /// The paper's workload parameters.
    #[must_use]
    pub fn paper_default() -> Self {
        Self {
            mix: TrafficMix::paper_default(),
            mean_interarrival_s: 30.0,
            mean_holding_s: 180.0,
            min_speed_kmh: 0.0,
            max_speed_kmh: 120.0,
            min_angle_deg: -180.0,
            max_angle_deg: 180.0,
            handoff_fraction: 0.0,
            direction_predictability: 0.0,
        }
    }

    /// Fix the user speed to a single value (Fig. 8 sweeps this).
    #[must_use]
    pub fn with_fixed_speed(mut self, speed_kmh: f64) -> Self {
        self.min_speed_kmh = speed_kmh;
        self.max_speed_kmh = speed_kmh;
        self
    }

    /// Fix the user angle to a single value (Fig. 9 sweeps this).
    #[must_use]
    pub fn with_fixed_angle(mut self, angle_deg: f64) -> Self {
        self.min_angle_deg = angle_deg;
        self.max_angle_deg = angle_deg;
        self
    }

    /// Set the traffic mix.
    #[must_use]
    pub fn with_mix(mut self, mix: TrafficMix) -> Self {
        self.mix = mix;
        self
    }

    /// Set the handoff fraction (clamped to `[0, 1]`).
    #[must_use]
    pub fn with_handoff_fraction(mut self, fraction: f64) -> Self {
        self.handoff_fraction = fraction.clamp(0.0, 1.0);
        self
    }

    /// Set the speed/direction correlation strength (clamped to `[0, 1]`).
    #[must_use]
    pub fn with_direction_predictability(mut self, predictability: f64) -> Self {
        self.direction_predictability = predictability.clamp(0.0, 1.0);
        self
    }
}

impl Default for TrafficConfig {
    fn default() -> Self {
        Self::paper_default()
    }
}

/// Stochastic call-request generator.
#[derive(Debug, Clone)]
pub struct TrafficGenerator {
    config: TrafficConfig,
    rng: SimRng,
    next_id: u64,
    clock: SimTime,
}

impl TrafficGenerator {
    /// Create a generator from a configuration and a seed.
    #[must_use]
    pub fn new(config: TrafficConfig, seed: u64) -> Self {
        Self {
            config,
            rng: SimRng::new(seed),
            next_id: 0,
            clock: 0.0,
        }
    }

    /// The generator's configuration.
    #[must_use]
    pub fn config(&self) -> &TrafficConfig {
        &self.config
    }

    /// Number of requests generated so far.
    #[must_use]
    pub fn generated(&self) -> u64 {
        self.next_id
    }

    /// Generate the next request using Poisson arrivals (exponential
    /// inter-arrival times) starting from the internal clock.
    pub fn next_request(&mut self) -> CallRequest {
        let gap = self.rng.exponential(self.config.mean_interarrival_s);
        self.clock += gap;
        let at = self.clock;
        self.make_request(at)
    }

    /// Generate a batch of `n` requests all offered at time zero — the shape
    /// of the paper's "number of requesting connections" sweeps, where a
    /// growing population of users asks for admission against the same
    /// 40-BU base station.
    pub fn generate_batch(&mut self, n: usize) -> Vec<CallRequest> {
        (0..n).map(|_| self.make_request(0.0)).collect()
    }

    /// [`TrafficGenerator::generate_batch`] into a reused buffer (`out` is
    /// cleared first): a warmed-up buffer makes repeated runs
    /// allocation-free.
    pub fn generate_batch_into(&mut self, n: usize, out: &mut Vec<CallRequest>) {
        out.clear();
        out.reserve(n);
        for _ in 0..n {
            out.push(self.make_request(0.0));
        }
    }

    /// Generate `n` requests with Poisson arrivals.
    pub fn generate_poisson(&mut self, n: usize) -> Vec<CallRequest> {
        (0..n).map(|_| self.next_request()).collect()
    }

    /// [`TrafficGenerator::generate_poisson`] into a reused buffer (`out`
    /// is cleared first).
    pub fn generate_poisson_into(&mut self, n: usize, out: &mut Vec<CallRequest>) {
        out.clear();
        out.reserve(n);
        for _ in 0..n {
            let req = self.next_request();
            out.push(req);
        }
    }

    fn make_request(&mut self, at: SimTime) -> CallRequest {
        let class = self.config.mix.sample_class(&mut self.rng);
        let bandwidth = self.config.mix.bandwidth_of(class);
        let holding = self.rng.exponential(self.config.mean_holding_s).max(1.0);
        let speed = self
            .rng
            .uniform(self.config.min_speed_kmh, self.config.max_speed_kmh)
            .max(self.config.min_speed_kmh);
        let angle = if self.config.min_angle_deg >= self.config.max_angle_deg {
            self.config.min_angle_deg
        } else {
            // The spread is referenced to the paper's 120 km/h maximum so a
            // series with a fixed (low) speed still gets the wide spread it
            // should.
            const REFERENCE_MAX_SPEED_KMH: f64 = 120.0;
            let p = self.config.direction_predictability.clamp(0.0, 1.0);
            let spread = if p > 0.0 {
                let ratio = (speed / REFERENCE_MAX_SPEED_KMH).clamp(0.0, 1.0);
                (180.0 - p * 200.0 * ratio).max(25.0)
            } else {
                180.0
            };
            let lo = self.config.min_angle_deg.max(-spread);
            let hi = self.config.max_angle_deg.min(spread);
            if lo >= hi {
                lo
            } else {
                self.rng.uniform(lo, hi)
            }
        };
        let is_handoff = self.rng.chance(self.config.handoff_fraction);
        let req = CallRequest {
            id: self.next_id,
            arrival_time: at,
            class,
            bandwidth,
            holding_time: holding,
            speed_kmh: speed,
            angle_deg: normalize_angle(angle),
            is_handoff,
        };
        self.next_id += 1;
        req
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_bandwidths() {
        assert_eq!(ServiceClass::Text.paper_bandwidth(), 1);
        assert_eq!(ServiceClass::Voice.paper_bandwidth(), 5);
        assert_eq!(ServiceClass::Video.paper_bandwidth(), 10);
    }

    #[test]
    fn real_time_classification() {
        assert!(!ServiceClass::Text.is_real_time());
        assert!(ServiceClass::Voice.is_real_time());
        assert!(ServiceClass::Video.is_real_time());
    }

    #[test]
    fn class_labels_and_indices() {
        for (i, c) in ServiceClass::ALL.iter().enumerate() {
            assert_eq!(c.index(), i);
        }
        assert_eq!(ServiceClass::Video.to_string(), "video");
    }

    #[test]
    fn paper_mix_fractions() {
        let mix = TrafficMix::paper_default();
        assert!((mix.fraction_of(ServiceClass::Text) - 0.7).abs() < 1e-12);
        assert!((mix.fraction_of(ServiceClass::Voice) - 0.2).abs() < 1e-12);
        assert!((mix.fraction_of(ServiceClass::Video) - 0.1).abs() < 1e-12);
        // Mean request size: 0.7*1 + 0.2*5 + 0.1*10 = 2.7 BU.
        assert!((mix.mean_bandwidth() - 2.7).abs() < 1e-12);
    }

    #[test]
    fn custom_mix_is_normalised() {
        let mix = TrafficMix::new(2.0, 1.0, 1.0);
        assert!((mix.fraction_of(ServiceClass::Text) - 0.5).abs() < 1e-12);
        let empty = TrafficMix::new(0.0, 0.0, 0.0);
        assert_eq!(empty.fraction_of(ServiceClass::Voice), 0.0);
    }

    #[test]
    fn sample_class_matches_mix() {
        let mix = TrafficMix::paper_default();
        let mut rng = SimRng::new(123);
        let n = 30_000;
        let mut counts = [0usize; 3];
        for _ in 0..n {
            counts[mix.sample_class(&mut rng).index()] += 1;
        }
        assert!((counts[0] as f64 / n as f64 - 0.7).abs() < 0.02);
        assert!((counts[1] as f64 / n as f64 - 0.2).abs() < 0.02);
        assert!((counts[2] as f64 / n as f64 - 0.1).abs() < 0.02);
    }

    #[test]
    fn generator_batch_has_paper_ranges() {
        let mut gen = TrafficGenerator::new(TrafficConfig::paper_default(), 42);
        let reqs = gen.generate_batch(500);
        assert_eq!(reqs.len(), 500);
        assert_eq!(gen.generated(), 500);
        for (i, r) in reqs.iter().enumerate() {
            assert_eq!(r.id, i as u64);
            assert_eq!(r.arrival_time, 0.0);
            assert!(r.speed_kmh >= 0.0 && r.speed_kmh <= 120.0);
            assert!(r.angle_deg >= -180.0 && r.angle_deg <= 180.0);
            assert!(r.holding_time >= 1.0);
            assert_eq!(r.bandwidth, r.class.paper_bandwidth());
            assert!(!r.is_handoff);
        }
    }

    #[test]
    fn generator_is_deterministic_per_seed() {
        let a = TrafficGenerator::new(TrafficConfig::paper_default(), 7).generate_batch(50);
        let b = TrafficGenerator::new(TrafficConfig::paper_default(), 7).generate_batch(50);
        let c = TrafficGenerator::new(TrafficConfig::paper_default(), 8).generate_batch(50);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn poisson_arrivals_are_increasing() {
        let mut gen = TrafficGenerator::new(TrafficConfig::paper_default(), 11);
        let reqs = gen.generate_poisson(200);
        for w in reqs.windows(2) {
            assert!(w[1].arrival_time >= w[0].arrival_time);
        }
        // Mean inter-arrival should be close to the configured 30 s.
        let total = reqs.last().unwrap().arrival_time;
        let mean = total / reqs.len() as f64;
        assert!((mean - 30.0).abs() < 10.0, "mean inter-arrival {mean}");
    }

    #[test]
    fn fixed_speed_and_angle() {
        let cfg = TrafficConfig::paper_default()
            .with_fixed_speed(60.0)
            .with_fixed_angle(30.0);
        let mut gen = TrafficGenerator::new(cfg, 5);
        for r in gen.generate_batch(100) {
            assert_eq!(r.speed_kmh, 60.0);
            assert_eq!(r.angle_deg, 30.0);
        }
    }

    #[test]
    fn handoff_fraction_is_respected() {
        let cfg = TrafficConfig::paper_default().with_handoff_fraction(0.4);
        let mut gen = TrafficGenerator::new(cfg, 77);
        let reqs = gen.generate_batch(10_000);
        let handoffs = reqs.iter().filter(|r| r.is_handoff).count() as f64 / 10_000.0;
        assert!((handoffs - 0.4).abs() < 0.03, "handoff fraction {handoffs}");
        // clamping
        let cfg = TrafficConfig::paper_default().with_handoff_fraction(7.0);
        assert_eq!(cfg.handoff_fraction, 1.0);
    }

    #[test]
    fn direction_predictability_concentrates_fast_users() {
        let base = TrafficConfig::paper_default().with_direction_predictability(1.0);
        let mean_abs_angle = |speed: f64| {
            let cfg = base.clone().with_fixed_speed(speed);
            let mut gen = TrafficGenerator::new(cfg, 99);
            let reqs = gen.generate_batch(2000);
            reqs.iter().map(|r| r.angle_deg.abs()).sum::<f64>() / reqs.len() as f64
        };
        let slow = mean_abs_angle(4.0);
        let fast = mean_abs_angle(110.0);
        assert!(
            fast < slow * 0.6,
            "fast users should have concentrated angles: fast {fast:.1} vs slow {slow:.1}"
        );
        // Fast users stay within the shrunken spread.
        let cfg = base.clone().with_fixed_speed(120.0);
        let mut gen = TrafficGenerator::new(cfg, 7);
        for r in gen.generate_batch(500) {
            assert!(r.angle_deg.abs() <= 25.0 + 1e-9);
        }
        // Predictability 0 keeps angles spread over the full range.
        let mut gen =
            TrafficGenerator::new(TrafficConfig::paper_default().with_fixed_speed(120.0), 7);
        let wide = gen
            .generate_batch(500)
            .iter()
            .any(|r| r.angle_deg.abs() > 90.0);
        assert!(wide);
        // Clamping of the builder argument.
        assert_eq!(
            TrafficConfig::paper_default()
                .with_direction_predictability(5.0)
                .direction_predictability,
            1.0
        );
    }

    #[test]
    fn angle_is_normalised() {
        let cfg = TrafficConfig::paper_default().with_fixed_angle(270.0);
        let mut gen = TrafficGenerator::new(cfg, 5);
        let r = gen.generate_batch(1).remove(0);
        assert_eq!(r.angle_deg, -90.0);
    }

    #[test]
    fn request_real_time_flag() {
        let req = CallRequest {
            id: 0,
            arrival_time: 0.0,
            class: ServiceClass::Voice,
            bandwidth: 5,
            holding_time: 60.0,
            speed_kmh: 10.0,
            angle_deg: 0.0,
            is_handoff: false,
        };
        assert!(req.is_real_time());
    }
}
