//! Multimedia traffic: service classes, traffic mixes and call generation.
//!
//! The paper's workload (Section 4): text, voice and video connections make
//! up 70 %, 20 % and 10 % of requests and require 1, 5 and 10 bandwidth
//! units respectively.  Voice and video are *real-time* services (they feed
//! the RTC counter of FACS-P); text is *non-real-time* (NRTC).
//!
//! Arrivals default to the paper's Poisson process; the [`model`]
//! submodule adds bursty alternatives (trace replay, MMPP, correlated
//! groups) selected through [`TrafficModel`] — see `docs/TRAFFIC_MODELS.md`.

pub mod model;

use crate::geometry::normalize_angle;
use crate::rng::SimRng;
use crate::{Bandwidth, SimTime};
use serde::{Deserialize, Serialize};

pub use model::{
    parse_trace, DurationPolicy, GroupConfig, MmppConfig, MmppState, SpawnCellAssigner,
    TraceConfig, TraceEntry, TraceError, TrafficModel,
};

/// The three multimedia service classes of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum ServiceClass {
    /// Non-real-time data (1 BU).
    Text,
    /// Real-time voice (5 BU).
    Voice,
    /// Real-time video (10 BU).
    Video,
}

impl ServiceClass {
    /// All classes, in paper order.
    pub const ALL: [ServiceClass; 3] =
        [ServiceClass::Text, ServiceClass::Voice, ServiceClass::Video];

    /// The bandwidth the paper assigns to this class (1 / 5 / 10 BU).
    #[must_use]
    pub fn paper_bandwidth(&self) -> Bandwidth {
        match self {
            ServiceClass::Text => 1,
            ServiceClass::Voice => 5,
            ServiceClass::Video => 10,
        }
    }

    /// `true` for classes with real-time QoS constraints (voice, video).
    ///
    /// This is the "Differentiated service (Ds)" classification of FACS-P:
    /// real-time connections are counted in the RTC, the rest in the NRTC.
    #[must_use]
    pub fn is_real_time(&self) -> bool {
        matches!(self, ServiceClass::Voice | ServiceClass::Video)
    }

    /// Short lowercase label.
    #[must_use]
    pub fn label(&self) -> &'static str {
        match self {
            ServiceClass::Text => "text",
            ServiceClass::Voice => "voice",
            ServiceClass::Video => "video",
        }
    }

    /// Index into [`ServiceClass::ALL`].
    #[must_use]
    pub fn index(&self) -> usize {
        match self {
            ServiceClass::Text => 0,
            ServiceClass::Voice => 1,
            ServiceClass::Video => 2,
        }
    }
}

impl std::fmt::Display for ServiceClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// The proportions of the three service classes in the offered traffic and
/// the per-class bandwidth demands.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrafficMix {
    /// Fraction of requests that are text (non-real-time).
    pub text_fraction: f64,
    /// Fraction of requests that are voice.
    pub voice_fraction: f64,
    /// Fraction of requests that are video.
    pub video_fraction: f64,
    /// Bandwidth of one text connection (BU).
    pub text_bandwidth: Bandwidth,
    /// Bandwidth of one voice connection (BU).
    pub voice_bandwidth: Bandwidth,
    /// Bandwidth of one video connection (BU).
    pub video_bandwidth: Bandwidth,
}

impl TrafficMix {
    /// The paper's mix: 70 % text (1 BU), 20 % voice (5 BU), 10 % video
    /// (10 BU).
    #[must_use]
    pub fn paper_default() -> Self {
        Self {
            text_fraction: 0.7,
            voice_fraction: 0.2,
            video_fraction: 0.1,
            text_bandwidth: 1,
            voice_bandwidth: 5,
            video_bandwidth: 10,
        }
    }

    /// A custom mix; the fractions are normalised so they need not sum to 1.
    #[must_use]
    pub fn new(text: f64, voice: f64, video: f64) -> Self {
        Self {
            text_fraction: text.max(0.0),
            voice_fraction: voice.max(0.0),
            video_fraction: video.max(0.0),
            ..Self::paper_default()
        }
    }

    /// The bandwidth this mix assigns to `class`.
    #[must_use]
    pub fn bandwidth_of(&self, class: ServiceClass) -> Bandwidth {
        match class {
            ServiceClass::Text => self.text_bandwidth,
            ServiceClass::Voice => self.voice_bandwidth,
            ServiceClass::Video => self.video_bandwidth,
        }
    }

    /// The (normalised) probability of `class` in this mix.
    #[must_use]
    pub fn fraction_of(&self, class: ServiceClass) -> f64 {
        let total = self.text_fraction + self.voice_fraction + self.video_fraction;
        if total <= 0.0 {
            return 0.0;
        }
        let raw = match class {
            ServiceClass::Text => self.text_fraction,
            ServiceClass::Voice => self.voice_fraction,
            ServiceClass::Video => self.video_fraction,
        };
        raw / total
    }

    /// Mean bandwidth of a request drawn from this mix (BU).
    #[must_use]
    pub fn mean_bandwidth(&self) -> f64 {
        ServiceClass::ALL
            .iter()
            .map(|&c| self.fraction_of(c) * f64::from(self.bandwidth_of(c)))
            .sum()
    }

    /// Draw a service class according to the mix.
    pub fn sample_class(&self, rng: &mut SimRng) -> ServiceClass {
        let idx =
            rng.weighted_choice(&[self.text_fraction, self.voice_fraction, self.video_fraction]);
        ServiceClass::ALL[idx]
    }
}

impl Default for TrafficMix {
    fn default() -> Self {
        Self::paper_default()
    }
}

/// One call / connection request as offered to the admission controller.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CallRequest {
    /// Monotonically increasing identifier.
    pub id: u64,
    /// Time at which the request is made (seconds).
    pub arrival_time: SimTime,
    /// Service class of the request.
    pub class: ServiceClass,
    /// Requested bandwidth (BU).
    pub bandwidth: Bandwidth,
    /// Requested holding time (seconds); the call ends this long after
    /// admission unless dropped.
    pub holding_time: SimTime,
    /// User speed in km/h at request time.
    pub speed_kmh: f64,
    /// User direction relative to the serving base station, in degrees
    /// (0° = heading straight at the base station, ±180° = heading directly
    /// away).  This is the `An` input of FLC1.
    pub angle_deg: f64,
    /// `true` if this is a handoff of an on-going connection from a
    /// neighbouring cell (handoffs carry priority over new calls).
    pub is_handoff: bool,
}

impl CallRequest {
    /// `true` if the request belongs to a real-time class.
    #[must_use]
    pub fn is_real_time(&self) -> bool {
        self.class.is_real_time()
    }
}

/// Parameters of the call generator.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrafficConfig {
    /// Service mix and per-class bandwidths.
    pub mix: TrafficMix,
    /// Mean inter-arrival time between consecutive requests (seconds).
    /// The paper sweeps the *number* of requesting connections rather than
    /// the rate, so the experiment harness typically generates a fixed count
    /// with [`TrafficGenerator::generate_batch`].
    pub mean_interarrival_s: f64,
    /// Mean call holding time (seconds).
    pub mean_holding_s: f64,
    /// Minimum user speed (km/h).
    pub min_speed_kmh: f64,
    /// Maximum user speed (km/h) — the paper uses 0..120 km/h.
    pub max_speed_kmh: f64,
    /// Minimum user angle (degrees) — the paper uses −180°.
    pub min_angle_deg: f64,
    /// Maximum user angle (degrees) — the paper uses +180°.
    pub max_angle_deg: f64,
    /// Fraction of requests that are handoffs of on-going connections
    /// (0 reproduces the paper's new-call experiments).
    pub handoff_fraction: f64,
    /// Strength of the speed/direction correlation in `[0, 1]`.
    ///
    /// The paper's evaluation argues that *"with the increase of the user
    /// speed, the user direction can not be changed easily, this results in
    /// a better prediction of the user direction"*: fast users travel on
    /// roads roughly radial to the serving base station, so their measured
    /// angle concentrates around 0°, while slow (pedestrian) users point in
    /// arbitrary directions.  With predictability `p`, a user at speed `v`
    /// draws its angle uniformly from `±spread` where
    /// `spread = 180° − p · 200° · v / 120 km/h` (never below 25°);
    /// `p = 0` (the default) keeps the angle fully uniform over the
    /// configured range.
    pub direction_predictability: f64,
}

impl TrafficConfig {
    /// The paper's workload parameters.
    #[must_use]
    pub fn paper_default() -> Self {
        Self {
            mix: TrafficMix::paper_default(),
            mean_interarrival_s: 30.0,
            mean_holding_s: 180.0,
            min_speed_kmh: 0.0,
            max_speed_kmh: 120.0,
            min_angle_deg: -180.0,
            max_angle_deg: 180.0,
            handoff_fraction: 0.0,
            direction_predictability: 0.0,
        }
    }

    /// Fix the user speed to a single value (Fig. 8 sweeps this).
    #[must_use]
    pub fn with_fixed_speed(mut self, speed_kmh: f64) -> Self {
        self.min_speed_kmh = speed_kmh;
        self.max_speed_kmh = speed_kmh;
        self
    }

    /// Fix the user angle to a single value (Fig. 9 sweeps this).
    #[must_use]
    pub fn with_fixed_angle(mut self, angle_deg: f64) -> Self {
        self.min_angle_deg = angle_deg;
        self.max_angle_deg = angle_deg;
        self
    }

    /// Set the traffic mix.
    #[must_use]
    pub fn with_mix(mut self, mix: TrafficMix) -> Self {
        self.mix = mix;
        self
    }

    /// Set the handoff fraction (clamped to `[0, 1]`).
    #[must_use]
    pub fn with_handoff_fraction(mut self, fraction: f64) -> Self {
        self.handoff_fraction = fraction.clamp(0.0, 1.0);
        self
    }

    /// Set the speed/direction correlation strength (clamped to `[0, 1]`).
    #[must_use]
    pub fn with_direction_predictability(mut self, predictability: f64) -> Self {
        self.direction_predictability = predictability.clamp(0.0, 1.0);
        self
    }
}

impl Default for TrafficConfig {
    fn default() -> Self {
        Self::paper_default()
    }
}

/// Run-time state of the selected [`TrafficModel`].
///
/// The `Poisson` variant carries no data, so the default construction
/// path stays allocation-free and draw-for-draw identical to the
/// historical generator.
#[derive(Debug, Clone)]
enum ModelRuntime {
    Poisson,
    Mmpp {
        states: Vec<model::MmppState>,
        state: usize,
        next_transition: SimTime,
    },
    Trace {
        entries: Vec<model::TraceEntry>,
        duration: model::DurationPolicy,
        loop_replay: bool,
        pos: usize,
    },
    Groups {
        config: model::GroupConfig,
        remaining: u32,
    },
}

/// Per-request overrides supplied by the active model (`None` keeps the
/// historical draw for that attribute).
#[derive(Debug, Clone, Copy, Default)]
struct RequestOverrides {
    class: Option<ServiceClass>,
    holding: Option<SimTime>,
}

/// Stochastic call-request generator.
#[derive(Debug, Clone)]
pub struct TrafficGenerator {
    config: TrafficConfig,
    rng: SimRng,
    next_id: u64,
    clock: SimTime,
    model: ModelRuntime,
}

impl TrafficGenerator {
    /// Create a generator from a configuration and a seed.
    #[must_use]
    pub fn new(config: TrafficConfig, seed: u64) -> Self {
        Self {
            config,
            rng: SimRng::new(seed),
            next_id: 0,
            clock: 0.0,
            model: ModelRuntime::Poisson,
        }
    }

    /// Create a generator driving the given arrival [`TrafficModel`].
    ///
    /// With [`TrafficModel::Poisson`] this is draw-for-draw identical to
    /// [`TrafficGenerator::new`]; the other models reshape the arrival
    /// *times* (and, for trace replay, the class/duration of each call)
    /// while speed, angle and handoff draws keep their historical order.
    ///
    /// # Panics
    ///
    /// Panics if `model` fails [`TrafficModel::validate`] — validate
    /// first when the model comes from user input.
    #[must_use]
    pub fn with_model(config: TrafficConfig, traffic_model: &TrafficModel, seed: u64) -> Self {
        if let Err(reason) = traffic_model.validate() {
            panic!("invalid traffic model: {reason}");
        }
        let mut rng = SimRng::new(seed);
        let model = match traffic_model {
            TrafficModel::Poisson => ModelRuntime::Poisson,
            TrafficModel::Mmpp(mmpp) => {
                let next_transition = rng.exponential(mmpp.states[0].mean_sojourn_s);
                ModelRuntime::Mmpp {
                    states: mmpp.states.clone(),
                    state: 0,
                    next_transition,
                }
            }
            TrafficModel::Trace(trace) => ModelRuntime::Trace {
                entries: trace.entries.clone(),
                duration: trace.duration,
                loop_replay: trace.loop_replay,
                pos: 0,
            },
            TrafficModel::Groups(groups) => ModelRuntime::Groups {
                config: *groups,
                remaining: 0,
            },
        };
        Self {
            config,
            rng,
            next_id: 0,
            clock: 0.0,
            model,
        }
    }

    /// The generator's configuration.
    #[must_use]
    pub fn config(&self) -> &TrafficConfig {
        &self.config
    }

    /// Number of requests generated so far.
    #[must_use]
    pub fn generated(&self) -> u64 {
        self.next_id
    }

    /// Generate the next request: the active [`TrafficModel`] advances
    /// the internal clock (exponential gaps for the default Poisson
    /// model) and may pin the class/duration (trace replay).
    pub fn next_request(&mut self) -> CallRequest {
        let overrides = self.advance_clock();
        let at = self.clock;
        self.make_request_with(at, overrides)
    }

    /// Generate a batch of `n` requests all offered at time zero — the shape
    /// of the paper's "number of requesting connections" sweeps, where a
    /// growing population of users asks for admission against the same
    /// 40-BU base station.  A trace-replay model still pins each request's
    /// class and duration; time-structure models (MMPP, groups) have no
    /// effect because every request is offered at once.
    pub fn generate_batch(&mut self, n: usize) -> Vec<CallRequest> {
        (0..n)
            .map(|_| {
                let overrides = self.batch_overrides();
                self.make_request_with(0.0, overrides)
            })
            .collect()
    }

    /// [`TrafficGenerator::generate_batch`] into a reused buffer (`out` is
    /// cleared first): a warmed-up buffer makes repeated runs
    /// allocation-free.
    pub fn generate_batch_into(&mut self, n: usize, out: &mut Vec<CallRequest>) {
        out.clear();
        out.reserve(n);
        for _ in 0..n {
            let overrides = self.batch_overrides();
            let req = self.make_request_with(0.0, overrides);
            out.push(req);
        }
    }

    /// Generate `n` requests with Poisson arrivals.
    pub fn generate_poisson(&mut self, n: usize) -> Vec<CallRequest> {
        (0..n).map(|_| self.next_request()).collect()
    }

    /// [`TrafficGenerator::generate_poisson`] into a reused buffer (`out`
    /// is cleared first).
    pub fn generate_poisson_into(&mut self, n: usize, out: &mut Vec<CallRequest>) {
        out.clear();
        out.reserve(n);
        for _ in 0..n {
            let req = self.next_request();
            out.push(req);
        }
    }

    /// Advance the clock to the next arrival per the active model and
    /// return any class/duration overrides it dictates.
    fn advance_clock(&mut self) -> RequestOverrides {
        match &mut self.model {
            ModelRuntime::Poisson => {
                let gap = self.rng.exponential(self.config.mean_interarrival_s);
                self.clock += gap;
                RequestOverrides::default()
            }
            ModelRuntime::Mmpp {
                states,
                state,
                next_transition,
            } => loop {
                let current = states[*state];
                if current.rate_multiplier > 0.0 {
                    let mean = self.config.mean_interarrival_s / current.rate_multiplier;
                    let t = self.clock + self.rng.exponential(mean);
                    if t <= *next_transition {
                        self.clock = t;
                        return RequestOverrides::default();
                    }
                }
                // Cross into the next modulation state.  The exponential
                // gap is memoryless, so redrawing from the transition
                // time leaves the per-state arrival law exact; a
                // zero-rate state jumps straight to its transition.
                self.clock = *next_transition;
                *state = (*state + 1) % states.len();
                *next_transition = self.clock + self.rng.exponential(states[*state].mean_sojourn_s);
            },
            ModelRuntime::Trace {
                entries,
                duration,
                loop_replay,
                pos,
            } => {
                if *pos >= entries.len() {
                    if *loop_replay {
                        *pos = 0;
                    } else {
                        // Trace exhausted: fall back to plain Poisson.
                        let gap = self.rng.exponential(self.config.mean_interarrival_s);
                        self.clock += gap;
                        return RequestOverrides::default();
                    }
                }
                let entry = entries[*pos];
                *pos += 1;
                self.clock += entry.inter_arrival_s;
                trace_overrides(entry, *duration)
            }
            ModelRuntime::Groups { config, remaining } => {
                if *remaining > 0 {
                    // Followers share the leader's arrival time exactly
                    // (the clock does not move), which is also how the
                    // spawn-cell assigner recognises them.
                    *remaining -= 1;
                } else {
                    // Leader gaps are stretched by the mean group size so
                    // the long-run call rate matches plain Poisson.
                    let mean = self.config.mean_interarrival_s * config.mean_size();
                    self.clock += self.rng.exponential(mean);
                    let size = self.rng.uniform_u32(config.min_size, config.max_size);
                    *remaining = size.saturating_sub(1);
                }
                RequestOverrides::default()
            }
        }
    }

    /// Overrides for a time-zero batch request: only trace replay has an
    /// effect (it pins class and duration); time-structure models do not.
    fn batch_overrides(&mut self) -> RequestOverrides {
        match &mut self.model {
            ModelRuntime::Trace {
                entries,
                duration,
                loop_replay,
                pos,
            } => {
                if *pos >= entries.len() {
                    if *loop_replay {
                        *pos = 0;
                    } else {
                        return RequestOverrides::default();
                    }
                }
                let entry = entries[*pos];
                *pos += 1;
                trace_overrides(entry, *duration)
            }
            _ => RequestOverrides::default(),
        }
    }

    fn make_request_with(&mut self, at: SimTime, overrides: RequestOverrides) -> CallRequest {
        let class = match overrides.class {
            Some(class) => class,
            None => self.config.mix.sample_class(&mut self.rng),
        };
        let bandwidth = self.config.mix.bandwidth_of(class);
        let holding = match overrides.holding {
            Some(holding) => holding,
            None => self.rng.exponential(self.config.mean_holding_s).max(1.0),
        };
        let speed = self
            .rng
            .uniform(self.config.min_speed_kmh, self.config.max_speed_kmh)
            .max(self.config.min_speed_kmh);
        let angle = if self.config.min_angle_deg >= self.config.max_angle_deg {
            self.config.min_angle_deg
        } else {
            // The spread is referenced to the paper's 120 km/h maximum so a
            // series with a fixed (low) speed still gets the wide spread it
            // should.
            const REFERENCE_MAX_SPEED_KMH: f64 = 120.0;
            let p = self.config.direction_predictability.clamp(0.0, 1.0);
            let spread = if p > 0.0 {
                let ratio = (speed / REFERENCE_MAX_SPEED_KMH).clamp(0.0, 1.0);
                (180.0 - p * 200.0 * ratio).max(25.0)
            } else {
                180.0
            };
            let lo = self.config.min_angle_deg.max(-spread);
            let hi = self.config.max_angle_deg.min(spread);
            if lo >= hi {
                lo
            } else {
                self.rng.uniform(lo, hi)
            }
        };
        let is_handoff = self.rng.chance(self.config.handoff_fraction);
        let req = CallRequest {
            id: self.next_id,
            arrival_time: at,
            class,
            bandwidth,
            holding_time: holding,
            speed_kmh: speed,
            angle_deg: normalize_angle(angle),
            is_handoff,
        };
        self.next_id += 1;
        req
    }
}

/// The class/duration overrides one trace entry dictates under the given
/// duration policy.
fn trace_overrides(entry: model::TraceEntry, duration: model::DurationPolicy) -> RequestOverrides {
    let holding = match duration {
        model::DurationPolicy::FromTrace => Some(entry.duration_s),
        model::DurationPolicy::Fixed { duration_s } => Some(duration_s),
        model::DurationPolicy::Bounded { min_s, max_s } => {
            Some(entry.duration_s.clamp(min_s, max_s))
        }
        model::DurationPolicy::Randomized => None,
    };
    RequestOverrides {
        class: Some(entry.class),
        holding,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_bandwidths() {
        assert_eq!(ServiceClass::Text.paper_bandwidth(), 1);
        assert_eq!(ServiceClass::Voice.paper_bandwidth(), 5);
        assert_eq!(ServiceClass::Video.paper_bandwidth(), 10);
    }

    #[test]
    fn real_time_classification() {
        assert!(!ServiceClass::Text.is_real_time());
        assert!(ServiceClass::Voice.is_real_time());
        assert!(ServiceClass::Video.is_real_time());
    }

    #[test]
    fn class_labels_and_indices() {
        for (i, c) in ServiceClass::ALL.iter().enumerate() {
            assert_eq!(c.index(), i);
        }
        assert_eq!(ServiceClass::Video.to_string(), "video");
    }

    #[test]
    fn paper_mix_fractions() {
        let mix = TrafficMix::paper_default();
        assert!((mix.fraction_of(ServiceClass::Text) - 0.7).abs() < 1e-12);
        assert!((mix.fraction_of(ServiceClass::Voice) - 0.2).abs() < 1e-12);
        assert!((mix.fraction_of(ServiceClass::Video) - 0.1).abs() < 1e-12);
        // Mean request size: 0.7*1 + 0.2*5 + 0.1*10 = 2.7 BU.
        assert!((mix.mean_bandwidth() - 2.7).abs() < 1e-12);
    }

    #[test]
    fn custom_mix_is_normalised() {
        let mix = TrafficMix::new(2.0, 1.0, 1.0);
        assert!((mix.fraction_of(ServiceClass::Text) - 0.5).abs() < 1e-12);
        let empty = TrafficMix::new(0.0, 0.0, 0.0);
        assert_eq!(empty.fraction_of(ServiceClass::Voice), 0.0);
    }

    #[test]
    fn sample_class_matches_mix() {
        let mix = TrafficMix::paper_default();
        let mut rng = SimRng::new(123);
        let n = 30_000;
        let mut counts = [0usize; 3];
        for _ in 0..n {
            counts[mix.sample_class(&mut rng).index()] += 1;
        }
        assert!((counts[0] as f64 / n as f64 - 0.7).abs() < 0.02);
        assert!((counts[1] as f64 / n as f64 - 0.2).abs() < 0.02);
        assert!((counts[2] as f64 / n as f64 - 0.1).abs() < 0.02);
    }

    #[test]
    fn generator_batch_has_paper_ranges() {
        let mut gen = TrafficGenerator::new(TrafficConfig::paper_default(), 42);
        let reqs = gen.generate_batch(500);
        assert_eq!(reqs.len(), 500);
        assert_eq!(gen.generated(), 500);
        for (i, r) in reqs.iter().enumerate() {
            assert_eq!(r.id, i as u64);
            assert_eq!(r.arrival_time, 0.0);
            assert!(r.speed_kmh >= 0.0 && r.speed_kmh <= 120.0);
            assert!(r.angle_deg >= -180.0 && r.angle_deg <= 180.0);
            assert!(r.holding_time >= 1.0);
            assert_eq!(r.bandwidth, r.class.paper_bandwidth());
            assert!(!r.is_handoff);
        }
    }

    #[test]
    fn generator_is_deterministic_per_seed() {
        let a = TrafficGenerator::new(TrafficConfig::paper_default(), 7).generate_batch(50);
        let b = TrafficGenerator::new(TrafficConfig::paper_default(), 7).generate_batch(50);
        let c = TrafficGenerator::new(TrafficConfig::paper_default(), 8).generate_batch(50);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn poisson_arrivals_are_increasing() {
        let mut gen = TrafficGenerator::new(TrafficConfig::paper_default(), 11);
        let reqs = gen.generate_poisson(200);
        for w in reqs.windows(2) {
            assert!(w[1].arrival_time >= w[0].arrival_time);
        }
        // Mean inter-arrival should be close to the configured 30 s.
        let total = reqs.last().unwrap().arrival_time;
        let mean = total / reqs.len() as f64;
        assert!((mean - 30.0).abs() < 10.0, "mean inter-arrival {mean}");
    }

    #[test]
    fn fixed_speed_and_angle() {
        let cfg = TrafficConfig::paper_default()
            .with_fixed_speed(60.0)
            .with_fixed_angle(30.0);
        let mut gen = TrafficGenerator::new(cfg, 5);
        for r in gen.generate_batch(100) {
            assert_eq!(r.speed_kmh, 60.0);
            assert_eq!(r.angle_deg, 30.0);
        }
    }

    #[test]
    fn handoff_fraction_is_respected() {
        let cfg = TrafficConfig::paper_default().with_handoff_fraction(0.4);
        let mut gen = TrafficGenerator::new(cfg, 77);
        let reqs = gen.generate_batch(10_000);
        let handoffs = reqs.iter().filter(|r| r.is_handoff).count() as f64 / 10_000.0;
        assert!((handoffs - 0.4).abs() < 0.03, "handoff fraction {handoffs}");
        // clamping
        let cfg = TrafficConfig::paper_default().with_handoff_fraction(7.0);
        assert_eq!(cfg.handoff_fraction, 1.0);
    }

    #[test]
    fn direction_predictability_concentrates_fast_users() {
        let base = TrafficConfig::paper_default().with_direction_predictability(1.0);
        let mean_abs_angle = |speed: f64| {
            let cfg = base.clone().with_fixed_speed(speed);
            let mut gen = TrafficGenerator::new(cfg, 99);
            let reqs = gen.generate_batch(2000);
            reqs.iter().map(|r| r.angle_deg.abs()).sum::<f64>() / reqs.len() as f64
        };
        let slow = mean_abs_angle(4.0);
        let fast = mean_abs_angle(110.0);
        assert!(
            fast < slow * 0.6,
            "fast users should have concentrated angles: fast {fast:.1} vs slow {slow:.1}"
        );
        // Fast users stay within the shrunken spread.
        let cfg = base.clone().with_fixed_speed(120.0);
        let mut gen = TrafficGenerator::new(cfg, 7);
        for r in gen.generate_batch(500) {
            assert!(r.angle_deg.abs() <= 25.0 + 1e-9);
        }
        // Predictability 0 keeps angles spread over the full range.
        let mut gen =
            TrafficGenerator::new(TrafficConfig::paper_default().with_fixed_speed(120.0), 7);
        let wide = gen
            .generate_batch(500)
            .iter()
            .any(|r| r.angle_deg.abs() > 90.0);
        assert!(wide);
        // Clamping of the builder argument.
        assert_eq!(
            TrafficConfig::paper_default()
                .with_direction_predictability(5.0)
                .direction_predictability,
            1.0
        );
    }

    #[test]
    fn angle_is_normalised() {
        let cfg = TrafficConfig::paper_default().with_fixed_angle(270.0);
        let mut gen = TrafficGenerator::new(cfg, 5);
        let r = gen.generate_batch(1).remove(0);
        assert_eq!(r.angle_deg, -90.0);
    }

    #[test]
    fn poisson_model_matches_plain_generator() {
        let cfg = TrafficConfig::paper_default();
        let plain_p = TrafficGenerator::new(cfg.clone(), 31).generate_poisson(300);
        let model_p = TrafficGenerator::with_model(cfg.clone(), &TrafficModel::Poisson, 31)
            .generate_poisson(300);
        assert_eq!(plain_p, model_p);
        let plain_b = TrafficGenerator::new(cfg.clone(), 31).generate_batch(300);
        let model_b =
            TrafficGenerator::with_model(cfg, &TrafficModel::Poisson, 31).generate_batch(300);
        assert_eq!(plain_b, model_b);
    }

    #[test]
    fn mmpp_is_deterministic_and_bursty() {
        let cfg = TrafficConfig::paper_default();
        let model = TrafficModel::Mmpp(MmppConfig::flash_crowd());
        let a = TrafficGenerator::with_model(cfg.clone(), &model, 99).generate_poisson(2000);
        let b = TrafficGenerator::with_model(cfg.clone(), &model, 99).generate_poisson(2000);
        assert_eq!(a, b);
        let other_seed =
            TrafficGenerator::with_model(cfg.clone(), &model, 100).generate_poisson(2000);
        assert_ne!(a, other_seed);
        for w in a.windows(2) {
            assert!(w[1].arrival_time >= w[0].arrival_time);
        }
        // Burstiness: the squared coefficient of variation of the gaps
        // must exceed the exponential's 1.0 by a clear margin.
        let gaps: Vec<f64> = a
            .windows(2)
            .map(|w| w[1].arrival_time - w[0].arrival_time)
            .collect();
        let mean = gaps.iter().sum::<f64>() / gaps.len() as f64;
        let var = gaps.iter().map(|g| (g - mean).powi(2)).sum::<f64>() / gaps.len() as f64;
        let scv = var / (mean * mean);
        assert!(
            scv > 1.3,
            "MMPP gaps should be over-dispersed, SCV = {scv:.2}"
        );
        // The rate-preserving preset keeps the long-run rate near the base.
        assert!((mean - 30.0).abs() < 6.0, "mean gap {mean:.1}");
    }

    #[test]
    fn zero_rate_mmpp_states_are_silent() {
        let cfg = TrafficConfig::paper_default();
        // on/off process: silence alternating with 2x bursts.
        let model = TrafficModel::Mmpp(MmppConfig::new().state(0.0, 60.0).state(2.0, 60.0));
        let reqs = TrafficGenerator::with_model(cfg, &model, 5).generate_poisson(500);
        assert_eq!(reqs.len(), 500);
        for w in reqs.windows(2) {
            assert!(w[1].arrival_time >= w[0].arrival_time);
        }
    }

    #[test]
    fn trace_replay_pins_times_classes_and_durations() {
        let cfg = TrafficConfig::paper_default();
        let trace = TraceConfig::from_text("5.0 60.0 voice\n10.0 120.0 video\n").unwrap();
        let model = TrafficModel::Trace(trace);
        let reqs = TrafficGenerator::with_model(cfg, &model, 1).generate_poisson(5);
        let times: Vec<f64> = reqs.iter().map(|r| r.arrival_time).collect();
        assert_eq!(times, vec![5.0, 15.0, 20.0, 30.0, 35.0]); // loops after 2 entries
        assert_eq!(reqs[0].class, ServiceClass::Voice);
        assert_eq!(reqs[1].class, ServiceClass::Video);
        assert_eq!(reqs[2].class, ServiceClass::Voice);
        assert_eq!(reqs[0].holding_time, 60.0);
        assert_eq!(reqs[1].holding_time, 120.0);
        assert_eq!(reqs[0].bandwidth, ServiceClass::Voice.paper_bandwidth());
    }

    #[test]
    fn trace_duration_policies() {
        let cfg = TrafficConfig::paper_default();
        let base = TraceConfig::from_text("5.0 200.0 voice\n").unwrap();
        let fixed = TrafficModel::Trace(
            base.clone()
                .with_duration(DurationPolicy::Fixed { duration_s: 42.0 }),
        );
        let r = TrafficGenerator::with_model(cfg.clone(), &fixed, 1).next_request();
        assert_eq!(r.holding_time, 42.0);
        let bounded = TrafficModel::Trace(base.clone().with_duration(DurationPolicy::Bounded {
            min_s: 10.0,
            max_s: 90.0,
        }));
        let r = TrafficGenerator::with_model(cfg.clone(), &bounded, 1).next_request();
        assert_eq!(r.holding_time, 90.0);
        let randomized = TrafficModel::Trace(base.with_duration(DurationPolicy::Randomized));
        let a = TrafficGenerator::with_model(cfg.clone(), &randomized, 1).next_request();
        let b = TrafficGenerator::with_model(cfg, &randomized, 1).next_request();
        assert_eq!(a.holding_time, b.holding_time, "still seed-deterministic");
        assert!(a.holding_time >= 1.0);
        assert_ne!(a.holding_time, 200.0);
    }

    #[test]
    fn exhausted_trace_falls_back_to_poisson() {
        let cfg = TrafficConfig::paper_default();
        let trace = TraceConfig::from_text("5.0 60.0 voice\n")
            .unwrap()
            .with_loop_replay(false);
        let model = TrafficModel::Trace(trace);
        let reqs = TrafficGenerator::with_model(cfg, &model, 8).generate_poisson(50);
        assert_eq!(reqs[0].arrival_time, 5.0);
        assert_eq!(reqs[0].class, ServiceClass::Voice);
        // The Poisson tail keeps strictly increasing times and draws all
        // three classes eventually.
        for w in reqs.windows(2) {
            assert!(w[1].arrival_time >= w[0].arrival_time);
        }
        assert!(reqs[1..].iter().any(|r| r.class == ServiceClass::Text));
    }

    #[test]
    fn trace_batch_mode_pins_class_and_duration() {
        let cfg = TrafficConfig::paper_default();
        let trace = TraceConfig::from_text("5.0 60.0 voice\n7.0 30.0 video\n").unwrap();
        let model = TrafficModel::Trace(trace);
        let reqs = TrafficGenerator::with_model(cfg, &model, 8).generate_batch(4);
        for r in &reqs {
            assert_eq!(r.arrival_time, 0.0);
        }
        assert_eq!(reqs[0].class, ServiceClass::Voice);
        assert_eq!(reqs[1].class, ServiceClass::Video);
        assert_eq!(reqs[2].class, ServiceClass::Voice);
        assert_eq!(reqs[3].holding_time, 30.0);
    }

    #[test]
    fn group_arrivals_share_times_and_preserve_rate() {
        let cfg = TrafficConfig::paper_default();
        let model = TrafficModel::Groups(GroupConfig::new(4, 4));
        let reqs = TrafficGenerator::with_model(cfg, &model, 3).generate_poisson(4000);
        // Exactly groups of 4 share each arrival time.
        let mut run = 1usize;
        let mut runs = Vec::new();
        for w in reqs.windows(2) {
            if w[1].arrival_time.to_bits() == w[0].arrival_time.to_bits() {
                run += 1;
            } else {
                runs.push(run);
                run = 1;
            }
        }
        runs.push(run);
        assert!(runs.iter().all(|&r| r == 4), "group sizes {runs:?}");
        // Leader gaps are stretched 4x, so the long-run per-call rate
        // stays near the base 30 s mean.
        let total = reqs.last().unwrap().arrival_time;
        let mean = total / reqs.len() as f64;
        assert!((mean - 30.0).abs() < 8.0, "mean inter-arrival {mean}");
    }

    #[test]
    #[should_panic(expected = "invalid traffic model")]
    fn with_model_rejects_invalid_models() {
        let _ = TrafficGenerator::with_model(
            TrafficConfig::paper_default(),
            &TrafficModel::Mmpp(MmppConfig::new()),
            1,
        );
    }

    #[test]
    fn request_real_time_flag() {
        let req = CallRequest {
            id: 0,
            arrival_time: 0.0,
            class: ServiceClass::Voice,
            bandwidth: 5,
            holding_time: 60.0,
            speed_kmh: 10.0,
            angle_deg: 0.0,
            is_handoff: false,
        };
        assert!(req.is_real_time());
    }
}
