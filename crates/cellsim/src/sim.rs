//! The simulation driver and the admission-controller interface.
//!
//! A [`Simulator`] owns a cell grid, one [`BaseStation`] per cell, a traffic
//! generator and an event queue; it feeds every arriving request to a
//! pluggable [`AdmissionController`] and records the outcome in
//! [`Metrics`].  Two driving modes are provided:
//!
//! * [`Simulator::run_batch`] — offer a fixed number of requesting
//!   connections against the (single-cell) base station, the workload shape
//!   of every figure in the paper's evaluation;
//! * [`Simulator::run_poisson`] — a full discrete-event run with Poisson
//!   arrivals, departures, user mobility and handoffs across a multi-cell
//!   grid (used by the examples that go beyond the paper's single cell).

use crate::event::{EventKind, EventQueue};
use crate::fault::{FaultEvent, FaultPlan};
use crate::geometry::{CellGrid, CellId, CellIdx};
use crate::metrics::Metrics;
use crate::mobility::{spawn_uniform, MobilityModel, UserState};
use crate::rng::SimRng;
use crate::slab::{Slab, SlotId};
use crate::station::{ActiveConnection, BaseStation};
use crate::telem::{self, DefaultRecorder};
use crate::traffic::{
    CallRequest, ServiceClass, SpawnCellAssigner, TrafficConfig, TrafficGenerator, TrafficModel,
};
use crate::{Bandwidth, SimTime};
use serde::{Deserialize, Serialize};
use telemetry::{Recorder, Stopwatch, TelemetrySnapshot};

/// Everything an admission controller may inspect about a request.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AdmissionRequest {
    /// Connection id.
    pub id: u64,
    /// The cell where the request is made.
    pub cell: CellId,
    /// Time of the request (seconds).
    pub time: SimTime,
    /// Service class.
    pub class: ServiceClass,
    /// Requested bandwidth (BU) — the `Rq` / `Sr` inputs of the FLCs.
    pub bandwidth: Bandwidth,
    /// Expected holding time (seconds).
    pub holding_time: SimTime,
    /// User speed (km/h) — the `Sp` input of FLC1.
    pub speed_kmh: f64,
    /// Angle between the user's heading and the direction to the serving
    /// base station (degrees) — the `An` input of FLC1.
    pub angle_deg: f64,
    /// Distance from the user to the serving base station (metres), when
    /// known.  The previous-work FACS variant uses this instead of priority.
    pub distance_m: Option<f64>,
    /// `true` if the request is a handoff of an on-going connection.
    pub is_handoff: bool,
}

impl AdmissionRequest {
    /// Build an admission request from a generated [`CallRequest`].
    #[must_use]
    pub fn from_call(call: &CallRequest, cell: CellId) -> Self {
        Self {
            id: call.id,
            cell,
            time: call.arrival_time,
            class: call.class,
            bandwidth: call.bandwidth,
            holding_time: call.holding_time,
            speed_kmh: call.speed_kmh,
            angle_deg: call.angle_deg,
            distance_m: None,
            is_handoff: call.is_handoff,
        }
    }

    /// Attach the user-to-station distance.
    #[must_use]
    pub fn with_distance(mut self, distance_m: f64) -> Self {
        self.distance_m = Some(distance_m.max(0.0));
        self
    }

    /// `true` for real-time classes (voice, video).
    #[must_use]
    pub fn is_real_time(&self) -> bool {
        self.class.is_real_time()
    }
}

/// The outcome of one admission decision.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AdmissionDecision {
    /// `true` to admit the connection.
    pub accept: bool,
    /// The controller's raw decision score.  For the fuzzy controllers this
    /// is the defuzzified A/R value in `[-1, 1]`; threshold controllers
    /// report a load margin.  Only used for reporting and debugging.
    pub score: f64,
}

impl AdmissionDecision {
    /// An accepting decision with the given score.
    #[must_use]
    pub fn accept(score: f64) -> Self {
        Self {
            accept: true,
            score,
        }
    }

    /// A rejecting decision with the given score.
    #[must_use]
    pub fn reject(score: f64) -> Self {
        Self {
            accept: false,
            score,
        }
    }
}

/// A pluggable call-admission-control policy.
///
/// The simulator guarantees that `decide` is only consulted for requests
/// that are *physically* possible to carry (the station still has
/// `request.bandwidth` BU free); controllers therefore only implement
/// policy, not capacity enforcement.  Controllers are notified of
/// admissions and releases so they can maintain internal state (e.g. the
/// shadow-cluster projections of SCC or the priority counters of FACS-P).
pub trait AdmissionController {
    /// Human-readable name used in reports.
    ///
    /// Static so the hot paths never allocate a label: a run's name is
    /// materialised into a `String` exactly once, when its [`SimReport`]
    /// is built.
    fn name(&self) -> &'static str;

    /// Decide whether to admit `request` given the current state of the
    /// serving `station`.
    fn decide(&mut self, request: &AdmissionRequest, station: &BaseStation) -> AdmissionDecision;

    /// Called after `request` has been admitted to `station`.
    fn on_admitted(&mut self, _request: &AdmissionRequest, _station: &BaseStation) {}

    /// Called after connection `connection_id` has left `station`
    /// (completion, drop or outbound handoff).
    fn on_released(&mut self, _connection_id: u64, _station: &BaseStation) {}

    /// Decide a whole batch of requests against **one station snapshot**.
    ///
    /// This is the batch counterpart of [`AdmissionController::decide`],
    /// added so a tick's arrivals can be screened in one pass (and so
    /// controllers with per-call setup cost can amortise it).  The
    /// contract:
    ///
    /// 1. `out` is cleared and refilled with exactly one decision per
    ///    request, in request order.
    /// 2. Every decision is evaluated against the *same* `station` state —
    ///    the snapshot passed in.  Implementations must **not** assume
    ///    earlier accepts in the batch consumed capacity; a caller that
    ///    goes on to admit must re-validate with
    ///    [`BaseStation::can_fit`] (and re-offer if it wants
    ///    admission-order-dependent policies like FLC2's counter state to
    ///    see the updated occupancy — this is why the simulator's
    ///    *admitting* paths stay sequential and only the screening path
    ///    [`Simulator::screen`] batches).
    /// 3. The produced decisions must be identical to calling `decide`
    ///    sequentially on the same snapshot; overrides may only change
    ///    *how fast* the answers are produced, never the answers.
    /// 4. `decide_batch` must not alter state that `decide` would not
    ///    alter (learning controllers update on `on_admitted` /
    ///    `on_released`, not here).
    fn decide_batch(
        &mut self,
        requests: &[AdmissionRequest],
        station: &BaseStation,
        out: &mut Vec<AdmissionDecision>,
    ) {
        out.clear();
        out.reserve(requests.len());
        for request in requests {
            out.push(self.decide(request, station));
        }
    }
}

/// Admits every request that physically fits.  The most permissive possible
/// policy; useful as an upper bound on acceptance and as a test double.
#[derive(Debug, Clone, Copy, Default)]
pub struct AlwaysAccept;

impl AdmissionController for AlwaysAccept {
    fn name(&self) -> &'static str {
        "always-accept"
    }

    fn decide(&mut self, _request: &AdmissionRequest, _station: &BaseStation) -> AdmissionDecision {
        AdmissionDecision::accept(1.0)
    }
}

/// Admits a request only while the post-admission utilisation stays at or
/// below a threshold (a classical guard-channel style policy).
#[derive(Debug, Clone, Copy)]
pub struct CapacityThreshold {
    /// Maximum allowed utilisation in `[0, 1]` for new calls.
    pub new_call_threshold: f64,
    /// Maximum allowed utilisation in `[0, 1]` for handoff calls (usually
    /// higher than `new_call_threshold` to prioritise handoffs).
    pub handoff_threshold: f64,
}

impl CapacityThreshold {
    /// A policy reserving the top `(1 - new_call_threshold)` share of the
    /// capacity for handoffs.
    #[must_use]
    pub fn new(new_call_threshold: f64, handoff_threshold: f64) -> Self {
        Self {
            new_call_threshold: new_call_threshold.clamp(0.0, 1.0),
            handoff_threshold: handoff_threshold.clamp(0.0, 1.0),
        }
    }
}

impl Default for CapacityThreshold {
    fn default() -> Self {
        Self::new(0.8, 1.0)
    }
}

impl AdmissionController for CapacityThreshold {
    fn name(&self) -> &'static str {
        "capacity-threshold"
    }

    fn decide(&mut self, request: &AdmissionRequest, station: &BaseStation) -> AdmissionDecision {
        let capacity = f64::from(station.capacity()).max(1.0);
        let after = f64::from(station.occupied() + request.bandwidth) / capacity;
        let threshold = if request.is_handoff {
            self.handoff_threshold
        } else {
            self.new_call_threshold
        };
        let margin = threshold - after;
        if margin >= 0.0 {
            AdmissionDecision::accept(margin)
        } else {
            AdmissionDecision::reject(margin)
        }
    }
}

/// Static configuration of a simulation run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimConfig {
    /// Radius of the hexagonal grid in cells (0 = the paper's single cell).
    pub grid_radius_cells: u32,
    /// Cell radius in metres.
    pub cell_radius_m: f64,
    /// Capacity of every base station (BU).
    pub station_capacity: Bandwidth,
    /// Workload parameters.
    pub traffic: TrafficConfig,
    /// Arrival process (defaults to the paper's Poisson model; absent in
    /// serialized configs from before the field existed).
    #[serde(default)]
    pub traffic_model: TrafficModel,
    /// Scheduled cell faults — outages and capacity degradation — applied
    /// during [`Simulator::run_poisson`] runs (defaults to no faults;
    /// absent in serialized configs from before the field existed).
    /// [`Simulator::run_batch`] ignores the plan: the batch workload
    /// offers everything at time 0 against one station, so there is no
    /// timeline for faults to act on.
    #[serde(default)]
    pub fault_plan: FaultPlan,
    /// Mobility model used for admitted users in multi-cell runs.
    pub mobility: MobilityModel,
    /// RNG seed.
    pub seed: u64,
    /// Interval between utilisation samples (seconds); 0 disables sampling.
    pub utilization_sample_interval_s: f64,
    /// Keep only every `stride`-th utilisation sample (0 and 1 both keep
    /// all — the historical behaviour); bounds sample-series memory on
    /// long metro-scale runs (see [`Metrics::set_utilization_stride`]).
    pub utilization_sample_stride: u32,
}

impl SimConfig {
    /// The paper's configuration: one 40-BU cell, the 70/20/10 mix and
    /// speeds of 0–120 km/h.
    #[must_use]
    pub fn paper_default() -> Self {
        Self {
            grid_radius_cells: 0,
            cell_radius_m: 1000.0,
            station_capacity: 40,
            traffic: TrafficConfig::paper_default(),
            traffic_model: TrafficModel::Poisson,
            fault_plan: FaultPlan::new(),
            mobility: MobilityModel::paper_default(),
            seed: 0xFAC5,
            utilization_sample_interval_s: 0.0,
            utilization_sample_stride: 1,
        }
    }

    /// Override the RNG seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Override the traffic configuration.
    #[must_use]
    pub fn with_traffic(mut self, traffic: TrafficConfig) -> Self {
        self.traffic = traffic;
        self
    }

    /// Override the arrival process (see [`TrafficModel`]).
    #[must_use]
    pub fn with_traffic_model(mut self, model: TrafficModel) -> Self {
        self.traffic_model = model;
        self
    }

    /// Schedule cell faults for the run (see [`FaultPlan`]).
    #[must_use]
    pub fn with_fault_plan(mut self, fault_plan: FaultPlan) -> Self {
        self.fault_plan = fault_plan;
        self
    }

    /// Override the station capacity.
    #[must_use]
    pub fn with_capacity(mut self, capacity: Bandwidth) -> Self {
        self.station_capacity = capacity;
        self
    }

    /// Use a multi-cell grid of the given radius.
    #[must_use]
    pub fn with_grid_radius(mut self, radius_cells: u32) -> Self {
        self.grid_radius_cells = radius_cells;
        self
    }

    /// Override the cell radius (metres, floored at 1 m).
    #[must_use]
    pub fn with_cell_radius(mut self, radius_m: f64) -> Self {
        self.cell_radius_m = radius_m.max(1.0);
        self
    }

    /// Override the mobility model.
    #[must_use]
    pub fn with_mobility(mut self, mobility: MobilityModel) -> Self {
        self.mobility = mobility;
        self
    }

    /// Enable utilisation sampling at the given interval (seconds; 0
    /// disables sampling).
    #[must_use]
    pub fn with_utilization_sampling(mut self, interval_s: f64) -> Self {
        self.utilization_sample_interval_s = interval_s.max(0.0);
        self
    }

    /// Keep only every `stride`-th utilisation sample (0 and 1 both keep
    /// every sample).
    #[must_use]
    pub fn with_utilization_stride(mut self, stride: u32) -> Self {
        self.utilization_sample_stride = stride;
        self
    }
}

impl Default for SimConfig {
    fn default() -> Self {
        Self::paper_default()
    }
}

/// Summary of one simulation run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimReport {
    /// Name of the admission controller that produced this run.
    pub controller: String,
    /// Number of requests offered.
    pub offered: u64,
    /// Number of requests accepted.
    pub accepted: u64,
    /// Percentage of accepted calls (0–100).
    pub acceptance_percentage: f64,
    /// Overall blocking probability.
    pub blocking_probability: f64,
    /// Dropping probability among admitted calls.
    pub dropping_probability: f64,
    /// Mean station utilisation over the run (only sampled runs).
    pub mean_utilization: f64,
    /// Full metric counters.
    pub metrics: Metrics,
}

impl SimReport {
    fn from_metrics(controller: &str, metrics: Metrics) -> Self {
        Self {
            controller: controller.to_string(),
            offered: metrics.offered(),
            accepted: metrics.accepted(),
            acceptance_percentage: metrics.acceptance_percentage(),
            blocking_probability: metrics.blocking_probability(),
            dropping_probability: metrics.dropping_probability(),
            mean_utilization: metrics.mean_utilization(),
            metrics,
        }
    }
}

/// The discrete-event simulator.
///
/// All per-cell and per-connection state is stored densely: one
/// [`BaseStation`] per grid cell in a flat `Vec` indexed by [`CellIdx`]
/// (grid order — iteration is deterministic by construction), user
/// kinematics in a generational [`Slab`] whose handles ride inside the
/// (small, `Copy`) events, and the arrival buffer plus all per-tick
/// scratch reused across runs.  A warmed-up simulator therefore runs its
/// event loop without heap allocation, and [`Simulator::reset`] recycles
/// the whole machine for the next sweep cell.
///
/// The simulator is generic over its telemetry [`Recorder`] (static
/// dispatch, defaulting to the feature-selected
/// [`DefaultRecorder`]): with the no-op
/// recorder every instrumentation call compiles to nothing, and with
/// [`telemetry::Registry`] the run is observable without perturbing it —
/// recording never touches the RNG streams or the event order, so reports
/// are byte-identical whichever recorder is plugged in.
pub struct Simulator<R: Recorder = DefaultRecorder> {
    config: SimConfig,
    grid: CellGrid,
    /// One station per grid cell, indexed by `CellIdx` (grid order).
    stations: Vec<BaseStation>,
    /// Kinematic state of admitted users (multi-cell runs only; the
    /// paper's single cell has no handoffs to predict).
    users: Slab<UserState>,
    queue: EventQueue,
    metrics: Metrics,
    clock: SimTime,
    rng: SimRng,
    /// Events popped by `run_poisson` loops since construction/reset.
    events_processed: u64,
    /// Reused arrival buffer (`run_batch` / `run_poisson` workloads).
    arrivals: Vec<CallRequest>,
    /// Reused scratch for expired-connection batches.
    expired: Vec<ActiveConnection>,
    /// Scheduled faults for the current `run_poisson` run, time-sorted
    /// (the fourth merge stream; armed from `config.fault_plan` at run
    /// start, cells outside the grid dropped).
    faults: Vec<FaultEvent>,
    /// Cursor into `faults`.
    next_fault: usize,
    /// Reused scratch for outage-dropped connection batches.
    outage_dropped: Vec<ActiveConnection>,
    /// Telemetry sink (observation-only; accumulates across runs and
    /// [`Simulator::reset`]s until [`Simulator::reset_telemetry`]).
    recorder: R,
}

impl Simulator {
    /// Build a simulator from a configuration, using the feature-selected
    /// [`DefaultRecorder`] (the zero-cost
    /// no-op recorder unless the `telemetry` cargo feature is enabled).
    #[must_use]
    pub fn new(config: SimConfig) -> Self {
        Self::with_telemetry(config)
    }
}

impl<R: Recorder> Simulator<R> {
    /// Build a simulator with an explicit recorder type, e.g.
    /// `Simulator::<telemetry::Registry>::with_telemetry(config)` to
    /// instrument a run in a build where the default recorder is the
    /// no-op.
    #[must_use]
    pub fn with_telemetry(config: SimConfig) -> Self {
        let grid = CellGrid::new(config.grid_radius_cells, config.cell_radius_m);
        let stations = Self::build_stations(&grid, config.station_capacity);
        let rng = SimRng::new(config.seed).derive(0xD15C);
        let mut metrics = Metrics::new();
        metrics.set_utilization_stride(config.utilization_sample_stride);
        Self {
            grid,
            stations,
            users: Slab::new(),
            queue: EventQueue::new(),
            metrics,
            clock: 0.0,
            rng,
            events_processed: 0,
            arrivals: Vec::new(),
            expired: Vec::new(),
            faults: Vec::new(),
            next_fault: 0,
            outage_dropped: Vec::new(),
            recorder: R::for_schema(&telem::SCHEMA),
            config,
        }
    }

    fn build_stations(grid: &CellGrid, capacity: Bandwidth) -> Vec<BaseStation> {
        grid.cells()
            .iter()
            .map(|&c| BaseStation::new(c, grid.center_of(&c), capacity))
            .collect()
    }

    /// Re-arm the simulator for a fresh run under `config`, reusing every
    /// internal buffer (stations, user slab, event heap, arrival and
    /// scratch vectors).  Equivalent to `*self = Simulator::new(config)` —
    /// a reset simulator produces bit-identical results to a freshly
    /// built one (asserted by tests) — but without re-allocating, which
    /// is what lets a sweep worker run thousands of cells on one
    /// simulator.
    pub fn reset(&mut self, config: SimConfig) {
        if self.grid.radius_cells() != config.grid_radius_cells
            || self.grid.cell_radius_m() != CellGrid::effective_radius(config.cell_radius_m)
        {
            self.grid = CellGrid::new(config.grid_radius_cells, config.cell_radius_m);
            self.stations.clear();
            self.stations.extend(
                self.grid.cells().iter().map(|&c| {
                    BaseStation::new(c, self.grid.center_of(&c), config.station_capacity)
                }),
            );
        } else {
            for station in &mut self.stations {
                station.reset_for_run(config.station_capacity);
            }
        }
        self.users.clear();
        self.queue.clear();
        self.metrics.reset();
        self.metrics
            .set_utilization_stride(config.utilization_sample_stride);
        self.clock = 0.0;
        self.rng = SimRng::new(config.seed).derive(0xD15C);
        self.events_processed = 0;
        self.faults.clear();
        self.next_fault = 0;
        self.outage_dropped.clear();
        self.config = config;
    }

    /// The simulator's configuration.
    #[must_use]
    pub fn config(&self) -> &SimConfig {
        &self.config
    }

    /// The cell grid.
    #[must_use]
    pub fn grid(&self) -> &CellGrid {
        &self.grid
    }

    /// The station serving `cell`, if it exists.
    #[must_use]
    pub fn station(&self, cell: &CellId) -> Option<&BaseStation> {
        self.grid
            .index_of(cell)
            .map(|idx| &self.stations[idx.index()])
    }

    /// All stations, in dense [`CellIdx`] (grid) order.
    #[must_use]
    pub fn stations(&self) -> &[BaseStation] {
        &self.stations
    }

    /// Current simulation time (seconds).
    #[must_use]
    pub fn now(&self) -> SimTime {
        self.clock
    }

    /// Events processed by [`Simulator::run_poisson`] loops since
    /// construction or the last [`Simulator::reset`] — the denominator of
    /// the engine's events-per-second throughput.
    #[must_use]
    pub fn events_processed(&self) -> u64 {
        self.events_processed
    }

    /// Metrics accumulated since the last report was taken.
    #[must_use]
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// Snapshot of everything the telemetry recorder collected so far.
    /// Telemetry accumulates across runs and [`Simulator::reset`]s (so a
    /// sweep worker's simulator aggregates all its cells); use
    /// [`Simulator::reset_telemetry`] to start a fresh window. Always
    /// empty with the no-op recorder.
    #[must_use]
    pub fn telemetry(&self) -> TelemetrySnapshot {
        self.recorder.snapshot()
    }

    /// Clear everything the telemetry recorder collected (capacity is
    /// retained).
    pub fn reset_telemetry(&mut self) {
        self.recorder.reset();
    }

    /// Build the run's report by *taking* the accumulated metrics (the
    /// accumulator is left empty for the next run; no clone of the sample
    /// series is made).
    fn take_report(&mut self, controller: &'static str) -> SimReport {
        let metrics = std::mem::take(&mut self.metrics);
        // `take` left a default accumulator; re-arm the configured
        // utilisation stride for the next run.
        self.metrics
            .set_utilization_stride(self.config.utilization_sample_stride);
        SimReport::from_metrics(controller, metrics)
    }

    /// Offer `n` requesting connections (all generated from the configured
    /// traffic model, all targeting the origin cell, offered in sequence at
    /// time 0) to `controller` — the workload of the paper's figures.
    ///
    /// Admitted connections stay active for their holding time; because all
    /// requests are offered together, the base-station capacity is the
    /// binding resource exactly as in the paper's "number of requesting
    /// connections" sweeps.
    ///
    /// The returned report *takes* the metrics accumulated since the last
    /// report (the accumulator restarts from zero), so back-to-back runs
    /// on one simulator each describe exactly their own workload.
    pub fn run_batch<C: AdmissionController + ?Sized>(
        &mut self,
        controller: &mut C,
        n: usize,
    ) -> SimReport {
        let watch = Stopwatch::started(R::ENABLED);
        let mut generator = TrafficGenerator::with_model(
            self.config.traffic.clone(),
            &self.config.traffic_model,
            self.rng.derive(1).seed(),
        );
        let mut requests = std::mem::take(&mut self.arrivals);
        generator.generate_batch_into(n, &mut requests);
        self.offer_requests(controller, &requests);
        self.arrivals = requests;
        if let Some(ns) = watch.elapsed_ns() {
            self.recorder.span_ns(telem::span::RUN_BATCH, ns);
        }
        self.take_report(controller.name())
    }

    /// Screen a batch of requests against the **current** station
    /// snapshots without admitting anything: one
    /// [`AdmissionController::decide_batch`] call per run of
    /// consecutive same-cell requests, one decision per request in order.
    ///
    /// This is the read-only "what would you do with this tick's
    /// arrivals?" pass; requests whose cell has no station are rejected
    /// with score `-1`.  Because nothing is admitted, the decisions for
    /// *stateful* policies (e.g. FLC2's counter state) can differ from
    /// what a sequential offer-and-admit pass would produce — that is
    /// inherent to batching, and why the admitting paths
    /// ([`Simulator::run_batch`], [`Simulator::run_poisson`]) stay
    /// sequential.
    pub fn screen<C: AdmissionController + ?Sized>(
        &self,
        controller: &mut C,
        requests: &[AdmissionRequest],
        out: &mut Vec<AdmissionDecision>,
    ) {
        out.clear();
        out.reserve(requests.len());
        let mut chunk = Vec::new();
        let mut i = 0;
        while i < requests.len() {
            let cell = requests[i].cell;
            let mut j = i + 1;
            while j < requests.len() && requests[j].cell == cell {
                j += 1;
            }
            match self.grid.index_of(&cell) {
                // The whole batch is one same-cell run (the common
                // single-cell case): decide straight into `out`, no copy.
                Some(idx) if i == 0 && j == requests.len() => {
                    controller.decide_batch(requests, &self.stations[idx.index()], out);
                }
                Some(idx) => {
                    controller.decide_batch(
                        &requests[i..j],
                        &self.stations[idx.index()],
                        &mut chunk,
                    );
                    out.extend_from_slice(&chunk);
                }
                None => out.extend((i..j).map(|_| AdmissionDecision::reject(-1.0))),
            }
            i = j;
        }
    }

    /// Offer a pre-generated sequence of requests (all against the origin
    /// cell).  Useful when several controllers must see the *identical*
    /// arrival sequence, as in the paper's FACS vs. SCC and FACS-P vs. FACS
    /// comparisons.
    pub fn offer_requests<C: AdmissionController + ?Sized>(
        &mut self,
        controller: &mut C,
        requests: &[CallRequest],
    ) {
        let cell = CellId::origin();
        let idx = self
            .grid
            .index_of(&cell)
            .expect("every grid contains the origin cell");
        for call in requests {
            self.clock = self.clock.max(call.arrival_time);
            // Complete any calls that finished before this arrival.
            self.release_expired(controller, idx);
            let distance = self.rng.uniform(0.0, self.grid.cell_radius_m()).max(0.0);
            let request = AdmissionRequest::from_call(call, cell).with_distance(distance);
            self.offer_one(controller, &request, idx);
        }
    }

    /// Run a full Poisson-arrival discrete-event simulation for
    /// `total_requests` arrivals (multi-cell aware: admitted users move
    /// according to the mobility model and hand off between cells).
    ///
    /// Arrivals are pre-generated (time-sorted by construction) into a
    /// reused buffer and consumed as a stream, mobility ticks are computed
    /// on the fly, and only the *run-time* events — departures and
    /// handoffs — live in the heap, which therefore stays at the size of
    /// the concurrent-call population instead of the whole workload.
    /// Scheduled faults from [`SimConfig::fault_plan`] form a fourth
    /// stream consumed the same way.  The streams are merged in exactly
    /// the order the one-big-heap engine produced (faults before
    /// arrivals before ticks before run-time events on time ties,
    /// matching its sequence numbering), so results are bit-identical;
    /// after warm-up the loop is allocation-free.  Like
    /// [`Simulator::run_batch`], the returned report takes the metrics
    /// accumulated since the last report.
    pub fn run_poisson<C: AdmissionController + ?Sized>(
        &mut self,
        controller: &mut C,
        total_requests: usize,
    ) -> SimReport {
        let watch = Stopwatch::started(R::ENABLED);
        let mut generator = TrafficGenerator::with_model(
            self.config.traffic.clone(),
            &self.config.traffic_model,
            self.rng.derive(2).seed(),
        );
        let mut arrivals = std::mem::take(&mut self.arrivals);
        generator.generate_poisson_into(total_requests, &mut arrivals);
        let mut spawn_rng = self.rng.derive(3);
        let mut spawn_cells = SpawnCellAssigner::new(&self.config.traffic_model);

        // Fault stream: scheduled capacity changes from the config's
        // [`FaultPlan`], time-sorted, cells outside the grid dropped.
        // Faults are pure config data — arming them touches no RNG
        // stream, so a fault-free plan leaves the run bit-identical to
        // builds that predate the field.
        self.faults.clear();
        self.next_fault = 0;
        let cells = self.grid.len();
        self.faults.extend(
            self.config
                .fault_plan
                .sorted_events()
                .into_iter()
                .filter(|f| (f.cell as usize) < cells),
        );

        let origin = self
            .grid
            .index_of(&CellId::origin())
            .expect("every grid contains the origin cell");
        let single_cell = self.grid.len() == 1;

        // Mobility-tick stream: the same `t += interval` accumulation the
        // scheduling loop used, so sample times are bit-identical.
        let tick_interval = self.config.utilization_sample_interval_s;
        let horizon = arrivals.last().map(|c| c.arrival_time).unwrap_or(0.0);
        let mut next_tick = 0.0;
        let mut ticks_pending = tick_interval > 0.0;

        let mut next_arrival = 0usize;
        loop {
            // Earliest of the four streams; on exact time ties faults fire
            // before arrivals, arrivals before ticks and ticks before
            // run-time events — mirroring the sequence numbers the
            // one-heap engine assigned (all arrivals first, then all
            // ticks, then run-time events; faults are infrastructure
            // changes that take effect before same-instant traffic, the
            // [`crate::shard::RANK_FAULT`] ordering of the sharded
            // engine).
            let fault_time = self.faults.get(self.next_fault).map(|f| f.time);
            let arrival_time = arrivals.get(next_arrival).map(|c| c.arrival_time);
            let tick_time = if ticks_pending && next_tick <= horizon {
                Some(next_tick)
            } else {
                ticks_pending = false;
                None
            };
            let queued_time = self.queue.peek().map(|e| e.time);

            let fire_fault = match fault_time {
                Some(f) => {
                    arrival_time.is_none_or(|a| f <= a)
                        && tick_time.is_none_or(|t| f <= t)
                        && queued_time.is_none_or(|q| f <= q)
                }
                None => false,
            };
            if fire_fault {
                let time = fault_time.expect("checked above");
                self.clock = time;
                self.events_processed += 1;
                self.recorder.add(telem::counter::EVENT_FAULT, 1);
                let fault = self.faults[self.next_fault];
                self.next_fault += 1;
                self.apply_fault(controller, &fault);
                continue;
            }
            let fire_arrival = match (arrival_time, tick_time, queued_time) {
                (Some(a), t, q) => t.is_none_or(|t| a <= t) && q.is_none_or(|q| a <= q),
                _ => false,
            };
            if fire_arrival {
                let time = arrival_time.expect("checked above");
                self.clock = time;
                self.events_processed += 1;
                let call = arrivals[next_arrival];
                next_arrival += 1;
                self.recorder.add(telem::counter::EVENT_ARRIVAL, 1);
                let cell = if single_cell {
                    origin
                } else {
                    CellIdx(spawn_cells.assign(time, self.grid.len(), &mut spawn_rng))
                };
                self.handle_arrival(controller, cell, &call);
                continue;
            }
            let fire_tick = match (tick_time, queued_time) {
                (Some(t), q) => q.is_none_or(|q| t <= q),
                _ => false,
            };
            if fire_tick {
                self.clock = next_tick;
                self.events_processed += 1;
                next_tick += tick_interval;
                self.recorder.add(telem::counter::EVENT_MOBILITY_TICK, 1);
                // Stations are stored in grid order, so the dense walk is
                // deterministic by construction — no iteration-order
                // workaround needed.
                for station in &self.stations {
                    self.metrics.record_utilization(
                        self.clock,
                        station.occupied(),
                        station.capacity(),
                    );
                }
                continue;
            }
            let Some(event) = self.queue.pop() else {
                break;
            };
            self.clock = event.time;
            self.events_processed += 1;
            if R::ENABLED {
                // Depth *including* the popped event; gated so the
                // disabled build computes nothing here.
                let depth = self.queue.len() as u64 + 1;
                self.recorder.observe(telem::histogram::HEAP_DEPTH, depth);
                self.recorder.high_water(telem::gauge::HEAP_DEPTH, depth);
            }
            match event.kind {
                EventKind::Arrival { .. } => {
                    // Arrivals stream from the sorted buffer above and the
                    // queue is private to the simulator, so one can never
                    // be heap-scheduled; resolving a stale arrival index
                    // against another run's buffer would silently process
                    // the wrong request, so enforce the invariant.
                    unreachable!("arrivals are streamed, never heap-scheduled");
                }
                EventKind::Departure {
                    cell,
                    connection_id,
                    user,
                } => {
                    self.recorder.add(telem::counter::EVENT_DEPARTURE, 1);
                    self.handle_departure(controller, cell, connection_id, user);
                }
                EventKind::Handoff {
                    from,
                    to,
                    connection_id,
                    user,
                } => {
                    self.recorder.add(telem::counter::EVENT_HANDOFF, 1);
                    self.handle_handoff(controller, from, to, connection_id, user);
                }
                EventKind::MobilityTick => {
                    for station in &self.stations {
                        self.metrics.record_utilization(
                            self.clock,
                            station.occupied(),
                            station.capacity(),
                        );
                    }
                }
                EventKind::EndOfSimulation => break,
            }
        }
        self.arrivals = arrivals;
        if let Some(ns) = watch.elapsed_ns() {
            self.recorder.span_ns(telem::span::RUN_POISSON, ns);
        }
        self.take_report(controller.name())
    }

    fn offer_one<C: AdmissionController + ?Sized>(
        &mut self,
        controller: &mut C,
        request: &AdmissionRequest,
        cell: CellIdx,
    ) {
        self.metrics
            .record_offered(request.class, request.is_handoff);
        let station = &self.stations[cell.index()];
        let physically_fits = station.can_fit(request.bandwidth);
        let decision = if physically_fits {
            controller.decide(request, station)
        } else {
            AdmissionDecision::reject(-1.0)
        };
        if decision.accept && physically_fits {
            self.stations[cell.index()]
                .admit(
                    request.id,
                    request.class,
                    request.bandwidth,
                    request.time,
                    request.holding_time,
                    request.is_handoff,
                )
                .expect("admission checked via can_fit");
            self.metrics
                .record_accepted(request.class, request.bandwidth, request.is_handoff);
            if R::ENABLED {
                self.recorder.add(
                    telem::admission_counter(request.class, true, request.is_handoff),
                    1,
                );
            }
            controller.on_admitted(request, &self.stations[cell.index()]);
        } else {
            self.metrics
                .record_blocked(request.class, request.is_handoff);
            if R::ENABLED {
                self.recorder.add(
                    telem::admission_counter(request.class, false, request.is_handoff),
                    1,
                );
            }
        }
    }

    /// Apply one scheduled fault: retune the cell's capacity and, for
    /// outages, force-drop every active connection (counted both in the
    /// per-class `dropped` counters and in
    /// [`Metrics::dropped_by_outage`]). Mirrors `Shard::apply_fault` in
    /// the sharded engine exactly, so single-cell faulted runs stay
    /// bit-identical between the two engines.
    fn apply_fault<C: AdmissionController + ?Sized>(
        &mut self,
        controller: &mut C,
        fault: &FaultEvent,
    ) {
        let cell = fault.cell as usize;
        self.stations[cell].set_capacity(fault.kind.capacity(self.config.station_capacity));
        if fault.kind.drops_connections() {
            let mut dropped = std::mem::take(&mut self.outage_dropped);
            self.stations[cell].drop_all_into(&mut dropped);
            for conn in &dropped {
                self.metrics.record_dropped(conn.class);
                self.metrics.record_dropped_by_outage();
                if R::ENABLED {
                    self.recorder.add(telem::counter::OUTAGE_DROPPED, 1);
                }
                controller.on_released(conn.id, &self.stations[cell]);
            }
            self.outage_dropped = dropped;
            // The dropped users' slab slots are deliberately leaked for
            // the rest of the run: their stale Departure/Handoff events
            // still in the heap miss at the station (the connection is
            // gone) and become no-ops, exactly like post-handoff stale
            // departures, so nothing ever resolves the slots again.
        }
    }

    fn release_expired<C: AdmissionController + ?Sized>(
        &mut self,
        controller: &mut C,
        cell: CellIdx,
    ) {
        let mut finished = std::mem::take(&mut self.expired);
        self.stations[cell.index()].release_expired_into(self.clock, &mut finished);
        for conn in &finished {
            self.metrics.record_completed(conn.class);
            controller.on_released(conn.id, &self.stations[cell.index()]);
        }
        self.expired = finished;
    }

    fn handle_arrival<C: AdmissionController + ?Sized>(
        &mut self,
        controller: &mut C,
        cell: CellIdx,
        call: &CallRequest,
    ) {
        let cell_id = self.grid.cell_id(cell);
        let center = self.grid.center_of(&cell_id);
        let mut spawn_rng = self.rng.derive(call.id ^ 0xA11C);
        let user = if self.grid.len() > 1 {
            // Materialise the user's kinematic state so the request's
            // speed and angle are geometrically consistent, re-orienting
            // the heading so the angle to the base station matches the
            // sampled request angle.
            let user = spawn_uniform(
                &center,
                self.grid.cell_radius_m(),
                (call.speed_kmh, call.speed_kmh),
                &mut spawn_rng,
            );
            let bearing = user.position.bearing_to(&center);
            Some(UserState::new(
                user.position,
                call.speed_kmh,
                bearing + call.angle_deg,
            ))
        } else {
            // Single cell: no handoffs ever consume the kinematics, only
            // the spawn distance survives into the request.  Evaluate the
            // exact prefix of `spawn_uniform`'s draw sequence and float
            // expressions (radius, then angle; the speed range is
            // degenerate and draws nothing) so the distance is
            // bit-identical to the full path, and skip the unused
            // heading draw and re-orientation.
            None
        };
        let distance = match &user {
            Some(user) => user.distance_to(&center),
            None => {
                let r = self.grid.cell_radius_m().max(0.0) * spawn_rng.uniform(0.0, 1.0).sqrt();
                let theta = spawn_rng.uniform(-std::f64::consts::PI, std::f64::consts::PI);
                let pos = center.translated(r * theta.cos(), r * theta.sin());
                pos.distance(&center)
            }
        };

        let request = AdmissionRequest::from_call(call, cell_id).with_distance(distance);
        let before_accepted = self.metrics.accepted();
        self.offer_one(controller, &request, cell);
        let admitted = self.metrics.accepted() > before_accepted;
        if !admitted {
            return;
        }
        // Only multi-cell runs track user kinematics: a single cell has no
        // handoffs to predict, so the slot stays `None` and the slab is
        // never touched.
        let slot = user.map(|user| self.users.insert(user));
        if R::ENABLED {
            self.recorder
                .high_water(telem::gauge::SLAB_USERS, self.users.len() as u64);
        }
        // Schedule the departure, and a handoff if the user exits the cell
        // before the call completes.
        let departure_at = self.clock + call.holding_time;
        self.queue.schedule(
            departure_at,
            EventKind::Departure {
                cell,
                connection_id: call.id,
                user: slot,
            },
        );
        if let Some(slot) = slot {
            self.maybe_schedule_handoff(cell, call.id, slot, departure_at);
        }
    }

    fn maybe_schedule_handoff(
        &mut self,
        cell: CellIdx,
        connection_id: u64,
        slot: SlotId,
        departure_at: SimTime,
    ) {
        let Some(user) = self.users.get(slot).copied() else {
            return;
        };
        let cell_id = self.grid.cell_id(cell);
        let center = self.grid.center_of(&cell_id);
        let Some(exit_in) = user.time_to_exit(&center, self.grid.cell_radius_m()) else {
            return;
        };
        let handoff_at = self.clock + exit_in;
        if handoff_at >= departure_at {
            return;
        }
        let Some(target) = self.grid.next_cell_along(&cell_id, user.heading_deg) else {
            return;
        };
        let to = self
            .grid
            .index_of(&target)
            .expect("next_cell_along only returns grid cells");
        self.queue.schedule(
            handoff_at,
            EventKind::Handoff {
                from: cell,
                to,
                connection_id,
                user: slot,
            },
        );
    }

    fn handle_departure<C: AdmissionController + ?Sized>(
        &mut self,
        controller: &mut C,
        cell: CellIdx,
        connection_id: u64,
        user: Option<SlotId>,
    ) {
        // After an intervening handoff the connection is gone from this
        // station and the release misses: the event is stale and a no-op
        // (its replacement was scheduled in the new cell).
        if let Ok(conn) = self.stations[cell.index()].release(connection_id) {
            self.metrics.record_completed(conn.class);
            if let Some(slot) = user {
                self.users.remove(slot);
            }
            controller.on_released(connection_id, &self.stations[cell.index()]);
        }
    }

    fn handle_handoff<C: AdmissionController + ?Sized>(
        &mut self,
        controller: &mut C,
        from: CellIdx,
        to: CellIdx,
        connection_id: u64,
        slot: SlotId,
    ) {
        // The connection may have already completed or been dropped.
        let Ok(conn) = self.stations[from.index()].transfer_out(connection_id) else {
            return;
        };
        controller.on_released(connection_id, &self.stations[from.index()]);

        let Some(user) = self.users.get(slot).copied() else {
            return;
        };
        let to_id = self.grid.cell_id(to);
        let target_center = self.grid.center_of(&to_id);
        let remaining = (conn.ends_at - self.clock).max(0.0);
        let request = AdmissionRequest {
            id: connection_id,
            cell: to_id,
            time: self.clock,
            class: conn.class,
            bandwidth: conn.bandwidth,
            holding_time: remaining,
            speed_kmh: user.speed_kmh,
            angle_deg: user.angle_to_station(&target_center),
            distance_m: Some(user.distance_to(&target_center)),
            is_handoff: true,
        };
        self.metrics.record_offered(request.class, true);
        let target_station = &self.stations[to.index()];
        let fits = target_station.can_fit(request.bandwidth);
        let decision = if fits {
            controller.decide(&request, target_station)
        } else {
            AdmissionDecision::reject(-1.0)
        };
        if decision.accept && fits {
            self.stations[to.index()]
                .admit(
                    connection_id,
                    request.class,
                    request.bandwidth,
                    self.clock,
                    remaining,
                    true,
                )
                .expect("admission checked via can_fit");
            self.metrics
                .record_accepted(request.class, request.bandwidth, true);
            if R::ENABLED {
                self.recorder
                    .add(telem::admission_counter(request.class, true, true), 1);
            }
            controller.on_admitted(&request, &self.stations[to.index()]);
            // Departure is rescheduled in the new cell; the old departure
            // event will find the connection gone and become a no-op.
            self.queue.schedule(
                conn.ends_at,
                EventKind::Departure {
                    cell: to,
                    connection_id,
                    user: Some(slot),
                },
            );
            self.maybe_schedule_handoff(to, connection_id, slot, conn.ends_at);
        } else {
            // Failed handoff: the on-going call is dropped — the QoS
            // violation the paper's controllers are designed to avoid.
            self.metrics.record_blocked(request.class, true);
            self.metrics.record_dropped(request.class);
            if R::ENABLED {
                self.recorder
                    .add(telem::admission_counter(request.class, false, true), 1);
            }
            self.users.remove(slot);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn always_accept_fills_the_station() {
        let mut sim = Simulator::new(SimConfig::paper_default().with_seed(1));
        let mut controller = AlwaysAccept;
        let report = sim.run_batch(&mut controller, 100);
        assert_eq!(report.offered, 100);
        assert!(report.accepted > 0);
        // The 40-BU station cannot hold 100 requests averaging 2.7 BU.
        assert!(report.accepted < 100);
        let station = sim.station(&CellId::origin()).unwrap();
        assert!(station.occupied() <= station.capacity());
        // With AlwaysAccept the only rejections are capacity rejections, so
        // the station should be nearly full.
        assert!(station.occupied() >= station.capacity() - 10);
    }

    #[test]
    fn small_batches_are_fully_accepted() {
        let mut sim = Simulator::new(SimConfig::paper_default().with_seed(2));
        let mut controller = AlwaysAccept;
        let report = sim.run_batch(&mut controller, 5);
        assert_eq!(report.offered, 5);
        assert_eq!(report.accepted, 5);
        assert_eq!(report.acceptance_percentage, 100.0);
        assert_eq!(report.blocking_probability, 0.0);
    }

    #[test]
    fn batch_runs_are_deterministic_per_seed() {
        let run = |seed: u64| {
            let mut sim = Simulator::new(SimConfig::paper_default().with_seed(seed));
            let mut controller = AlwaysAccept;
            sim.run_batch(&mut controller, 60).accepted
        };
        assert_eq!(run(7), run(7));
    }

    #[test]
    fn capacity_threshold_accepts_less_than_always_accept() {
        let n = 80;
        let mut sim_a = Simulator::new(SimConfig::paper_default().with_seed(3));
        let mut always = AlwaysAccept;
        let a = sim_a.run_batch(&mut always, n);

        let mut sim_t = Simulator::new(SimConfig::paper_default().with_seed(3));
        let mut threshold = CapacityThreshold::new(0.5, 1.0);
        let t = sim_t.run_batch(&mut threshold, n);

        assert!(t.accepted <= a.accepted);
        assert!(t.accepted > 0);
        // Threshold controller keeps utilisation at or below ~50 %.
        let station = sim_t.station(&CellId::origin()).unwrap();
        assert!(station.occupied() <= 20 + 10); // 50% of 40 plus one large call of slack
    }

    #[test]
    fn capacity_threshold_scores_sign_matches_decision() {
        let mut c = CapacityThreshold::default();
        let station = BaseStation::paper_default();
        let req = AdmissionRequest {
            id: 0,
            cell: CellId::origin(),
            time: 0.0,
            class: ServiceClass::Video,
            bandwidth: 10,
            holding_time: 60.0,
            speed_kmh: 50.0,
            angle_deg: 0.0,
            distance_m: None,
            is_handoff: false,
        };
        let d = c.decide(&req, &station);
        assert!(d.accept);
        assert!(d.score >= 0.0);
    }

    #[test]
    fn offer_requests_uses_identical_sequences() {
        let cfg = SimConfig::paper_default().with_seed(9);
        let mut gen = TrafficGenerator::new(cfg.traffic.clone(), 99);
        let requests = gen.generate_batch(50);

        let mut sim_a = Simulator::new(cfg.clone());
        let mut a = AlwaysAccept;
        sim_a.offer_requests(&mut a, &requests);

        let mut sim_b = Simulator::new(cfg);
        let mut b = AlwaysAccept;
        sim_b.offer_requests(&mut b, &requests);

        assert_eq!(sim_a.metrics().accepted(), sim_b.metrics().accepted());
        assert_eq!(sim_a.metrics().offered(), 50);
    }

    #[test]
    fn poisson_run_single_cell_completes_calls() {
        let mut cfg = SimConfig::paper_default().with_seed(4);
        cfg.traffic.mean_interarrival_s = 10.0;
        cfg.traffic.mean_holding_s = 60.0;
        cfg.utilization_sample_interval_s = 50.0;
        let mut sim = Simulator::new(cfg);
        let mut controller = AlwaysAccept;
        let report = sim.run_poisson(&mut controller, 200);
        assert_eq!(report.offered, 200);
        assert!(report.accepted > 100, "accepted {}", report.accepted);
        // With arrivals spread over time most admitted calls complete.
        assert!(report.metrics.completed() > 0);
        assert!(report.mean_utilization > 0.0);
        assert_eq!(report.dropping_probability, 0.0); // single cell: no handoffs
    }

    #[test]
    fn poisson_run_multi_cell_produces_handoffs() {
        let mut cfg = SimConfig::paper_default().with_seed(5).with_grid_radius(2);
        cfg.cell_radius_m = 300.0; // small cells + long calls => handoffs
        cfg.traffic.mean_interarrival_s = 5.0;
        cfg.traffic.mean_holding_s = 600.0;
        cfg.traffic.min_speed_kmh = 60.0;
        cfg.traffic.max_speed_kmh = 120.0;
        let mut sim = Simulator::new(cfg);
        let mut controller = AlwaysAccept;
        let report = sim.run_poisson(&mut controller, 300);
        let (offered, accepted, _failed) = report.metrics.handoffs();
        assert!(offered > 0, "expected some handoffs");
        assert!(accepted <= offered);
    }

    #[test]
    fn controller_hooks_are_invoked() {
        #[derive(Default)]
        struct Counting {
            admitted: usize,
            released: usize,
        }
        impl AdmissionController for Counting {
            fn name(&self) -> &'static str {
                "counting"
            }
            fn decide(&mut self, _r: &AdmissionRequest, _s: &BaseStation) -> AdmissionDecision {
                AdmissionDecision::accept(1.0)
            }
            fn on_admitted(&mut self, _r: &AdmissionRequest, _s: &BaseStation) {
                self.admitted += 1;
            }
            fn on_released(&mut self, _id: u64, _s: &BaseStation) {
                self.released += 1;
            }
        }
        let mut cfg = SimConfig::paper_default().with_seed(6);
        cfg.traffic.mean_interarrival_s = 20.0;
        cfg.traffic.mean_holding_s = 30.0;
        let mut sim = Simulator::new(cfg);
        let mut controller = Counting::default();
        let report = sim.run_poisson(&mut controller, 100);
        assert_eq!(controller.admitted as u64, report.accepted);
        assert!(controller.released > 0);
    }

    #[test]
    fn report_fields_are_consistent() {
        let mut sim = Simulator::new(SimConfig::paper_default().with_seed(8));
        let mut controller = AlwaysAccept;
        let report = sim.run_batch(&mut controller, 70);
        assert_eq!(report.offered, report.accepted + report.metrics.blocked());
        assert!(
            (report.acceptance_percentage - 100.0 * report.accepted as f64 / report.offered as f64)
                .abs()
                < 1e-9
        );
        assert_eq!(report.controller, "always-accept");
    }

    #[test]
    fn decide_batch_matches_sequential_decide() {
        let mut c = CapacityThreshold::default();
        let station = BaseStation::paper_default();
        let requests: Vec<AdmissionRequest> = (0..12)
            .map(|i| AdmissionRequest {
                id: i,
                cell: CellId::origin(),
                time: 0.0,
                class: ServiceClass::Voice,
                bandwidth: 5 + (i % 3) as u32 * 2,
                holding_time: 60.0,
                speed_kmh: 10.0 * i as f64,
                angle_deg: 0.0,
                distance_m: None,
                is_handoff: i % 2 == 0,
            })
            .collect();
        let mut batch = vec![AdmissionDecision::reject(0.0); 3]; // pre-filled: must be cleared
        c.decide_batch(&requests, &station, &mut batch);
        assert_eq!(batch.len(), requests.len());
        for (r, d) in requests.iter().zip(&batch) {
            assert_eq!(*d, c.decide(r, &station), "snapshot semantics for {}", r.id);
        }
    }

    #[test]
    fn screen_groups_by_cell_and_rejects_missing_stations() {
        let sim = Simulator::new(SimConfig::paper_default().with_seed(14));
        let mut c = AlwaysAccept;
        let mk = |id: u64, cell: CellId| AdmissionRequest {
            id,
            cell,
            time: 0.0,
            class: ServiceClass::Text,
            bandwidth: 1,
            holding_time: 60.0,
            speed_kmh: 30.0,
            angle_deg: 0.0,
            distance_m: None,
            is_handoff: false,
        };
        let ghost = CellId::new(5, 5); // single-cell grid: no such station
        let requests = vec![
            mk(1, CellId::origin()),
            mk(2, CellId::origin()),
            mk(3, ghost),
            mk(4, CellId::origin()),
        ];
        let mut out = Vec::new();
        sim.screen(&mut c, &requests, &mut out);
        assert_eq!(out.len(), 4);
        assert!(out[0].accept && out[1].accept && out[3].accept);
        assert!(!out[2].accept);
        assert_eq!(out[2].score, -1.0);
    }

    #[test]
    fn reset_is_bit_identical_to_a_fresh_simulator() {
        // The sweep engine reuses one simulator per worker via `reset`;
        // that is only sound if a reset simulator reproduces a fresh one
        // exactly — across run modes, grid shapes and capacities.
        let configs = [
            SimConfig::paper_default().with_seed(11),
            SimConfig::paper_default().with_seed(12).with_capacity(25),
            {
                let mut cfg = SimConfig::paper_default()
                    .with_seed(13)
                    .with_grid_radius(1)
                    .with_cell_radius(300.0)
                    .with_utilization_sampling(40.0);
                cfg.traffic.mean_interarrival_s = 3.0;
                cfg.traffic.mean_holding_s = 300.0;
                cfg.traffic.min_speed_kmh = 40.0;
                cfg
            },
            SimConfig::paper_default().with_seed(14),
        ];
        // One reused simulator, reset before every run...
        let mut reused = Simulator::new(configs[0].clone());
        for (i, cfg) in configs.iter().enumerate() {
            reused.reset(cfg.clone());
            let mut a = AlwaysAccept;
            let reused_report = if cfg.grid_radius_cells > 0 {
                reused.run_poisson(&mut a, 150)
            } else {
                reused.run_batch(&mut a, 80)
            };
            // ...must match a simulator built from scratch for this cell.
            let mut fresh = Simulator::new(cfg.clone());
            let mut b = AlwaysAccept;
            let fresh_report = if cfg.grid_radius_cells > 0 {
                fresh.run_poisson(&mut b, 150)
            } else {
                fresh.run_batch(&mut b, 80)
            };
            assert_eq!(reused_report, fresh_report, "config #{i} diverged");
            assert_eq!(
                reused.station(&CellId::origin()).unwrap().occupied(),
                fresh.station(&CellId::origin()).unwrap().occupied(),
                "station state after run #{i}"
            );
        }
    }

    #[test]
    fn events_processed_counts_poisson_loop_events() {
        let mut cfg = SimConfig::paper_default().with_seed(15);
        cfg.traffic.mean_interarrival_s = 10.0;
        cfg.traffic.mean_holding_s = 60.0;
        let mut sim = Simulator::new(cfg.clone());
        let mut c = AlwaysAccept;
        let report = sim.run_poisson(&mut c, 200);
        // Every arrival is an event, every admitted call schedules a
        // departure that eventually fires (single cell: no handoffs).
        assert_eq!(
            sim.events_processed(),
            200 + report.accepted,
            "events = arrivals + departures"
        );
        sim.reset(cfg);
        assert_eq!(sim.events_processed(), 0, "reset restarts the counter");
    }

    #[test]
    fn outage_drops_active_calls_and_blocks_new_ones() {
        use crate::fault::{FaultKind, FaultPlan};
        let mut cfg = SimConfig::paper_default().with_seed(21);
        cfg.traffic.mean_interarrival_s = 2.0;
        cfg.traffic.mean_holding_s = 120.0;
        // One outage mid-run, never recovered: the cell stays dark.
        cfg.fault_plan = FaultPlan::new().with_event(100.0, 0, FaultKind::Outage);
        let mut sim = Simulator::new(cfg);
        let mut controller = AlwaysAccept;
        let report = sim.run_poisson(&mut controller, 200);
        let dropped = report.metrics.dropped_by_outage();
        assert!(dropped > 0, "outage at t=100 must cut active calls");
        // Outage drops land in the per-class dropped counters too.
        assert!(report.metrics.dropped() >= dropped);
        // Post-outage the station has zero capacity: nothing occupied,
        // and every arrival after t=100 was blocked.
        let station = sim.station(&CellId::origin()).unwrap();
        assert_eq!(station.capacity(), 0);
        assert_eq!(station.occupied(), 0);
        assert!(report.accepted < report.offered);
    }

    #[test]
    fn recovery_restores_capacity_and_admissions() {
        use crate::fault::FaultPlan;
        let mut cfg = SimConfig::paper_default().with_seed(22);
        cfg.traffic.mean_interarrival_s = 5.0;
        cfg.traffic.mean_holding_s = 60.0;
        cfg.fault_plan = FaultPlan::new().with_outage(0, 200.0, 100.0);
        let mut sim = Simulator::new(cfg);
        let mut controller = AlwaysAccept;
        let report = sim.run_poisson(&mut controller, 300);
        assert!(report.metrics.dropped_by_outage() > 0);
        let station = sim.station(&CellId::origin()).unwrap();
        assert_eq!(station.capacity(), 40, "recovery returns to nominal");
        // Calls admitted after the recovery completed normally.
        assert!(report.metrics.completed() > 0);
    }

    #[test]
    fn empty_fault_plan_is_bit_identical_to_the_pre_fault_engine() {
        use crate::fault::FaultPlan;
        let mut base = SimConfig::paper_default().with_seed(23).with_grid_radius(1);
        base.cell_radius_m = 300.0;
        base.traffic.mean_interarrival_s = 3.0;
        base.traffic.mean_holding_s = 300.0;
        base.utilization_sample_interval_s = 40.0;
        let with_plan = base.clone().with_fault_plan(FaultPlan::new());
        let mut a = AlwaysAccept;
        let ra = Simulator::new(base).run_poisson(&mut a, 200);
        let mut b = AlwaysAccept;
        let rb = Simulator::new(with_plan).run_poisson(&mut b, 200);
        assert_eq!(ra, rb);
        assert_eq!(ra.metrics.dropped_by_outage(), 0);
    }

    #[test]
    fn faults_outside_the_grid_are_ignored() {
        use crate::fault::{FaultKind, FaultPlan};
        let base = SimConfig::paper_default().with_seed(24);
        let ghost =
            base.clone()
                .with_fault_plan(FaultPlan::new().with_event(50.0, 99, FaultKind::Outage));
        let mut a = AlwaysAccept;
        let ra = Simulator::new(base).run_poisson(&mut a, 100);
        let mut b = AlwaysAccept;
        let rb = Simulator::new(ghost).run_poisson(&mut b, 100);
        assert_eq!(ra, rb, "out-of-grid faults must be no-ops");
    }

    #[test]
    fn zero_requests_is_a_noop() {
        let mut sim = Simulator::new(SimConfig::paper_default());
        let mut controller = AlwaysAccept;
        let report = sim.run_batch(&mut controller, 0);
        assert_eq!(report.offered, 0);
        assert_eq!(report.acceptance_percentage, 100.0);
    }
}
