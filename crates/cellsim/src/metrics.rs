//! Simulation metrics: acceptance, blocking and dropping statistics.
//!
//! The paper's figures all plot the *percentage of accepted calls* against
//! the *number of requesting connections*; [`Metrics`] tracks those counts
//! (globally and per service class) plus the dropping statistics needed to
//! verify the "keeps the QoS of on-going connections" claim.

use crate::traffic::ServiceClass;
use crate::{Bandwidth, SimTime};
use serde::{Deserialize, Serialize};

/// Counters for one service class.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ClassMetrics {
    /// Requests offered.
    pub offered: u64,
    /// Requests accepted.
    pub accepted: u64,
    /// Requests rejected (blocked).
    pub blocked: u64,
    /// Admitted connections dropped before completing.
    pub dropped: u64,
    /// Admitted connections that completed normally.
    pub completed: u64,
    /// Bandwidth-units admitted (sum of accepted request sizes).
    pub bandwidth_admitted: u64,
}

impl ClassMetrics {
    /// Acceptance ratio in `[0, 1]`; 1 when nothing was offered.
    #[must_use]
    pub fn acceptance_ratio(&self) -> f64 {
        if self.offered == 0 {
            1.0
        } else {
            self.accepted as f64 / self.offered as f64
        }
    }

    /// Blocking ratio in `[0, 1]`; 0 when nothing was offered.
    #[must_use]
    pub fn blocking_ratio(&self) -> f64 {
        if self.offered == 0 {
            0.0
        } else {
            self.blocked as f64 / self.offered as f64
        }
    }

    /// Dropping ratio among *admitted* connections; 0 when nothing was
    /// admitted.
    #[must_use]
    pub fn dropping_ratio(&self) -> f64 {
        if self.accepted == 0 {
            0.0
        } else {
            self.dropped as f64 / self.accepted as f64
        }
    }
}

/// A `(time, utilization)` sample of base-station load.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct UtilizationSample {
    /// Sample time (seconds).
    pub time: SimTime,
    /// Occupied bandwidth at that time (BU).
    pub occupied: Bandwidth,
    /// Capacity at that time (BU).
    pub capacity: Bandwidth,
}

/// Aggregated metrics of one simulation run.
#[derive(Debug, Clone, Default, Deserialize)]
pub struct Metrics {
    per_class: [ClassMetrics; 3],
    handoff_offered: u64,
    handoff_accepted: u64,
    handoff_failed: u64,
    utilization: Vec<UtilizationSample>,
    /// Connections force-dropped by cell outages (a subset of the
    /// per-class `dropped` counters).  `#[serde(default)]` so pre-fault
    /// reports deserialise; serialised only when nonzero (see the
    /// hand-written `Serialize` below) so fault-free reports keep their
    /// exact pre-fault byte layout.
    #[serde(default)]
    dropped_by_outage: u64,
    /// Keep every `stride`-th utilisation sample (0 and 1 both mean
    /// "keep all"). Not serialised: reports carry the samples, not the
    /// sampling policy, so the JSON shape is unchanged.
    #[serde(skip)]
    util_stride: u32,
    /// Samples *seen* (kept + skipped) since the last reset; drives the
    /// stride phase. Not serialised for the same reason.
    #[serde(skip)]
    util_seen: u64,
}

/// Equality over the *observable* state (counters and kept samples) —
/// exactly the fields that serialise — so reports round-trip through
/// JSON regardless of the downsampler's internal bookkeeping.
impl PartialEq for Metrics {
    fn eq(&self, other: &Self) -> bool {
        self.per_class == other.per_class
            && self.handoff_offered == other.handoff_offered
            && self.handoff_accepted == other.handoff_accepted
            && self.handoff_failed == other.handoff_failed
            && self.utilization == other.utilization
            && self.dropped_by_outage == other.dropped_by_outage
    }
}

// Hand-written so `dropped_by_outage` is emitted only when nonzero:
// every fault-free report (and thus every pre-fault golden snapshot)
// keeps its exact byte layout.  Field order mirrors the declaration.
impl Serialize for Metrics {
    fn serialize_value(&self) -> serde::Value {
        let mut fields = vec![
            ("per_class".to_string(), self.per_class.serialize_value()),
            (
                "handoff_offered".to_string(),
                self.handoff_offered.serialize_value(),
            ),
            (
                "handoff_accepted".to_string(),
                self.handoff_accepted.serialize_value(),
            ),
            (
                "handoff_failed".to_string(),
                self.handoff_failed.serialize_value(),
            ),
            (
                "utilization".to_string(),
                self.utilization.serialize_value(),
            ),
        ];
        if self.dropped_by_outage > 0 {
            fields.push((
                "dropped_by_outage".to_string(),
                self.dropped_by_outage.serialize_value(),
            ));
        }
        serde::Value::Object(fields)
    }
}

impl Metrics {
    /// Fresh, all-zero metrics.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Zero every counter and drop every sample, keeping the utilisation
    /// buffer's capacity — so a simulator reused across runs records fresh
    /// metrics without reallocating.
    pub fn reset(&mut self) {
        self.per_class = [ClassMetrics::default(); 3];
        self.handoff_offered = 0;
        self.handoff_accepted = 0;
        self.handoff_failed = 0;
        self.utilization.clear();
        self.dropped_by_outage = 0;
        self.util_stride = 0;
        self.util_seen = 0;
    }

    /// Keep only every `stride`-th utilisation sample (systematic
    /// downsampling; `0` and `1` both keep every sample, the historical
    /// behaviour). Bounds `utilization_samples` growth on long
    /// metro-scale runs: a metro sweep cell records one sample per
    /// station per tick (2107 stations × every tick), ~56 bytes each, so
    /// an unsampled long run grows by megabytes per simulated hour —
    /// stride `k` divides that by `k` while keeping the mean estimate
    /// unbiased for loads without periodicity at the stride.
    ///
    /// The counter phase restarts on [`Metrics::reset`]; the stride
    /// itself is re-applied by the simulator from
    /// [`crate::sim::SimConfig::utilization_sample_stride`].
    pub fn set_utilization_stride(&mut self, stride: u32) {
        self.util_stride = stride;
    }

    /// Record an offered request (before the admission decision).
    pub fn record_offered(&mut self, class: ServiceClass, is_handoff: bool) {
        self.per_class[class.index()].offered += 1;
        if is_handoff {
            self.handoff_offered += 1;
        }
    }

    /// Record an accepted request.
    pub fn record_accepted(&mut self, class: ServiceClass, bandwidth: Bandwidth, is_handoff: bool) {
        let m = &mut self.per_class[class.index()];
        m.accepted += 1;
        m.bandwidth_admitted += u64::from(bandwidth);
        if is_handoff {
            self.handoff_accepted += 1;
        }
    }

    /// Record a blocked (rejected) request.
    pub fn record_blocked(&mut self, class: ServiceClass, is_handoff: bool) {
        self.per_class[class.index()].blocked += 1;
        if is_handoff {
            self.handoff_failed += 1;
        }
    }

    /// Record the completion of an admitted connection.
    pub fn record_completed(&mut self, class: ServiceClass) {
        self.per_class[class.index()].completed += 1;
    }

    /// Record the dropping of an admitted connection.
    pub fn record_dropped(&mut self, class: ServiceClass) {
        self.per_class[class.index()].dropped += 1;
    }

    /// Record that an admitted connection was force-dropped by a cell
    /// outage.  Called *in addition to* [`Metrics::record_dropped`]:
    /// outage drops are a cause-attributed subset of the drop totals.
    pub fn record_dropped_by_outage(&mut self) {
        self.dropped_by_outage += 1;
    }

    /// Connections force-dropped by cell outages.
    #[must_use]
    pub fn dropped_by_outage(&self) -> u64 {
        self.dropped_by_outage
    }

    /// Record a base-station utilisation sample. With a configured
    /// stride (see [`Metrics::set_utilization_stride`]) only every
    /// `stride`-th sample is kept; the first sample after a reset is
    /// always kept, so short runs stay fully observable.
    pub fn record_utilization(&mut self, time: SimTime, occupied: Bandwidth, capacity: Bandwidth) {
        let seen = self.util_seen;
        self.util_seen += 1;
        if self.util_stride > 1 && seen % u64::from(self.util_stride) != 0 {
            return;
        }
        self.utilization.push(UtilizationSample {
            time,
            occupied,
            capacity,
        });
    }

    /// Metrics of one service class.
    #[must_use]
    pub fn class(&self, class: ServiceClass) -> &ClassMetrics {
        &self.per_class[class.index()]
    }

    /// Total requests offered.
    #[must_use]
    pub fn offered(&self) -> u64 {
        self.per_class.iter().map(|m| m.offered).sum()
    }

    /// Total requests accepted.
    #[must_use]
    pub fn accepted(&self) -> u64 {
        self.per_class.iter().map(|m| m.accepted).sum()
    }

    /// Total requests blocked.
    #[must_use]
    pub fn blocked(&self) -> u64 {
        self.per_class.iter().map(|m| m.blocked).sum()
    }

    /// Total admitted connections dropped.
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.per_class.iter().map(|m| m.dropped).sum()
    }

    /// Total admitted connections completed normally.
    #[must_use]
    pub fn completed(&self) -> u64 {
        self.per_class.iter().map(|m| m.completed).sum()
    }

    /// Total bandwidth-units admitted.
    #[must_use]
    pub fn bandwidth_admitted(&self) -> u64 {
        self.per_class.iter().map(|m| m.bandwidth_admitted).sum()
    }

    /// Handoff requests offered / accepted / failed.
    #[must_use]
    pub fn handoffs(&self) -> (u64, u64, u64) {
        (
            self.handoff_offered,
            self.handoff_accepted,
            self.handoff_failed,
        )
    }

    /// Percentage of accepted calls (0–100) — the y-axis of every figure in
    /// the paper.  100 when nothing was offered.
    #[must_use]
    pub fn acceptance_percentage(&self) -> f64 {
        if self.offered() == 0 {
            100.0
        } else {
            100.0 * self.accepted() as f64 / self.offered() as f64
        }
    }

    /// Overall blocking probability in `[0, 1]`.
    #[must_use]
    pub fn blocking_probability(&self) -> f64 {
        if self.offered() == 0 {
            0.0
        } else {
            self.blocked() as f64 / self.offered() as f64
        }
    }

    /// Overall dropping probability among admitted connections.
    #[must_use]
    pub fn dropping_probability(&self) -> f64 {
        if self.accepted() == 0 {
            0.0
        } else {
            self.dropped() as f64 / self.accepted() as f64
        }
    }

    /// Mean utilisation over the recorded samples, in `[0, 1]`.
    #[must_use]
    pub fn mean_utilization(&self) -> f64 {
        if self.utilization.is_empty() {
            return 0.0;
        }
        let sum: f64 = self
            .utilization
            .iter()
            .map(|s| {
                if s.capacity == 0 {
                    1.0
                } else {
                    f64::from(s.occupied) / f64::from(s.capacity)
                }
            })
            .sum();
        sum / self.utilization.len() as f64
    }

    /// The recorded utilisation time series.
    #[must_use]
    pub fn utilization_samples(&self) -> &[UtilizationSample] {
        &self.utilization
    }

    /// Merge another metrics object into this one (for aggregating over
    /// repeated runs with different seeds).
    pub fn merge(&mut self, other: &Metrics) {
        for (dst, src) in self.per_class.iter_mut().zip(&other.per_class) {
            dst.offered += src.offered;
            dst.accepted += src.accepted;
            dst.blocked += src.blocked;
            dst.dropped += src.dropped;
            dst.completed += src.completed;
            dst.bandwidth_admitted += src.bandwidth_admitted;
        }
        self.handoff_offered += other.handoff_offered;
        self.handoff_accepted += other.handoff_accepted;
        self.handoff_failed += other.handoff_failed;
        self.utilization.extend_from_slice(&other.utilization);
        self.dropped_by_outage += other.dropped_by_outage;
        self.util_seen += other.util_seen;
    }
}

/// Streaming accumulator for a scalar observed once per replication
/// (Welford's algorithm), used to aggregate a metric — e.g. the acceptance
/// percentage — across repeated runs with different seeds.
///
/// Like [`Metrics::merge`], two accumulators can be merged (Chan et al.'s
/// parallel update), so partial aggregates computed by different workers
/// combine into the same result as a single sequential pass **provided the
/// merge order is fixed** — which is why the sweep engine always merges in
/// replication order, regardless of which thread produced each value.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct StatAccumulator {
    count: u64,
    mean: f64,
    m2: f64,
}

impl StatAccumulator {
    /// An empty accumulator.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Add one observation.
    pub fn push(&mut self, value: f64) {
        self.count += 1;
        let delta = value - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (value - self.mean);
    }

    /// Merge another accumulator into this one.
    pub fn merge(&mut self, other: &StatAccumulator) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let total = self.count + other.count;
        let delta = other.mean - self.mean;
        self.mean += delta * other.count as f64 / total as f64;
        self.m2 += other.m2 + delta * delta * self.count as f64 * other.count as f64 / total as f64;
        self.count = total;
    }

    /// Number of observations.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean of the observations (0 when empty).
    #[must_use]
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Sample standard deviation (0 with fewer than two observations).
    #[must_use]
    pub fn std_dev(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            (self.m2 / (self.count - 1) as f64).max(0.0).sqrt()
        }
    }

    /// Half-width of the normal-approximation 95 % confidence interval of
    /// the mean (0 with fewer than two observations).
    #[must_use]
    pub fn ci95_half_width(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            1.96 * self.std_dev() / (self.count as f64).sqrt()
        }
    }

    /// Snapshot the accumulated statistics.
    #[must_use]
    pub fn summary(&self) -> SummaryStats {
        let hw = self.ci95_half_width();
        SummaryStats {
            n: self.count,
            mean: self.mean(),
            std_dev: self.std_dev(),
            ci95_lo: self.mean() - hw,
            ci95_hi: self.mean() + hw,
        }
    }
}

/// Cross-replication summary of one scalar metric: mean, sample standard
/// deviation and the normal-approximation 95 % confidence interval.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct SummaryStats {
    /// Number of replications aggregated.
    pub n: u64,
    /// Mean over the replications.
    pub mean: f64,
    /// Sample standard deviation.
    pub std_dev: f64,
    /// Lower bound of the 95 % confidence interval of the mean.
    pub ci95_lo: f64,
    /// Upper bound of the 95 % confidence interval of the mean.
    pub ci95_hi: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_metrics_defaults() {
        let m = Metrics::new();
        assert_eq!(m.offered(), 0);
        assert_eq!(m.acceptance_percentage(), 100.0);
        assert_eq!(m.blocking_probability(), 0.0);
        assert_eq!(m.dropping_probability(), 0.0);
        assert_eq!(m.mean_utilization(), 0.0);
    }

    /// Pin the zero-offered / degenerate-denominator contract of every
    /// ratio accessor: a run that offered nothing (or admitted nothing,
    /// or sampled nothing) reports exact, finite sentinel values — never
    /// NaN or ±Inf — at both the aggregate and the per-class level.
    #[test]
    fn ratio_accessors_never_nan_on_empty_or_degenerate_runs() {
        let empty = Metrics::new();
        for value in [
            empty.acceptance_percentage(),
            empty.blocking_probability(),
            empty.dropping_probability(),
            empty.mean_utilization(),
        ] {
            assert!(value.is_finite(), "empty-run ratio must be finite");
        }
        for class in ServiceClass::ALL {
            let c = empty.class(class);
            assert_eq!(c.acceptance_ratio(), 1.0, "nothing offered => all accepted");
            assert_eq!(c.blocking_ratio(), 0.0);
            assert_eq!(c.dropping_ratio(), 0.0);
        }

        // Offered but nothing admitted: dropping ratio must stay 0/0-safe.
        let mut blocked_only = Metrics::new();
        blocked_only.record_offered(ServiceClass::Voice, false);
        blocked_only.record_blocked(ServiceClass::Voice, false);
        assert_eq!(blocked_only.acceptance_percentage(), 0.0);
        assert_eq!(blocked_only.blocking_probability(), 1.0);
        assert_eq!(blocked_only.dropping_probability(), 0.0);
        assert!(blocked_only.dropping_probability().is_finite());

        // Zero-capacity stations count as fully utilised, not NaN.
        let mut degenerate = Metrics::new();
        degenerate.record_utilization(0.0, 0, 0);
        assert_eq!(degenerate.mean_utilization(), 1.0);
        assert!(degenerate.mean_utilization().is_finite());
    }

    #[test]
    fn utilization_stride_downsamples_systematically() {
        let mut m = Metrics::new();
        m.set_utilization_stride(3);
        for i in 0..10 {
            m.record_utilization(f64::from(i), u32::try_from(i).unwrap(), 40);
        }
        // Samples 0, 3, 6, 9 survive: the first is always kept and the
        // stride counts *seen* samples, not kept ones.
        let kept: Vec<u32> = m.utilization_samples().iter().map(|s| s.occupied).collect();
        assert_eq!(kept, vec![0, 3, 6, 9]);

        // Stride 0 and 1 keep everything (the historical behaviour).
        for stride in [0, 1] {
            let mut all = Metrics::new();
            all.set_utilization_stride(stride);
            for i in 0..5 {
                all.record_utilization(f64::from(i), 1, 40);
            }
            assert_eq!(all.utilization_samples().len(), 5);
        }
    }

    #[test]
    fn utilization_stride_phase_restarts_on_reset() {
        let mut m = Metrics::new();
        m.set_utilization_stride(2);
        m.record_utilization(0.0, 1, 40);
        m.record_utilization(1.0, 2, 40);
        m.record_utilization(2.0, 3, 40);
        assert_eq!(m.utilization_samples().len(), 2);
        m.reset();
        assert_eq!(m, Metrics::new(), "reset must restore the fresh state");
        // Stride is cleared by reset (the simulator re-applies it from
        // its config), so recording resumes unsampled.
        m.record_utilization(0.0, 1, 40);
        m.record_utilization(1.0, 2, 40);
        assert_eq!(m.utilization_samples().len(), 2);
    }

    #[test]
    fn equality_ignores_downsampler_bookkeeping() {
        let mut a = Metrics::new();
        let mut b = Metrics::new();
        a.set_utilization_stride(5);
        a.record_utilization(0.0, 4, 40);
        b.record_utilization(0.0, 4, 40);
        // Same kept samples, different stride/seen bookkeeping.
        assert_eq!(a, b);
        let json = serde_json::to_string(&a).unwrap();
        let back: Metrics = serde_json::from_str(&json).unwrap();
        assert_eq!(back, a, "metrics round-trip ignores skipped fields");
    }

    #[test]
    fn outage_drops_serialise_only_when_present() {
        // Fault-free metrics keep the exact pre-fault JSON shape...
        let clean = Metrics::new();
        let json = serde_json::to_string(&clean).unwrap();
        assert!(!json.contains("dropped_by_outage"));
        // ...and pre-fault JSON (no key) still deserialises.
        let back: Metrics = serde_json::from_str(&json).unwrap();
        assert_eq!(back.dropped_by_outage(), 0);

        let mut faulted = Metrics::new();
        faulted.record_dropped(ServiceClass::Voice);
        faulted.record_dropped_by_outage();
        let json = serde_json::to_string(&faulted).unwrap();
        assert!(json.contains("\"dropped_by_outage\":1"));
        let back: Metrics = serde_json::from_str(&json).unwrap();
        assert_eq!(back, faulted);
        assert_eq!(back.dropped_by_outage(), 1);

        // Merge and reset cover the new counter.
        let mut merged = Metrics::new();
        merged.merge(&faulted);
        merged.merge(&faulted);
        assert_eq!(merged.dropped_by_outage(), 2);
        merged.reset();
        assert_eq!(merged.dropped_by_outage(), 0);
    }

    #[test]
    fn acceptance_percentage_tracks_counts() {
        let mut m = Metrics::new();
        for i in 0..10 {
            m.record_offered(ServiceClass::Text, false);
            if i < 7 {
                m.record_accepted(ServiceClass::Text, 1, false);
            } else {
                m.record_blocked(ServiceClass::Text, false);
            }
        }
        assert_eq!(m.offered(), 10);
        assert_eq!(m.accepted(), 7);
        assert_eq!(m.blocked(), 3);
        assert!((m.acceptance_percentage() - 70.0).abs() < 1e-12);
        assert!((m.blocking_probability() - 0.3).abs() < 1e-12);
    }

    #[test]
    fn per_class_ratios() {
        let mut m = Metrics::new();
        m.record_offered(ServiceClass::Video, false);
        m.record_accepted(ServiceClass::Video, 10, false);
        m.record_offered(ServiceClass::Video, false);
        m.record_blocked(ServiceClass::Video, false);
        let v = m.class(ServiceClass::Video);
        assert_eq!(v.offered, 2);
        assert!((v.acceptance_ratio() - 0.5).abs() < 1e-12);
        assert!((v.blocking_ratio() - 0.5).abs() < 1e-12);
        assert_eq!(v.bandwidth_admitted, 10);
        // Untouched class reports the no-traffic defaults.
        let t = m.class(ServiceClass::Text);
        assert_eq!(t.acceptance_ratio(), 1.0);
        assert_eq!(t.blocking_ratio(), 0.0);
        assert_eq!(t.dropping_ratio(), 0.0);
    }

    #[test]
    fn dropping_probability_counts_admitted_only() {
        let mut m = Metrics::new();
        for _ in 0..4 {
            m.record_offered(ServiceClass::Voice, false);
            m.record_accepted(ServiceClass::Voice, 5, false);
        }
        m.record_dropped(ServiceClass::Voice);
        m.record_completed(ServiceClass::Voice);
        assert!((m.dropping_probability() - 0.25).abs() < 1e-12);
        assert_eq!(m.completed(), 1);
        assert_eq!(m.dropped(), 1);
        assert!((m.class(ServiceClass::Voice).dropping_ratio() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn handoff_counters() {
        let mut m = Metrics::new();
        m.record_offered(ServiceClass::Voice, true);
        m.record_accepted(ServiceClass::Voice, 5, true);
        m.record_offered(ServiceClass::Video, true);
        m.record_blocked(ServiceClass::Video, true);
        assert_eq!(m.handoffs(), (2, 1, 1));
    }

    #[test]
    fn utilization_mean() {
        let mut m = Metrics::new();
        m.record_utilization(0.0, 0, 40);
        m.record_utilization(1.0, 20, 40);
        m.record_utilization(2.0, 40, 40);
        assert!((m.mean_utilization() - 0.5).abs() < 1e-12);
        assert_eq!(m.utilization_samples().len(), 3);
        // zero capacity counts as fully utilised
        let mut z = Metrics::new();
        z.record_utilization(0.0, 0, 0);
        assert_eq!(z.mean_utilization(), 1.0);
    }

    #[test]
    fn reset_zeroes_counters_and_keeps_sample_capacity() {
        let mut m = Metrics::new();
        m.record_offered(ServiceClass::Voice, true);
        m.record_accepted(ServiceClass::Voice, 5, true);
        for i in 0..32 {
            m.record_utilization(f64::from(i), i, 40);
        }
        let cap = m.utilization.capacity();
        m.reset();
        assert_eq!(m, Metrics::new());
        assert_eq!(m.utilization.capacity(), cap, "sample buffer is reused");
    }

    #[test]
    fn merge_adds_counts() {
        let mut a = Metrics::new();
        a.record_offered(ServiceClass::Text, false);
        a.record_accepted(ServiceClass::Text, 1, false);
        let mut b = Metrics::new();
        b.record_offered(ServiceClass::Text, false);
        b.record_blocked(ServiceClass::Text, false);
        b.record_utilization(5.0, 10, 40);
        a.merge(&b);
        assert_eq!(a.offered(), 2);
        assert_eq!(a.accepted(), 1);
        assert_eq!(a.blocked(), 1);
        assert_eq!(a.utilization_samples().len(), 1);
        assert!((a.acceptance_percentage() - 50.0).abs() < 1e-12);
    }

    #[test]
    fn stat_accumulator_mean_std_ci() {
        let mut acc = StatAccumulator::new();
        for v in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            acc.push(v);
        }
        let s = acc.summary();
        assert_eq!(s.n, 8);
        assert!((s.mean - 5.0).abs() < 1e-12);
        // Sample std of this classic data set is sqrt(32/7).
        assert!((s.std_dev - (32.0f64 / 7.0).sqrt()).abs() < 1e-12);
        assert!(s.ci95_lo < s.mean && s.mean < s.ci95_hi);
        assert!(
            (s.ci95_hi - s.mean - 1.96 * s.std_dev / 8.0f64.sqrt()).abs() < 1e-12,
            "ci half-width"
        );
    }

    #[test]
    fn stat_accumulator_degenerate_counts() {
        let empty = StatAccumulator::new();
        assert_eq!(empty.count(), 0);
        assert_eq!(empty.mean(), 0.0);
        assert_eq!(empty.std_dev(), 0.0);
        assert_eq!(empty.ci95_half_width(), 0.0);
        let mut one = StatAccumulator::new();
        one.push(42.0);
        let s = one.summary();
        assert_eq!(s.n, 1);
        assert_eq!(s.mean, 42.0);
        assert_eq!(s.std_dev, 0.0);
        assert_eq!(s.ci95_lo, 42.0);
        assert_eq!(s.ci95_hi, 42.0);
    }

    #[test]
    fn stat_accumulator_merge_matches_sequential() {
        let values = [3.5, -1.0, 7.25, 0.0, 12.0, 5.5, 5.5];
        let mut sequential = StatAccumulator::new();
        for v in values {
            sequential.push(v);
        }
        let mut left = StatAccumulator::new();
        let mut right = StatAccumulator::new();
        for v in &values[..3] {
            left.push(*v);
        }
        for v in &values[3..] {
            right.push(*v);
        }
        let mut merged = StatAccumulator::new();
        merged.merge(&left);
        merged.merge(&right);
        assert_eq!(merged.count(), sequential.count());
        assert!((merged.mean() - sequential.mean()).abs() < 1e-12);
        assert!((merged.std_dev() - sequential.std_dev()).abs() < 1e-12);
        // Merging an empty accumulator is a no-op.
        let before = merged;
        merged.merge(&StatAccumulator::new());
        assert_eq!(merged, before);
    }

    #[test]
    fn bandwidth_admitted_sums() {
        let mut m = Metrics::new();
        m.record_offered(ServiceClass::Text, false);
        m.record_accepted(ServiceClass::Text, 1, false);
        m.record_offered(ServiceClass::Video, false);
        m.record_accepted(ServiceClass::Video, 10, false);
        assert_eq!(m.bandwidth_admitted(), 11);
    }
}
