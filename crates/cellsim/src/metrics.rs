//! Simulation metrics: acceptance, blocking and dropping statistics.
//!
//! The paper's figures all plot the *percentage of accepted calls* against
//! the *number of requesting connections*; [`Metrics`] tracks those counts
//! (globally and per service class) plus the dropping statistics needed to
//! verify the "keeps the QoS of on-going connections" claim.

use crate::traffic::ServiceClass;
use crate::{Bandwidth, SimTime};
use serde::{Deserialize, Serialize};

/// Counters for one service class.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ClassMetrics {
    /// Requests offered.
    pub offered: u64,
    /// Requests accepted.
    pub accepted: u64,
    /// Requests rejected (blocked).
    pub blocked: u64,
    /// Admitted connections dropped before completing.
    pub dropped: u64,
    /// Admitted connections that completed normally.
    pub completed: u64,
    /// Bandwidth-units admitted (sum of accepted request sizes).
    pub bandwidth_admitted: u64,
}

impl ClassMetrics {
    /// Acceptance ratio in `[0, 1]`; 1 when nothing was offered.
    #[must_use]
    pub fn acceptance_ratio(&self) -> f64 {
        if self.offered == 0 {
            1.0
        } else {
            self.accepted as f64 / self.offered as f64
        }
    }

    /// Blocking ratio in `[0, 1]`; 0 when nothing was offered.
    #[must_use]
    pub fn blocking_ratio(&self) -> f64 {
        if self.offered == 0 {
            0.0
        } else {
            self.blocked as f64 / self.offered as f64
        }
    }

    /// Dropping ratio among *admitted* connections; 0 when nothing was
    /// admitted.
    #[must_use]
    pub fn dropping_ratio(&self) -> f64 {
        if self.accepted == 0 {
            0.0
        } else {
            self.dropped as f64 / self.accepted as f64
        }
    }
}

/// A `(time, utilization)` sample of base-station load.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct UtilizationSample {
    /// Sample time (seconds).
    pub time: SimTime,
    /// Occupied bandwidth at that time (BU).
    pub occupied: Bandwidth,
    /// Capacity at that time (BU).
    pub capacity: Bandwidth,
}

/// Aggregated metrics of one simulation run.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Metrics {
    per_class: [ClassMetrics; 3],
    handoff_offered: u64,
    handoff_accepted: u64,
    handoff_failed: u64,
    utilization: Vec<UtilizationSample>,
}

impl Metrics {
    /// Fresh, all-zero metrics.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Record an offered request (before the admission decision).
    pub fn record_offered(&mut self, class: ServiceClass, is_handoff: bool) {
        self.per_class[class.index()].offered += 1;
        if is_handoff {
            self.handoff_offered += 1;
        }
    }

    /// Record an accepted request.
    pub fn record_accepted(&mut self, class: ServiceClass, bandwidth: Bandwidth, is_handoff: bool) {
        let m = &mut self.per_class[class.index()];
        m.accepted += 1;
        m.bandwidth_admitted += u64::from(bandwidth);
        if is_handoff {
            self.handoff_accepted += 1;
        }
    }

    /// Record a blocked (rejected) request.
    pub fn record_blocked(&mut self, class: ServiceClass, is_handoff: bool) {
        self.per_class[class.index()].blocked += 1;
        if is_handoff {
            self.handoff_failed += 1;
        }
    }

    /// Record the completion of an admitted connection.
    pub fn record_completed(&mut self, class: ServiceClass) {
        self.per_class[class.index()].completed += 1;
    }

    /// Record the dropping of an admitted connection.
    pub fn record_dropped(&mut self, class: ServiceClass) {
        self.per_class[class.index()].dropped += 1;
    }

    /// Record a base-station utilisation sample.
    pub fn record_utilization(&mut self, time: SimTime, occupied: Bandwidth, capacity: Bandwidth) {
        self.utilization.push(UtilizationSample {
            time,
            occupied,
            capacity,
        });
    }

    /// Metrics of one service class.
    #[must_use]
    pub fn class(&self, class: ServiceClass) -> &ClassMetrics {
        &self.per_class[class.index()]
    }

    /// Total requests offered.
    #[must_use]
    pub fn offered(&self) -> u64 {
        self.per_class.iter().map(|m| m.offered).sum()
    }

    /// Total requests accepted.
    #[must_use]
    pub fn accepted(&self) -> u64 {
        self.per_class.iter().map(|m| m.accepted).sum()
    }

    /// Total requests blocked.
    #[must_use]
    pub fn blocked(&self) -> u64 {
        self.per_class.iter().map(|m| m.blocked).sum()
    }

    /// Total admitted connections dropped.
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.per_class.iter().map(|m| m.dropped).sum()
    }

    /// Total admitted connections completed normally.
    #[must_use]
    pub fn completed(&self) -> u64 {
        self.per_class.iter().map(|m| m.completed).sum()
    }

    /// Total bandwidth-units admitted.
    #[must_use]
    pub fn bandwidth_admitted(&self) -> u64 {
        self.per_class.iter().map(|m| m.bandwidth_admitted).sum()
    }

    /// Handoff requests offered / accepted / failed.
    #[must_use]
    pub fn handoffs(&self) -> (u64, u64, u64) {
        (
            self.handoff_offered,
            self.handoff_accepted,
            self.handoff_failed,
        )
    }

    /// Percentage of accepted calls (0–100) — the y-axis of every figure in
    /// the paper.  100 when nothing was offered.
    #[must_use]
    pub fn acceptance_percentage(&self) -> f64 {
        if self.offered() == 0 {
            100.0
        } else {
            100.0 * self.accepted() as f64 / self.offered() as f64
        }
    }

    /// Overall blocking probability in `[0, 1]`.
    #[must_use]
    pub fn blocking_probability(&self) -> f64 {
        if self.offered() == 0 {
            0.0
        } else {
            self.blocked() as f64 / self.offered() as f64
        }
    }

    /// Overall dropping probability among admitted connections.
    #[must_use]
    pub fn dropping_probability(&self) -> f64 {
        if self.accepted() == 0 {
            0.0
        } else {
            self.dropped() as f64 / self.accepted() as f64
        }
    }

    /// Mean utilisation over the recorded samples, in `[0, 1]`.
    #[must_use]
    pub fn mean_utilization(&self) -> f64 {
        if self.utilization.is_empty() {
            return 0.0;
        }
        let sum: f64 = self
            .utilization
            .iter()
            .map(|s| {
                if s.capacity == 0 {
                    1.0
                } else {
                    f64::from(s.occupied) / f64::from(s.capacity)
                }
            })
            .sum();
        sum / self.utilization.len() as f64
    }

    /// The recorded utilisation time series.
    #[must_use]
    pub fn utilization_samples(&self) -> &[UtilizationSample] {
        &self.utilization
    }

    /// Merge another metrics object into this one (for aggregating over
    /// repeated runs with different seeds).
    pub fn merge(&mut self, other: &Metrics) {
        for (dst, src) in self.per_class.iter_mut().zip(&other.per_class) {
            dst.offered += src.offered;
            dst.accepted += src.accepted;
            dst.blocked += src.blocked;
            dst.dropped += src.dropped;
            dst.completed += src.completed;
            dst.bandwidth_admitted += src.bandwidth_admitted;
        }
        self.handoff_offered += other.handoff_offered;
        self.handoff_accepted += other.handoff_accepted;
        self.handoff_failed += other.handoff_failed;
        self.utilization.extend_from_slice(&other.utilization);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_metrics_defaults() {
        let m = Metrics::new();
        assert_eq!(m.offered(), 0);
        assert_eq!(m.acceptance_percentage(), 100.0);
        assert_eq!(m.blocking_probability(), 0.0);
        assert_eq!(m.dropping_probability(), 0.0);
        assert_eq!(m.mean_utilization(), 0.0);
    }

    #[test]
    fn acceptance_percentage_tracks_counts() {
        let mut m = Metrics::new();
        for i in 0..10 {
            m.record_offered(ServiceClass::Text, false);
            if i < 7 {
                m.record_accepted(ServiceClass::Text, 1, false);
            } else {
                m.record_blocked(ServiceClass::Text, false);
            }
        }
        assert_eq!(m.offered(), 10);
        assert_eq!(m.accepted(), 7);
        assert_eq!(m.blocked(), 3);
        assert!((m.acceptance_percentage() - 70.0).abs() < 1e-12);
        assert!((m.blocking_probability() - 0.3).abs() < 1e-12);
    }

    #[test]
    fn per_class_ratios() {
        let mut m = Metrics::new();
        m.record_offered(ServiceClass::Video, false);
        m.record_accepted(ServiceClass::Video, 10, false);
        m.record_offered(ServiceClass::Video, false);
        m.record_blocked(ServiceClass::Video, false);
        let v = m.class(ServiceClass::Video);
        assert_eq!(v.offered, 2);
        assert!((v.acceptance_ratio() - 0.5).abs() < 1e-12);
        assert!((v.blocking_ratio() - 0.5).abs() < 1e-12);
        assert_eq!(v.bandwidth_admitted, 10);
        // Untouched class reports the no-traffic defaults.
        let t = m.class(ServiceClass::Text);
        assert_eq!(t.acceptance_ratio(), 1.0);
        assert_eq!(t.blocking_ratio(), 0.0);
        assert_eq!(t.dropping_ratio(), 0.0);
    }

    #[test]
    fn dropping_probability_counts_admitted_only() {
        let mut m = Metrics::new();
        for _ in 0..4 {
            m.record_offered(ServiceClass::Voice, false);
            m.record_accepted(ServiceClass::Voice, 5, false);
        }
        m.record_dropped(ServiceClass::Voice);
        m.record_completed(ServiceClass::Voice);
        assert!((m.dropping_probability() - 0.25).abs() < 1e-12);
        assert_eq!(m.completed(), 1);
        assert_eq!(m.dropped(), 1);
        assert!((m.class(ServiceClass::Voice).dropping_ratio() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn handoff_counters() {
        let mut m = Metrics::new();
        m.record_offered(ServiceClass::Voice, true);
        m.record_accepted(ServiceClass::Voice, 5, true);
        m.record_offered(ServiceClass::Video, true);
        m.record_blocked(ServiceClass::Video, true);
        assert_eq!(m.handoffs(), (2, 1, 1));
    }

    #[test]
    fn utilization_mean() {
        let mut m = Metrics::new();
        m.record_utilization(0.0, 0, 40);
        m.record_utilization(1.0, 20, 40);
        m.record_utilization(2.0, 40, 40);
        assert!((m.mean_utilization() - 0.5).abs() < 1e-12);
        assert_eq!(m.utilization_samples().len(), 3);
        // zero capacity counts as fully utilised
        let mut z = Metrics::new();
        z.record_utilization(0.0, 0, 0);
        assert_eq!(z.mean_utilization(), 1.0);
    }

    #[test]
    fn merge_adds_counts() {
        let mut a = Metrics::new();
        a.record_offered(ServiceClass::Text, false);
        a.record_accepted(ServiceClass::Text, 1, false);
        let mut b = Metrics::new();
        b.record_offered(ServiceClass::Text, false);
        b.record_blocked(ServiceClass::Text, false);
        b.record_utilization(5.0, 10, 40);
        a.merge(&b);
        assert_eq!(a.offered(), 2);
        assert_eq!(a.accepted(), 1);
        assert_eq!(a.blocked(), 1);
        assert_eq!(a.utilization_samples().len(), 1);
        assert!((a.acceptance_percentage() - 50.0).abs() < 1e-12);
    }

    #[test]
    fn bandwidth_admitted_sums() {
        let mut m = Metrics::new();
        m.record_offered(ServiceClass::Text, false);
        m.record_accepted(ServiceClass::Text, 1, false);
        m.record_offered(ServiceClass::Video, false);
        m.record_accepted(ServiceClass::Video, 10, false);
        assert_eq!(m.bandwidth_admitted(), 11);
    }
}
