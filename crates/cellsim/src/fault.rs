//! Deterministic scheduled cell faults: outages, recoveries and partial
//! capacity degradation.
//!
//! A [`FaultPlan`] is a list of timed [`FaultEvent`]s attached to a
//! [`crate::SimConfig`] (and, one level up, a sweep `ScenarioSpec`).
//! Faults are *data*, not randomness: the plan is part of the config, so
//! a faulted run is exactly as reproducible as a healthy one — no RNG
//! stream is consumed when a fault fires.
//!
//! # Determinism contract
//!
//! Both engines fold the plan into their event loops as a **fourth
//! merge stream** alongside the pre-generated arrival buffer, the
//! computed mobility ticks and the run-time event heap. At equal
//! timestamps the tie order is `fault < arrival < tick < heap`, and in
//! the sharded engine a fault's [`MergeKey`] carries
//! [`RANK_FAULT`] so faults interleave with
//! cross-shard admits/releases/handoffs in the same total
//! `(time, connection_id, rank)` order at any sharding. Faulted runs
//! are therefore byte-identical across shard and thread counts (see
//! `tests/golden_sharded.rs` and `tests/fault_determinism.rs`).
//!
//! # Semantics
//!
//! * [`FaultKind::Outage`] — capacity drops to 0 and every active
//!   connection in the cell is force-dropped (counted in
//!   [`crate::Metrics::dropped_by_outage`] as well as the per-class
//!   `dropped` counter). Controllers observe the zero capacity on every
//!   subsequent decision, so new calls and inbound handoffs are refused
//!   by the capacity check before the controller even runs.
//! * [`FaultKind::Degrade`] — capacity shrinks to a fraction of
//!   nominal. Existing connections are *not* dropped, even if the cell
//!   is now over capacity; the station simply refuses new admissions
//!   until enough calls complete ([`crate::BaseStation::available`]
//!   saturates at zero).
//! * [`FaultKind::Recovery`] / [`FaultKind::Restore`] — capacity
//!   returns to nominal. `Recovery` pairs with `Outage`, `Restore` with
//!   `Degrade`; the engines treat them identically, the two names exist
//!   so plans read naturally.

use serde::{Deserialize, Serialize};

use crate::shard::{MergeKey, RANK_FAULT};
use crate::{Bandwidth, SimTime};

/// What happens to a cell when a [`FaultEvent`] fires.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum FaultKind {
    /// The cell goes dark: capacity drops to 0 and all active
    /// connections are force-dropped.
    Outage,
    /// The cell returns to nominal capacity after an [`Outage`].
    ///
    /// [`Outage`]: FaultKind::Outage
    Recovery,
    /// The cell keeps running at a fraction of nominal capacity.
    /// Existing connections survive; new admissions see the shrunken
    /// capacity.
    Degrade {
        /// Remaining capacity as a fraction of nominal, in `[0, 1]`.
        capacity_fraction: f64,
    },
    /// The cell returns to nominal capacity after a [`Degrade`].
    ///
    /// [`Degrade`]: FaultKind::Degrade
    Restore,
}

impl FaultKind {
    /// The cell capacity after this fault fires, given the nominal
    /// (configured) capacity.
    #[must_use]
    pub fn capacity(&self, nominal: Bandwidth) -> Bandwidth {
        match self {
            FaultKind::Outage => 0,
            FaultKind::Recovery | FaultKind::Restore => nominal,
            FaultKind::Degrade { capacity_fraction } => {
                (f64::from(nominal) * capacity_fraction).round() as Bandwidth
            }
        }
    }

    /// Whether this fault force-drops the cell's active connections.
    #[must_use]
    pub fn drops_connections(&self) -> bool {
        matches!(self, FaultKind::Outage)
    }
}

/// One scheduled fault: at `time`, `cell` transitions per `kind`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultEvent {
    /// Simulation time at which the fault fires (seconds).
    pub time: SimTime,
    /// Target cell, as a dense cell index into the grid. Events naming
    /// cells outside the grid are ignored at run time (so one plan can
    /// be reused across grid sizes).
    pub cell: u32,
    /// The transition applied to the cell.
    pub kind: FaultKind,
}

impl FaultEvent {
    /// The merge key under which this fault is ordered against
    /// arrivals, releases, admits and handoffs in the sharded engine's
    /// total `(time, connection_id, rank)` order.
    ///
    /// Faults carry no connection, so the key borrows a synthetic
    /// connection id in a reserved range (`1 << 63 | cell`) that no
    /// real call ever occupies; distinct cells faulted at the same
    /// instant therefore still have a deterministic relative order.
    #[must_use]
    pub fn merge_key(&self) -> MergeKey {
        MergeKey::new(self.time, (1 << 63) | u64::from(self.cell), RANK_FAULT)
    }
}

/// A schedule of cell faults, applied deterministically by both engines.
///
/// The default plan is empty, and an empty plan is byte-identical to
/// the pre-fault engines — every pre-existing golden snapshot is
/// unchanged. Events may be listed in any order; the engines process a
/// time-sorted copy (ties broken by cell index, then declaration
/// order — see [`FaultPlan::sorted_events`]).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    /// The scheduled fault events.
    pub events: Vec<FaultEvent>,
}

impl FaultPlan {
    /// An empty plan (no faults; the engines skip the fault stream
    /// entirely).
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Whether the plan schedules no events.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Add one event (builder style).
    #[must_use]
    pub fn with_event(mut self, time: SimTime, cell: u32, kind: FaultKind) -> Self {
        self.events.push(FaultEvent { time, cell, kind });
        self
    }

    /// Add a full outage of `cell` over `[start, start + duration)`.
    #[must_use]
    pub fn with_outage(self, cell: u32, start: SimTime, duration: SimTime) -> Self {
        self.with_event(start, cell, FaultKind::Outage).with_event(
            start + duration,
            cell,
            FaultKind::Recovery,
        )
    }

    /// Add a capacity degradation of `cell` to `capacity_fraction` of
    /// nominal over `[start, start + duration)`.
    #[must_use]
    pub fn with_degrade(
        self,
        cell: u32,
        start: SimTime,
        duration: SimTime,
        capacity_fraction: f64,
    ) -> Self {
        self.with_event(start, cell, FaultKind::Degrade { capacity_fraction })
            .with_event(start + duration, cell, FaultKind::Restore)
    }

    /// Add a rolling wave of outages: cells `first..first + count` go
    /// dark one after another, each for `duration`, staggered by
    /// `stagger` seconds.
    #[must_use]
    pub fn with_outage_wave(
        mut self,
        first: u32,
        count: u32,
        start: SimTime,
        duration: SimTime,
        stagger: SimTime,
    ) -> Self {
        for i in 0..count {
            self = self.with_outage(first + i, start + f64::from(i) * stagger, duration);
        }
        self
    }

    /// The plan's events sorted by `(time, cell)`, ties broken by
    /// declaration order (the sort is stable). This is the order both
    /// engines consume.
    #[must_use]
    pub fn sorted_events(&self) -> Vec<FaultEvent> {
        let mut events = self.events.clone();
        events.sort_by(|a, b| a.time.total_cmp(&b.time).then_with(|| a.cell.cmp(&b.cell)));
        events
    }

    /// Validate the plan: every event time must be finite and
    /// non-negative, and every `Degrade` fraction must lie in `[0, 1]`.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first invalid event.
    pub fn validate(&self) -> Result<(), String> {
        for (i, event) in self.events.iter().enumerate() {
            if !event.time.is_finite() || event.time < 0.0 {
                return Err(format!(
                    "fault event {i}: time {} must be finite and >= 0",
                    event.time
                ));
            }
            if let FaultKind::Degrade { capacity_fraction } = event.kind {
                if !capacity_fraction.is_finite() || !(0.0..=1.0).contains(&capacity_fraction) {
                    return Err(format!(
                        "fault event {i}: capacity_fraction {capacity_fraction} must be in [0, 1]"
                    ));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shard::{RANK_ADMIT, RANK_HANDOFF, RANK_RELEASE};

    #[test]
    fn capacity_transitions() {
        assert_eq!(FaultKind::Outage.capacity(40), 0);
        assert_eq!(FaultKind::Recovery.capacity(40), 40);
        assert_eq!(FaultKind::Restore.capacity(40), 40);
        assert_eq!(
            FaultKind::Degrade {
                capacity_fraction: 0.5
            }
            .capacity(40),
            20
        );
        assert_eq!(
            FaultKind::Degrade {
                capacity_fraction: 0.26
            }
            .capacity(10),
            3
        );
        assert!(FaultKind::Outage.drops_connections());
        assert!(!FaultKind::Restore.drops_connections());
    }

    #[test]
    fn builders_produce_paired_events() {
        let plan = FaultPlan::new()
            .with_outage(3, 100.0, 50.0)
            .with_degrade(5, 10.0, 20.0, 0.25);
        assert_eq!(plan.events.len(), 4);
        let sorted = plan.sorted_events();
        assert_eq!(sorted[0].time, 10.0);
        assert_eq!(sorted[0].cell, 5);
        assert_eq!(sorted[1].time, 30.0);
        assert_eq!(sorted[1].kind, FaultKind::Restore);
        assert_eq!(sorted[2].kind, FaultKind::Outage);
        assert_eq!(sorted[3].kind, FaultKind::Recovery);
    }

    #[test]
    fn outage_wave_staggers_cells() {
        let plan = FaultPlan::new().with_outage_wave(2, 3, 100.0, 40.0, 25.0);
        assert_eq!(plan.events.len(), 6);
        let sorted = plan.sorted_events();
        assert_eq!((sorted[0].time, sorted[0].cell), (100.0, 2));
        assert_eq!((sorted[1].time, sorted[1].cell), (125.0, 3));
        assert_eq!((sorted[2].time, sorted[2].cell), (140.0, 2));
        assert_eq!(sorted[2].kind, FaultKind::Recovery);
        assert_eq!((sorted[5].time, sorted[5].cell), (190.0, 4));
    }

    #[test]
    fn validation_rejects_bad_plans() {
        assert!(FaultPlan::new().validate().is_ok());
        let nan = FaultPlan::new().with_event(f64::NAN, 0, FaultKind::Outage);
        assert!(nan.validate().is_err());
        let negative = FaultPlan::new().with_event(-1.0, 0, FaultKind::Outage);
        assert!(negative.validate().is_err());
        let over = FaultPlan::new().with_event(
            1.0,
            0,
            FaultKind::Degrade {
                capacity_fraction: 1.5,
            },
        );
        assert!(over.validate().is_err());
    }

    #[test]
    fn merge_key_orders_faults_after_same_time_merge_tasks() {
        // Faults rank after every real-connection key at the same time
        // via the synthetic high-bit connection id; the rank field
        // orders faults against merge tasks for that same id.
        let fault = FaultEvent {
            time: 100.0,
            cell: 7,
            kind: FaultKind::Outage,
        };
        let key = fault.merge_key();
        assert_eq!(key.time, 100.0);
        assert_eq!(key.connection_id, (1 << 63) | 7);
        assert_eq!(key.rank, RANK_FAULT);
        const _: () = assert!(
            RANK_RELEASE < RANK_ADMIT && RANK_ADMIT < RANK_HANDOFF && RANK_HANDOFF < RANK_FAULT
        );
        // Earlier time always wins, whatever the id.
        let earlier = MergeKey::new(99.0, u64::MAX, RANK_HANDOFF);
        assert!(earlier < key);
    }

    #[test]
    fn plan_round_trips_through_json() {
        let plan = FaultPlan::new()
            .with_outage(3, 100.0, 50.0)
            .with_degrade(5, 10.0, 20.0, 0.25);
        let json = serde_json::to_string(&plan).expect("serialize");
        let back: FaultPlan = serde_json::from_str(&json).expect("deserialize");
        assert_eq!(plan, back);
    }

    #[test]
    fn default_plan_is_empty_and_omittable() {
        assert!(FaultPlan::default().is_empty());
        // `#[serde(default)]` containers must rebuild from an absent key.
        let empty: FaultPlan =
            serde_json::from_str("{\"events\": []}").expect("explicit empty plan parses");
        assert_eq!(empty, FaultPlan::default());
    }
}
