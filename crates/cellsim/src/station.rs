//! Base stations: capacity bookkeeping and the RTC / NRTC counters.
//!
//! A [`BaseStation`] owns a fixed capacity in bandwidth units (the paper
//! uses 40 BU) and tracks every admitted connection.  It maintains the two
//! occupancy counters FACS-P needs for its priority handling:
//!
//! * **RTC** (Real-Time Counter) — bandwidth currently held by real-time
//!   connections (voice, video);
//! * **NRTC** (Non-Real-Time Counter) — bandwidth currently held by
//!   non-real-time connections (text).
//!
//! The station itself never refuses an admission on policy grounds; that is
//! the controller's job.  It only enforces the physical capacity limit.
//!
//! Active connections live in a dense `Vec` rather than a `HashMap`: a
//! station carries at most `capacity / min_request` connections (≈ 40 for
//! the paper's cell), so a linear scan over one cache line beats hashing,
//! iteration order is deterministic by construction, and steady-state
//! admit/release cycles reuse the vector's capacity instead of allocating.

use crate::geometry::{CellId, Point};
use crate::traffic::ServiceClass;
use crate::{Bandwidth, SimTime};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Errors returned by base-station bookkeeping operations.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum StationError {
    /// Admission would exceed the physical capacity.
    InsufficientCapacity {
        /// Bandwidth requested (BU).
        requested: Bandwidth,
        /// Bandwidth still free (BU).
        available: Bandwidth,
    },
    /// The connection id is already active on this station.
    DuplicateConnection {
        /// The offending connection id.
        id: u64,
    },
    /// The connection id is not active on this station.
    UnknownConnection {
        /// The offending connection id.
        id: u64,
    },
}

impl fmt::Display for StationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StationError::InsufficientCapacity {
                requested,
                available,
            } => write!(
                f,
                "insufficient capacity: requested {requested} BU, only {available} BU free"
            ),
            StationError::DuplicateConnection { id } => {
                write!(f, "connection {id} is already active")
            }
            StationError::UnknownConnection { id } => {
                write!(f, "connection {id} is not active on this station")
            }
        }
    }
}

impl std::error::Error for StationError {}

/// An admitted, on-going connection as tracked by a base station.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ActiveConnection {
    /// Connection id (same id space as [`crate::traffic::CallRequest::id`]).
    pub id: u64,
    /// Service class.
    pub class: ServiceClass,
    /// Reserved bandwidth (BU).
    pub bandwidth: Bandwidth,
    /// Admission time (seconds).
    pub admitted_at: SimTime,
    /// Scheduled completion time (seconds).
    pub ends_at: SimTime,
    /// `true` if the connection arrived as a handoff from another cell.
    pub was_handoff: bool,
}

/// A base station with a fixed capacity in bandwidth units.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BaseStation {
    cell: CellId,
    position: Point,
    capacity: Bandwidth,
    connections: Vec<ActiveConnection>,
    rtc: Bandwidth,
    nrtc: Bandwidth,
    total_admitted: u64,
    total_released: u64,
    total_dropped: u64,
}

impl BaseStation {
    /// A station for `cell` located at `position` with `capacity` BU.
    #[must_use]
    pub fn new(cell: CellId, position: Point, capacity: Bandwidth) -> Self {
        Self {
            cell,
            position,
            capacity,
            connections: Vec::new(),
            rtc: 0,
            nrtc: 0,
            total_admitted: 0,
            total_released: 0,
            total_dropped: 0,
        }
    }

    /// Reset the station for a fresh run with the given capacity: every
    /// connection is dropped on the floor (no counters recorded) and all
    /// cumulative totals are zeroed, while the connection storage keeps its
    /// capacity — so a simulator reused across sweep cells pays no
    /// per-cell allocation here.
    pub fn reset_for_run(&mut self, capacity: Bandwidth) {
        self.capacity = capacity;
        self.connections.clear();
        self.rtc = 0;
        self.nrtc = 0;
        self.total_admitted = 0;
        self.total_released = 0;
        self.total_dropped = 0;
    }

    /// The paper's single 40-BU base station at the origin.
    #[must_use]
    pub fn paper_default() -> Self {
        Self::new(CellId::origin(), Point::new(0.0, 0.0), 40)
    }

    /// The cell this station serves.
    #[must_use]
    pub fn cell(&self) -> CellId {
        self.cell
    }

    /// The station's position.
    #[must_use]
    pub fn position(&self) -> Point {
        self.position
    }

    /// Total capacity (BU).
    #[must_use]
    pub fn capacity(&self) -> Bandwidth {
        self.capacity
    }

    /// Bandwidth currently in use (BU).
    #[must_use]
    pub fn occupied(&self) -> Bandwidth {
        self.rtc + self.nrtc
    }

    /// Bandwidth still free (BU).
    #[must_use]
    pub fn available(&self) -> Bandwidth {
        self.capacity.saturating_sub(self.occupied())
    }

    /// Occupancy as a fraction of capacity in `[0, 1]`.
    #[must_use]
    pub fn utilization(&self) -> f64 {
        if self.capacity == 0 {
            return 1.0;
        }
        f64::from(self.occupied()) / f64::from(self.capacity)
    }

    /// The Counter state `Cs` input of FLC2: the occupied bandwidth in BU.
    #[must_use]
    pub fn counter_state(&self) -> Bandwidth {
        self.occupied()
    }

    /// Real-Time Counter: bandwidth held by on-going real-time connections.
    #[must_use]
    pub fn rtc(&self) -> Bandwidth {
        self.rtc
    }

    /// Non-Real-Time Counter: bandwidth held by on-going non-real-time
    /// connections.
    #[must_use]
    pub fn nrtc(&self) -> Bandwidth {
        self.nrtc
    }

    /// Number of currently active connections.
    #[must_use]
    pub fn active_connections(&self) -> usize {
        self.connections.len()
    }

    /// Iterator over the active connections (deterministic dense order:
    /// admission order, modulo swap-removal on release).
    pub fn connections(&self) -> impl Iterator<Item = &ActiveConnection> {
        self.connections.iter()
    }

    /// Look up an active connection.
    #[must_use]
    pub fn connection(&self, id: u64) -> Option<&ActiveConnection> {
        self.connections.iter().find(|c| c.id == id)
    }

    fn position_of(&self, id: u64) -> Option<usize> {
        self.connections.iter().position(|c| c.id == id)
    }

    /// `true` if a request for `bandwidth` BU physically fits right now.
    #[must_use]
    pub fn can_fit(&self, bandwidth: Bandwidth) -> bool {
        bandwidth <= self.available()
    }

    /// Cumulative number of admitted connections.
    #[must_use]
    pub fn total_admitted(&self) -> u64 {
        self.total_admitted
    }

    /// Cumulative number of normally completed (released) connections.
    #[must_use]
    pub fn total_released(&self) -> u64 {
        self.total_released
    }

    /// Cumulative number of dropped connections.
    #[must_use]
    pub fn total_dropped(&self) -> u64 {
        self.total_dropped
    }

    /// Admit a connection, reserving its bandwidth.
    pub fn admit(
        &mut self,
        id: u64,
        class: ServiceClass,
        bandwidth: Bandwidth,
        now: SimTime,
        holding_time: SimTime,
        was_handoff: bool,
    ) -> Result<(), StationError> {
        if self.connection(id).is_some() {
            return Err(StationError::DuplicateConnection { id });
        }
        if !self.can_fit(bandwidth) {
            return Err(StationError::InsufficientCapacity {
                requested: bandwidth,
                available: self.available(),
            });
        }
        if class.is_real_time() {
            self.rtc += bandwidth;
        } else {
            self.nrtc += bandwidth;
        }
        self.connections.push(ActiveConnection {
            id,
            class,
            bandwidth,
            admitted_at: now,
            ends_at: now + holding_time.max(0.0),
            was_handoff,
        });
        self.total_admitted += 1;
        Ok(())
    }

    fn take(&mut self, id: u64) -> Result<ActiveConnection, StationError> {
        let pos = self
            .position_of(id)
            .ok_or(StationError::UnknownConnection { id })?;
        let conn = self.connections.swap_remove(pos);
        self.subtract(&conn);
        Ok(conn)
    }

    /// Release a connection that completed normally, freeing its bandwidth.
    pub fn release(&mut self, id: u64) -> Result<ActiveConnection, StationError> {
        let conn = self.take(id)?;
        self.total_released += 1;
        Ok(conn)
    }

    /// Remove a connection because it was dropped (e.g. failed handoff) —
    /// tracked separately from normal completion because call dropping is
    /// the QoS violation the paper's controllers try to avoid.
    pub fn drop_connection(&mut self, id: u64) -> Result<ActiveConnection, StationError> {
        let conn = self.take(id)?;
        self.total_dropped += 1;
        Ok(conn)
    }

    /// Remove a connection that is handing off to another cell (neither a
    /// completion nor a drop from this station's point of view).
    pub fn transfer_out(&mut self, id: u64) -> Result<ActiveConnection, StationError> {
        self.take(id)
    }

    /// Release every connection whose `ends_at` is at or before `now` into
    /// `out` (cleared first), sorted by completion time.  Allocation-free
    /// once `out` has warmed up to the working-set size.
    pub fn release_expired_into(&mut self, now: SimTime, out: &mut Vec<ActiveConnection>) {
        out.clear();
        let mut i = 0;
        while i < self.connections.len() {
            if self.connections[i].ends_at <= now {
                let conn = self.connections.swap_remove(i);
                self.subtract(&conn);
                self.total_released += 1;
                out.push(conn);
            } else {
                i += 1;
            }
        }
        out.sort_unstable_by(|a, b| a.ends_at.total_cmp(&b.ends_at));
    }

    /// Release every connection whose `ends_at` is at or before `now`;
    /// returns them sorted by completion time.  The simulator's hot loop
    /// uses [`BaseStation::release_expired_into`] with a reused scratch
    /// buffer instead.
    pub fn release_expired(&mut self, now: SimTime) -> Vec<ActiveConnection> {
        let mut out = Vec::new();
        self.release_expired_into(now, &mut out);
        out
    }

    fn subtract(&mut self, conn: &ActiveConnection) {
        if conn.class.is_real_time() {
            self.rtc = self.rtc.saturating_sub(conn.bandwidth);
        } else {
            self.nrtc = self.nrtc.saturating_sub(conn.bandwidth);
        }
    }
}

impl Default for BaseStation {
    fn default() -> Self {
        Self::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn station() -> BaseStation {
        BaseStation::paper_default()
    }

    #[test]
    fn paper_default_station() {
        let s = station();
        assert_eq!(s.capacity(), 40);
        assert_eq!(s.occupied(), 0);
        assert_eq!(s.available(), 40);
        assert_eq!(s.cell(), CellId::origin());
        assert_eq!(s.utilization(), 0.0);
        assert_eq!(s.counter_state(), 0);
    }

    #[test]
    fn admit_reserves_bandwidth_and_updates_counters() {
        let mut s = station();
        s.admit(1, ServiceClass::Video, 10, 0.0, 100.0, false)
            .unwrap();
        s.admit(2, ServiceClass::Text, 1, 0.0, 100.0, false)
            .unwrap();
        s.admit(3, ServiceClass::Voice, 5, 0.0, 100.0, false)
            .unwrap();
        assert_eq!(s.occupied(), 16);
        assert_eq!(s.rtc(), 15);
        assert_eq!(s.nrtc(), 1);
        assert_eq!(s.available(), 24);
        assert_eq!(s.active_connections(), 3);
        assert_eq!(s.total_admitted(), 3);
        assert!((s.utilization() - 0.4).abs() < 1e-12);
    }

    #[test]
    fn admit_rejects_over_capacity() {
        let mut s = BaseStation::new(CellId::origin(), Point::default(), 12);
        s.admit(1, ServiceClass::Video, 10, 0.0, 100.0, false)
            .unwrap();
        let err = s
            .admit(2, ServiceClass::Voice, 5, 0.0, 100.0, false)
            .unwrap_err();
        assert_eq!(
            err,
            StationError::InsufficientCapacity {
                requested: 5,
                available: 2
            }
        );
        // A text call still fits.
        s.admit(3, ServiceClass::Text, 1, 0.0, 100.0, false)
            .unwrap();
        assert_eq!(s.available(), 1);
    }

    #[test]
    fn admit_rejects_duplicate_ids() {
        let mut s = station();
        s.admit(7, ServiceClass::Text, 1, 0.0, 10.0, false).unwrap();
        assert_eq!(
            s.admit(7, ServiceClass::Text, 1, 0.0, 10.0, false)
                .unwrap_err(),
            StationError::DuplicateConnection { id: 7 }
        );
    }

    #[test]
    fn release_frees_bandwidth() {
        let mut s = station();
        s.admit(1, ServiceClass::Voice, 5, 0.0, 60.0, false)
            .unwrap();
        let conn = s.release(1).unwrap();
        assert_eq!(conn.bandwidth, 5);
        assert_eq!(s.occupied(), 0);
        assert_eq!(s.total_released(), 1);
        assert_eq!(
            s.release(1).unwrap_err(),
            StationError::UnknownConnection { id: 1 }
        );
    }

    #[test]
    fn drop_and_transfer_are_tracked_separately() {
        let mut s = station();
        s.admit(1, ServiceClass::Video, 10, 0.0, 60.0, false)
            .unwrap();
        s.admit(2, ServiceClass::Video, 10, 0.0, 60.0, true)
            .unwrap();
        s.drop_connection(1).unwrap();
        s.transfer_out(2).unwrap();
        assert_eq!(s.total_dropped(), 1);
        assert_eq!(s.total_released(), 0);
        assert_eq!(s.occupied(), 0);
        assert!(s.drop_connection(99).is_err());
        assert!(s.transfer_out(99).is_err());
    }

    #[test]
    fn release_expired_only_removes_finished_calls() {
        let mut s = station();
        s.admit(1, ServiceClass::Text, 1, 0.0, 10.0, false).unwrap();
        s.admit(2, ServiceClass::Text, 1, 0.0, 50.0, false).unwrap();
        s.admit(3, ServiceClass::Voice, 5, 0.0, 20.0, false)
            .unwrap();
        let done = s.release_expired(25.0);
        assert_eq!(done.len(), 2);
        assert_eq!(done[0].id, 1);
        assert_eq!(done[1].id, 3);
        assert_eq!(s.active_connections(), 1);
        assert_eq!(s.occupied(), 1);
    }

    #[test]
    fn connection_lookup_and_metadata() {
        let mut s = station();
        s.admit(5, ServiceClass::Video, 10, 12.0, 30.0, true)
            .unwrap();
        let c = s.connection(5).unwrap();
        assert_eq!(c.admitted_at, 12.0);
        assert_eq!(c.ends_at, 42.0);
        assert!(c.was_handoff);
        assert!(s.connection(6).is_none());
        assert_eq!(s.connections().count(), 1);
    }

    #[test]
    fn zero_capacity_station_is_always_full() {
        let s = BaseStation::new(CellId::origin(), Point::default(), 0);
        assert_eq!(s.utilization(), 1.0);
        assert!(!s.can_fit(1));
        assert!(s.can_fit(0));
    }

    #[test]
    fn negative_holding_time_is_clamped() {
        let mut s = station();
        s.admit(1, ServiceClass::Text, 1, 10.0, -5.0, false)
            .unwrap();
        assert_eq!(s.connection(1).unwrap().ends_at, 10.0);
    }

    #[test]
    fn reset_for_run_clears_state_and_keeps_storage() {
        let mut s = station();
        s.admit(1, ServiceClass::Video, 10, 0.0, 60.0, false)
            .unwrap();
        s.admit(2, ServiceClass::Text, 1, 0.0, 60.0, false).unwrap();
        s.release(2).unwrap();
        let cap = s.connections.capacity();
        s.reset_for_run(25);
        assert_eq!(s.capacity(), 25);
        assert_eq!(s.occupied(), 0);
        assert_eq!(s.rtc(), 0);
        assert_eq!(s.nrtc(), 0);
        assert_eq!(s.active_connections(), 0);
        assert_eq!(s.total_admitted(), 0);
        assert_eq!(s.total_released(), 0);
        assert_eq!(s.total_dropped(), 0);
        assert_eq!(s.connections.capacity(), cap, "storage is kept for reuse");
        // The station is immediately usable again.
        s.admit(9, ServiceClass::Voice, 5, 1.0, 10.0, true).unwrap();
        assert_eq!(s.occupied(), 5);
    }

    #[test]
    fn release_expired_into_reuses_the_scratch_buffer() {
        let mut s = station();
        for i in 0..6 {
            s.admit(i, ServiceClass::Text, 1, 0.0, 5.0 + i as f64, false)
                .unwrap();
        }
        let mut scratch = Vec::new();
        s.release_expired_into(8.0, &mut scratch);
        assert_eq!(scratch.len(), 4);
        assert!(scratch.windows(2).all(|w| w[0].ends_at <= w[1].ends_at));
        let cap = scratch.capacity();
        // A later, smaller expiry batch reuses the same storage.
        s.release_expired_into(100.0, &mut scratch);
        assert_eq!(scratch.len(), 2);
        assert_eq!(scratch.capacity(), cap);
    }

    #[test]
    fn error_display() {
        let e = StationError::InsufficientCapacity {
            requested: 10,
            available: 3,
        };
        assert!(e.to_string().contains("10"));
        assert!(e.to_string().contains("3"));
    }
}
