//! Base stations: capacity bookkeeping and the RTC / NRTC counters.
//!
//! A [`BaseStation`] owns a fixed capacity in bandwidth units (the paper
//! uses 40 BU) and tracks every admitted connection.  It maintains the two
//! occupancy counters FACS-P needs for its priority handling:
//!
//! * **RTC** (Real-Time Counter) — bandwidth currently held by real-time
//!   connections (voice, video);
//! * **NRTC** (Non-Real-Time Counter) — bandwidth currently held by
//!   non-real-time connections (text).
//!
//! The station itself never refuses an admission on policy grounds; that is
//! the controller's job.  It only enforces the physical capacity limit.
//!
//! Active connections live in a dense `Vec` rather than a `HashMap`: a
//! station carries at most `capacity / min_request` connections (≈ 40 for
//! the paper's cell), so a linear scan over one cache line beats hashing,
//! iteration order is deterministic by construction, and steady-state
//! admit/release cycles reuse the vector's capacity instead of allocating.
//! Metro-scale stations (capacity beyond [`INDEX_LINEAR_SCAN_MAX`] BU) can
//! hold hundreds of concurrent connections, where the linear scan turns
//! O(n) per lookup; those stations additionally keep a lazily maintained
//! id → position hash index beside the dense vector.  The index never
//! affects observable behaviour — iteration still walks the vector — and
//! it self-heals (rebuilds from the vector) whenever it is out of sync,
//! e.g. right after deserialisation.

use crate::geometry::{CellId, Point};
use crate::traffic::ServiceClass;
use crate::{Bandwidth, SimTime};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;

/// Largest capacity (BU) for which connection lookup stays a plain linear
/// scan.  The paper's 40-BU cell sits far below this; metro cells
/// (≈ 2000 BU, several hundred concurrent connections) sit far above, and
/// get the hash index.
pub const INDEX_LINEAR_SCAN_MAX: Bandwidth = 128;

/// Errors returned by base-station bookkeeping operations.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum StationError {
    /// Admission would exceed the physical capacity.
    InsufficientCapacity {
        /// Bandwidth requested (BU).
        requested: Bandwidth,
        /// Bandwidth still free (BU).
        available: Bandwidth,
    },
    /// The connection id is already active on this station.
    DuplicateConnection {
        /// The offending connection id.
        id: u64,
    },
    /// The connection id is not active on this station.
    UnknownConnection {
        /// The offending connection id.
        id: u64,
    },
}

impl fmt::Display for StationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StationError::InsufficientCapacity {
                requested,
                available,
            } => write!(
                f,
                "insufficient capacity: requested {requested} BU, only {available} BU free"
            ),
            StationError::DuplicateConnection { id } => {
                write!(f, "connection {id} is already active")
            }
            StationError::UnknownConnection { id } => {
                write!(f, "connection {id} is not active on this station")
            }
        }
    }
}

impl std::error::Error for StationError {}

/// An admitted, on-going connection as tracked by a base station.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ActiveConnection {
    /// Connection id (same id space as [`crate::traffic::CallRequest::id`]).
    pub id: u64,
    /// Service class.
    pub class: ServiceClass,
    /// Reserved bandwidth (BU).
    pub bandwidth: Bandwidth,
    /// Admission time (seconds).
    pub admitted_at: SimTime,
    /// Scheduled completion time (seconds).
    pub ends_at: SimTime,
    /// `true` if the connection arrived as a handoff from another cell.
    pub was_handoff: bool,
}

/// A base station with a fixed capacity in bandwidth units.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BaseStation {
    cell: CellId,
    position: Point,
    capacity: Bandwidth,
    connections: Vec<ActiveConnection>,
    rtc: Bandwidth,
    nrtc: Bandwidth,
    total_admitted: u64,
    total_released: u64,
    total_dropped: u64,
    /// id → position in `connections`, kept only for high-capacity
    /// stations.  Pure acceleration state: skipped on the wire, excluded
    /// from equality, rebuilt on demand when `index.len()` disagrees with
    /// `connections.len()`.
    #[serde(skip)]
    index: HashMap<u64, u32>,
}

impl PartialEq for BaseStation {
    fn eq(&self, other: &Self) -> bool {
        // The hash index is derived state; two stations are equal iff
        // their observable state matches (a freshly deserialised station
        // compares equal to the live one it was serialised from).
        self.cell == other.cell
            && self.position == other.position
            && self.capacity == other.capacity
            && self.connections == other.connections
            && self.rtc == other.rtc
            && self.nrtc == other.nrtc
            && self.total_admitted == other.total_admitted
            && self.total_released == other.total_released
            && self.total_dropped == other.total_dropped
    }
}

impl BaseStation {
    /// A station for `cell` located at `position` with `capacity` BU.
    #[must_use]
    pub fn new(cell: CellId, position: Point, capacity: Bandwidth) -> Self {
        Self {
            cell,
            position,
            capacity,
            connections: Vec::new(),
            rtc: 0,
            nrtc: 0,
            total_admitted: 0,
            total_released: 0,
            total_dropped: 0,
            index: HashMap::new(),
        }
    }

    /// Reset the station for a fresh run with the given capacity: every
    /// connection is dropped on the floor (no counters recorded) and all
    /// cumulative totals are zeroed, while the connection storage keeps its
    /// capacity — so a simulator reused across sweep cells pays no
    /// per-cell allocation here.
    pub fn reset_for_run(&mut self, capacity: Bandwidth) {
        self.capacity = capacity;
        self.connections.clear();
        self.rtc = 0;
        self.nrtc = 0;
        self.total_admitted = 0;
        self.total_released = 0;
        self.total_dropped = 0;
        self.index.clear();
    }

    /// The paper's single 40-BU base station at the origin.
    #[must_use]
    pub fn paper_default() -> Self {
        Self::new(CellId::origin(), Point::new(0.0, 0.0), 40)
    }

    /// Change the station's capacity in place (a fault transition:
    /// outage, degradation or recovery).  Active connections are kept
    /// even if the new capacity leaves the station over-occupied —
    /// [`BaseStation::available`] saturates at zero, so the station
    /// simply refuses new admissions until enough calls complete.  Use
    /// [`BaseStation::drop_all_into`] for transitions that evict.
    pub fn set_capacity(&mut self, capacity: Bandwidth) {
        self.capacity = capacity;
        if !self.uses_index() {
            // Dropping below the index threshold invalidates the index
            // wholesale; clearing it now keeps the synced-length
            // invariant simple for the scan path.
            self.index.clear();
        }
    }

    /// Force-drop every active connection into `out` (cleared first), in
    /// the dense vector order — deterministic given the station's
    /// operation history.  Each drop is counted in
    /// [`BaseStation::total_dropped`] and all occupancy counters return
    /// to zero.  This is the outage path: the calls did not complete and
    /// did not hand off, they were cut.
    pub fn drop_all_into(&mut self, out: &mut Vec<ActiveConnection>) {
        out.clear();
        self.total_dropped += self.connections.len() as u64;
        out.append(&mut self.connections);
        self.rtc = 0;
        self.nrtc = 0;
        self.index.clear();
    }

    /// The cell this station serves.
    #[must_use]
    pub fn cell(&self) -> CellId {
        self.cell
    }

    /// The station's position.
    #[must_use]
    pub fn position(&self) -> Point {
        self.position
    }

    /// Total capacity (BU).
    #[must_use]
    pub fn capacity(&self) -> Bandwidth {
        self.capacity
    }

    /// Bandwidth currently in use (BU).
    #[must_use]
    pub fn occupied(&self) -> Bandwidth {
        self.rtc + self.nrtc
    }

    /// Bandwidth still free (BU).
    #[must_use]
    pub fn available(&self) -> Bandwidth {
        self.capacity.saturating_sub(self.occupied())
    }

    /// Occupancy as a fraction of capacity in `[0, 1]`.
    #[must_use]
    pub fn utilization(&self) -> f64 {
        if self.capacity == 0 {
            return 1.0;
        }
        f64::from(self.occupied()) / f64::from(self.capacity)
    }

    /// The Counter state `Cs` input of FLC2: the occupied bandwidth in BU.
    #[must_use]
    pub fn counter_state(&self) -> Bandwidth {
        self.occupied()
    }

    /// Real-Time Counter: bandwidth held by on-going real-time connections.
    #[must_use]
    pub fn rtc(&self) -> Bandwidth {
        self.rtc
    }

    /// Non-Real-Time Counter: bandwidth held by on-going non-real-time
    /// connections.
    #[must_use]
    pub fn nrtc(&self) -> Bandwidth {
        self.nrtc
    }

    /// Number of currently active connections.
    #[must_use]
    pub fn active_connections(&self) -> usize {
        self.connections.len()
    }

    /// Iterator over the active connections (deterministic dense order:
    /// admission order, modulo swap-removal on release).
    pub fn connections(&self) -> impl Iterator<Item = &ActiveConnection> {
        self.connections.iter()
    }

    /// Look up an active connection.
    #[must_use]
    pub fn connection(&self, id: u64) -> Option<&ActiveConnection> {
        self.position_of(id).map(|pos| &self.connections[pos])
    }

    /// `true` when this station maintains the id → position hash index.
    fn uses_index(&self) -> bool {
        self.capacity > INDEX_LINEAR_SCAN_MAX
    }

    /// `true` when the hash index is present and in sync with the dense
    /// vector.  Every index-maintaining mutation preserves
    /// `index.len() == connections.len()`, so a length mismatch is the
    /// one-and-only signal of a stale index (deserialisation, or a
    /// capacity change that newly crossed the threshold).
    fn index_is_synced(&self) -> bool {
        self.index.len() == self.connections.len()
    }

    /// Repair the hash index before an index-maintaining mutation.
    fn sync_index(&mut self) {
        if !self.uses_index() {
            if !self.index.is_empty() {
                self.index.clear();
            }
            return;
        }
        if self.index_is_synced() {
            return;
        }
        self.index.clear();
        self.index.reserve(self.connections.len());
        for (pos, conn) in self.connections.iter().enumerate() {
            self.index.insert(conn.id, pos as u32);
        }
    }

    fn position_of(&self, id: u64) -> Option<usize> {
        if self.uses_index() && self.index_is_synced() {
            return self.index.get(&id).map(|&pos| pos as usize);
        }
        self.connections.iter().position(|c| c.id == id)
    }

    /// Bookkeeping shared by every `swap_remove` on `connections`: drop
    /// `id` from the index and re-point the entry of whichever connection
    /// was swapped into `pos` (if any).
    fn index_remove(&mut self, id: u64, pos: usize) {
        if !self.uses_index() {
            return;
        }
        self.index.remove(&id);
        if let Some(moved) = self.connections.get(pos) {
            self.index.insert(moved.id, pos as u32);
        }
    }

    /// `true` if a request for `bandwidth` BU physically fits right now.
    #[must_use]
    pub fn can_fit(&self, bandwidth: Bandwidth) -> bool {
        bandwidth <= self.available()
    }

    /// Cumulative number of admitted connections.
    #[must_use]
    pub fn total_admitted(&self) -> u64 {
        self.total_admitted
    }

    /// Cumulative number of normally completed (released) connections.
    #[must_use]
    pub fn total_released(&self) -> u64 {
        self.total_released
    }

    /// Cumulative number of dropped connections.
    #[must_use]
    pub fn total_dropped(&self) -> u64 {
        self.total_dropped
    }

    /// Admit a connection, reserving its bandwidth.
    pub fn admit(
        &mut self,
        id: u64,
        class: ServiceClass,
        bandwidth: Bandwidth,
        now: SimTime,
        holding_time: SimTime,
        was_handoff: bool,
    ) -> Result<(), StationError> {
        self.sync_index();
        if self.position_of(id).is_some() {
            return Err(StationError::DuplicateConnection { id });
        }
        if !self.can_fit(bandwidth) {
            return Err(StationError::InsufficientCapacity {
                requested: bandwidth,
                available: self.available(),
            });
        }
        if class.is_real_time() {
            self.rtc += bandwidth;
        } else {
            self.nrtc += bandwidth;
        }
        if self.uses_index() {
            self.index.insert(id, self.connections.len() as u32);
        }
        self.connections.push(ActiveConnection {
            id,
            class,
            bandwidth,
            admitted_at: now,
            ends_at: now + holding_time.max(0.0),
            was_handoff,
        });
        self.total_admitted += 1;
        Ok(())
    }

    fn take(&mut self, id: u64) -> Result<ActiveConnection, StationError> {
        self.sync_index();
        let pos = self
            .position_of(id)
            .ok_or(StationError::UnknownConnection { id })?;
        let conn = self.connections.swap_remove(pos);
        self.index_remove(id, pos);
        self.subtract(&conn);
        Ok(conn)
    }

    /// Release a connection that completed normally, freeing its bandwidth.
    pub fn release(&mut self, id: u64) -> Result<ActiveConnection, StationError> {
        let conn = self.take(id)?;
        self.total_released += 1;
        Ok(conn)
    }

    /// Remove a connection because it was dropped (e.g. failed handoff) —
    /// tracked separately from normal completion because call dropping is
    /// the QoS violation the paper's controllers try to avoid.
    pub fn drop_connection(&mut self, id: u64) -> Result<ActiveConnection, StationError> {
        let conn = self.take(id)?;
        self.total_dropped += 1;
        Ok(conn)
    }

    /// Remove a connection that is handing off to another cell (neither a
    /// completion nor a drop from this station's point of view).
    pub fn transfer_out(&mut self, id: u64) -> Result<ActiveConnection, StationError> {
        self.take(id)
    }

    /// Release every connection whose `ends_at` is at or before `now` into
    /// `out` (cleared first), sorted by completion time.  Allocation-free
    /// once `out` has warmed up to the working-set size.
    pub fn release_expired_into(&mut self, now: SimTime, out: &mut Vec<ActiveConnection>) {
        self.sync_index();
        out.clear();
        let mut i = 0;
        while i < self.connections.len() {
            if self.connections[i].ends_at <= now {
                let conn = self.connections.swap_remove(i);
                self.index_remove(conn.id, i);
                self.subtract(&conn);
                self.total_released += 1;
                out.push(conn);
            } else {
                i += 1;
            }
        }
        out.sort_unstable_by(|a, b| a.ends_at.total_cmp(&b.ends_at));
    }

    /// Release every connection whose `ends_at` is at or before `now`;
    /// returns them sorted by completion time.  The simulator's hot loop
    /// uses [`BaseStation::release_expired_into`] with a reused scratch
    /// buffer instead.
    pub fn release_expired(&mut self, now: SimTime) -> Vec<ActiveConnection> {
        let mut out = Vec::new();
        self.release_expired_into(now, &mut out);
        out
    }

    fn subtract(&mut self, conn: &ActiveConnection) {
        if conn.class.is_real_time() {
            self.rtc = self.rtc.saturating_sub(conn.bandwidth);
        } else {
            self.nrtc = self.nrtc.saturating_sub(conn.bandwidth);
        }
    }
}

impl Default for BaseStation {
    fn default() -> Self {
        Self::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn station() -> BaseStation {
        BaseStation::paper_default()
    }

    #[test]
    fn paper_default_station() {
        let s = station();
        assert_eq!(s.capacity(), 40);
        assert_eq!(s.occupied(), 0);
        assert_eq!(s.available(), 40);
        assert_eq!(s.cell(), CellId::origin());
        assert_eq!(s.utilization(), 0.0);
        assert_eq!(s.counter_state(), 0);
    }

    #[test]
    fn admit_reserves_bandwidth_and_updates_counters() {
        let mut s = station();
        s.admit(1, ServiceClass::Video, 10, 0.0, 100.0, false)
            .unwrap();
        s.admit(2, ServiceClass::Text, 1, 0.0, 100.0, false)
            .unwrap();
        s.admit(3, ServiceClass::Voice, 5, 0.0, 100.0, false)
            .unwrap();
        assert_eq!(s.occupied(), 16);
        assert_eq!(s.rtc(), 15);
        assert_eq!(s.nrtc(), 1);
        assert_eq!(s.available(), 24);
        assert_eq!(s.active_connections(), 3);
        assert_eq!(s.total_admitted(), 3);
        assert!((s.utilization() - 0.4).abs() < 1e-12);
    }

    #[test]
    fn admit_rejects_over_capacity() {
        let mut s = BaseStation::new(CellId::origin(), Point::default(), 12);
        s.admit(1, ServiceClass::Video, 10, 0.0, 100.0, false)
            .unwrap();
        let err = s
            .admit(2, ServiceClass::Voice, 5, 0.0, 100.0, false)
            .unwrap_err();
        assert_eq!(
            err,
            StationError::InsufficientCapacity {
                requested: 5,
                available: 2
            }
        );
        // A text call still fits.
        s.admit(3, ServiceClass::Text, 1, 0.0, 100.0, false)
            .unwrap();
        assert_eq!(s.available(), 1);
    }

    #[test]
    fn admit_rejects_duplicate_ids() {
        let mut s = station();
        s.admit(7, ServiceClass::Text, 1, 0.0, 10.0, false).unwrap();
        assert_eq!(
            s.admit(7, ServiceClass::Text, 1, 0.0, 10.0, false)
                .unwrap_err(),
            StationError::DuplicateConnection { id: 7 }
        );
    }

    #[test]
    fn release_frees_bandwidth() {
        let mut s = station();
        s.admit(1, ServiceClass::Voice, 5, 0.0, 60.0, false)
            .unwrap();
        let conn = s.release(1).unwrap();
        assert_eq!(conn.bandwidth, 5);
        assert_eq!(s.occupied(), 0);
        assert_eq!(s.total_released(), 1);
        assert_eq!(
            s.release(1).unwrap_err(),
            StationError::UnknownConnection { id: 1 }
        );
    }

    #[test]
    fn drop_and_transfer_are_tracked_separately() {
        let mut s = station();
        s.admit(1, ServiceClass::Video, 10, 0.0, 60.0, false)
            .unwrap();
        s.admit(2, ServiceClass::Video, 10, 0.0, 60.0, true)
            .unwrap();
        s.drop_connection(1).unwrap();
        s.transfer_out(2).unwrap();
        assert_eq!(s.total_dropped(), 1);
        assert_eq!(s.total_released(), 0);
        assert_eq!(s.occupied(), 0);
        assert!(s.drop_connection(99).is_err());
        assert!(s.transfer_out(99).is_err());
    }

    #[test]
    fn release_expired_only_removes_finished_calls() {
        let mut s = station();
        s.admit(1, ServiceClass::Text, 1, 0.0, 10.0, false).unwrap();
        s.admit(2, ServiceClass::Text, 1, 0.0, 50.0, false).unwrap();
        s.admit(3, ServiceClass::Voice, 5, 0.0, 20.0, false)
            .unwrap();
        let done = s.release_expired(25.0);
        assert_eq!(done.len(), 2);
        assert_eq!(done[0].id, 1);
        assert_eq!(done[1].id, 3);
        assert_eq!(s.active_connections(), 1);
        assert_eq!(s.occupied(), 1);
    }

    #[test]
    fn connection_lookup_and_metadata() {
        let mut s = station();
        s.admit(5, ServiceClass::Video, 10, 12.0, 30.0, true)
            .unwrap();
        let c = s.connection(5).unwrap();
        assert_eq!(c.admitted_at, 12.0);
        assert_eq!(c.ends_at, 42.0);
        assert!(c.was_handoff);
        assert!(s.connection(6).is_none());
        assert_eq!(s.connections().count(), 1);
    }

    #[test]
    fn zero_capacity_station_is_always_full() {
        let s = BaseStation::new(CellId::origin(), Point::default(), 0);
        assert_eq!(s.utilization(), 1.0);
        assert!(!s.can_fit(1));
        assert!(s.can_fit(0));
    }

    #[test]
    fn negative_holding_time_is_clamped() {
        let mut s = station();
        s.admit(1, ServiceClass::Text, 1, 10.0, -5.0, false)
            .unwrap();
        assert_eq!(s.connection(1).unwrap().ends_at, 10.0);
    }

    #[test]
    fn reset_for_run_clears_state_and_keeps_storage() {
        let mut s = station();
        s.admit(1, ServiceClass::Video, 10, 0.0, 60.0, false)
            .unwrap();
        s.admit(2, ServiceClass::Text, 1, 0.0, 60.0, false).unwrap();
        s.release(2).unwrap();
        let cap = s.connections.capacity();
        s.reset_for_run(25);
        assert_eq!(s.capacity(), 25);
        assert_eq!(s.occupied(), 0);
        assert_eq!(s.rtc(), 0);
        assert_eq!(s.nrtc(), 0);
        assert_eq!(s.active_connections(), 0);
        assert_eq!(s.total_admitted(), 0);
        assert_eq!(s.total_released(), 0);
        assert_eq!(s.total_dropped(), 0);
        assert_eq!(s.connections.capacity(), cap, "storage is kept for reuse");
        // The station is immediately usable again.
        s.admit(9, ServiceClass::Voice, 5, 1.0, 10.0, true).unwrap();
        assert_eq!(s.occupied(), 5);
    }

    #[test]
    fn release_expired_into_reuses_the_scratch_buffer() {
        let mut s = station();
        for i in 0..6 {
            s.admit(i, ServiceClass::Text, 1, 0.0, 5.0 + i as f64, false)
                .unwrap();
        }
        let mut scratch = Vec::new();
        s.release_expired_into(8.0, &mut scratch);
        assert_eq!(scratch.len(), 4);
        assert!(scratch.windows(2).all(|w| w[0].ends_at <= w[1].ends_at));
        let cap = scratch.capacity();
        // A later, smaller expiry batch reuses the same storage.
        s.release_expired_into(100.0, &mut scratch);
        assert_eq!(scratch.len(), 2);
        assert_eq!(scratch.capacity(), cap);
    }

    /// A metro-capacity station (above the index threshold) paired with a
    /// small, always-linear reference station driven by the same
    /// operations; both must agree on every observable.
    #[test]
    fn indexed_station_matches_linear_semantics() {
        let mut indexed = BaseStation::new(CellId::origin(), Point::default(), 100_000);
        let mut linear = BaseStation::new(CellId::origin(), Point::default(), 100_000);
        // Force the reference station down the scan path by leaving its
        // index permanently stale: serde skip simulates that below; here
        // we simply interleave operations and compare.
        assert!(indexed.uses_index());
        for id in 0..500u64 {
            let class = match id % 3 {
                0 => ServiceClass::Text,
                1 => ServiceClass::Voice,
                _ => ServiceClass::Video,
            };
            let bw = class.paper_bandwidth();
            indexed
                .admit(id, class, bw, id as f64, 50.0 + id as f64, false)
                .unwrap();
            linear
                .admit(id, class, bw, id as f64, 50.0 + id as f64, false)
                .unwrap();
        }
        // Mixed removals exercise every swap_remove path.
        for id in (0..500u64).step_by(3) {
            assert_eq!(indexed.release(id).unwrap(), linear.release(id).unwrap());
        }
        for id in (1..500u64).step_by(7) {
            let a = indexed.transfer_out(id);
            let b = linear.transfer_out(id);
            assert_eq!(a, b);
        }
        let mut scratch_a = Vec::new();
        let mut scratch_b = Vec::new();
        indexed.release_expired_into(300.0, &mut scratch_a);
        linear.release_expired_into(300.0, &mut scratch_b);
        assert_eq!(scratch_a, scratch_b);
        assert_eq!(indexed, linear);
        assert_eq!(indexed.index.len(), indexed.connections.len());
        // Every surviving connection is findable through the index.
        for conn in linear.connections() {
            assert_eq!(indexed.connection(conn.id).unwrap(), conn);
        }
        assert!(indexed.connection(10_000).is_none());
    }

    #[test]
    fn index_self_heals_after_deserialisation() {
        let mut s = BaseStation::new(CellId::origin(), Point::default(), 10_000);
        for id in 0..50u64 {
            s.admit(id, ServiceClass::Voice, 5, 0.0, 100.0, false)
                .unwrap();
        }
        let json = serde_json::to_string(&s).unwrap();
        let mut restored: BaseStation = serde_json::from_str(&json).unwrap();
        // `#[serde(skip)]` leaves the index empty; equality ignores it and
        // reads fall back to the linear scan until a mutation rebuilds it.
        assert_eq!(restored, s);
        assert!(restored.index.is_empty());
        assert!(restored.connection(49).is_some());
        restored.release(25).unwrap();
        assert_eq!(restored.index.len(), restored.connections.len());
        s.release(25).unwrap();
        assert_eq!(restored, s);
    }

    #[test]
    fn small_stations_never_build_an_index() {
        let mut s = station();
        assert!(!s.uses_index());
        for id in 0..8u64 {
            s.admit(id, ServiceClass::Text, 1, 0.0, 100.0, false)
                .unwrap();
        }
        s.release(3).unwrap();
        assert!(s.index.is_empty());
    }

    #[test]
    fn reset_crossing_the_index_threshold_stays_consistent() {
        let mut s = BaseStation::new(CellId::origin(), Point::default(), 10_000);
        s.admit(1, ServiceClass::Video, 10, 0.0, 100.0, false)
            .unwrap();
        assert!(!s.index.is_empty());
        s.reset_for_run(40);
        assert!(s.index.is_empty());
        s.admit(2, ServiceClass::Text, 1, 0.0, 100.0, false)
            .unwrap();
        assert!(s.index.is_empty(), "below threshold: stays scan-only");
        s.reset_for_run(100_000);
        s.admit(3, ServiceClass::Text, 1, 0.0, 100.0, false)
            .unwrap();
        assert_eq!(s.index.len(), 1, "above threshold: index resumes");
    }

    #[test]
    fn set_capacity_keeps_connections_and_saturates_availability() {
        let mut s = station();
        s.admit(1, ServiceClass::Video, 10, 0.0, 60.0, false)
            .unwrap();
        s.admit(2, ServiceClass::Voice, 5, 0.0, 60.0, false)
            .unwrap();
        s.set_capacity(8);
        assert_eq!(s.capacity(), 8);
        assert_eq!(s.occupied(), 15, "existing calls survive a degrade");
        assert_eq!(s.available(), 0, "over-occupied saturates, never wraps");
        assert!(!s.can_fit(1));
        assert_eq!(s.utilization(), 15.0 / 8.0);
        s.release(1).unwrap();
        s.release(2).unwrap();
        s.set_capacity(40);
        assert!(s.can_fit(40));
    }

    #[test]
    fn drop_all_into_cuts_every_call_and_counts_drops() {
        let mut s = station();
        s.admit(1, ServiceClass::Video, 10, 0.0, 60.0, false)
            .unwrap();
        s.admit(2, ServiceClass::Text, 1, 0.0, 60.0, false).unwrap();
        s.admit(3, ServiceClass::Voice, 5, 0.0, 60.0, true).unwrap();
        let mut out = Vec::new();
        s.drop_all_into(&mut out);
        assert_eq!(out.len(), 3);
        assert_eq!(out.iter().map(|c| c.id).collect::<Vec<_>>(), vec![1, 2, 3]);
        assert_eq!(s.active_connections(), 0);
        assert_eq!(s.occupied(), 0);
        assert_eq!(s.rtc(), 0);
        assert_eq!(s.nrtc(), 0);
        assert_eq!(s.total_dropped(), 3);
        assert_eq!(
            s.release(1).unwrap_err(),
            StationError::UnknownConnection { id: 1 },
            "stale departures become clean no-ops"
        );
        // The station admits again normally after a recovery.
        s.admit(4, ServiceClass::Text, 1, 1.0, 10.0, false).unwrap();
        assert_eq!(s.occupied(), 1);
    }

    #[test]
    fn set_capacity_across_the_index_threshold_self_heals() {
        let mut s = BaseStation::new(CellId::origin(), Point::default(), 10_000);
        for id in 0..20u64 {
            s.admit(id, ServiceClass::Voice, 5, 0.0, 100.0, false)
                .unwrap();
        }
        assert_eq!(s.index.len(), 20);
        s.set_capacity(0);
        assert!(s.index.is_empty(), "below threshold: index cleared");
        assert!(s.connection(7).is_some(), "scan path still works");
        s.set_capacity(10_000);
        // Index rebuilds lazily on the next mutation.
        s.release(7).unwrap();
        assert_eq!(s.index.len(), s.connections.len());
    }

    #[test]
    fn error_display() {
        let e = StationError::InsufficientCapacity {
            requested: 10,
            available: 3,
        };
        assert!(e.to_string().contains("10"));
        assert!(e.to_string().contains("3"));
    }
}
