//! User kinematics and mobility models.
//!
//! FLC1's inputs are the user's *speed* and the *angle* between the user's
//! heading and the direction toward the serving base station: a user heading
//! straight at the base station has angle 0°, one heading directly away has
//! ±180° (the paper's `B1`/`B2` terms).  [`UserState`] carries the kinematic
//! state and computes that angle; [`MobilityModel`] advances the state over
//! time for the multi-cell scenarios.

use crate::geometry::{normalize_angle, Point};
use crate::rng::SimRng;
use crate::SimTime;
use serde::{Deserialize, Serialize};

/// Kinematic state of one mobile user.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct UserState {
    /// Position in metres.
    pub position: Point,
    /// Speed in km/h (non-negative).
    pub speed_kmh: f64,
    /// Heading in degrees, counter-clockwise from the +x axis, in
    /// `(-180, 180]`.
    pub heading_deg: f64,
}

impl UserState {
    /// Create a state, normalising the heading and clamping the speed to be
    /// non-negative.
    #[must_use]
    pub fn new(position: Point, speed_kmh: f64, heading_deg: f64) -> Self {
        Self {
            position,
            speed_kmh: speed_kmh.max(0.0),
            heading_deg: normalize_angle(heading_deg),
        }
    }

    /// Speed in metres per second.
    #[must_use]
    pub fn speed_mps(&self) -> f64 {
        self.speed_kmh / 3.6
    }

    /// The angle (degrees, in `(-180, 180]`) between the user's heading and
    /// the direction from the user toward `station`.
    ///
    /// 0° means the user is moving straight toward the station; ±180° means
    /// it is moving directly away.  This is the `An` input of FLC1.
    #[must_use]
    pub fn angle_to_station(&self, station: &Point) -> f64 {
        if self.position.distance(station) < 1e-9 {
            // Standing on top of the base station: any heading is "toward".
            return 0.0;
        }
        let bearing = self.position.bearing_to(station);
        normalize_angle(self.heading_deg - bearing)
    }

    /// Straight-line distance to the station in metres.
    #[must_use]
    pub fn distance_to(&self, station: &Point) -> f64 {
        self.position.distance(station)
    }

    /// Advance the position by `dt` seconds of straight-line motion.
    #[must_use]
    pub fn advanced(&self, dt: SimTime) -> Self {
        let d = self.speed_mps() * dt.max(0.0);
        let rad = self.heading_deg.to_radians();
        Self {
            position: self.position.translated(d * rad.cos(), d * rad.sin()),
            ..*self
        }
    }

    /// Time (seconds) until the user leaves a circle of radius `radius_m`
    /// centred at `center`, assuming straight-line motion; `None` if the
    /// user never leaves (speed 0) or is already outside.
    #[must_use]
    pub fn time_to_exit(&self, center: &Point, radius_m: f64) -> Option<SimTime> {
        let v = self.speed_mps();
        let dx = self.position.x - center.x;
        let dy = self.position.y - center.y;
        let r2 = radius_m * radius_m;
        if dx * dx + dy * dy > r2 {
            return None;
        }
        if v <= 0.0 {
            return None;
        }
        let rad = self.heading_deg.to_radians();
        let (vx, vy) = (v * rad.cos(), v * rad.sin());
        // Solve |p + v t - c|^2 = r^2 for the positive root.
        let a = vx * vx + vy * vy;
        let b = 2.0 * (dx * vx + dy * vy);
        let c = dx * dx + dy * dy - r2;
        let disc = b * b - 4.0 * a * c;
        if disc < 0.0 {
            return None;
        }
        let t = (-b + disc.sqrt()) / (2.0 * a);
        if t.is_finite() && t >= 0.0 {
            Some(t)
        } else {
            None
        }
    }
}

impl Default for UserState {
    fn default() -> Self {
        Self::new(Point::default(), 0.0, 0.0)
    }
}

/// A mobility model advances a [`UserState`] over a time step.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[non_exhaustive]
pub enum MobilityModel {
    /// Constant speed and heading (the paper's implicit model: prediction is
    /// easier the faster the user moves because the heading is stable).
    ConstantVelocity,
    /// Random-direction: at every step the heading changes by a uniformly
    /// distributed perturbation whose magnitude *decreases with speed*,
    /// matching the paper's observation that fast users cannot change
    /// direction easily.
    RandomDirection {
        /// Maximum heading change (degrees) per step for a stationary user.
        max_turn_deg: f64,
    },
    /// Gauss–Markov: heading and speed revert to a mean with tunable memory.
    GaussMarkov {
        /// Memory parameter `alpha` in `[0, 1]`; 1 = fully deterministic.
        alpha: f64,
        /// Mean speed the process reverts to (km/h).
        mean_speed_kmh: f64,
        /// Standard deviation of the speed perturbation (km/h).
        speed_sigma: f64,
        /// Standard deviation of the heading perturbation (degrees).
        heading_sigma_deg: f64,
    },
}

impl MobilityModel {
    /// The paper-faithful default: the lower the speed, the more the heading
    /// wanders (30° maximum turn per step when stationary).
    #[must_use]
    pub fn paper_default() -> Self {
        MobilityModel::RandomDirection { max_turn_deg: 30.0 }
    }

    /// Advance `state` by `dt` seconds.
    pub fn step(&self, state: &UserState, dt: SimTime, rng: &mut SimRng) -> UserState {
        let moved = state.advanced(dt);
        match *self {
            MobilityModel::ConstantVelocity => moved,
            MobilityModel::RandomDirection { max_turn_deg } => {
                // Faster users turn less: scale the turn budget by
                // (1 - speed / 120) clamped to [0.05, 1].
                let agility = (1.0 - state.speed_kmh / 120.0).clamp(0.05, 1.0);
                let turn = rng.uniform(-max_turn_deg, max_turn_deg) * agility;
                UserState::new(moved.position, moved.speed_kmh, moved.heading_deg + turn)
            }
            MobilityModel::GaussMarkov {
                alpha,
                mean_speed_kmh,
                speed_sigma,
                heading_sigma_deg,
            } => {
                let alpha = alpha.clamp(0.0, 1.0);
                let root = (1.0 - alpha * alpha).max(0.0).sqrt();
                let speed = alpha * moved.speed_kmh
                    + (1.0 - alpha) * mean_speed_kmh
                    + root * rng.normal(0.0, speed_sigma);
                let heading = alpha * moved.heading_deg
                    + (1.0 - alpha) * moved.heading_deg
                    + root * rng.normal(0.0, heading_sigma_deg);
                UserState::new(moved.position, speed.max(0.0), heading)
            }
        }
    }
}

impl Default for MobilityModel {
    fn default() -> Self {
        Self::paper_default()
    }
}

/// Spawn a user uniformly inside a disc of radius `radius_m` around
/// `center`, with speed and heading drawn uniformly from the given ranges.
pub fn spawn_uniform(
    center: &Point,
    radius_m: f64,
    speed_range_kmh: (f64, f64),
    rng: &mut SimRng,
) -> UserState {
    // Uniform over the disc area: radius ~ sqrt(U).
    let r = radius_m.max(0.0) * rng.uniform(0.0, 1.0).sqrt();
    let theta = rng.uniform(-std::f64::consts::PI, std::f64::consts::PI);
    let pos = center.translated(r * theta.cos(), r * theta.sin());
    let speed = rng.uniform(speed_range_kmh.0, speed_range_kmh.1);
    let heading = rng.uniform(-180.0, 180.0);
    UserState::new(pos, speed, heading)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn state_normalises_inputs() {
        let s = UserState::new(Point::new(0.0, 0.0), -5.0, 540.0);
        assert_eq!(s.speed_kmh, 0.0);
        assert_eq!(s.heading_deg, 180.0);
    }

    #[test]
    fn speed_conversion() {
        let s = UserState::new(Point::default(), 36.0, 0.0);
        assert!((s.speed_mps() - 10.0).abs() < 1e-12);
    }

    #[test]
    fn angle_to_station_zero_when_heading_at_it() {
        // Station to the east, user heading east -> angle 0.
        let user = UserState::new(Point::new(0.0, 0.0), 50.0, 0.0);
        let station = Point::new(1000.0, 0.0);
        assert!((user.angle_to_station(&station)).abs() < 1e-9);
    }

    #[test]
    fn angle_to_station_180_when_heading_away() {
        let user = UserState::new(Point::new(0.0, 0.0), 50.0, 180.0);
        let station = Point::new(1000.0, 0.0);
        assert!((user.angle_to_station(&station).abs() - 180.0).abs() < 1e-9);
    }

    #[test]
    fn angle_to_station_signed_left_right() {
        let station = Point::new(1000.0, 0.0);
        // Heading 45° left of the station direction.
        let left = UserState::new(Point::new(0.0, 0.0), 50.0, 45.0);
        assert!((left.angle_to_station(&station) - 45.0).abs() < 1e-9);
        let right = UserState::new(Point::new(0.0, 0.0), 50.0, -45.0);
        assert!((right.angle_to_station(&station) + 45.0).abs() < 1e-9);
    }

    #[test]
    fn angle_on_top_of_station_is_zero() {
        let user = UserState::new(Point::new(5.0, 5.0), 50.0, 123.0);
        assert_eq!(user.angle_to_station(&Point::new(5.0, 5.0)), 0.0);
    }

    #[test]
    fn advanced_moves_along_heading() {
        let s = UserState::new(Point::new(0.0, 0.0), 36.0, 90.0); // 10 m/s north
        let s2 = s.advanced(10.0);
        assert!((s2.position.x - 0.0).abs() < 1e-9);
        assert!((s2.position.y - 100.0).abs() < 1e-9);
        // negative dt is treated as zero
        let s3 = s.advanced(-5.0);
        assert_eq!(s3.position, s.position);
    }

    #[test]
    fn time_to_exit_straight_line() {
        // 10 m/s heading east from the centre of a 1000 m cell: exit in 100 s.
        let s = UserState::new(Point::new(0.0, 0.0), 36.0, 0.0);
        let t = s.time_to_exit(&Point::new(0.0, 0.0), 1000.0).unwrap();
        assert!((t - 100.0).abs() < 1e-6);
        // Stationary user never exits.
        let still = UserState::new(Point::new(0.0, 0.0), 0.0, 0.0);
        assert!(still.time_to_exit(&Point::new(0.0, 0.0), 1000.0).is_none());
        // Already outside.
        let outside = UserState::new(Point::new(5000.0, 0.0), 36.0, 0.0);
        assert!(outside
            .time_to_exit(&Point::new(0.0, 0.0), 1000.0)
            .is_none());
    }

    #[test]
    fn time_to_exit_off_center_start() {
        // Start 500 m east of centre heading east at 10 m/s in a 1000 m cell:
        // 500 m to the boundary -> 50 s.
        let s = UserState::new(Point::new(500.0, 0.0), 36.0, 0.0);
        let t = s.time_to_exit(&Point::new(0.0, 0.0), 1000.0).unwrap();
        assert!((t - 50.0).abs() < 1e-6);
    }

    #[test]
    fn constant_velocity_keeps_heading() {
        let mut rng = SimRng::new(1);
        let s = UserState::new(Point::new(0.0, 0.0), 60.0, 30.0);
        let s2 = MobilityModel::ConstantVelocity.step(&s, 5.0, &mut rng);
        assert_eq!(s2.heading_deg, 30.0);
        assert_eq!(s2.speed_kmh, 60.0);
        assert!(s2.position.distance(&s.position) > 0.0);
    }

    #[test]
    fn random_direction_fast_users_turn_less() {
        let model = MobilityModel::paper_default();
        let steps = 400;
        let mut turn_slow = 0.0;
        let mut turn_fast = 0.0;
        let mut rng = SimRng::new(2);
        let mut slow = UserState::new(Point::default(), 4.0, 0.0);
        let mut fast = UserState::new(Point::default(), 110.0, 0.0);
        for _ in 0..steps {
            let s2 = model.step(&slow, 1.0, &mut rng);
            turn_slow += (s2.heading_deg - slow.heading_deg)
                .abs()
                .min(360.0 - (s2.heading_deg - slow.heading_deg).abs());
            slow = s2;
            let f2 = model.step(&fast, 1.0, &mut rng);
            turn_fast += (f2.heading_deg - fast.heading_deg)
                .abs()
                .min(360.0 - (f2.heading_deg - fast.heading_deg).abs());
            fast = f2;
        }
        assert!(
            turn_fast < turn_slow * 0.5,
            "fast users should turn much less: fast {turn_fast:.1} vs slow {turn_slow:.1}"
        );
    }

    #[test]
    fn gauss_markov_reverts_toward_mean_speed() {
        let model = MobilityModel::GaussMarkov {
            alpha: 0.5,
            mean_speed_kmh: 60.0,
            speed_sigma: 1.0,
            heading_sigma_deg: 1.0,
        };
        let mut rng = SimRng::new(3);
        let mut s = UserState::new(Point::default(), 0.0, 0.0);
        for _ in 0..50 {
            s = model.step(&s, 1.0, &mut rng);
        }
        assert!((s.speed_kmh - 60.0).abs() < 20.0, "speed {}", s.speed_kmh);
    }

    #[test]
    fn spawn_uniform_is_inside_disc() {
        let mut rng = SimRng::new(4);
        let center = Point::new(100.0, -50.0);
        for _ in 0..500 {
            let u = spawn_uniform(&center, 800.0, (0.0, 120.0), &mut rng);
            assert!(u.position.distance(&center) <= 800.0 + 1e-9);
            assert!(u.speed_kmh >= 0.0 && u.speed_kmh <= 120.0);
            assert!(u.heading_deg > -180.0 - 1e-9 && u.heading_deg <= 180.0 + 1e-9);
        }
    }

    #[test]
    fn default_model_is_paper_default() {
        assert_eq!(MobilityModel::default(), MobilityModel::paper_default());
    }
}
