//! Discrete-event wireless cellular network simulator.
//!
//! This crate is the evaluation substrate for the FACS / FACS-P
//! call-admission controllers: a hexagonal-cell wireless network with mobile
//! users, multimedia traffic (text / voice / video), base stations with a
//! fixed capacity in bandwidth units (BU), and a discrete-event simulation
//! driver that feeds admission requests to a pluggable
//! [`AdmissionController`].
//!
//! The paper's evaluation (Section 4) uses a single 40-BU base station, a
//! 70/20/10 % text/voice/video mix with 1/5/10 BU requests, user speeds of
//! 0–120 km/h and user directions of −180…180°.  Those defaults are captured
//! in [`traffic::TrafficMix::paper_default`] and
//! [`station::BaseStation::paper_default`], but every parameter can be
//! overridden; the simulator also supports multi-cell topologies with
//! handoffs for the scenarios that go beyond the paper (see
//! `examples/highway_handoff.rs` in the workspace root).
//!
//! # Crate layout
//!
//! * [`geometry`] — hexagonal cell grid, cell ids, neighbour rings and
//!   Euclidean positions.
//! * [`mobility`] — user kinematic state (position, speed, heading), the
//!   angle-to-base-station computation used by FLC1, and mobility models.
//! * [`traffic`] — service classes, bandwidth units, the paper's traffic mix
//!   and Poisson/exponential call generators, plus the bursty arrival
//!   models (trace replay, MMPP, correlated groups) in [`traffic::model`].
//! * [`station`] — base stations: capacity bookkeeping and the real-time /
//!   non-real-time occupancy counters (RTC / NRTC) used by FACS-P.
//! * [`event`] — the discrete-event queue (small `Copy` events over dense
//!   cell indices and slab handles).
//! * [`fault`] — deterministic scheduled cell faults (outages and
//!   capacity degradation), folded into both engines as a fourth merge
//!   stream.
//! * [`slab`] — generational slab storage for per-connection state.
//! * [`sim`] — the simulation driver and the [`AdmissionController`] trait.
//! * [`shard`] — the spatially sharded, epoch-synchronised parallel engine
//!   for metro-scale runs (bit-identical for any shard/thread count).
//! * [`metrics`] — acceptance/blocking/dropping statistics and time series.
//! * [`telem`] — the telemetry schema and the feature-selected default
//!   [`telemetry::Recorder`] (observation-only; reports are byte-identical
//!   with telemetry on and off).
//! * [`rng`] — small deterministic RNG helpers so every experiment is
//!   reproducible from a seed.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod event;
pub mod fault;
pub mod geometry;
pub mod metrics;
pub mod mobility;
pub mod rng;
pub mod shard;
pub mod sim;
pub mod slab;
pub mod station;
pub mod telem;
pub mod traffic;

pub use telemetry;

pub use event::{Event, EventKind, EventQueue};
pub use fault::{FaultEvent, FaultKind, FaultPlan};
pub use geometry::{CellGrid, CellId, CellIdx, Point};
pub use metrics::{ClassMetrics, Metrics, StatAccumulator, SummaryStats};
pub use mobility::{MobilityModel, UserState};
pub use rng::SimRng;
pub use shard::{BoxedController, MergeKey, ShardConfig, ShardReport, ShardedSimulator};
pub use sim::{
    AdmissionController, AdmissionDecision, AdmissionRequest, AlwaysAccept, CapacityThreshold,
    SimConfig, SimReport, Simulator,
};
pub use slab::{Slab, SlotId};
pub use station::{BaseStation, StationError};
pub use traffic::{
    CallRequest, DurationPolicy, GroupConfig, MmppConfig, MmppState, ServiceClass, TraceConfig,
    TraceEntry, TraceError, TrafficGenerator, TrafficMix, TrafficModel,
};

/// Bandwidth unit (BU) type used throughout the simulator.
///
/// The paper expresses all capacities and requests in integer bandwidth
/// units (1 BU = the bandwidth of a text connection).
pub type Bandwidth = u32;

/// Simulation time in seconds.
pub type SimTime = f64;
