//! Deterministic random-number helpers.
//!
//! Every stochastic component of the simulator draws from a [`SimRng`] that
//! is seeded explicitly, so any experiment (and any failing test) can be
//! reproduced exactly from its seed.

use rand::distributions::{Distribution, Uniform};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A seeded random-number generator with the handful of distributions the
/// simulator needs (uniform, exponential, Bernoulli, weighted choice).
#[derive(Debug, Clone)]
pub struct SimRng {
    rng: StdRng,
    seed: u64,
}

impl SimRng {
    /// Create a generator from a 64-bit seed.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        Self {
            rng: StdRng::seed_from_u64(seed),
            seed,
        }
    }

    /// The seed this generator was created with.
    #[must_use]
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Derive an independent child generator; `stream` distinguishes
    /// different uses of the same parent seed.
    #[must_use]
    pub fn derive(&self, stream: u64) -> Self {
        // SplitMix64-style mixing keeps child streams decorrelated even for
        // adjacent seeds / stream ids.
        let mut z = self
            .seed
            .wrapping_add(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(stream.wrapping_add(1)));
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        Self::new(z)
    }

    /// Uniform value in `[lo, hi)` (returns `lo` when the range is empty or
    /// degenerate).
    pub fn uniform(&mut self, lo: f64, hi: f64) -> f64 {
        if !(lo.is_finite() && hi.is_finite()) || hi <= lo {
            return lo;
        }
        Uniform::new(lo, hi).sample(&mut self.rng)
    }

    /// Uniform integer in `[lo, hi]` inclusive.
    pub fn uniform_u32(&mut self, lo: u32, hi: u32) -> u32 {
        if hi <= lo {
            return lo;
        }
        self.rng.gen_range(lo..=hi)
    }

    /// Exponentially distributed value with the given mean (`> 0`).
    pub fn exponential(&mut self, mean: f64) -> f64 {
        if !(mean.is_finite()) || mean <= 0.0 {
            return 0.0;
        }
        // Inverse-CDF sampling; `1 - u` avoids ln(0).
        let u: f64 = self.rng.gen::<f64>();
        -mean * (1.0 - u).ln()
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        let p = if p.is_nan() { 0.0 } else { p.clamp(0.0, 1.0) };
        self.rng.gen::<f64>() < p
    }

    /// Choose an index according to non-negative `weights`.
    ///
    /// Returns 0 when all weights are zero or the slice is empty.
    pub fn weighted_choice(&mut self, weights: &[f64]) -> usize {
        let total: f64 = weights.iter().filter(|w| w.is_finite() && **w > 0.0).sum();
        if total <= 0.0 || weights.is_empty() {
            return 0;
        }
        let mut target = self.rng.gen::<f64>() * total;
        for (i, &w) in weights.iter().enumerate() {
            if !w.is_finite() || w <= 0.0 {
                continue;
            }
            if target < w {
                return i;
            }
            target -= w;
        }
        weights.len() - 1
    }

    /// A normally distributed value via Box–Muller (mean `mu`, std `sigma`).
    pub fn normal(&mut self, mu: f64, sigma: f64) -> f64 {
        let u1: f64 = self.rng.gen::<f64>().max(f64::MIN_POSITIVE);
        let u2: f64 = self.rng.gen::<f64>();
        let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        mu + sigma * z
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_sequence() {
        let mut a = SimRng::new(42);
        let mut b = SimRng::new(42);
        for _ in 0..100 {
            assert_eq!(a.uniform(0.0, 1.0), b.uniform(0.0, 1.0));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SimRng::new(1);
        let mut b = SimRng::new(2);
        let va: Vec<f64> = (0..10).map(|_| a.uniform(0.0, 1.0)).collect();
        let vb: Vec<f64> = (0..10).map(|_| b.uniform(0.0, 1.0)).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn derived_streams_are_deterministic_and_distinct() {
        let parent = SimRng::new(7);
        let mut c1 = parent.derive(0);
        let mut c1b = parent.derive(0);
        let mut c2 = parent.derive(1);
        let a = c1.uniform(0.0, 1.0);
        assert_eq!(a, c1b.uniform(0.0, 1.0));
        assert_ne!(a, c2.uniform(0.0, 1.0));
        assert_eq!(parent.seed(), 7);
    }

    #[test]
    fn uniform_stays_in_range() {
        let mut rng = SimRng::new(3);
        for _ in 0..1000 {
            let v = rng.uniform(-180.0, 180.0);
            assert!((-180.0..180.0).contains(&v));
        }
        assert_eq!(rng.uniform(5.0, 5.0), 5.0);
        assert_eq!(rng.uniform(5.0, 1.0), 5.0);
    }

    #[test]
    fn uniform_u32_inclusive() {
        let mut rng = SimRng::new(3);
        let mut seen_lo = false;
        let mut seen_hi = false;
        for _ in 0..2000 {
            let v = rng.uniform_u32(1, 4);
            assert!((1..=4).contains(&v));
            seen_lo |= v == 1;
            seen_hi |= v == 4;
        }
        assert!(seen_lo && seen_hi);
        assert_eq!(rng.uniform_u32(9, 3), 9);
    }

    #[test]
    fn exponential_mean_is_roughly_right() {
        let mut rng = SimRng::new(11);
        let n = 20_000;
        let mean = 120.0;
        let sum: f64 = (0..n).map(|_| rng.exponential(mean)).sum();
        let empirical = sum / n as f64;
        assert!(
            (empirical - mean).abs() < mean * 0.05,
            "empirical {empirical}"
        );
        assert_eq!(rng.exponential(0.0), 0.0);
        assert_eq!(rng.exponential(-3.0), 0.0);
    }

    #[test]
    fn chance_extremes() {
        let mut rng = SimRng::new(5);
        for _ in 0..100 {
            assert!(!rng.chance(0.0));
            assert!(rng.chance(1.0));
        }
        assert!(!rng.chance(f64::NAN));
    }

    #[test]
    fn chance_probability_is_roughly_right() {
        let mut rng = SimRng::new(6);
        let hits = (0..20_000).filter(|_| rng.chance(0.7)).count();
        let p = hits as f64 / 20_000.0;
        assert!((p - 0.7).abs() < 0.02, "p = {p}");
    }

    #[test]
    fn weighted_choice_follows_weights() {
        let mut rng = SimRng::new(8);
        let weights = [0.7, 0.2, 0.1];
        let mut counts = [0usize; 3];
        for _ in 0..30_000 {
            counts[rng.weighted_choice(&weights)] += 1;
        }
        let p0 = counts[0] as f64 / 30_000.0;
        let p1 = counts[1] as f64 / 30_000.0;
        let p2 = counts[2] as f64 / 30_000.0;
        assert!((p0 - 0.7).abs() < 0.02, "{p0}");
        assert!((p1 - 0.2).abs() < 0.02, "{p1}");
        assert!((p2 - 0.1).abs() < 0.02, "{p2}");
    }

    #[test]
    fn weighted_choice_degenerate_cases() {
        let mut rng = SimRng::new(9);
        assert_eq!(rng.weighted_choice(&[]), 0);
        assert_eq!(rng.weighted_choice(&[0.0, 0.0]), 0);
        assert_eq!(rng.weighted_choice(&[0.0, 5.0]), 1);
        assert_eq!(rng.weighted_choice(&[f64::NAN, 1.0]), 1);
    }

    #[test]
    fn normal_mean_and_spread() {
        let mut rng = SimRng::new(10);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| rng.normal(50.0, 10.0)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|s| (s - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 50.0).abs() < 0.5);
        assert!((var.sqrt() - 10.0).abs() < 0.5);
    }
}
