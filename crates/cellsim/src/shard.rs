//! Spatially sharded, epoch-synchronised parallel simulation engine.
//!
//! [`ShardedSimulator`] partitions the [`CellGrid`] into contiguous
//! [`CellIdx`] ranges — *shards* — each owning its cells' base stations,
//! per-cell admission controllers, user slab and event heap.  Time advances
//! in fixed-length **epochs**: within an epoch every shard runs the same
//! three-stream event loop as the sequential [`crate::sim::Simulator`]
//! (sorted arrival buffer / computed mobility ticks / run-time event heap)
//! over its own cells, completely independently of the other shards.
//!
//! The one interaction between cells — handoff admission at the target
//! station — is **deferred to the epoch boundary**: when a handoff fires,
//! the source shard transfers the connection out immediately (local state)
//! and emits a message carrying the connection and the user's kinematic
//! state.  At the barrier, all shards' messages are merged into a single
//! queue ordered by `(time, connection id)` (see [`MergeKey`]) and replayed
//! sequentially against the target cells; cascaded handoffs and departures
//! that land before the epoch boundary are folded into the same ordered
//! queue, and anything later is scheduled into the owning shard's heap for
//! a future epoch.
//!
//! # Determinism contract
//!
//! A run is **bit-identical for any shard count and any thread count**,
//! because nothing a shard computes depends on which other cells share its
//! shard:
//!
//! * arrivals are pre-generated and pre-assigned to cells by a global
//!   sequential RNG stream before sharding;
//! * each call's spawn kinematics come from an RNG derived from the call id
//!   (order-independent);
//! * controller state is strictly per-cell;
//! * handoff admissions are deferred to the `(time, connection id)`-ordered
//!   barrier merge *even when source and target share a shard*, so a
//!   1-shard run follows exactly the same rules as an N-shard run;
//! * metric counters merge commutatively and utilisation is accumulated
//!   per cell and reduced in global cell order.
//!
//! The deferral is a deliberate, uniform semantic difference from the
//! sequential engine (which admits handoffs with zero lookahead):
//! `ShardedSimulator` with one shard is the reference run that
//! `tests/golden/` pins, not `Simulator`.  The epoch length
//! ([`ShardConfig::epoch_s`]) is part of the contract: changing it changes
//! which admissions see which capacity, exactly like changing a seed.

use crate::event::{EventKind, EventQueue};
use crate::fault::FaultEvent;
use crate::geometry::{CellGrid, CellIdx};
use crate::metrics::Metrics;
use crate::mobility::{spawn_uniform, UserState};
use crate::rng::SimRng;
use crate::sim::{AdmissionController, AdmissionDecision, AdmissionRequest, SimConfig};
use crate::slab::{Slab, SlotId};
use crate::station::{ActiveConnection, BaseStation};
use crate::telem::{self, DefaultRecorder};
use crate::traffic::{CallRequest, ServiceClass, SpawnCellAssigner, TrafficGenerator};
use crate::{Bandwidth, SimTime};
use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::collections::BinaryHeap;
use telemetry::{Recorder, Stopwatch, TelemetrySnapshot, TraceEvent};

/// A boxed admission controller that can move to a worker thread.
pub type BoxedController = Box<dyn AdmissionController + Send>;

/// Default epoch length (seconds) when none is configured.
pub const DEFAULT_EPOCH_S: SimTime = 5.0;

/// Sharding parameters: how the grid is partitioned and executed.
///
/// `shards` and `epoch_s` are part of the determinism contract (they select
/// *which* run is computed); `threads` is pure execution policy and never
/// changes results.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ShardConfig {
    /// Number of spatial shards (clamped to `1..=cells`).
    pub shards: usize,
    /// Worker threads for the intra-epoch phase (floored at 1).
    pub threads: usize,
    /// Epoch length in seconds (must be finite and positive; falls back to
    /// [`DEFAULT_EPOCH_S`] otherwise).
    pub epoch_s: SimTime,
}

impl ShardConfig {
    /// A configuration with `shards` shards, one worker thread and the
    /// default epoch length.
    #[must_use]
    pub fn new(shards: usize) -> Self {
        Self {
            shards,
            threads: 1,
            epoch_s: DEFAULT_EPOCH_S,
        }
    }

    /// The single-shard reference configuration.
    #[must_use]
    pub fn solo() -> Self {
        Self::new(1)
    }

    /// Set the worker-thread count.
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Set the epoch length in seconds.
    #[must_use]
    pub fn with_epoch_s(mut self, epoch_s: SimTime) -> Self {
        self.epoch_s = epoch_s;
        self
    }
}

/// The result of one sharded run.
///
/// Every field is **shard- and thread-count invariant**; the golden
/// equivalence tests compare serialised reports byte-for-byte across
/// shardings.  Execution metadata that *does* vary (worker count, wall
/// time) is deliberately excluded.
#[derive(Debug, Clone, PartialEq, Deserialize)]
pub struct ShardReport {
    /// Name of the admission controller driving every cell.
    pub controller: String,
    /// Offered connections (new calls + handoff attempts).
    pub offered: u64,
    /// Accepted connections.
    pub accepted: u64,
    /// Acceptance share of offered connections, in percent.
    pub acceptance_percentage: f64,
    /// New-call blocking probability.
    pub blocking_probability: f64,
    /// Handoff dropping probability.
    pub dropping_probability: f64,
    /// Connections that completed normally.
    pub completed: u64,
    /// Connections dropped at a failed handoff.
    pub dropped: u64,
    /// Handoff attempts offered.
    pub handoffs_offered: u64,
    /// Handoff attempts admitted at the target cell.
    pub handoffs_accepted: u64,
    /// Handoff attempts rejected (call dropped).
    pub handoffs_failed: u64,
    /// Mean utilisation over all per-cell samples, in `[0, 1]`.
    pub mean_utilization: f64,
    /// Number of per-cell utilisation samples taken.
    pub utilization_samples: u64,
    /// Peak number of concurrently active connections, sampled at every
    /// epoch boundary.
    pub peak_concurrent_users: u64,
    /// Arrivals, departures, handoffs and barrier-merge admissions
    /// processed (mobility ticks are counted by `utilization_samples`).
    pub events_processed: u64,
    /// Number of epochs executed (empty stretches are skipped).
    pub epochs: u64,
    /// Connections force-dropped by a cell outage (also counted in
    /// `dropped`).  Serialised only when nonzero, so fault-free reports
    /// keep their exact pre-fault byte layout.
    #[serde(default)]
    pub dropped_by_outage: u64,
}

// Hand-written so `dropped_by_outage` is emitted only when nonzero:
// every fault-free report (and thus every pre-fault golden snapshot)
// keeps its exact byte layout.  Field order mirrors the declaration.
impl Serialize for ShardReport {
    fn serialize_value(&self) -> serde::Value {
        let mut fields = vec![
            ("controller".to_string(), self.controller.serialize_value()),
            ("offered".to_string(), self.offered.serialize_value()),
            ("accepted".to_string(), self.accepted.serialize_value()),
            (
                "acceptance_percentage".to_string(),
                self.acceptance_percentage.serialize_value(),
            ),
            (
                "blocking_probability".to_string(),
                self.blocking_probability.serialize_value(),
            ),
            (
                "dropping_probability".to_string(),
                self.dropping_probability.serialize_value(),
            ),
            ("completed".to_string(), self.completed.serialize_value()),
            ("dropped".to_string(), self.dropped.serialize_value()),
            (
                "handoffs_offered".to_string(),
                self.handoffs_offered.serialize_value(),
            ),
            (
                "handoffs_accepted".to_string(),
                self.handoffs_accepted.serialize_value(),
            ),
            (
                "handoffs_failed".to_string(),
                self.handoffs_failed.serialize_value(),
            ),
            (
                "mean_utilization".to_string(),
                self.mean_utilization.serialize_value(),
            ),
            (
                "utilization_samples".to_string(),
                self.utilization_samples.serialize_value(),
            ),
            (
                "peak_concurrent_users".to_string(),
                self.peak_concurrent_users.serialize_value(),
            ),
            (
                "events_processed".to_string(),
                self.events_processed.serialize_value(),
            ),
            ("epochs".to_string(), self.epochs.serialize_value()),
        ];
        if self.dropped_by_outage > 0 {
            fields.push((
                "dropped_by_outage".to_string(),
                self.dropped_by_outage.serialize_value(),
            ));
        }
        serde::Value::Object(fields)
    }
}

/// Ordering key of the epoch-boundary merge queue.
///
/// Messages are replayed in ascending `(time, connection_id, rank)` order.
/// Connection ids are globally unique and assigned by the (shard-invariant)
/// arrival generator, so the order — unlike per-shard event sequence
/// numbers — does not depend on how the grid was partitioned.  `rank`
/// breaks the (structurally impossible, but float-edge conceivable) tie of
/// two queue entries for the same connection at the same instant:
/// releases before admissions before cascaded handoffs.
#[derive(Debug, Clone, Copy)]
pub struct MergeKey {
    /// Event time in seconds.
    pub time: SimTime,
    /// Globally unique connection id.
    pub connection_id: u64,
    /// Same-connection same-time tiebreak (release < admit < handoff).
    pub rank: u8,
}

/// [`MergeKey::rank`] of a deferred departure.
pub const RANK_RELEASE: u8 = 0;
/// [`MergeKey::rank`] of a handoff admission at the target cell.
pub const RANK_ADMIT: u8 = 1;
/// [`MergeKey::rank`] of a cascaded handoff discovered during the merge.
pub const RANK_HANDOFF: u8 = 2;
/// [`MergeKey::rank`] of a scheduled [`crate::fault::FaultEvent`].  Faults
/// carry a synthetic connection id in a reserved range (see
/// [`crate::fault::FaultEvent::merge_key`]), so the rank only matters for
/// documenting their position in the total order.
pub const RANK_FAULT: u8 = 3;

impl MergeKey {
    /// Build a key.
    #[must_use]
    pub fn new(time: SimTime, connection_id: u64, rank: u8) -> Self {
        Self {
            time,
            connection_id,
            rank,
        }
    }
}

impl Ord for MergeKey {
    fn cmp(&self, other: &Self) -> Ordering {
        self.time
            .total_cmp(&other.time)
            .then_with(|| self.connection_id.cmp(&other.connection_id))
            .then_with(|| self.rank.cmp(&other.rank))
    }
}

impl PartialOrd for MergeKey {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl PartialEq for MergeKey {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}

impl Eq for MergeKey {}

/// A handoff admission deferred to the epoch barrier: the connection has
/// already been transferred out of its source cell; the target cell's
/// controller decides at merge time.
#[derive(Debug, Clone, Copy)]
struct AdmitMsg {
    time: SimTime,
    connection_id: u64,
    /// Global [`CellIdx`] of the target cell.
    to: u32,
    class: ServiceClass,
    bandwidth: Bandwidth,
    ends_at: SimTime,
    user: UserState,
}

/// Work items of the barrier merge.
#[derive(Debug, Clone, Copy)]
enum MergeTask {
    /// Offer a transferred-out connection to its target cell.
    Admit(AdmitMsg),
    /// A cascaded handoff (the connection was admitted during this merge
    /// and exits its new cell before the epoch boundary).
    Handoff {
        from: u32,
        to: u32,
        connection_id: u64,
        slot: SlotId,
    },
    /// A departure that lands before the epoch boundary.
    Release {
        cell: u32,
        connection_id: u64,
        slot: SlotId,
    },
}

struct MergeEntry {
    key: MergeKey,
    task: MergeTask,
}

impl Ord for MergeEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Inverted: `BinaryHeap` is a max-heap, we want the earliest key.
        other.key.cmp(&self.key)
    }
}

impl PartialOrd for MergeEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl PartialEq for MergeEntry {
    fn eq(&self, other: &Self) -> bool {
        self.key == other.key
    }
}

impl Eq for MergeEntry {}

/// Per-cell utilisation accumulator (mean only — the sharded engine does
/// not keep the full sample series).
#[derive(Debug, Clone, Copy, Default)]
struct UtilAcc {
    sum: f64,
    samples: u64,
}

/// One spatial shard: a contiguous range of cells with everything their
/// simulation needs.
struct Shard<R: Recorder> {
    /// Global [`CellIdx`] of the first cell in this shard.
    start: u32,
    stations: Vec<BaseStation>,
    controllers: Vec<BoxedController>,
    users: Slab<UserState>,
    queue: EventQueue,
    metrics: Metrics,
    util: Vec<UtilAcc>,
    /// Indices into the global arrival buffer, in arrival order.
    arrivals: Vec<u32>,
    next_arrival: usize,
    tick_interval: SimTime,
    next_tick: SimTime,
    ticks_pending: bool,
    clock: SimTime,
    events_processed: u64,
    outbox: Vec<AdmitMsg>,
    /// Nominal (configured) per-station capacity fault transitions are
    /// computed against.
    nominal_capacity: Bandwidth,
    /// This shard's slice of the fault plan, time-sorted (the fourth
    /// event stream).
    faults: Vec<FaultEvent>,
    next_fault: usize,
    /// Scratch buffer for outage force-drops (reused across faults).
    dropped_scratch: Vec<ActiveConnection>,
    rng: SimRng,
    /// Wall time of this shard's last epoch loop (0 with the no-op
    /// recorder — the disabled build makes no clock syscalls).
    last_epoch_ns: u64,
    /// Shard-local telemetry sink (observation-only; merged into the
    /// coordinator's snapshot by [`ShardedSimulator::telemetry`]).
    recorder: R,
}

impl<R: Recorder> Shard<R> {
    fn new(grid: &CellGrid, config: &SimConfig, start: u32, len: usize) -> Self {
        let stations = (start..start + len as u32)
            .map(|i| {
                let cell = grid.cell_id(CellIdx(i));
                BaseStation::new(cell, grid.center_of(&cell), config.station_capacity)
            })
            .collect();
        Self {
            start,
            stations,
            controllers: Vec::with_capacity(len),
            users: Slab::new(),
            queue: EventQueue::new(),
            metrics: Metrics::new(),
            util: vec![UtilAcc::default(); len],
            arrivals: Vec::new(),
            next_arrival: 0,
            tick_interval: config.utilization_sample_interval_s,
            next_tick: 0.0,
            ticks_pending: config.utilization_sample_interval_s > 0.0,
            clock: 0.0,
            events_processed: 0,
            outbox: Vec::new(),
            nominal_capacity: config.station_capacity,
            faults: Vec::new(),
            next_fault: 0,
            dropped_scratch: Vec::new(),
            rng: SimRng::new(config.seed).derive(0xD15C),
            last_epoch_ns: 0,
            recorder: R::for_schema(&telem::SCHEMA),
        }
    }

    /// Re-arm for a new run. The recorder is deliberately *not* reset:
    /// telemetry accumulates across runs like the sequential engine's.
    fn reset(&mut self, config: &SimConfig) {
        for station in &mut self.stations {
            station.reset_for_run(config.station_capacity);
        }
        self.users.clear();
        self.queue.clear();
        self.metrics.reset();
        for acc in &mut self.util {
            *acc = UtilAcc::default();
        }
        self.arrivals.clear();
        self.next_arrival = 0;
        self.tick_interval = config.utilization_sample_interval_s;
        self.next_tick = 0.0;
        self.ticks_pending = self.tick_interval > 0.0;
        self.clock = 0.0;
        self.events_processed = 0;
        self.outbox.clear();
        self.nominal_capacity = config.station_capacity;
        self.faults.clear();
        self.next_fault = 0;
        self.dropped_scratch.clear();
        self.rng = SimRng::new(config.seed).derive(0xD15C);
        self.last_epoch_ns = 0;
    }

    /// Earliest pending event time in this shard (arrival stream, tick
    /// stream or event heap), if any.
    fn next_event_time(&self, calls: &[CallRequest], horizon: SimTime) -> Option<SimTime> {
        let mut min: Option<SimTime> = None;
        let mut consider = |t: SimTime| min = Some(min.map_or(t, |m: SimTime| m.min(t)));
        if let Some(fault) = self.faults.get(self.next_fault) {
            consider(fault.time);
        }
        if let Some(&i) = self.arrivals.get(self.next_arrival) {
            consider(calls[i as usize].arrival_time);
        }
        if self.ticks_pending && self.next_tick <= horizon {
            consider(self.next_tick);
        }
        if let Some(event) = self.queue.peek() {
            consider(event.time);
        }
        min
    }

    /// Run this shard's three-stream loop up to (exclusive) `epoch_end`.
    ///
    /// Mirrors `Simulator::run_poisson` stream merging exactly: on time
    /// ties arrivals fire before ticks and ticks before run-time events.
    /// Handoff *admissions* are never performed here — the source side is
    /// applied locally and the admission is queued on `outbox` for the
    /// barrier merge.
    fn run_epoch(
        &mut self,
        grid: &CellGrid,
        calls: &[CallRequest],
        spawn_cells: &[u32],
        horizon: SimTime,
        epoch_end: SimTime,
    ) {
        let watch = Stopwatch::started(R::ENABLED);
        loop {
            let fault_time = self.faults.get(self.next_fault).map(|f| f.time);
            let arrival_time = self
                .arrivals
                .get(self.next_arrival)
                .map(|&i| calls[i as usize].arrival_time);
            let tick_time = if self.ticks_pending && self.next_tick <= horizon {
                Some(self.next_tick)
            } else {
                self.ticks_pending = false;
                None
            };
            let queued_time = self.queue.peek().map(|e| e.time);

            // Fourth stream: scheduled faults fire before any same-time
            // traffic (tie order fault < arrival < tick < heap), so an
            // arrival at the exact outage instant already sees the dark
            // cell.
            let fire_fault = match fault_time {
                Some(f) => {
                    arrival_time.is_none_or(|a| f <= a)
                        && tick_time.is_none_or(|t| f <= t)
                        && queued_time.is_none_or(|q| f <= q)
                }
                None => false,
            };
            if fire_fault {
                let time = fault_time.expect("checked above");
                if time >= epoch_end {
                    break;
                }
                self.clock = time;
                self.events_processed += 1;
                self.recorder.add(telem::counter::EVENT_FAULT, 1);
                let fault = self.faults[self.next_fault];
                self.next_fault += 1;
                self.apply_fault(&fault);
                continue;
            }
            let fire_arrival = match (arrival_time, tick_time, queued_time) {
                (Some(a), t, q) => t.is_none_or(|t| a <= t) && q.is_none_or(|q| a <= q),
                _ => false,
            };
            if fire_arrival {
                let time = arrival_time.expect("checked above");
                if time >= epoch_end {
                    break;
                }
                self.clock = time;
                self.events_processed += 1;
                self.recorder.add(telem::counter::EVENT_ARRIVAL, 1);
                let index = self.arrivals[self.next_arrival] as usize;
                self.next_arrival += 1;
                let call = calls[index];
                let cell = spawn_cells[index];
                self.handle_arrival(grid, &call, cell);
                continue;
            }
            let fire_tick = match (tick_time, queued_time) {
                (Some(t), q) => q.is_none_or(|q| t <= q),
                _ => false,
            };
            if fire_tick {
                if self.next_tick >= epoch_end {
                    break;
                }
                self.clock = self.next_tick;
                self.next_tick += self.tick_interval;
                self.recorder.add(telem::counter::EVENT_MOBILITY_TICK, 1);
                for (acc, station) in self.util.iter_mut().zip(&self.stations) {
                    acc.sum += station.utilization();
                    acc.samples += 1;
                }
                continue;
            }
            let Some(head) = self.queue.peek() else {
                break;
            };
            if head.time >= epoch_end {
                break;
            }
            let event = self.queue.pop().expect("peeked above");
            self.clock = event.time;
            self.events_processed += 1;
            if R::ENABLED {
                // Depth *including* the popped event, as in the
                // sequential engine.
                let depth = self.queue.len() as u64 + 1;
                self.recorder.observe(telem::histogram::HEAP_DEPTH, depth);
                self.recorder.high_water(telem::gauge::HEAP_DEPTH, depth);
            }
            match event.kind {
                EventKind::Departure {
                    cell,
                    connection_id,
                    user,
                } => {
                    self.recorder.add(telem::counter::EVENT_DEPARTURE, 1);
                    self.handle_departure(cell, connection_id, user);
                }
                EventKind::Handoff {
                    from,
                    to,
                    connection_id,
                    user,
                } => {
                    self.recorder.add(telem::counter::EVENT_HANDOFF, 1);
                    self.handle_handoff(from, to, connection_id, user);
                }
                EventKind::Arrival { .. } => {
                    unreachable!("arrivals are streamed, never heap-scheduled")
                }
                EventKind::MobilityTick | EventKind::EndOfSimulation => {
                    unreachable!("the sharded engine never heap-schedules ticks")
                }
            }
        }
        self.last_epoch_ns = watch.elapsed_ns().unwrap_or(0);
    }

    fn local(&self, cell: u32) -> usize {
        (cell - self.start) as usize
    }

    /// Apply one fault to its cell: adjust capacity, and on an outage
    /// force-drop every active connection (counted per class and in the
    /// outage-drop total) in the station's dense connection order —
    /// which is a pure function of the cell's event history, hence
    /// shard-invariant.  The dropped calls' queued departure/handoff
    /// events become stale and fall through the `Err` no-op paths; their
    /// slab slots are deliberately leaked until the end of the run.
    fn apply_fault(&mut self, fault: &FaultEvent) {
        let local = self.local(fault.cell);
        self.stations[local].set_capacity(fault.kind.capacity(self.nominal_capacity));
        if fault.kind.drops_connections() {
            let mut dropped = std::mem::take(&mut self.dropped_scratch);
            self.stations[local].drop_all_into(&mut dropped);
            for conn in &dropped {
                self.metrics.record_dropped(conn.class);
                self.metrics.record_dropped_by_outage();
                if R::ENABLED {
                    self.recorder.add(telem::counter::OUTAGE_DROPPED, 1);
                }
                self.controllers[local].on_released(conn.id, &self.stations[local]);
            }
            self.dropped_scratch = dropped;
        }
    }

    /// Mirror of `Simulator::handle_arrival` over shard-local state.
    fn handle_arrival(&mut self, grid: &CellGrid, call: &CallRequest, cell: u32) {
        let cell_id = grid.cell_id(CellIdx(cell));
        let center = grid.center_of(&cell_id);
        let mut spawn_rng = self.rng.derive(call.id ^ 0xA11C);
        let user = if grid.len() > 1 {
            let user = spawn_uniform(
                &center,
                grid.cell_radius_m(),
                (call.speed_kmh, call.speed_kmh),
                &mut spawn_rng,
            );
            let bearing = user.position.bearing_to(&center);
            Some(UserState::new(
                user.position,
                call.speed_kmh,
                bearing + call.angle_deg,
            ))
        } else {
            None
        };
        let distance = match &user {
            Some(user) => user.distance_to(&center),
            None => {
                // Same draw prefix as the sequential engine's single-cell
                // path, so the offered distance is bit-identical.
                let r = grid.cell_radius_m().max(0.0) * spawn_rng.uniform(0.0, 1.0).sqrt();
                let theta = spawn_rng.uniform(-std::f64::consts::PI, std::f64::consts::PI);
                let pos = center.translated(r * theta.cos(), r * theta.sin());
                pos.distance(&center)
            }
        };

        let request = AdmissionRequest::from_call(call, cell_id).with_distance(distance);
        if !self.offer_one(&request, cell) {
            return;
        }
        let slot = user.map(|user| self.users.insert(user));
        if R::ENABLED {
            self.recorder
                .high_water(telem::gauge::SLAB_USERS, self.users.len() as u64);
        }
        let departure_at = self.clock + call.holding_time;
        self.queue.schedule(
            departure_at,
            EventKind::Departure {
                cell: CellIdx(cell),
                connection_id: call.id,
                user: slot,
            },
        );
        if let Some(slot) = slot {
            self.maybe_schedule_handoff(grid, cell, call.id, slot, departure_at);
        }
    }

    /// Offer one request to the cell's own controller; `true` if admitted.
    fn offer_one(&mut self, request: &AdmissionRequest, cell: u32) -> bool {
        self.metrics
            .record_offered(request.class, request.is_handoff);
        let local = self.local(cell);
        let fits = self.stations[local].can_fit(request.bandwidth);
        let decision = if fits {
            self.controllers[local].decide(request, &self.stations[local])
        } else {
            AdmissionDecision::reject(-1.0)
        };
        if decision.accept && fits {
            self.stations[local]
                .admit(
                    request.id,
                    request.class,
                    request.bandwidth,
                    request.time,
                    request.holding_time,
                    request.is_handoff,
                )
                .expect("admission checked via can_fit");
            self.metrics
                .record_accepted(request.class, request.bandwidth, request.is_handoff);
            if R::ENABLED {
                self.recorder.add(
                    telem::admission_counter(request.class, true, request.is_handoff),
                    1,
                );
            }
            self.controllers[local].on_admitted(request, &self.stations[local]);
            true
        } else {
            self.metrics
                .record_blocked(request.class, request.is_handoff);
            if R::ENABLED {
                self.recorder.add(
                    telem::admission_counter(request.class, false, request.is_handoff),
                    1,
                );
            }
            false
        }
    }

    fn maybe_schedule_handoff(
        &mut self,
        grid: &CellGrid,
        cell: u32,
        connection_id: u64,
        slot: SlotId,
        departure_at: SimTime,
    ) {
        let Some(user) = self.users.get(slot).copied() else {
            return;
        };
        let cell_id = grid.cell_id(CellIdx(cell));
        let center = grid.center_of(&cell_id);
        let Some(exit_in) = user.time_to_exit(&center, grid.cell_radius_m()) else {
            return;
        };
        let handoff_at = self.clock + exit_in;
        if handoff_at >= departure_at {
            return;
        }
        let Some(target) = grid.next_cell_along(&cell_id, user.heading_deg) else {
            return;
        };
        let to = grid
            .index_of(&target)
            .expect("next_cell_along only returns grid cells");
        self.queue.schedule(
            handoff_at,
            EventKind::Handoff {
                from: CellIdx(cell),
                to,
                connection_id,
                user: slot,
            },
        );
    }

    fn handle_departure(&mut self, cell: CellIdx, connection_id: u64, user: Option<SlotId>) {
        let local = self.local(cell.index() as u32);
        if let Ok(conn) = self.stations[local].release(connection_id) {
            self.metrics.record_completed(conn.class);
            if let Some(slot) = user {
                self.users.remove(slot);
            }
            self.controllers[local].on_released(connection_id, &self.stations[local]);
        }
    }

    /// Source side of a handoff: transfer the connection out *now* (its
    /// bandwidth frees immediately for this shard's later events) and
    /// queue the target-side admission for the barrier merge.
    fn handle_handoff(&mut self, from: CellIdx, to: CellIdx, connection_id: u64, slot: SlotId) {
        let local = self.local(from.index() as u32);
        let Ok(conn) = self.stations[local].transfer_out(connection_id) else {
            return;
        };
        self.controllers[local].on_released(connection_id, &self.stations[local]);
        let Some(user) = self.users.get(slot).copied() else {
            return;
        };
        self.users.remove(slot);
        self.outbox.push(AdmitMsg {
            time: self.clock,
            connection_id,
            to: to.index() as u32,
            class: conn.class,
            bandwidth: conn.bandwidth,
            ends_at: conn.ends_at,
            user,
        });
    }

    fn active_connections(&self) -> u64 {
        self.stations
            .iter()
            .map(|s| s.active_connections() as u64)
            .sum()
    }
}

/// The sharded, epoch-synchronised simulation engine.  See the module docs
/// for the architecture and determinism contract.
///
/// Like [`crate::sim::Simulator`], the engine is generic over its
/// telemetry [`Recorder`] (static dispatch, defaulting to the
/// feature-selected [`DefaultRecorder`]).
/// Each shard carries its own recorder for the sim-level series, and the
/// coordinator records the sharding-specific signals — per-shard epoch
/// wall time, parallel-phase imbalance, merge-queue depth and phase
/// spans.  Recording never touches RNG streams or event order, so
/// reports stay bit-identical whichever recorder is plugged in.
pub struct ShardedSimulator<R: Recorder = DefaultRecorder> {
    config: SimConfig,
    sharding: ShardConfig,
    grid: CellGrid,
    shards: Vec<Shard<R>>,
    /// First global cell index of each shard, ascending.
    starts: Vec<u32>,
    /// Global pre-generated arrival buffer (reused across runs).
    arrivals: Vec<CallRequest>,
    /// Pre-assigned spawn cell of each arrival (global [`CellIdx`] values).
    arrival_cells: Vec<u32>,
    merge_heap: BinaryHeap<MergeEntry>,
    merge_events: u64,
    epochs: u64,
    peak_concurrent: u64,
    label: &'static str,
    /// Coordinator telemetry sink for the sharding-specific series
    /// (observation-only; accumulates across runs until
    /// [`ShardedSimulator::reset_telemetry`]).
    recorder: R,
}

impl ShardedSimulator {
    /// Build a sharded simulator with the feature-selected
    /// [`DefaultRecorder`] (the zero-cost
    /// no-op recorder unless the `telemetry` cargo feature is enabled).
    /// `sharding.shards` is clamped to the number of grid cells and
    /// `sharding.epoch_s` to a finite positive value ([`DEFAULT_EPOCH_S`]
    /// otherwise).
    #[must_use]
    pub fn new(config: SimConfig, sharding: ShardConfig) -> Self {
        Self::with_telemetry(config, sharding)
    }
}

impl<R: Recorder> ShardedSimulator<R> {
    /// Build a sharded simulator with an explicit recorder type, e.g.
    /// `ShardedSimulator::<telemetry::Registry>::with_telemetry(..)` to
    /// instrument a run in a build where the default recorder is the
    /// no-op.  Clamps `sharding` exactly like [`ShardedSimulator::new`].
    #[must_use]
    pub fn with_telemetry(config: SimConfig, sharding: ShardConfig) -> Self {
        let grid = CellGrid::new(config.grid_radius_cells, config.cell_radius_m);
        let cells = grid.len();
        let epoch_s = if sharding.epoch_s.is_finite() && sharding.epoch_s > 0.0 {
            sharding.epoch_s
        } else {
            DEFAULT_EPOCH_S
        };
        let sharding = ShardConfig {
            shards: sharding.shards.clamp(1, cells),
            threads: sharding.threads.max(1),
            epoch_s,
        };
        let base = cells / sharding.shards;
        let rem = cells % sharding.shards;
        let mut shards = Vec::with_capacity(sharding.shards);
        let mut starts = Vec::with_capacity(sharding.shards);
        let mut start = 0u32;
        for i in 0..sharding.shards {
            let len = base + usize::from(i < rem);
            shards.push(Shard::new(&grid, &config, start, len));
            starts.push(start);
            start += len as u32;
        }
        Self {
            config,
            sharding,
            grid,
            shards,
            starts,
            arrivals: Vec::new(),
            arrival_cells: Vec::new(),
            merge_heap: BinaryHeap::new(),
            merge_events: 0,
            epochs: 0,
            peak_concurrent: 0,
            label: "controller",
            recorder: R::for_schema(&telem::SCHEMA),
        }
    }

    /// Snapshot of everything the coordinator *and* every shard recorded
    /// so far, merged in shard order.  Telemetry accumulates across runs;
    /// use [`ShardedSimulator::reset_telemetry`] to start a fresh window.
    /// Always empty with the no-op recorder.
    #[must_use]
    pub fn telemetry(&self) -> TelemetrySnapshot {
        let mut snapshot = self.recorder.snapshot();
        for shard in &self.shards {
            snapshot.merge(&shard.recorder.snapshot());
        }
        snapshot
    }

    /// Clear everything the coordinator and shard recorders collected
    /// (capacity is retained).
    pub fn reset_telemetry(&mut self) {
        self.recorder.reset();
        for shard in &mut self.shards {
            shard.recorder.reset();
        }
    }

    /// The effective sharding (after clamping).
    #[must_use]
    pub fn sharding(&self) -> &ShardConfig {
        &self.sharding
    }

    /// The simulation configuration.
    #[must_use]
    pub fn config(&self) -> &SimConfig {
        &self.config
    }

    /// The cell grid.
    #[must_use]
    pub fn grid(&self) -> &CellGrid {
        &self.grid
    }

    /// Events processed by the last run (arrivals, departures, handoffs
    /// and barrier-merge admissions; mobility-tick samples excluded).
    #[must_use]
    pub fn events_processed(&self) -> u64 {
        self.merge_events + self.shards.iter().map(|s| s.events_processed).sum::<u64>()
    }

    /// Peak concurrently active connections observed in the last run
    /// (sampled at every epoch boundary).
    #[must_use]
    pub fn peak_concurrent_users(&self) -> u64 {
        self.peak_concurrent
    }

    /// Shard index owning global cell `cell`.
    fn shard_of(&self, cell: u32) -> usize {
        self.starts.partition_point(|&s| s <= cell) - 1
    }

    fn reset_run(&mut self, factory: &mut dyn FnMut() -> BoxedController) {
        self.merge_heap.clear();
        self.merge_events = 0;
        self.epochs = 0;
        self.peak_concurrent = 0;
        let mut label = None;
        for shard in &mut self.shards {
            shard.reset(&self.config);
            shard.controllers.clear();
            for _ in 0..shard.stations.len() {
                let controller = factory();
                if label.is_none() {
                    label = Some(controller.name());
                }
                shard.controllers.push(controller);
            }
        }
        self.label = label.unwrap_or("controller");
    }

    /// Run a Poisson-arrival workload of `total_requests` calls, with one
    /// controller instance (from `factory`) per cell, and return the
    /// shard-invariant report.  Back-to-back runs on one instance are
    /// bit-identical (all state is re-armed first).
    pub fn run_poisson(
        &mut self,
        factory: &mut dyn FnMut() -> BoxedController,
        total_requests: usize,
    ) -> ShardReport
    where
        R: Send,
    {
        self.reset_run(factory);

        // Global arrival stream + spawn-cell assignment, both drawn from
        // the same derived streams as the sequential engine — and, being
        // pre-sharding, identical for every shard count.
        let base_rng = SimRng::new(self.config.seed).derive(0xD15C);
        let mut generator = TrafficGenerator::with_model(
            self.config.traffic.clone(),
            &self.config.traffic_model,
            base_rng.derive(2).seed(),
        );
        let mut arrivals = std::mem::take(&mut self.arrivals);
        generator.generate_poisson_into(total_requests, &mut arrivals);
        let mut spawn_rng = base_rng.derive(3);
        let mut spawn_cells = SpawnCellAssigner::new(&self.config.traffic_model);
        self.arrival_cells.clear();
        self.arrival_cells.reserve(arrivals.len());
        for call in &arrivals {
            let cell = spawn_cells.assign(call.arrival_time, self.grid.len(), &mut spawn_rng);
            self.arrival_cells.push(cell);
        }
        for (i, &cell) in self.arrival_cells.iter().enumerate() {
            let s = self.shard_of(cell);
            self.shards[s].arrivals.push(i as u32);
        }
        // Partition the fault plan to its owning shards in sorted order;
        // events naming cells outside the grid are ignored.
        for fault in self.config.fault_plan.sorted_events() {
            if (fault.cell as usize) < self.grid.len() {
                let s = self.shard_of(fault.cell);
                self.shards[s].faults.push(fault);
            }
        }
        let horizon = arrivals.last().map(|c| c.arrival_time).unwrap_or(0.0);
        self.arrivals = arrivals;

        loop {
            let t_min = self
                .shards
                .iter()
                .filter_map(|s| s.next_event_time(&self.arrivals, horizon))
                .fold(None, |min: Option<SimTime>, t| {
                    Some(min.map_or(t, |m| m.min(t)))
                });
            let Some(t_min) = t_min else {
                break;
            };
            // Jump straight to the epoch containing the next event; long
            // quiet stretches (e.g. the departure tail after the last
            // arrival) cost no empty barriers.
            let epoch_end = self.sharding.epoch_s * ((t_min / self.sharding.epoch_s).floor() + 1.0);
            let parallel_watch = Stopwatch::started(R::ENABLED);
            self.run_phase(epoch_end, horizon);
            if let Some(ns) = parallel_watch.elapsed_ns() {
                self.recorder.span_ns(telem::span::SHARD_PARALLEL_PHASE, ns);
            }
            if R::ENABLED {
                self.observe_epoch_balance();
            }
            let merge_watch = Stopwatch::started(R::ENABLED);
            let merge_depth = self.merge_epoch(epoch_end);
            if let Some(ns) = merge_watch.elapsed_ns() {
                self.recorder.span_ns(telem::span::SHARD_MERGE_PHASE, ns);
            }
            self.epochs += 1;
            let active: u64 = self.shards.iter().map(Shard::active_connections).sum();
            self.peak_concurrent = self.peak_concurrent.max(active);
            if R::ENABLED {
                self.recorder
                    .high_water(telem::gauge::SHARD_CONCURRENT_USERS, active);
                self.recorder.trace(TraceEvent {
                    time_s: epoch_end,
                    kind: telem::TRACE_EPOCH,
                    value: merge_depth,
                });
            }
        }
        self.build_report()
    }

    /// Per-epoch load-balance signals: one `shard_epoch_ns` observation
    /// per shard, plus the slowest-over-mean imbalance ratio in permille
    /// (1000 = perfectly balanced) — the inputs a future work-stealing
    /// scheduler or epoch auto-tuner would steer on.
    fn observe_epoch_balance(&mut self) {
        let mut max_ns = 0u64;
        let mut sum_ns = 0u64;
        for shard in &self.shards {
            let ns = shard.last_epoch_ns;
            self.recorder.observe(telem::histogram::SHARD_EPOCH_NS, ns);
            max_ns = max_ns.max(ns);
            sum_ns += ns;
        }
        let mean = sum_ns / self.shards.len().max(1) as u64;
        if let Some(permille) = max_ns.saturating_mul(1000).checked_div(mean) {
            self.recorder
                .observe(telem::histogram::EPOCH_IMBALANCE_PERMILLE, permille);
        }
    }

    /// Parallel phase: every shard independently runs its event loop up to
    /// `epoch_end`.  Work is chunked over at most `threads` scoped worker
    /// threads — additionally capped at the host's core count, since
    /// oversubscribed workers only add context-switch overhead per epoch
    /// (measured ~17 % at 4 threads on 1 core) — and chunking affects
    /// wall-clock only, never results.
    fn run_phase(&mut self, epoch_end: SimTime, horizon: SimTime)
    where
        R: Send,
    {
        let cores = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
        let workers = self
            .sharding
            .threads
            .min(self.shards.len())
            .min(cores)
            .max(1);
        let grid = &self.grid;
        let calls = &self.arrivals[..];
        let cells = &self.arrival_cells[..];
        if workers <= 1 {
            for shard in &mut self.shards {
                shard.run_epoch(grid, calls, cells, horizon, epoch_end);
            }
            return;
        }
        let chunk = self.shards.len().div_ceil(workers);
        std::thread::scope(|scope| {
            for group in self.shards.chunks_mut(chunk) {
                scope.spawn(move || {
                    for shard in group {
                        shard.run_epoch(grid, calls, cells, horizon, epoch_end);
                    }
                });
            }
        });
    }

    /// Barrier phase: merge every shard's handoff messages into one queue
    /// ordered by [`MergeKey`] and replay it sequentially, folding in
    /// cascaded handoffs and pre-boundary departures as they are
    /// discovered.  Returns the merge-queue depth at the start of the
    /// barrier (carried-over entries plus this epoch's outboxes).
    fn merge_epoch(&mut self, epoch_end: SimTime) -> u64 {
        let mut heap = std::mem::take(&mut self.merge_heap);
        for shard in &mut self.shards {
            for msg in shard.outbox.drain(..) {
                heap.push(MergeEntry {
                    key: MergeKey::new(msg.time, msg.connection_id, RANK_ADMIT),
                    task: MergeTask::Admit(msg),
                });
            }
        }
        let initial_depth = heap.len() as u64;
        if R::ENABLED {
            self.recorder
                .observe(telem::histogram::MERGE_QUEUE_DEPTH, initial_depth);
        }
        while let Some(entry) = heap.pop() {
            self.merge_events += 1;
            let time = entry.key.time;
            match entry.task {
                MergeTask::Admit(msg) => {
                    self.recorder.add(telem::counter::MERGE_ADMIT, 1);
                    self.apply_admit(msg, epoch_end, &mut heap);
                }
                MergeTask::Handoff {
                    from,
                    to,
                    connection_id,
                    slot,
                } => {
                    self.recorder.add(telem::counter::MERGE_HANDOFF, 1);
                    let s = self.shard_of(from);
                    let shard = &mut self.shards[s];
                    let local = shard.local(from);
                    let Ok(conn) = shard.stations[local].transfer_out(connection_id) else {
                        continue;
                    };
                    shard.controllers[local].on_released(connection_id, &shard.stations[local]);
                    let Some(user) = shard.users.get(slot).copied() else {
                        continue;
                    };
                    shard.users.remove(slot);
                    self.apply_admit(
                        AdmitMsg {
                            time,
                            connection_id,
                            to,
                            class: conn.class,
                            bandwidth: conn.bandwidth,
                            ends_at: conn.ends_at,
                            user,
                        },
                        epoch_end,
                        &mut heap,
                    );
                }
                MergeTask::Release {
                    cell,
                    connection_id,
                    slot,
                } => {
                    self.recorder.add(telem::counter::MERGE_RELEASE, 1);
                    let s = self.shard_of(cell);
                    let shard = &mut self.shards[s];
                    let local = shard.local(cell);
                    if let Ok(conn) = shard.stations[local].release(connection_id) {
                        shard.metrics.record_completed(conn.class);
                        shard.users.remove(slot);
                        shard.controllers[local].on_released(connection_id, &shard.stations[local]);
                    }
                }
            }
        }
        self.merge_heap = heap;
        initial_depth
    }

    /// Target side of a handoff, mirroring `Simulator::handle_handoff`
    /// after its `transfer_out`: offer at the target cell; on admission,
    /// re-home the user and schedule the departure and any cascaded
    /// handoff — into the merge queue if before `epoch_end`, into the
    /// owning shard's heap otherwise.
    fn apply_admit(
        &mut self,
        msg: AdmitMsg,
        epoch_end: SimTime,
        heap: &mut BinaryHeap<MergeEntry>,
    ) {
        let s = self.shard_of(msg.to);
        let grid = &self.grid;
        let shard = &mut self.shards[s];
        let local = shard.local(msg.to);
        let to_id = grid.cell_id(CellIdx(msg.to));
        let center = grid.center_of(&to_id);
        let remaining = (msg.ends_at - msg.time).max(0.0);
        let request = AdmissionRequest {
            id: msg.connection_id,
            cell: to_id,
            time: msg.time,
            class: msg.class,
            bandwidth: msg.bandwidth,
            holding_time: remaining,
            speed_kmh: msg.user.speed_kmh,
            angle_deg: msg.user.angle_to_station(&center),
            distance_m: Some(msg.user.distance_to(&center)),
            is_handoff: true,
        };
        shard.metrics.record_offered(msg.class, true);
        let fits = shard.stations[local].can_fit(msg.bandwidth);
        let decision = if fits {
            shard.controllers[local].decide(&request, &shard.stations[local])
        } else {
            AdmissionDecision::reject(-1.0)
        };
        if decision.accept && fits {
            shard.stations[local]
                .admit(
                    msg.connection_id,
                    msg.class,
                    msg.bandwidth,
                    msg.time,
                    remaining,
                    true,
                )
                .expect("admission checked via can_fit");
            shard
                .metrics
                .record_accepted(msg.class, msg.bandwidth, true);
            if R::ENABLED {
                self.recorder
                    .add(telem::admission_counter(msg.class, true, true), 1);
            }
            let shard = &mut self.shards[s];
            shard.controllers[local].on_admitted(&request, &shard.stations[local]);
            let slot = shard.users.insert(msg.user);
            let departure_at = msg.ends_at;
            if departure_at < epoch_end {
                heap.push(MergeEntry {
                    key: MergeKey::new(departure_at, msg.connection_id, RANK_RELEASE),
                    task: MergeTask::Release {
                        cell: msg.to,
                        connection_id: msg.connection_id,
                        slot,
                    },
                });
            } else {
                shard.queue.schedule(
                    departure_at,
                    EventKind::Departure {
                        cell: CellIdx(msg.to),
                        connection_id: msg.connection_id,
                        user: Some(slot),
                    },
                );
            }
            if let Some(exit_in) = msg.user.time_to_exit(&center, grid.cell_radius_m()) {
                let handoff_at = msg.time + exit_in;
                if handoff_at < departure_at {
                    if let Some(target) = grid.next_cell_along(&to_id, msg.user.heading_deg) {
                        let to = grid
                            .index_of(&target)
                            .expect("next_cell_along only returns grid cells");
                        if handoff_at < epoch_end {
                            heap.push(MergeEntry {
                                key: MergeKey::new(handoff_at, msg.connection_id, RANK_HANDOFF),
                                task: MergeTask::Handoff {
                                    from: msg.to,
                                    to: to.index() as u32,
                                    connection_id: msg.connection_id,
                                    slot,
                                },
                            });
                        } else {
                            shard.queue.schedule(
                                handoff_at,
                                EventKind::Handoff {
                                    from: CellIdx(msg.to),
                                    to,
                                    connection_id: msg.connection_id,
                                    user: slot,
                                },
                            );
                        }
                    }
                }
            }
        } else {
            shard.metrics.record_blocked(msg.class, true);
            shard.metrics.record_dropped(msg.class);
            if R::ENABLED {
                self.recorder
                    .add(telem::admission_counter(msg.class, false, true), 1);
            }
        }
    }

    fn build_report(&mut self) -> ShardReport {
        let mut merged = Metrics::new();
        let mut util_sum = 0.0;
        let mut util_n = 0u64;
        // Shards are contiguous cell ranges in ascending order, so this
        // double loop reduces utilisation in global cell order — the fixed
        // float summation order the determinism contract requires.
        for shard in &self.shards {
            merged.merge(&shard.metrics);
            for acc in &shard.util {
                util_sum += acc.sum;
                util_n += acc.samples;
            }
        }
        let (handoffs_offered, handoffs_accepted, handoffs_failed) = merged.handoffs();
        ShardReport {
            controller: self.label.to_string(),
            offered: merged.offered(),
            accepted: merged.accepted(),
            acceptance_percentage: merged.acceptance_percentage(),
            blocking_probability: merged.blocking_probability(),
            dropping_probability: merged.dropping_probability(),
            completed: merged.completed(),
            dropped: merged.dropped(),
            handoffs_offered,
            handoffs_accepted,
            handoffs_failed,
            mean_utilization: if util_n == 0 {
                0.0
            } else {
                util_sum / util_n as f64
            },
            utilization_samples: util_n,
            peak_concurrent_users: self.peak_concurrent,
            events_processed: self.events_processed(),
            epochs: self.epochs,
            dropped_by_outage: merged.dropped_by_outage(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::{AlwaysAccept, CapacityThreshold, Simulator};
    use crate::traffic::TrafficConfig;

    fn always() -> BoxedController {
        Box::new(AlwaysAccept)
    }

    fn threshold() -> BoxedController {
        Box::new(CapacityThreshold::new(0.8, 1.0))
    }

    fn multi_cell_config(seed: u64) -> SimConfig {
        SimConfig::paper_default()
            .with_seed(seed)
            .with_grid_radius(2)
            .with_cell_radius(300.0)
            .with_traffic(TrafficConfig {
                mean_interarrival_s: 1.0,
                mean_holding_s: 300.0,
                min_speed_kmh: 60.0,
                max_speed_kmh: 120.0,
                ..TrafficConfig::paper_default()
            })
            .with_utilization_sampling(60.0)
    }

    fn run(config: &SimConfig, sharding: ShardConfig, n: usize) -> ShardReport {
        let mut sim = ShardedSimulator::new(config.clone(), sharding);
        sim.run_poisson(&mut always, n)
    }

    #[test]
    fn report_is_invariant_over_shard_and_thread_count() {
        let config = multi_cell_config(0xBEEF);
        let solo = run(&config, ShardConfig::solo(), 2000);
        assert!(solo.handoffs_offered > 0, "scenario must exercise handoffs");
        for (shards, threads) in [(2, 1), (3, 2), (7, 4), (19, 3), (64, 2)] {
            let sharded = run(
                &config,
                ShardConfig::new(shards).with_threads(threads),
                2000,
            );
            assert_eq!(solo, sharded, "shards={shards} threads={threads}");
        }
    }

    #[test]
    fn json_serialisation_is_bit_identical_across_shardings() {
        let config = multi_cell_config(0x5EED);
        let a = serde_json::to_string(&run(&config, ShardConfig::solo(), 1500)).unwrap();
        let b = serde_json::to_string(&run(&config, ShardConfig::new(5).with_threads(2), 1500))
            .unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn single_cell_counters_match_the_sequential_engine() {
        // With one cell there are no handoffs, hence no deferred
        // admissions: the sharded engine replays the sequential engine's
        // exact decision sequence.
        let config = SimConfig::paper_default().with_seed(7);
        let mut seq = Simulator::new(config.clone());
        let mut controller = AlwaysAccept;
        let expected = seq.run_poisson(&mut controller, 500);
        let got = run(&config, ShardConfig::solo(), 500);
        assert_eq!(got.offered, expected.offered);
        assert_eq!(got.accepted, expected.accepted);
        assert_eq!(got.completed, expected.metrics.completed());
        assert_eq!(got.acceptance_percentage, expected.acceptance_percentage);
    }

    #[test]
    fn immobile_users_match_the_sequential_engine_multi_cell() {
        // Zero speed ⇒ no cell exits ⇒ no handoffs ⇒ no deferral: the two
        // engines must agree on every counter even on a multi-cell grid.
        let config = SimConfig::paper_default()
            .with_seed(11)
            .with_grid_radius(2)
            .with_traffic(TrafficConfig {
                mean_interarrival_s: 2.0,
                min_speed_kmh: 0.0,
                max_speed_kmh: 0.0,
                ..TrafficConfig::paper_default()
            });
        let mut seq = Simulator::new(config.clone());
        let mut controller = AlwaysAccept;
        let expected = seq.run_poisson(&mut controller, 800);
        let got = run(&config, ShardConfig::new(4), 800);
        assert_eq!(got.offered, expected.offered);
        assert_eq!(got.accepted, expected.accepted);
        assert_eq!(got.handoffs_offered, 0);
    }

    #[test]
    fn stateful_controllers_stay_per_cell() {
        let config = multi_cell_config(0xC0DE);
        let solo = {
            let mut sim = ShardedSimulator::new(config.clone(), ShardConfig::solo());
            sim.run_poisson(&mut threshold, 1200)
        };
        let sharded = {
            let mut sim =
                ShardedSimulator::new(config.clone(), ShardConfig::new(6).with_threads(2));
            sim.run_poisson(&mut threshold, 1200)
        };
        assert_eq!(solo, sharded);
        assert_eq!(solo.controller, "capacity-threshold");
    }

    #[test]
    fn repeated_runs_on_one_instance_are_identical() {
        let config = multi_cell_config(0xAB);
        let mut sim = ShardedSimulator::new(config, ShardConfig::new(3).with_threads(2));
        let a = sim.run_poisson(&mut always, 1000);
        let b = sim.run_poisson(&mut always, 1000);
        assert_eq!(a, b);
    }

    #[test]
    fn peak_concurrency_and_events_are_tracked() {
        let config = multi_cell_config(0xF00D);
        let report = run(&config, ShardConfig::new(4).with_threads(2), 2000);
        assert!(report.peak_concurrent_users > 0);
        assert!(report.events_processed as usize >= 2000);
        assert!(report.epochs > 0);
        assert!(report.utilization_samples > 0);
        assert!(report.mean_utilization > 0.0);
    }

    #[test]
    fn shard_count_is_clamped_to_the_grid() {
        let sim = ShardedSimulator::new(
            SimConfig::paper_default(),
            ShardConfig::new(16).with_threads(0).with_epoch_s(-1.0),
        );
        assert_eq!(sim.sharding().shards, 1, "single-cell grid ⇒ one shard");
        assert_eq!(sim.sharding().threads, 1);
        assert_eq!(sim.sharding().epoch_s, DEFAULT_EPOCH_S);
    }

    #[test]
    fn merge_key_orders_by_time_then_connection_then_rank() {
        let a = MergeKey::new(1.0, 5, RANK_ADMIT);
        let b = MergeKey::new(2.0, 1, RANK_RELEASE);
        let c = MergeKey::new(1.0, 6, RANK_RELEASE);
        let d = MergeKey::new(1.0, 5, RANK_HANDOFF);
        assert!(a < b, "time dominates");
        assert!(a < c, "connection id breaks time ties");
        assert!(a < d, "rank breaks (time, id) ties");
        let mut keys = vec![b, d, c, a];
        keys.sort();
        assert_eq!(keys, vec![a, d, c, b]);
    }
}
