//! Non-Poisson arrival processes: trace replay, MMPP bursts and
//! correlated group arrivals.
//!
//! The paper evaluates FACS/FACS-P against SCC entirely under i.i.d.
//! Poisson arrivals.  Real cellular load is diurnal, bursty and
//! session-structured, so this module adds a [`TrafficModel`] switch the
//! generator, both engines and the sweep spec all understand:
//!
//! * [`TrafficModel::Poisson`] — the default; byte-identical to the
//!   historical generator (all golden snapshots are pinned against it).
//! * [`TrafficModel::Mmpp`] — a Markov-modulated Poisson process whose
//!   states scale the base arrival rate (flash crowds, diurnal curves).
//! * [`TrafficModel::Trace`] — replay of a recorded arrival trace
//!   (inter-arrival + duration + class per line) with optional duration
//!   overrides.
//! * [`TrafficModel::Groups`] — correlated batch arrivals (a stadium
//!   letting out, a train arriving) that can hit one cell simultaneously.
//!
//! Every model is deterministic: the whole stream is a pure function of
//! the generator seed, and because arrivals are pre-generated *before*
//! the world is sharded, replay is bit-identical at any shard or thread
//! count (pinned by `tests/golden_sharded.rs`).

use crate::rng::SimRng;
use crate::traffic::ServiceClass;
use crate::SimTime;
use serde::{Deserialize, Serialize};

/// The arrival process used by [`TrafficGenerator`](super::TrafficGenerator).
///
/// The default is [`TrafficModel::Poisson`], which reproduces the
/// historical exponential-gap generator draw-for-draw — configs and
/// specs that never mention a model keep their exact streams.
///
/// ```
/// use cellsim::traffic::{TrafficConfig, TrafficGenerator, TrafficModel, MmppConfig};
///
/// let config = TrafficConfig::paper_default();
/// // The default model is plain Poisson and matches `TrafficGenerator::new`:
/// let mut plain = TrafficGenerator::new(config.clone(), 7);
/// let mut modeled = TrafficGenerator::with_model(config.clone(), &TrafficModel::default(), 7);
/// assert_eq!(plain.generate_poisson(50), modeled.generate_poisson(50));
///
/// // A bursty model produces a different (but equally deterministic) stream:
/// let mmpp = TrafficModel::Mmpp(MmppConfig::flash_crowd());
/// let a = TrafficGenerator::with_model(config.clone(), &mmpp, 7).generate_poisson(50);
/// let b = TrafficGenerator::with_model(config, &mmpp, 7).generate_poisson(50);
/// assert_eq!(a, b);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub enum TrafficModel {
    /// Exponential inter-arrival gaps (the paper's workload).
    #[default]
    Poisson,
    /// Markov-modulated Poisson process: bursty / diurnal load.
    Mmpp(MmppConfig),
    /// Replay of a recorded arrival trace.
    Trace(TraceConfig),
    /// Correlated group arrivals (several calls share one arrival time,
    /// optionally one spawn cell).
    Groups(GroupConfig),
}

impl TrafficModel {
    /// Short lowercase label for display (`poisson`, `mmpp`, `trace`,
    /// `groups`).
    #[must_use]
    pub fn label(&self) -> &'static str {
        match self {
            TrafficModel::Poisson => "poisson",
            TrafficModel::Mmpp(_) => "mmpp",
            TrafficModel::Trace(_) => "trace",
            TrafficModel::Groups(_) => "groups",
        }
    }

    /// Validate the model's parameters.
    ///
    /// Returns a human-readable description of the first problem found.
    /// [`TrafficGenerator::with_model`](super::TrafficGenerator::with_model)
    /// panics on an invalid model, so validate first when the model comes
    /// from user input (the sweep spec's `validate()` does).
    pub fn validate(&self) -> Result<(), String> {
        match self {
            TrafficModel::Poisson => Ok(()),
            TrafficModel::Mmpp(mmpp) => mmpp.validate(),
            TrafficModel::Trace(trace) => trace.validate(),
            TrafficModel::Groups(groups) => groups.validate(),
        }
    }
}

/// One state of a [Markov-modulated Poisson process](MmppConfig).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MmppState {
    /// Arrival-rate multiplier while in this state: the effective mean
    /// inter-arrival time is `mean_interarrival_s / rate_multiplier`.
    /// `0` silences arrivals entirely for the state's sojourn.
    pub rate_multiplier: f64,
    /// Mean sojourn time in this state (seconds, exponential).
    pub mean_sojourn_s: f64,
}

/// A Markov-modulated Poisson process: the generator cycles through
/// `states` (exponential sojourns), and while in a state arrivals are
/// Poisson at `rate_multiplier` times the configured base rate.
///
/// Build one state-by-state with [`MmppConfig::state`]:
///
/// ```
/// use cellsim::traffic::{MmppConfig, TrafficModel};
///
/// // Quiet 4x-under-rate background with 4x flash bursts: the
/// // time-average of 0.25 over 120 s and 4.0 over 30 s is 1.0, so the
/// // long-run offered load matches the plain Poisson run it replaces.
/// let mmpp = MmppConfig::new().state(0.25, 120.0).state(4.0, 30.0);
/// assert_eq!(mmpp.states.len(), 2);
/// assert!((mmpp.mean_rate_multiplier() - 1.0).abs() < 1e-12);
/// assert!(TrafficModel::Mmpp(mmpp).validate().is_ok());
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct MmppConfig {
    /// The cycle of modulation states (at least one; at least one state
    /// must have a positive rate multiplier).
    pub states: Vec<MmppState>,
}

impl MmppConfig {
    /// An empty process; add states with [`MmppConfig::state`].
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Append a state with the given rate multiplier and mean sojourn
    /// (seconds).
    #[must_use]
    pub fn state(mut self, rate_multiplier: f64, mean_sojourn_s: f64) -> Self {
        self.states.push(MmppState {
            rate_multiplier,
            mean_sojourn_s,
        });
        self
    }

    /// A rate-preserving flash-crowd process: long quiet stretches at a
    /// quarter of the base rate punctuated by short 4x bursts.  The
    /// time-average multiplier is exactly 1, so swapping it in for
    /// Poisson keeps the long-run offered load identical.
    #[must_use]
    pub fn flash_crowd() -> Self {
        Self::new().state(0.25, 120.0).state(4.0, 30.0)
    }

    /// A three-phase diurnal curve (night / day / evening peak) whose
    /// sojourn-weighted mean multiplier is exactly 1:
    /// `(0.2·400 + 1.2·400 + 2.2·200) / 1000 = 1`.
    #[must_use]
    pub fn diurnal() -> Self {
        Self::new()
            .state(0.2, 400.0)
            .state(1.2, 400.0)
            .state(2.2, 200.0)
    }

    /// The sojourn-weighted mean rate multiplier — `1.0` means the
    /// process offers the same long-run load as plain Poisson.
    #[must_use]
    pub fn mean_rate_multiplier(&self) -> f64 {
        let total: f64 = self.states.iter().map(|s| s.mean_sojourn_s).sum();
        if total <= 0.0 {
            return 0.0;
        }
        self.states
            .iter()
            .map(|s| s.rate_multiplier * s.mean_sojourn_s)
            .sum::<f64>()
            / total
    }

    fn validate(&self) -> Result<(), String> {
        if self.states.is_empty() {
            return Err("MMPP needs at least one state".into());
        }
        for (i, s) in self.states.iter().enumerate() {
            if !s.rate_multiplier.is_finite() || s.rate_multiplier < 0.0 {
                return Err(format!(
                    "MMPP state {i}: rate multiplier must be finite and >= 0, got {}",
                    s.rate_multiplier
                ));
            }
            if !s.mean_sojourn_s.is_finite() || s.mean_sojourn_s <= 0.0 {
                return Err(format!(
                    "MMPP state {i}: mean sojourn must be finite and > 0, got {}",
                    s.mean_sojourn_s
                ));
            }
        }
        if !self.states.iter().any(|s| s.rate_multiplier > 0.0) {
            return Err("MMPP needs at least one state with a positive rate multiplier".into());
        }
        Ok(())
    }
}

/// One recorded arrival of a [`TraceConfig`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TraceEntry {
    /// Gap to the previous arrival (seconds; the first entry's gap is
    /// from time zero).
    pub inter_arrival_s: f64,
    /// Recorded call duration (seconds).
    pub duration_s: f64,
    /// Recorded service class.
    pub class: ServiceClass,
}

/// How replay maps a [`TraceEntry`]'s recorded duration onto the
/// generated call's holding time.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub enum DurationPolicy {
    /// Use the recorded duration as-is.
    #[default]
    FromTrace,
    /// Ignore the recording; every call holds for exactly this long.
    Fixed {
        /// Holding time of every replayed call (seconds).
        duration_s: f64,
    },
    /// Clamp the recorded duration into `[min_s, max_s]`.
    Bounded {
        /// Lower bound on the holding time (seconds).
        min_s: f64,
        /// Upper bound on the holding time (seconds).
        max_s: f64,
    },
    /// Ignore the recording; redraw the holding time from the configured
    /// exponential distribution (`mean_holding_s`), like Poisson does.
    Randomized,
}

/// Replay of a recorded arrival trace.
///
/// The trace supplies the inter-arrival gap, the recorded duration and
/// the service class of every call; speed, angle and handoff flags are
/// still drawn from the traffic config so mobility behaves normally.
/// See `docs/TRAFFIC_MODELS.md` for the on-disk text format parsed by
/// [`parse_trace`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceConfig {
    /// The recorded arrivals, in order.
    pub entries: Vec<TraceEntry>,
    /// How recorded durations become holding times.
    #[serde(default)]
    pub duration: DurationPolicy,
    /// `true` wraps back to the first entry when the trace is exhausted;
    /// `false` falls back to plain Poisson arrivals after the last entry.
    #[serde(default)]
    pub loop_replay: bool,
}

impl TraceConfig {
    /// A looping replay of `entries` with durations taken from the trace.
    #[must_use]
    pub fn new(entries: Vec<TraceEntry>) -> Self {
        Self {
            entries,
            duration: DurationPolicy::FromTrace,
            loop_replay: true,
        }
    }

    /// Parse the text trace format (see [`parse_trace`]) into a looping
    /// replay config.
    pub fn from_text(text: &str) -> Result<Self, TraceError> {
        Ok(Self::new(parse_trace(text)?))
    }

    /// Set the duration policy.
    #[must_use]
    pub fn with_duration(mut self, duration: DurationPolicy) -> Self {
        self.duration = duration;
        self
    }

    /// Set whether the trace wraps around when exhausted.
    #[must_use]
    pub fn with_loop_replay(mut self, loop_replay: bool) -> Self {
        self.loop_replay = loop_replay;
        self
    }

    fn validate(&self) -> Result<(), String> {
        if self.entries.is_empty() {
            return Err("trace replay needs at least one entry".into());
        }
        for (i, e) in self.entries.iter().enumerate() {
            if !e.inter_arrival_s.is_finite() || e.inter_arrival_s < 0.0 {
                return Err(format!(
                    "trace entry {i}: inter-arrival must be finite and >= 0, got {}",
                    e.inter_arrival_s
                ));
            }
            if !e.duration_s.is_finite() || e.duration_s <= 0.0 {
                return Err(format!(
                    "trace entry {i}: duration must be finite and > 0, got {}",
                    e.duration_s
                ));
            }
        }
        match self.duration {
            DurationPolicy::FromTrace | DurationPolicy::Randomized => {}
            DurationPolicy::Fixed { duration_s } => {
                if !duration_s.is_finite() || duration_s <= 0.0 {
                    return Err(format!(
                        "fixed duration must be finite and > 0, got {duration_s}"
                    ));
                }
            }
            DurationPolicy::Bounded { min_s, max_s } => {
                if !min_s.is_finite() || !max_s.is_finite() || min_s <= 0.0 || max_s < min_s {
                    return Err(format!(
                        "bounded duration needs 0 < min <= max, got [{min_s}, {max_s}]"
                    ));
                }
            }
        }
        if self.loop_replay && self.entries.iter().all(|e| e.inter_arrival_s == 0.0) {
            return Err("a looping trace needs at least one positive inter-arrival gap".into());
        }
        Ok(())
    }
}

/// Errors from [`parse_trace`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceError {
    /// The trace contained no arrival lines (only blanks / comments).
    Empty,
    /// A line had fewer than the three required fields.
    MissingFields {
        /// 1-based line number.
        line: usize,
    },
    /// A numeric field did not parse as a finite non-negative number.
    BadNumber {
        /// 1-based line number.
        line: usize,
        /// Which field failed (`"inter_arrival"` or `"duration"`).
        field: &'static str,
    },
    /// The class field was not `text`, `voice` or `video`.
    BadClass {
        /// 1-based line number.
        line: usize,
        /// The offending token.
        value: String,
    },
}

impl std::fmt::Display for TraceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceError::Empty => write!(f, "trace contains no arrivals"),
            TraceError::MissingFields { line } => {
                write!(
                    f,
                    "trace line {line}: expected `inter_arrival duration class`"
                )
            }
            TraceError::BadNumber { line, field } => {
                write!(
                    f,
                    "trace line {line}: {field} is not a finite non-negative number"
                )
            }
            TraceError::BadClass { line, value } => {
                write!(
                    f,
                    "trace line {line}: unknown class `{value}` (expected text, voice or video)"
                )
            }
        }
    }
}

impl std::error::Error for TraceError {}

/// Parse the text trace format: one arrival per line as
/// `inter_arrival_s duration_s class` (whitespace-separated), where
/// `class` is `text`, `voice` or `video`.  Blank lines and `#` comments
/// are ignored.
///
/// ```
/// use cellsim::traffic::{parse_trace, ServiceClass};
///
/// let entries = parse_trace(
///     "# time gaps, durations, classes\n\
///      0.0  120.0 voice\n\
///      0.5  300.0 video\n\
///      12.0 30.0  text\n",
/// )
/// .unwrap();
/// assert_eq!(entries.len(), 3);
/// assert_eq!(entries[1].class, ServiceClass::Video);
/// assert!(parse_trace("1.0 oops voice").is_err());
/// ```
pub fn parse_trace(text: &str) -> Result<Vec<TraceEntry>, TraceError> {
    let mut entries = Vec::new();
    for (idx, raw) in text.lines().enumerate() {
        let line = idx + 1;
        let content = raw.split('#').next().unwrap_or("").trim();
        if content.is_empty() {
            continue;
        }
        let mut fields = content.split_whitespace();
        let (Some(gap), Some(duration), Some(class)) =
            (fields.next(), fields.next(), fields.next())
        else {
            return Err(TraceError::MissingFields { line });
        };
        let inter_arrival_s: f64 = gap.parse().map_err(|_| TraceError::BadNumber {
            line,
            field: "inter_arrival",
        })?;
        if !inter_arrival_s.is_finite() || inter_arrival_s < 0.0 {
            return Err(TraceError::BadNumber {
                line,
                field: "inter_arrival",
            });
        }
        let duration_s: f64 = duration.parse().map_err(|_| TraceError::BadNumber {
            line,
            field: "duration",
        })?;
        if !duration_s.is_finite() || duration_s <= 0.0 {
            return Err(TraceError::BadNumber {
                line,
                field: "duration",
            });
        }
        let class = match class {
            "text" => ServiceClass::Text,
            "voice" => ServiceClass::Voice,
            "video" => ServiceClass::Video,
            other => {
                return Err(TraceError::BadClass {
                    line,
                    value: other.to_string(),
                })
            }
        };
        entries.push(TraceEntry {
            inter_arrival_s,
            duration_s,
            class,
        });
    }
    if entries.is_empty() {
        return Err(TraceError::Empty);
    }
    Ok(entries)
}

/// Correlated group arrivals: calls arrive in batches whose members
/// share one arrival time (and, with [`GroupConfig::same_cell`], one
/// spawn cell) — a stadium letting out or a train pulling into a
/// station.  Group leaders arrive with exponential gaps stretched by the
/// mean group size, so the long-run call rate matches plain Poisson.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GroupConfig {
    /// Smallest group size (>= 1).
    pub min_size: u32,
    /// Largest group size (>= `min_size`).
    pub max_size: u32,
    /// `true` spawns every member of a group in the same cell (the
    /// stadium case); `false` scatters members across the grid like
    /// independent arrivals.
    pub same_cell: bool,
}

impl GroupConfig {
    /// Groups of `min_size..=max_size` calls hitting one cell at once.
    #[must_use]
    pub fn new(min_size: u32, max_size: u32) -> Self {
        Self {
            min_size,
            max_size,
            same_cell: true,
        }
    }

    /// Set whether group members share a spawn cell.
    #[must_use]
    pub fn with_same_cell(mut self, same_cell: bool) -> Self {
        self.same_cell = same_cell;
        self
    }

    /// Mean group size under the uniform size draw.
    #[must_use]
    pub fn mean_size(&self) -> f64 {
        f64::from(self.min_size + self.max_size) / 2.0
    }

    fn validate(&self) -> Result<(), String> {
        if self.min_size < 1 {
            return Err("group arrivals need min_size >= 1".into());
        }
        if self.max_size < self.min_size {
            return Err(format!(
                "group arrivals need min_size <= max_size, got [{}, {}]",
                self.min_size, self.max_size
            ));
        }
        const MAX_GROUP: u32 = 100_000;
        if self.max_size > MAX_GROUP {
            return Err(format!(
                "group arrivals cap max_size at {MAX_GROUP}, got {}",
                self.max_size
            ));
        }
        Ok(())
    }
}

/// Assigns pre-generated arrivals to spawn cells.
///
/// Both engines route every arrival's cell draw through one of these so
/// the sequential and sharded simulators consume *identical* RNG call
/// sequences: one `uniform_u32` per independent arrival, zero draws on a
/// single-cell grid, and — for [`TrafficModel::Groups`] with
/// [`GroupConfig::same_cell`] — zero draws for the followers of a group,
/// which reuse their leader's cell.  Followers are recognised by sharing
/// the leader's exact arrival time, which only group generation produces
/// (continuous gap draws never collide bit-for-bit).
#[derive(Debug, Clone)]
pub struct SpawnCellAssigner {
    correlated: bool,
    last: Option<(SimTime, u32)>,
}

impl SpawnCellAssigner {
    /// An assigner for the given model.
    #[must_use]
    pub fn new(model: &TrafficModel) -> Self {
        let correlated = matches!(model, TrafficModel::Groups(g) if g.same_cell);
        Self {
            correlated,
            last: None,
        }
    }

    /// The spawn cell (as an index into the grid's cell order) for an
    /// arrival at `arrival_time` on a grid of `num_cells` cells.
    pub fn assign(&mut self, arrival_time: SimTime, num_cells: usize, rng: &mut SimRng) -> u32 {
        if num_cells <= 1 {
            return 0;
        }
        if self.correlated {
            if let Some((t, c)) = self.last {
                if t.to_bits() == arrival_time.to_bits() {
                    return c;
                }
            }
        }
        let cell = rng.uniform_u32(0, (num_cells - 1) as u32);
        if self.correlated {
            self.last = Some((arrival_time, cell));
        }
        cell
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_model_is_poisson() {
        assert_eq!(TrafficModel::default(), TrafficModel::Poisson);
        assert_eq!(TrafficModel::Poisson.label(), "poisson");
        assert!(TrafficModel::Poisson.validate().is_ok());
    }

    #[test]
    fn mmpp_builder_and_presets() {
        let flash = MmppConfig::flash_crowd();
        assert!((flash.mean_rate_multiplier() - 1.0).abs() < 1e-12);
        let diurnal = MmppConfig::diurnal();
        assert!((diurnal.mean_rate_multiplier() - 1.0).abs() < 1e-12);
        assert!(TrafficModel::Mmpp(flash).validate().is_ok());
        assert!(TrafficModel::Mmpp(diurnal).validate().is_ok());
    }

    #[test]
    fn mmpp_validation_rejects_degenerate_processes() {
        let empty = TrafficModel::Mmpp(MmppConfig::new());
        assert!(empty.validate().is_err());
        let all_silent = TrafficModel::Mmpp(MmppConfig::new().state(0.0, 10.0));
        assert!(all_silent.validate().is_err());
        let bad_sojourn = TrafficModel::Mmpp(MmppConfig::new().state(1.0, 0.0));
        assert!(bad_sojourn.validate().is_err());
        let nan_rate = TrafficModel::Mmpp(MmppConfig::new().state(f64::NAN, 10.0));
        assert!(nan_rate.validate().is_err());
    }

    #[test]
    fn trace_parser_accepts_comments_and_blanks() {
        let entries = parse_trace(
            "# header\n\
             \n\
             0.0 60.0 text   # inline comment\n\
             1.5 10.0 voice\n",
        )
        .unwrap();
        assert_eq!(entries.len(), 2);
        assert_eq!(entries[0].class, ServiceClass::Text);
        assert_eq!(entries[1].inter_arrival_s, 1.5);
    }

    #[test]
    fn trace_parser_rejects_malformed_input() {
        assert_eq!(parse_trace(""), Err(TraceError::Empty));
        assert_eq!(parse_trace("# only comments\n"), Err(TraceError::Empty));
        assert_eq!(
            parse_trace("1.0 2.0\n"),
            Err(TraceError::MissingFields { line: 1 })
        );
        assert_eq!(
            parse_trace("0.0 60.0 text\nnope 2.0 voice\n"),
            Err(TraceError::BadNumber {
                line: 2,
                field: "inter_arrival"
            })
        );
        assert_eq!(
            parse_trace("-1.0 2.0 voice\n"),
            Err(TraceError::BadNumber {
                line: 1,
                field: "inter_arrival"
            })
        );
        assert_eq!(
            parse_trace("1.0 0.0 voice\n"),
            Err(TraceError::BadNumber {
                line: 1,
                field: "duration"
            })
        );
        assert_eq!(
            parse_trace("1.0 inf voice\n"),
            Err(TraceError::BadNumber {
                line: 1,
                field: "duration"
            })
        );
        assert_eq!(
            parse_trace("1.0 2.0 fax\n"),
            Err(TraceError::BadClass {
                line: 1,
                value: "fax".into()
            })
        );
        // Errors render as readable text.
        let msg = TraceError::BadClass {
            line: 3,
            value: "fax".into(),
        }
        .to_string();
        assert!(msg.contains("line 3") && msg.contains("fax"));
    }

    #[test]
    fn trace_validation() {
        let ok = TraceConfig::from_text("1.0 60.0 voice\n").unwrap();
        assert!(TrafficModel::Trace(ok.clone()).validate().is_ok());
        let empty = TraceConfig {
            entries: vec![],
            duration: DurationPolicy::FromTrace,
            loop_replay: false,
        };
        assert!(TrafficModel::Trace(empty).validate().is_err());
        let zero_gap_loop = TraceConfig::from_text("0.0 60.0 voice\n").unwrap();
        assert!(TrafficModel::Trace(zero_gap_loop.clone())
            .validate()
            .is_err());
        assert!(TrafficModel::Trace(zero_gap_loop.with_loop_replay(false))
            .validate()
            .is_ok());
        let bad_fixed = ok
            .clone()
            .with_duration(DurationPolicy::Fixed { duration_s: 0.0 });
        assert!(TrafficModel::Trace(bad_fixed).validate().is_err());
        let bad_bounds = ok.with_duration(DurationPolicy::Bounded {
            min_s: 10.0,
            max_s: 5.0,
        });
        assert!(TrafficModel::Trace(bad_bounds).validate().is_err());
    }

    #[test]
    fn group_validation_and_mean() {
        let g = GroupConfig::new(5, 15);
        assert_eq!(g.mean_size(), 10.0);
        assert!(TrafficModel::Groups(g).validate().is_ok());
        assert!(TrafficModel::Groups(GroupConfig::new(0, 3))
            .validate()
            .is_err());
        assert!(TrafficModel::Groups(GroupConfig::new(5, 2))
            .validate()
            .is_err());
        assert!(TrafficModel::Groups(GroupConfig::new(1, 200_000))
            .validate()
            .is_err());
    }

    #[test]
    fn assigner_matches_plain_draw_for_uncorrelated_models() {
        let mut direct = SimRng::new(42);
        let mut via = SimRng::new(42);
        let mut assigner = SpawnCellAssigner::new(&TrafficModel::Poisson);
        for i in 0..100 {
            let t = i as f64 * 0.5;
            assert_eq!(assigner.assign(t, 19, &mut via), direct.uniform_u32(0, 18));
        }
    }

    #[test]
    fn assigner_reuses_cell_for_same_time_groups() {
        let model = TrafficModel::Groups(GroupConfig::new(3, 3));
        let mut rng = SimRng::new(7);
        let mut assigner = SpawnCellAssigner::new(&model);
        let leader = assigner.assign(10.0, 19, &mut rng);
        let follower_a = assigner.assign(10.0, 19, &mut rng);
        let follower_b = assigner.assign(10.0, 19, &mut rng);
        assert_eq!(leader, follower_a);
        assert_eq!(leader, follower_b);
        // A new arrival time draws a fresh cell (and may of course
        // coincide; the point is the draw happens again).
        let mut fresh = rng.clone();
        let next = assigner.assign(11.0, 19, &mut rng);
        assert_eq!(next, fresh.uniform_u32(0, 18));
    }

    #[test]
    fn assigner_single_cell_never_draws() {
        let mut rng = SimRng::new(9);
        let before = rng.clone().uniform_u32(0, 1000);
        let mut assigner = SpawnCellAssigner::new(&TrafficModel::Poisson);
        assert_eq!(assigner.assign(0.0, 1, &mut rng), 0);
        assert_eq!(assigner.assign(1.0, 0, &mut rng), 0);
        assert_eq!(rng.uniform_u32(0, 1000), before, "no draws consumed");
    }

    #[test]
    fn models_round_trip_through_serde() {
        let models = [
            TrafficModel::Poisson,
            TrafficModel::Mmpp(MmppConfig::flash_crowd()),
            TrafficModel::Trace(
                TraceConfig::from_text("0.5 60.0 voice\n1.0 10.0 text\n")
                    .unwrap()
                    .with_duration(DurationPolicy::Bounded {
                        min_s: 5.0,
                        max_s: 120.0,
                    }),
            ),
            TrafficModel::Groups(GroupConfig::new(5, 20)),
        ];
        for model in models {
            let json = serde_json::to_string(&model).unwrap();
            let back: TrafficModel = serde_json::from_str(&json).unwrap();
            assert_eq!(back, model);
        }
    }
}
