//! The simulator's telemetry schema and the feature-selected default
//! recorder.
//!
//! One static [`Schema`] covers both the sequential engine
//! ([`crate::sim::Simulator`]) and the sharded engine
//! ([`crate::shard::ShardedSimulator`]), so per-shard snapshots merge
//! into the coordinator's without series collisions.
//!
//! The `telemetry` cargo feature selects which [`telemetry::Recorder`] a plain
//! `Simulator::new` gets: [`telemetry::Registry`] (instrumented) with the
//! feature, [`telemetry::NoopRecorder`] (zero-cost, the default) without.
//! Both types are always available, so a default build can still
//! instantiate `Simulator::<Registry>` explicitly — that is how the
//! on-vs-off invariance test and the telemetry-overhead benchmark case
//! run inside a single binary.
//!
//! # Determinism contract
//!
//! Recording never reads an RNG stream, never mutates simulation state,
//! and never reorders events. Reports and golden snapshots are therefore
//! byte-identical whichever recorder is plugged in; see
//! `tests/telemetry_invariance.rs`.

use telemetry::{CounterId, GaugeId, HistogramId, MetricDef, Schema, SpanId};

use crate::traffic::ServiceClass;

/// The recorder a plain [`crate::sim::Simulator::new`] uses: the real
/// [`telemetry::Registry`] when the `telemetry` cargo feature is on.
#[cfg(feature = "telemetry")]
pub type DefaultRecorder = telemetry::Registry;

/// The recorder a plain [`crate::sim::Simulator::new`] uses: the
/// zero-cost [`telemetry::NoopRecorder`] in the default build.
#[cfg(not(feature = "telemetry"))]
pub type DefaultRecorder = telemetry::NoopRecorder;

/// Counter ids into [`SCHEMA`].
pub mod counter {
    use super::CounterId;

    /// Arrival events processed by the event loop.
    pub const EVENT_ARRIVAL: CounterId = CounterId(0);
    /// Departure events processed.
    pub const EVENT_DEPARTURE: CounterId = CounterId(1);
    /// Handoff events processed.
    pub const EVENT_HANDOFF: CounterId = CounterId(2);
    /// Mobility/utilisation-sampling ticks processed.
    pub const EVENT_MOBILITY_TICK: CounterId = CounterId(3);
    /// First of the 12 admission-decision counters (class × kind ×
    /// outcome); see [`super::admission_counter`].
    pub const ADMISSION_BASE: u16 = 4;
    /// Cross-shard admit merge tasks replayed at an epoch barrier.
    pub const MERGE_ADMIT: CounterId = CounterId(16);
    /// Cross-shard release merge tasks replayed.
    pub const MERGE_RELEASE: CounterId = CounterId(17);
    /// Cross-shard handoff merge tasks replayed.
    pub const MERGE_HANDOFF: CounterId = CounterId(18);
    /// Scheduled fault events applied (outage / recovery / degrade /
    /// restore).
    pub const EVENT_FAULT: CounterId = CounterId(19);
    /// Active connections force-dropped by cell outages.
    pub const OUTAGE_DROPPED: CounterId = CounterId(20);
}

/// Histogram ids into [`SCHEMA`].
pub mod histogram {
    use super::HistogramId;

    /// Event-heap depth observed at every run-time event pop.
    pub const HEAP_DEPTH: HistogramId = HistogramId(0);
    /// Wall time of one shard's epoch loop, nanoseconds (one observation
    /// per shard per epoch).
    pub const SHARD_EPOCH_NS: HistogramId = HistogramId(1);
    /// Parallel-phase imbalance per epoch: slowest shard over mean shard
    /// wall time, in permille (1000 = perfectly balanced).
    pub const EPOCH_IMBALANCE_PERMILLE: HistogramId = HistogramId(2);
    /// Cross-shard merge-queue depth at each epoch barrier.
    pub const MERGE_QUEUE_DEPTH: HistogramId = HistogramId(3);
}

/// Gauge (high-water mark) ids into [`SCHEMA`].
pub mod gauge {
    use super::GaugeId;

    /// High-water mark of live user-kinematics slots in the slab.
    pub const SLAB_USERS: GaugeId = GaugeId(0);
    /// High-water mark of the event-heap depth.
    pub const HEAP_DEPTH: GaugeId = GaugeId(1);
    /// High-water mark of concurrent users across all shards.
    pub const SHARD_CONCURRENT_USERS: GaugeId = GaugeId(2);
}

/// Span-timer ids into [`SCHEMA`].
pub mod span {
    use super::SpanId;

    /// Wall time of one [`crate::sim::Simulator::run_poisson`] call.
    pub const RUN_POISSON: SpanId = SpanId(0);
    /// Wall time of one [`crate::sim::Simulator::run_batch`] call.
    pub const RUN_BATCH: SpanId = SpanId(1);
    /// Wall time of the parallel phase of one sharded epoch.
    pub const SHARD_PARALLEL_PHASE: SpanId = SpanId(2);
    /// Wall time of the sequential merge phase of one sharded epoch.
    pub const SHARD_MERGE_PHASE: SpanId = SpanId(3);
}

/// Trace kind for one epoch barrier (value = merge-queue depth).
pub const TRACE_EPOCH: u16 = 0;

#[cfg(test)]
const CLASS_NAMES: [&str; 3] = ["text", "voice", "video"];

/// The admission-decision counter for a `(class, kind, outcome)` cell:
/// `kind` is new-call vs handoff, `outcome` accepted vs blocked (a
/// blocked handoff is a dropped call).
#[inline]
#[must_use]
pub fn admission_counter(class: ServiceClass, accepted: bool, is_handoff: bool) -> CounterId {
    CounterId(
        counter::ADMISSION_BASE
            + class.index() as u16 * 4
            + u16::from(is_handoff) * 2
            + u16::from(accepted),
    )
}

/// The cellsim metric layout. Admission counters are laid out
/// `class-major, then kind, then outcome` to match
/// [`admission_counter`].
pub static SCHEMA: Schema = Schema {
    counters: &[
        MetricDef {
            name: "sim_events_total",
            help: "Events processed by the run_poisson loop, by kind",
            labels: &[("kind", "arrival")],
        },
        MetricDef {
            name: "sim_events_total",
            help: "Events processed by the run_poisson loop, by kind",
            labels: &[("kind", "departure")],
        },
        MetricDef {
            name: "sim_events_total",
            help: "Events processed by the run_poisson loop, by kind",
            labels: &[("kind", "handoff")],
        },
        MetricDef {
            name: "sim_events_total",
            help: "Events processed by the run_poisson loop, by kind",
            labels: &[("kind", "mobility_tick")],
        },
        admission_metric(0, false, false),
        admission_metric(0, false, true),
        admission_metric(0, true, false),
        admission_metric(0, true, true),
        admission_metric(1, false, false),
        admission_metric(1, false, true),
        admission_metric(1, true, false),
        admission_metric(1, true, true),
        admission_metric(2, false, false),
        admission_metric(2, false, true),
        admission_metric(2, true, false),
        admission_metric(2, true, true),
        MetricDef {
            name: "shard_merge_tasks_total",
            help: "Cross-shard merge tasks replayed at epoch barriers, by kind",
            labels: &[("kind", "admit")],
        },
        MetricDef {
            name: "shard_merge_tasks_total",
            help: "Cross-shard merge tasks replayed at epoch barriers, by kind",
            labels: &[("kind", "release")],
        },
        MetricDef {
            name: "shard_merge_tasks_total",
            help: "Cross-shard merge tasks replayed at epoch barriers, by kind",
            labels: &[("kind", "handoff")],
        },
        MetricDef {
            name: "sim_events_total",
            help: "Events processed by the run_poisson loop, by kind",
            labels: &[("kind", "fault")],
        },
        MetricDef {
            name: "sim_outage_dropped_total",
            help: "Active connections force-dropped by cell outages",
            labels: &[],
        },
    ],
    histograms: &[
        MetricDef {
            name: "sim_heap_depth",
            help: "Event-heap depth at run-time event pops (log2 buckets)",
            labels: &[],
        },
        MetricDef {
            name: "shard_epoch_ns",
            help: "Per-shard epoch loop wall time in nanoseconds (log2 buckets)",
            labels: &[],
        },
        MetricDef {
            name: "shard_epoch_imbalance_permille",
            help: "Slowest shard over mean shard wall time per epoch, permille",
            labels: &[],
        },
        MetricDef {
            name: "shard_merge_queue_depth",
            help: "Cross-shard merge-queue depth at each epoch barrier",
            labels: &[],
        },
    ],
    gauges: &[
        MetricDef {
            name: "sim_slab_users_high_water",
            help: "High-water mark of live user-kinematics slab slots",
            labels: &[],
        },
        MetricDef {
            name: "sim_heap_depth_high_water",
            help: "High-water mark of the event-heap depth",
            labels: &[],
        },
        MetricDef {
            name: "shard_concurrent_users_high_water",
            help: "High-water mark of concurrent users across all shards",
            labels: &[],
        },
    ],
    spans: &[
        MetricDef {
            name: "sim_run_poisson_ns",
            help: "Wall time of run_poisson calls",
            labels: &[],
        },
        MetricDef {
            name: "sim_run_batch_ns",
            help: "Wall time of run_batch calls",
            labels: &[],
        },
        MetricDef {
            name: "shard_parallel_phase_ns",
            help: "Wall time of the parallel phase of each sharded epoch",
            labels: &[],
        },
        MetricDef {
            name: "shard_merge_phase_ns",
            help: "Wall time of the sequential merge phase of each sharded epoch",
            labels: &[],
        },
    ],
    trace_kinds: &["epoch"],
    trace_capacity: 256,
};

const fn admission_metric(class: usize, is_handoff: bool, accepted: bool) -> MetricDef {
    MetricDef {
        name: "sim_admissions_total",
        help: "Admission decisions by service class, request kind, and outcome",
        labels: match (class, is_handoff, accepted) {
            (0, false, false) => &[("class", "text"), ("kind", "new"), ("outcome", "blocked")],
            (0, false, true) => &[("class", "text"), ("kind", "new"), ("outcome", "accepted")],
            (0, true, false) => &[
                ("class", "text"),
                ("kind", "handoff"),
                ("outcome", "blocked"),
            ],
            (0, true, true) => &[
                ("class", "text"),
                ("kind", "handoff"),
                ("outcome", "accepted"),
            ],
            (1, false, false) => &[("class", "voice"), ("kind", "new"), ("outcome", "blocked")],
            (1, false, true) => &[("class", "voice"), ("kind", "new"), ("outcome", "accepted")],
            (1, true, false) => &[
                ("class", "voice"),
                ("kind", "handoff"),
                ("outcome", "blocked"),
            ],
            (1, true, true) => &[
                ("class", "voice"),
                ("kind", "handoff"),
                ("outcome", "accepted"),
            ],
            (2, false, false) => &[("class", "video"), ("kind", "new"), ("outcome", "blocked")],
            (2, false, true) => &[("class", "video"), ("kind", "new"), ("outcome", "accepted")],
            (2, true, false) => &[
                ("class", "video"),
                ("kind", "handoff"),
                ("outcome", "blocked"),
            ],
            _ => &[
                ("class", "video"),
                ("kind", "handoff"),
                ("outcome", "accepted"),
            ],
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use telemetry::Recorder;

    #[test]
    fn admission_counter_layout_matches_schema_labels() {
        for class in ServiceClass::ALL {
            for is_handoff in [false, true] {
                for accepted in [false, true] {
                    let id = admission_counter(class, accepted, is_handoff);
                    let def = &SCHEMA.counters[id.0 as usize];
                    assert_eq!(def.name, "sim_admissions_total");
                    let want_class = CLASS_NAMES[class.index()];
                    let want_kind = if is_handoff { "handoff" } else { "new" };
                    let want_outcome = if accepted { "accepted" } else { "blocked" };
                    assert_eq!(def.labels[0], ("class", want_class));
                    assert_eq!(def.labels[1], ("kind", want_kind));
                    assert_eq!(def.labels[2], ("outcome", want_outcome));
                }
            }
        }
    }

    #[test]
    fn schema_ids_are_in_range_and_exposition_lints() {
        let mut r = telemetry::Registry::for_schema(&SCHEMA);
        r.add(counter::EVENT_ARRIVAL, 1);
        r.add(counter::MERGE_HANDOFF, 1);
        r.observe(histogram::HEAP_DEPTH, 3);
        r.observe(histogram::MERGE_QUEUE_DEPTH, 9);
        r.high_water(gauge::SLAB_USERS, 7);
        r.high_water(gauge::SHARD_CONCURRENT_USERS, 11);
        r.span_ns(span::RUN_POISSON, 42);
        r.span_ns(span::SHARD_MERGE_PHASE, 42);
        let text = r.snapshot().to_prometheus();
        telemetry::lint_prometheus(&text).expect("cellsim schema exposition must lint clean");
    }

    #[cfg(feature = "telemetry")]
    #[test]
    fn feature_selects_registry_as_default() {
        const { assert!(<DefaultRecorder as Recorder>::ENABLED) }
    }

    #[cfg(not(feature = "telemetry"))]
    #[test]
    fn default_build_selects_noop() {
        const { assert!(!<DefaultRecorder as Recorder>::ENABLED) }
        assert_eq!(std::mem::size_of::<DefaultRecorder>(), 0);
    }
}
