//! A generational slab: dense, free-list-recycled storage for short-lived
//! per-connection state.
//!
//! The simulator admits and releases connections millions of times per
//! run; a `HashMap<u64, _>` pays a SipHash plus a probe sequence on every
//! touch and re-allocates as it grows.  A [`Slab`] instead hands out
//! [`SlotId`] handles (index + generation): insertion reuses a free slot
//! when one exists (so steady-state call setup/teardown never allocates),
//! lookup is a bounds-checked array access, and the generation counter
//! makes stale handles — e.g. a departure event whose connection already
//! handed off and completed elsewhere — miss safely instead of aliasing a
//! recycled slot.

use serde::{Deserialize, Serialize};

/// A generational handle into a [`Slab`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct SlotId {
    index: u32,
    generation: u32,
}

impl SlotId {
    /// The slot's position in the slab's backing storage.
    #[must_use]
    pub fn index(self) -> usize {
        self.index as usize
    }

    /// The generation the handle was issued for.
    #[must_use]
    pub fn generation(self) -> u32 {
        self.generation
    }
}

#[derive(Debug, Clone)]
struct Entry<T> {
    generation: u32,
    value: Option<T>,
}

/// Dense generational storage with a free list.
#[derive(Debug, Clone)]
pub struct Slab<T> {
    entries: Vec<Entry<T>>,
    free: Vec<u32>,
    len: usize,
}

impl<T> Default for Slab<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> Slab<T> {
    /// An empty slab.
    #[must_use]
    pub fn new() -> Self {
        Self {
            entries: Vec::new(),
            free: Vec::new(),
            len: 0,
        }
    }

    /// Number of live values.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when no values are live.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Capacity of the backing storage (live + recyclable slots).
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.entries.capacity()
    }

    /// Insert a value, reusing a freed slot when one exists.
    pub fn insert(&mut self, value: T) -> SlotId {
        self.len += 1;
        if let Some(index) = self.free.pop() {
            let entry = &mut self.entries[index as usize];
            debug_assert!(entry.value.is_none(), "free list pointed at a live slot");
            entry.value = Some(value);
            SlotId {
                index,
                generation: entry.generation,
            }
        } else {
            let index = u32::try_from(self.entries.len()).expect("slab exceeds u32::MAX slots");
            self.entries.push(Entry {
                generation: 0,
                value: Some(value),
            });
            SlotId {
                index,
                generation: 0,
            }
        }
    }

    /// The value behind `id`, if the handle is still current.
    #[must_use]
    pub fn get(&self, id: SlotId) -> Option<&T> {
        let entry = self.entries.get(id.index())?;
        if entry.generation != id.generation {
            return None;
        }
        entry.value.as_ref()
    }

    /// Remove and return the value behind `id`; stale or double-freed
    /// handles return `None`.  The slot's generation is bumped so every
    /// outstanding handle to it goes stale, and the slot joins the free
    /// list for reuse.
    pub fn remove(&mut self, id: SlotId) -> Option<T> {
        let entry = self.entries.get_mut(id.index())?;
        if entry.generation != id.generation {
            return None;
        }
        let value = entry.value.take()?;
        entry.generation = entry.generation.wrapping_add(1);
        self.free.push(id.index);
        self.len -= 1;
        Some(value)
    }

    /// Drop every live value and invalidate every outstanding handle,
    /// keeping the backing storage for reuse.
    pub fn clear(&mut self) {
        self.free.clear();
        for (index, entry) in self.entries.iter_mut().enumerate() {
            if entry.value.take().is_some() {
                entry.generation = entry.generation.wrapping_add(1);
            }
            self.free.push(index as u32);
        }
        self.len = 0;
    }

    /// Iterator over the live values (slot-index order).
    pub fn iter(&self) -> impl Iterator<Item = (SlotId, &T)> {
        self.entries.iter().enumerate().filter_map(|(i, e)| {
            e.value.as_ref().map(|v| {
                (
                    SlotId {
                        index: i as u32,
                        generation: e.generation,
                    },
                    v,
                )
            })
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_remove_round_trip() {
        let mut slab = Slab::new();
        let a = slab.insert("a");
        let b = slab.insert("b");
        assert_eq!(slab.len(), 2);
        assert_eq!(slab.get(a), Some(&"a"));
        assert_eq!(slab.get(b), Some(&"b"));
        assert_eq!(slab.remove(a), Some("a"));
        assert_eq!(slab.get(a), None);
        assert_eq!(slab.remove(a), None, "double free misses");
        assert_eq!(slab.len(), 1);
    }

    #[test]
    fn freed_slots_are_reused_without_growing() {
        let mut slab = Slab::new();
        let ids: Vec<SlotId> = (0..8).map(|i| slab.insert(i)).collect();
        let cap = slab.entries.len();
        for id in &ids {
            slab.remove(*id);
        }
        for i in 0..8 {
            slab.insert(100 + i);
        }
        assert_eq!(slab.entries.len(), cap, "teardown/setup must recycle slots");
        assert_eq!(slab.len(), 8);
    }

    #[test]
    fn stale_handles_miss_recycled_slots() {
        let mut slab = Slab::new();
        let old = slab.insert(1);
        slab.remove(old);
        let new = slab.insert(2);
        assert_eq!(old.index(), new.index(), "slot is recycled");
        assert_ne!(old.generation(), new.generation());
        assert_eq!(slab.get(old), None, "stale handle must miss");
        assert_eq!(slab.get(new), Some(&2));
    }

    #[test]
    fn clear_invalidates_everything_and_keeps_capacity() {
        let mut slab = Slab::new();
        let ids: Vec<SlotId> = (0..16).map(|i| slab.insert(i)).collect();
        let cap = slab.capacity();
        slab.clear();
        assert!(slab.is_empty());
        assert_eq!(slab.capacity(), cap);
        for id in ids {
            assert_eq!(slab.get(id), None);
        }
        let reborn = slab.insert(7);
        assert_eq!(slab.get(reborn), Some(&7));
        assert!(reborn.index() < 16, "clear feeds the free list");
    }

    #[test]
    fn iter_visits_live_values_in_slot_order() {
        let mut slab = Slab::new();
        let a = slab.insert("a");
        let _b = slab.insert("b");
        let _c = slab.insert("c");
        slab.remove(a);
        let seen: Vec<&str> = slab.iter().map(|(_, v)| *v).collect();
        assert_eq!(seen, vec!["b", "c"]);
        for (id, v) in slab.iter() {
            assert_eq!(slab.get(id), Some(v));
        }
    }
}
