//! Hexagonal cell geometry.
//!
//! Cellular coverage is modelled as the classical hexagonal tessellation:
//! every [`CellId`] is an axial coordinate `(q, r)` on a hex lattice, the
//! base station sits at the cell centre and the cell radius (centre to
//! corner) is configurable.  The Shadow Cluster baseline needs neighbour
//! rings ("bordering" and "non-bordering" neighbours in the paper's
//! terminology), which are provided by [`CellGrid::ring`] and
//! [`CellGrid::cluster`].

use serde::{Deserialize, Serialize};
use std::collections::HashSet;

/// A point in the 2-D plane, in metres.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Point {
    /// X coordinate in metres.
    pub x: f64,
    /// Y coordinate in metres.
    pub y: f64,
}

impl Point {
    /// Construct a point.
    #[must_use]
    pub fn new(x: f64, y: f64) -> Self {
        Self { x, y }
    }

    /// Euclidean distance to another point.
    #[must_use]
    pub fn distance(&self, other: &Point) -> f64 {
        ((self.x - other.x).powi(2) + (self.y - other.y).powi(2)).sqrt()
    }

    /// Angle (degrees, in `(-180, 180]`) of the vector from `self` to
    /// `other`, measured counter-clockwise from the positive x axis.
    #[must_use]
    pub fn bearing_to(&self, other: &Point) -> f64 {
        let dy = other.y - self.y;
        let dx = other.x - self.x;
        dy.atan2(dx).to_degrees()
    }

    /// Translate by `(dx, dy)`.
    #[must_use]
    pub fn translated(&self, dx: f64, dy: f64) -> Self {
        Self::new(self.x + dx, self.y + dy)
    }
}

/// Dense index of a cell within a [`CellGrid`]: its position in the
/// grid's sorted [`CellGrid::cells`] order.
///
/// The simulator stores per-cell state (base stations) in flat `Vec`s
/// indexed by `CellIdx`, so the hot paths never hash a [`CellId`]; the
/// `CellId ↔ CellIdx` mapping is fixed at grid construction
/// ([`CellGrid::index_of`]) and iteration in index order is deterministic
/// by construction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct CellIdx(pub u32);

impl CellIdx {
    /// The index as a `usize`, for direct slice indexing.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for CellIdx {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "cell#{}", self.0)
    }
}

/// Axial coordinates of a hexagonal cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct CellId {
    /// Axial q coordinate (column).
    pub q: i32,
    /// Axial r coordinate (row).
    pub r: i32,
}

impl CellId {
    /// The cell at axial coordinates `(q, r)`.
    #[must_use]
    pub const fn new(q: i32, r: i32) -> Self {
        Self { q, r }
    }

    /// The origin cell `(0, 0)`.
    #[must_use]
    pub const fn origin() -> Self {
        Self { q: 0, r: 0 }
    }

    /// The six axial direction offsets, counter-clockwise starting east.
    pub const DIRECTIONS: [(i32, i32); 6] = [(1, 0), (1, -1), (0, -1), (-1, 0), (-1, 1), (0, 1)];

    /// The six direct neighbours of this cell.
    #[must_use]
    pub fn neighbors(&self) -> [CellId; 6] {
        let mut out = [*self; 6];
        for (i, (dq, dr)) in Self::DIRECTIONS.iter().enumerate() {
            out[i] = CellId::new(self.q + dq, self.r + dr);
        }
        out
    }

    /// Hex (lattice) distance to another cell.
    #[must_use]
    pub fn distance(&self, other: &CellId) -> u32 {
        let dq = (self.q - other.q).abs();
        let dr = (self.r - other.r).abs();
        let ds = (self.q + self.r - other.q - other.r).abs();
        ((dq + dr + ds) / 2) as u32
    }

    /// `true` if `other` shares an edge with this cell.
    #[must_use]
    pub fn is_adjacent(&self, other: &CellId) -> bool {
        self.distance(other) == 1
    }
}

impl std::fmt::Display for CellId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "cell({}, {})", self.q, self.r)
    }
}

/// A finite hexagonal cell layout centred on [`CellId::origin`].
///
/// The grid is a "hexagon of hexagons": all cells within `radius_cells` hex
/// steps of the origin.  `radius_cells = 0` is the single-cell layout used
/// by the paper's experiments.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CellGrid {
    radius_cells: u32,
    cell_radius_m: f64,
    cells: Vec<CellId>,
}

impl CellGrid {
    /// Build a grid of all cells within `radius_cells` hops of the origin,
    /// each with a centre-to-corner radius of `cell_radius_m` metres.
    #[must_use]
    pub fn new(radius_cells: u32, cell_radius_m: f64) -> Self {
        let cell_radius_m = Self::effective_radius(cell_radius_m);
        let r = radius_cells as i32;
        let mut cells = Vec::new();
        for q in -r..=r {
            let r_lo = (-r).max(-q - r);
            let r_hi = r.min(-q + r);
            for rr in r_lo..=r_hi {
                cells.push(CellId::new(q, rr));
            }
        }
        cells.sort();
        Self {
            radius_cells,
            cell_radius_m,
            cells,
        }
    }

    /// The single-cell layout used by the paper's evaluation.
    #[must_use]
    pub fn single_cell(cell_radius_m: f64) -> Self {
        Self::new(0, cell_radius_m)
    }

    /// The cell radius [`CellGrid::new`] actually uses for a requested
    /// radius: non-positive (or NaN) requests fall back to 500 m.  Exposed
    /// so callers that compare a configuration against an existing grid
    /// (e.g. `Simulator::reset`) apply the identical clamp.
    #[must_use]
    pub fn effective_radius(cell_radius_m: f64) -> f64 {
        if cell_radius_m > 0.0 {
            cell_radius_m
        } else {
            500.0
        }
    }

    /// All cells of the grid, sorted.
    #[must_use]
    pub fn cells(&self) -> &[CellId] {
        &self.cells
    }

    /// Number of cells.
    #[must_use]
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// `true` if the grid has no cells (never happens via the constructor).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// Cell radius (centre to corner) in metres.
    #[must_use]
    pub fn cell_radius_m(&self) -> f64 {
        self.cell_radius_m
    }

    /// Grid radius in cells.
    #[must_use]
    pub fn radius_cells(&self) -> u32 {
        self.radius_cells
    }

    /// `true` if `cell` belongs to the grid.
    #[must_use]
    pub fn contains(&self, cell: &CellId) -> bool {
        cell.distance(&CellId::origin()) <= self.radius_cells
    }

    /// The dense index of `cell` in [`CellGrid::cells`] order, or `None`
    /// when the cell is outside the grid.  `cells()` is sorted, so this is
    /// a binary search — no hashing, no allocation.
    #[must_use]
    pub fn index_of(&self, cell: &CellId) -> Option<CellIdx> {
        self.cells
            .binary_search(cell)
            .ok()
            .map(|i| CellIdx(i as u32))
    }

    /// The cell at dense index `idx`.
    ///
    /// # Panics
    /// Panics when `idx` is out of range for this grid.
    #[must_use]
    pub fn cell_id(&self, idx: CellIdx) -> CellId {
        self.cells[idx.index()]
    }

    /// Cartesian position of a cell's centre (pointy-top hex layout).
    #[must_use]
    pub fn center_of(&self, cell: &CellId) -> Point {
        let size = self.cell_radius_m;
        let x = size * 3f64.sqrt() * (cell.q as f64 + cell.r as f64 / 2.0);
        let y = size * 1.5 * cell.r as f64;
        Point::new(x, y)
    }

    /// The cell whose centre is nearest to a Cartesian position (restricted
    /// to cells of the grid).
    #[must_use]
    pub fn cell_at(&self, p: &Point) -> CellId {
        let mut best = CellId::origin();
        let mut best_d = f64::INFINITY;
        for c in &self.cells {
            let d = self.center_of(c).distance(p);
            if d < best_d {
                best_d = d;
                best = *c;
            }
        }
        best
    }

    /// All grid cells exactly `distance` hops from `center`.
    #[must_use]
    pub fn ring(&self, center: &CellId, distance: u32) -> Vec<CellId> {
        self.cells
            .iter()
            .copied()
            .filter(|c| c.distance(center) == distance)
            .collect()
    }

    /// All grid cells within `distance` hops of `center` (inclusive), i.e. a
    /// shadow-cluster footprint.  The centre cell itself is included.
    #[must_use]
    pub fn cluster(&self, center: &CellId, distance: u32) -> Vec<CellId> {
        self.cells
            .iter()
            .copied()
            .filter(|c| c.distance(center) <= distance)
            .collect()
    }

    /// The bordering neighbours of `center` that exist in the grid
    /// (the paper's "bordering neighbor" cells).
    #[must_use]
    pub fn bordering_neighbors(&self, center: &CellId) -> Vec<CellId> {
        let exist: HashSet<CellId> = self.cells.iter().copied().collect();
        center
            .neighbors()
            .into_iter()
            .filter(|c| exist.contains(c))
            .collect()
    }

    /// The neighbour cell a user moving from `from_cell` with heading
    /// `heading_deg` (counter-clockwise from +x) is most likely to enter
    /// next, or `None` if that neighbour is outside the grid.
    #[must_use]
    pub fn next_cell_along(&self, from_cell: &CellId, heading_deg: f64) -> Option<CellId> {
        let from_center = self.center_of(from_cell);
        let mut best: Option<(f64, CellId)> = None;
        for n in from_cell.neighbors() {
            if !self.contains(&n) {
                continue;
            }
            let bearing = from_center.bearing_to(&self.center_of(&n));
            let diff = angle_difference(heading_deg, bearing).abs();
            match best {
                Some((d, _)) if d <= diff => {}
                _ => best = Some((diff, n)),
            }
        }
        best.map(|(_, c)| c)
    }
}

impl Default for CellGrid {
    fn default() -> Self {
        Self::single_cell(500.0)
    }
}

/// Signed smallest difference `a - b` between two angles in degrees,
/// normalised into `(-180, 180]`.
#[must_use]
pub fn angle_difference(a: f64, b: f64) -> f64 {
    normalize_angle(a - b)
}

/// Normalise an angle in degrees into `(-180, 180]`.
#[must_use]
pub fn normalize_angle(mut deg: f64) -> f64 {
    if !deg.is_finite() {
        return 0.0;
    }
    deg %= 360.0;
    if deg > 180.0 {
        deg -= 360.0;
    } else if deg <= -180.0 {
        deg += 360.0;
    }
    deg
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn point_distance_and_bearing() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(3.0, 4.0);
        assert!((a.distance(&b) - 5.0).abs() < 1e-12);
        let east = Point::new(10.0, 0.0);
        let north = Point::new(0.0, 10.0);
        assert!((a.bearing_to(&east) - 0.0).abs() < 1e-12);
        assert!((a.bearing_to(&north) - 90.0).abs() < 1e-12);
        let c = a.translated(1.0, -2.0);
        assert_eq!(c, Point::new(1.0, -2.0));
    }

    #[test]
    fn cellid_neighbors_are_adjacent() {
        let c = CellId::new(2, -1);
        for n in c.neighbors() {
            assert_eq!(c.distance(&n), 1);
            assert!(c.is_adjacent(&n));
        }
        assert!(!c.is_adjacent(&c));
    }

    #[test]
    fn hex_distance_examples() {
        let o = CellId::origin();
        assert_eq!(o.distance(&o), 0);
        assert_eq!(o.distance(&CellId::new(3, 0)), 3);
        assert_eq!(o.distance(&CellId::new(2, -1)), 2);
        assert_eq!(o.distance(&CellId::new(-2, 2)), 2);
        // symmetry
        let a = CellId::new(1, -3);
        let b = CellId::new(-2, 2);
        assert_eq!(a.distance(&b), b.distance(&a));
    }

    #[test]
    fn grid_sizes_follow_centered_hexagonal_numbers() {
        // 1, 7, 19, 37 cells for radius 0..3
        assert_eq!(CellGrid::new(0, 500.0).len(), 1);
        assert_eq!(CellGrid::new(1, 500.0).len(), 7);
        assert_eq!(CellGrid::new(2, 500.0).len(), 19);
        assert_eq!(CellGrid::new(3, 500.0).len(), 37);
    }

    #[test]
    fn single_cell_grid_contains_only_origin() {
        let g = CellGrid::single_cell(500.0);
        assert_eq!(g.cells(), &[CellId::origin()]);
        assert!(g.contains(&CellId::origin()));
        assert!(!g.contains(&CellId::new(1, 0)));
        assert!(!g.is_empty());
    }

    #[test]
    fn centers_are_separated_by_sqrt3_radius() {
        let g = CellGrid::new(1, 500.0);
        let o = g.center_of(&CellId::origin());
        for n in CellId::origin().neighbors() {
            let d = o.distance(&g.center_of(&n));
            assert!((d - 500.0 * 3f64.sqrt()).abs() < 1e-6, "{d}");
        }
    }

    #[test]
    fn cell_at_returns_nearest_center() {
        let g = CellGrid::new(2, 500.0);
        for c in g.cells() {
            let center = g.center_of(c);
            assert_eq!(g.cell_at(&center), *c);
            // a point slightly off-centre still maps to the same cell
            let off = center.translated(50.0, -30.0);
            assert_eq!(g.cell_at(&off), *c);
        }
    }

    #[test]
    fn rings_and_clusters() {
        let g = CellGrid::new(2, 500.0);
        assert_eq!(g.ring(&CellId::origin(), 0), vec![CellId::origin()]);
        assert_eq!(g.ring(&CellId::origin(), 1).len(), 6);
        assert_eq!(g.ring(&CellId::origin(), 2).len(), 12);
        assert_eq!(g.cluster(&CellId::origin(), 1).len(), 7);
        assert_eq!(g.cluster(&CellId::origin(), 2).len(), 19);
        // cluster around an edge cell is clipped by the grid boundary
        let edge = CellId::new(2, 0);
        assert!(g.cluster(&edge, 1).len() < 7);
    }

    #[test]
    fn bordering_neighbors_clipped_at_edge() {
        let g = CellGrid::new(1, 500.0);
        assert_eq!(g.bordering_neighbors(&CellId::origin()).len(), 6);
        let edge = CellId::new(1, 0);
        let n = g.bordering_neighbors(&edge);
        assert!(n.len() < 6);
        assert!(n.contains(&CellId::origin()));
    }

    #[test]
    fn next_cell_along_heading() {
        let g = CellGrid::new(1, 500.0);
        // Heading due east from the origin should enter cell (1, 0).
        let next = g.next_cell_along(&CellId::origin(), 0.0).unwrap();
        assert_eq!(next, CellId::new(1, 0));
        // Heading due west should enter (-1, 0).
        let next = g.next_cell_along(&CellId::origin(), 180.0).unwrap();
        assert_eq!(next, CellId::new(-1, 0));
        // From an eastern edge cell heading east there is no grid cell.
        assert!(
            g.next_cell_along(&CellId::new(1, 0), 0.0).is_none()
                || g.next_cell_along(&CellId::new(1, 0), 0.0).is_some()
        );
        // Single-cell grid has no neighbours at all.
        let single = CellGrid::single_cell(500.0);
        assert!(single.next_cell_along(&CellId::origin(), 0.0).is_none());
    }

    #[test]
    fn angle_normalisation() {
        assert_eq!(normalize_angle(0.0), 0.0);
        assert_eq!(normalize_angle(190.0), -170.0);
        assert_eq!(normalize_angle(-190.0), 170.0);
        assert_eq!(normalize_angle(360.0), 0.0);
        assert_eq!(normalize_angle(540.0), 180.0);
        assert_eq!(normalize_angle(f64::NAN), 0.0);
        assert!((angle_difference(170.0, -170.0) - (-20.0)).abs() < 1e-12);
        assert!((angle_difference(-170.0, 170.0) - 20.0).abs() < 1e-12);
    }

    #[test]
    fn dense_indices_round_trip_and_follow_sorted_order() {
        let g = CellGrid::new(2, 500.0);
        for (i, c) in g.cells().iter().enumerate() {
            let idx = g.index_of(c).unwrap();
            assert_eq!(idx, CellIdx(i as u32));
            assert_eq!(idx.index(), i);
            assert_eq!(g.cell_id(idx), *c);
        }
        // Outside cells have no index.
        assert!(g.index_of(&CellId::new(3, 0)).is_none());
        assert_eq!(CellIdx(4).to_string(), "cell#4");
    }

    #[test]
    fn default_grid_is_single_cell() {
        assert_eq!(CellGrid::default().len(), 1);
    }

    #[test]
    fn zero_cell_radius_falls_back_to_default() {
        let g = CellGrid::new(1, 0.0);
        assert!(g.cell_radius_m() > 0.0);
    }
}
