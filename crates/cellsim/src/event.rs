//! The discrete-event queue.
//!
//! Events are ordered by time (earliest first); ties are broken by a
//! monotonically increasing sequence number so insertion order is preserved
//! and the simulation stays deterministic.

use crate::geometry::CellId;
use crate::traffic::CallRequest;
use crate::SimTime;
use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// What happens when an event fires.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[non_exhaustive]
pub enum EventKind {
    /// A new call request arrives in `cell`.
    Arrival {
        /// The cell where the request is made.
        cell: CellId,
        /// The request itself.
        request: CallRequest,
    },
    /// An admitted connection completes normally.
    Departure {
        /// The cell currently serving the connection.
        cell: CellId,
        /// The connection id.
        connection_id: u64,
    },
    /// An on-going connection attempts to hand off between two cells.
    Handoff {
        /// The cell the connection is leaving.
        from: CellId,
        /// The cell the connection wants to enter.
        to: CellId,
        /// The connection id.
        connection_id: u64,
    },
    /// Periodic mobility update (multi-cell scenarios).
    MobilityTick,
    /// End of the simulation.
    EndOfSimulation,
}

/// A timestamped event.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Event {
    /// Firing time in seconds.
    pub time: SimTime,
    /// Insertion sequence number (used for deterministic tie-breaking).
    pub sequence: u64,
    /// What to do.
    pub kind: EventKind,
}

impl Eq for Event {}

impl Ord for Event {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap, so invert: earliest time = greatest.
        other
            .time
            .total_cmp(&self.time)
            .then_with(|| other.sequence.cmp(&self.sequence))
    }
}

impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// A time-ordered event queue.
#[derive(Debug, Clone, Default)]
pub struct EventQueue {
    heap: BinaryHeap<Event>,
    next_sequence: u64,
}

impl EventQueue {
    /// An empty queue.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedule `kind` at `time` (non-finite or negative times are clamped
    /// to zero).
    pub fn schedule(&mut self, time: SimTime, kind: EventKind) {
        let time = if time.is_finite() { time.max(0.0) } else { 0.0 };
        let ev = Event {
            time,
            sequence: self.next_sequence,
            kind,
        };
        self.next_sequence += 1;
        self.heap.push(ev);
    }

    /// Remove and return the earliest event.
    pub fn pop(&mut self) -> Option<Event> {
        self.heap.pop()
    }

    /// Peek at the earliest event without removing it.
    #[must_use]
    pub fn peek(&self) -> Option<&Event> {
        self.heap.peek()
    }

    /// Number of pending events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// `true` when no events are pending.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Remove every pending event.
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traffic::ServiceClass;

    fn arrival(t: SimTime, id: u64) -> EventKind {
        EventKind::Arrival {
            cell: CellId::origin(),
            request: CallRequest {
                id,
                arrival_time: t,
                class: ServiceClass::Text,
                bandwidth: 1,
                holding_time: 10.0,
                speed_kmh: 10.0,
                angle_deg: 0.0,
                is_handoff: false,
            },
        }
    }

    #[test]
    fn events_pop_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(10.0, EventKind::MobilityTick);
        q.schedule(5.0, EventKind::EndOfSimulation);
        q.schedule(7.5, arrival(7.5, 1));
        assert_eq!(q.len(), 3);
        assert_eq!(q.pop().unwrap().time, 5.0);
        assert_eq!(q.pop().unwrap().time, 7.5);
        assert_eq!(q.pop().unwrap().time, 10.0);
        assert!(q.pop().is_none());
    }

    #[test]
    fn ties_are_broken_by_insertion_order() {
        let mut q = EventQueue::new();
        q.schedule(1.0, arrival(1.0, 100));
        q.schedule(1.0, arrival(1.0, 200));
        q.schedule(1.0, arrival(1.0, 300));
        let ids: Vec<u64> = (0..3)
            .map(|_| match q.pop().unwrap().kind {
                EventKind::Arrival { request, .. } => request.id,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(ids, vec![100, 200, 300]);
    }

    #[test]
    fn peek_does_not_remove() {
        let mut q = EventQueue::new();
        q.schedule(3.0, EventKind::MobilityTick);
        assert_eq!(q.peek().unwrap().time, 3.0);
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
    }

    #[test]
    fn bad_times_are_clamped() {
        let mut q = EventQueue::new();
        q.schedule(-5.0, EventKind::MobilityTick);
        q.schedule(f64::NAN, EventKind::EndOfSimulation);
        assert_eq!(q.pop().unwrap().time, 0.0);
        assert_eq!(q.pop().unwrap().time, 0.0);
    }

    #[test]
    fn clear_empties_queue() {
        let mut q = EventQueue::new();
        q.schedule(1.0, EventKind::MobilityTick);
        q.schedule(2.0, EventKind::MobilityTick);
        q.clear();
        assert!(q.is_empty());
    }

    #[test]
    fn handoff_and_departure_events_carry_cells() {
        let mut q = EventQueue::new();
        q.schedule(
            4.0,
            EventKind::Handoff {
                from: CellId::new(0, 0),
                to: CellId::new(1, 0),
                connection_id: 9,
            },
        );
        q.schedule(
            2.0,
            EventKind::Departure {
                cell: CellId::origin(),
                connection_id: 3,
            },
        );
        match q.pop().unwrap().kind {
            EventKind::Departure { connection_id, .. } => assert_eq!(connection_id, 3),
            other => panic!("unexpected {other:?}"),
        }
        match q.pop().unwrap().kind {
            EventKind::Handoff {
                from,
                to,
                connection_id,
            } => {
                assert_eq!(from, CellId::new(0, 0));
                assert_eq!(to, CellId::new(1, 0));
                assert_eq!(connection_id, 9);
            }
            other => panic!("unexpected {other:?}"),
        }
    }
}
