//! The discrete-event queue.
//!
//! Events are ordered by time (earliest first); ties are broken by a
//! monotonically increasing sequence number so insertion order is preserved
//! and the simulation stays deterministic.
//!
//! Events are small `Copy` values: an arrival references its
//! [`crate::traffic::CallRequest`] by index into the run's pre-generated
//! arrival buffer instead of owning a clone, and departures/handoffs carry
//! a dense [`CellIdx`] plus the connection's user [`SlotId`] handle.  The
//! queue's backing heap keeps its capacity across [`EventQueue::clear`], so
//! a warmed-up simulator schedules and pops events without allocating.

use crate::geometry::CellIdx;
use crate::slab::SlotId;
use crate::SimTime;
use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// What happens when an event fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
#[non_exhaustive]
pub enum EventKind {
    /// A new call request arrives in `cell`.
    Arrival {
        /// Dense index of the cell where the request is made.
        cell: CellIdx,
        /// Index of the request in the run's arrival buffer.
        call: u32,
    },
    /// An admitted connection completes normally.
    Departure {
        /// Dense index of the cell scheduled to serve the connection at
        /// completion time (a stale index after an intervening handoff —
        /// the release simply misses and the event is a no-op).
        cell: CellIdx,
        /// The connection id.
        connection_id: u64,
        /// The connection's user-state slot (`None` in single-cell runs,
        /// which track no user kinematics).
        user: Option<SlotId>,
    },
    /// An on-going connection attempts to hand off between two cells.
    Handoff {
        /// Dense index of the cell the connection is leaving.
        from: CellIdx,
        /// Dense index of the cell the connection wants to enter.
        to: CellIdx,
        /// The connection id.
        connection_id: u64,
        /// The connection's user-state slot.
        user: SlotId,
    },
    /// Periodic mobility update (multi-cell scenarios).
    MobilityTick,
    /// End of the simulation.
    EndOfSimulation,
}

/// A timestamped event.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Event {
    /// Firing time in seconds.
    pub time: SimTime,
    /// Insertion sequence number (used for deterministic tie-breaking).
    pub sequence: u64,
    /// What to do.
    pub kind: EventKind,
}

impl Eq for Event {}

impl Ord for Event {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap, so invert: earliest time = greatest.
        other
            .time
            .total_cmp(&self.time)
            .then_with(|| other.sequence.cmp(&self.sequence))
    }
}

impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// A time-ordered event queue.
#[derive(Debug, Clone, Default)]
pub struct EventQueue {
    heap: BinaryHeap<Event>,
    next_sequence: u64,
}

impl EventQueue {
    /// An empty queue.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedule `kind` at `time` (non-finite or negative times are clamped
    /// to zero).
    pub fn schedule(&mut self, time: SimTime, kind: EventKind) {
        let time = if time.is_finite() { time.max(0.0) } else { 0.0 };
        let ev = Event {
            time,
            sequence: self.next_sequence,
            kind,
        };
        self.next_sequence += 1;
        self.heap.push(ev);
    }

    /// Remove and return the earliest event.
    pub fn pop(&mut self) -> Option<Event> {
        self.heap.pop()
    }

    /// Peek at the earliest event without removing it.
    #[must_use]
    pub fn peek(&self) -> Option<&Event> {
        self.heap.peek()
    }

    /// Number of pending events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// `true` when no events are pending.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Ensure room for at least `additional` more events without further
    /// growth reallocations.
    pub fn reserve(&mut self, additional: usize) {
        self.heap.reserve(additional);
    }

    /// Capacity of the backing heap.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.heap.capacity()
    }

    /// Remove every pending event, keeping the backing storage, and reset
    /// the sequence counter.
    pub fn clear(&mut self) {
        self.heap.clear();
        self.next_sequence = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn arrival(id: u32) -> EventKind {
        EventKind::Arrival {
            cell: CellIdx(0),
            call: id,
        }
    }

    #[test]
    fn events_pop_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(10.0, EventKind::MobilityTick);
        q.schedule(5.0, EventKind::EndOfSimulation);
        q.schedule(7.5, arrival(1));
        assert_eq!(q.len(), 3);
        assert_eq!(q.pop().unwrap().time, 5.0);
        assert_eq!(q.pop().unwrap().time, 7.5);
        assert_eq!(q.pop().unwrap().time, 10.0);
        assert!(q.pop().is_none());
    }

    #[test]
    fn ties_are_broken_by_insertion_order() {
        let mut q = EventQueue::new();
        q.schedule(1.0, arrival(100));
        q.schedule(1.0, arrival(200));
        q.schedule(1.0, arrival(300));
        let ids: Vec<u32> = (0..3)
            .map(|_| match q.pop().unwrap().kind {
                EventKind::Arrival { call, .. } => call,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(ids, vec![100, 200, 300]);
    }

    #[test]
    fn peek_does_not_remove() {
        let mut q = EventQueue::new();
        q.schedule(3.0, EventKind::MobilityTick);
        assert_eq!(q.peek().unwrap().time, 3.0);
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
    }

    #[test]
    fn bad_times_are_clamped() {
        let mut q = EventQueue::new();
        q.schedule(-5.0, EventKind::MobilityTick);
        q.schedule(f64::NAN, EventKind::EndOfSimulation);
        assert_eq!(q.pop().unwrap().time, 0.0);
        assert_eq!(q.pop().unwrap().time, 0.0);
    }

    #[test]
    fn clear_empties_queue_and_keeps_capacity() {
        let mut q = EventQueue::new();
        for i in 0..64 {
            q.schedule(f64::from(i), EventKind::MobilityTick);
        }
        let cap = q.capacity();
        q.clear();
        assert!(q.is_empty());
        assert!(q.capacity() >= cap, "clear must keep the backing storage");
        // Sequence numbers restart, so replays are bit-identical.
        q.schedule(1.0, arrival(1));
        assert_eq!(q.pop().unwrap().sequence, 0);
    }

    #[test]
    fn events_are_small_copy_values() {
        // The whole point of indexing arrivals instead of owning them: an
        // event moves a few machine words through the heap, not a cloned
        // CallRequest.
        assert!(
            std::mem::size_of::<Event>() <= 48,
            "Event grew to {} bytes",
            std::mem::size_of::<Event>()
        );
        let e = Event {
            time: 4.0,
            sequence: 9,
            kind: EventKind::Handoff {
                from: CellIdx(0),
                to: CellIdx(1),
                connection_id: 9,
                user: {
                    let mut slab = crate::slab::Slab::new();
                    slab.insert(())
                },
            },
        };
        let copy = e; // Copy, not move
        assert_eq!(copy, e);
    }

    #[test]
    fn handoff_and_departure_events_carry_cells() {
        let mut q = EventQueue::new();
        let mut slab = crate::slab::Slab::new();
        let slot = slab.insert(());
        q.schedule(
            4.0,
            EventKind::Handoff {
                from: CellIdx(0),
                to: CellIdx(1),
                connection_id: 9,
                user: slot,
            },
        );
        q.schedule(
            2.0,
            EventKind::Departure {
                cell: CellIdx(0),
                connection_id: 3,
                user: None,
            },
        );
        match q.pop().unwrap().kind {
            EventKind::Departure { connection_id, .. } => assert_eq!(connection_id, 3),
            other => panic!("unexpected {other:?}"),
        }
        match q.pop().unwrap().kind {
            EventKind::Handoff {
                from,
                to,
                connection_id,
                ..
            } => {
                assert_eq!(from, CellIdx(0));
                assert_eq!(to, CellIdx(1));
                assert_eq!(connection_id, 9);
            }
            other => panic!("unexpected {other:?}"),
        }
    }
}
