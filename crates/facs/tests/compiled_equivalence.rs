//! The compile/execute contract for the paper's controllers: the compiled
//! hot path must be **bit-identical** to the string-keyed interpreted
//! engine across a dense input grid, and the LUT backend must stay within
//! its measured error bound (`< 1e-3` at the default resolution).

use facs::{DistanceFlc1, Flc1, Flc2, PaperParams};

/// Compare two decision paths bit for bit and report the first divergence.
fn assert_bit_identical(a: f64, b: f64, context: &str) {
    assert_eq!(
        a.to_bits(),
        b.to_bits(),
        "compiled/interpreted divergence at {context}: {a:?} vs {b:?}"
    );
}

#[test]
fn flc1_compiled_matches_interpreted_over_dense_grid() {
    let flc1 = Flc1::paper_default().unwrap();
    let engine = flc1.engine();
    let mut checked = 0usize;
    for speed_step in 0..=12 {
        let speed = f64::from(speed_step) * 10.0;
        for angle_step in 0..=24 {
            let angle = -180.0 + f64::from(angle_step) * 15.0;
            for sr_step in 0..=10 {
                let sr = f64::from(sr_step);
                // The controller's compiled path (clamped to [0, 1])...
                let compiled = flc1.correction_value(speed, angle, sr);
                // ...must reproduce the interpreted reference bit for bit.
                let interpreted = engine
                    .infer(&[speed, angle, sr])
                    .unwrap()
                    .crisp_or("Cv", 0.5)
                    .clamp(0.0, 1.0);
                assert_bit_identical(
                    compiled,
                    interpreted,
                    &format!("Sp={speed} An={angle} Sr={sr}"),
                );
                checked += 1;
            }
        }
    }
    assert_eq!(checked, 13 * 25 * 11);
}

#[test]
fn distance_flc1_compiled_matches_interpreted_over_dense_grid() {
    let flc1 = DistanceFlc1::paper_default().unwrap();
    let engine = flc1.engine();
    for speed_step in 0..=6 {
        let speed = f64::from(speed_step) * 20.0;
        for angle_step in 0..=12 {
            let angle = -180.0 + f64::from(angle_step) * 30.0;
            for di_step in 0..=10 {
                let di = f64::from(di_step) * 100.0;
                let compiled = flc1.correction_value(speed, angle, di);
                let interpreted = engine
                    .infer(&[speed, angle, di])
                    .unwrap()
                    .crisp_or("Cv", 0.5)
                    .clamp(0.0, 1.0);
                assert_bit_identical(
                    compiled,
                    interpreted,
                    &format!("Sp={speed} An={angle} Di={di}"),
                );
            }
        }
    }
}

#[test]
fn flc2_compiled_matches_interpreted_over_dense_grid() {
    let flc2 = Flc2::paper_default().unwrap();
    let engine = flc2.engine();
    for cv_step in 0..=20 {
        let cv = f64::from(cv_step) * 0.05;
        for rq in [1.0, 2.5, 5.0, 7.5, 10.0] {
            for cs_step in 0..=20 {
                let cs = f64::from(cs_step) * 2.0;
                let compiled = flc2.decision_value(cv, rq, cs);
                let interpreted = engine
                    .infer(&[cv, rq, cs])
                    .unwrap()
                    .crisp_or("AR", 0.0)
                    .clamp(-1.0, 1.0);
                assert_bit_identical(compiled, interpreted, &format!("Cv={cv} Rq={rq} Cs={cs}"));
            }
        }
    }
}

#[test]
fn flc2_compiled_matches_interpreted_with_custom_capacity() {
    let flc2 = Flc2::with_capacity(160.0).unwrap();
    let engine = flc2.engine();
    for cv in [0.0, 0.31, 0.5, 0.77, 1.0] {
        for rq in [1.0, 5.0, 10.0] {
            for cs in [0.0, 40.0, 80.0, 120.0, 160.0] {
                let compiled = flc2.decision_value(cv, rq, cs);
                let interpreted = engine
                    .infer(&[cv, rq, cs])
                    .unwrap()
                    .crisp_or("AR", 0.0)
                    .clamp(-1.0, 1.0);
                assert_bit_identical(compiled, interpreted, &format!("Cv={cv} Rq={rq} Cs={cs}"));
            }
        }
    }
}

#[test]
fn lut_error_is_bounded() {
    // The acceptance bar of the LUT policy compiler: at the default
    // resolution the measured bilinear error on the decision value must
    // stay below 1e-3 (the A/R universe spans [-1, 1], so this is a 0.05 %
    // full-scale bound).
    let flc2 = Flc2::paper_default().unwrap();
    let lut = flc2.compile_lut().unwrap();
    assert!(
        lut.max_error() < 1e-3,
        "measured LUT error {} exceeds 1e-3 at the default resolution \
         (base {:?}, target {})",
        lut.max_error(),
        facs::DEFAULT_LUT_BASE_RESOLUTION,
        facs::DEFAULT_LUT_TARGET_ERROR
    );

    // And the measured bound is honest: probe a dense off-grid lattice and
    // confirm no deviation beats it (with a whisker of float slack).
    let mut worst = 0.0f64;
    for cv_step in 0..=97 {
        let cv = f64::from(cv_step) / 97.0;
        for rq in [1.0, 5.0, 10.0] {
            for cs_step in 0..=83 {
                let cs = 40.0 * f64::from(cs_step) / 83.0;
                let exact = flc2.decision_value(cv, rq, cs);
                let approx = lut.decision_value(cv, rq, cs);
                worst = worst.max((exact - approx).abs());
            }
        }
    }
    // The measured bound comes from probe lattices (3x3 per base cell,
    // sub-cell midpoints per patch), so a dense sweep may land marginally
    // above it between probes — but never by more than a small factor, and
    // never above the 1e-3 acceptance bar.
    assert!(
        worst <= 2.0 * lut.max_error() + 1e-9,
        "observed error {worst} far exceeds the measured bound {}",
        lut.max_error()
    );
    assert!(
        worst < 1e-3,
        "dense-sweep error {worst} breaks the 1e-3 bar"
    );
}

#[test]
fn lut_falls_back_to_exact_for_untabulated_classes() {
    let flc2 = Flc2::paper_default().unwrap();
    let lut = flc2.compile_lut_with_resolution((65, 65)).unwrap();
    assert_eq!(lut.tabulated_classes(), vec![1.0, 5.0, 10.0]);
    // 3.3 BU is no paper class: the LUT must defer to the compiled engine.
    let exact = flc2.decision_value(0.6, 3.3, 17.0);
    assert_bit_identical(lut.decision_value(0.6, 3.3, 17.0), exact, "Rq=3.3");
}

#[test]
fn flc1_paper_universes_are_fully_interned() {
    // The compiled engine must have interned the paper's exact shape.
    let flc1 = Flc1::paper_default().unwrap();
    let c = flc1.compiled();
    assert_eq!(c.input_count(), 3);
    assert_eq!(c.output_count(), 1);
    assert_eq!(c.rule_count(), 63);
    let sp = c.input_id("Sp").unwrap();
    assert_eq!(c.input_bounds(sp), (0.0, PaperParams::SPEED_MAX_KMH));
    let an = c.input_id("An").unwrap();
    assert_eq!(
        c.input_bounds(an),
        (-PaperParams::ANGLE_MAX_DEG, PaperParams::ANGLE_MAX_DEG)
    );
    assert!(c.input_term_id(an, "St").is_some());
    assert!(c.output_id("Cv").is_some());
}
