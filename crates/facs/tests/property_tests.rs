//! Property-based tests for the FACS / FACS-P controllers: invariants that
//! must hold for *every* request and every cell state, not just the paper's
//! operating points.

use cellsim::geometry::{CellId, Point};
use cellsim::sim::AdmissionRequest;
use cellsim::station::BaseStation;
use cellsim::traffic::ServiceClass;
use facs::{FacsController, FacsPController, Flc1, Flc2, PriorityPolicy};
use proptest::prelude::*;

fn class_from_index(i: usize) -> ServiceClass {
    ServiceClass::ALL[i % 3]
}

fn request(
    class: ServiceClass,
    speed: f64,
    angle: f64,
    distance: f64,
    is_handoff: bool,
) -> AdmissionRequest {
    AdmissionRequest {
        id: 1,
        cell: CellId::origin(),
        time: 0.0,
        class,
        bandwidth: class.paper_bandwidth(),
        holding_time: 120.0,
        speed_kmh: speed,
        angle_deg: angle,
        distance_m: Some(distance),
        is_handoff,
    }
}

/// Build a station with `occupied` BU split between one video block and
/// text fillers, so both RTC and NRTC are exercised.
fn station_with(occupied: u32) -> BaseStation {
    let occupied = occupied.min(40);
    let mut s = BaseStation::new(CellId::origin(), Point::default(), 40);
    let mut id = 0u64;
    let mut left = occupied;
    while left >= 10 {
        s.admit(id, ServiceClass::Video, 10, 0.0, 500.0, false)
            .unwrap();
        id += 1;
        left -= 10;
    }
    while left > 0 {
        s.admit(id, ServiceClass::Text, 1, 0.0, 500.0, false)
            .unwrap();
        id += 1;
        left -= 1;
    }
    s
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn flc1_output_is_always_a_valid_correction_value(
        speed in -50.0f64..300.0,
        angle in -720.0f64..720.0,
        sr in -5.0f64..20.0,
    ) {
        let flc1 = Flc1::paper_default().unwrap();
        let cv = flc1.correction_value(speed, angle, sr);
        prop_assert!((0.0..=1.0).contains(&cv));
    }

    #[test]
    fn flc2_output_is_always_a_valid_decision(
        cv in -1.0f64..2.0,
        rq in -5.0f64..20.0,
        cs in -10.0f64..80.0,
    ) {
        let flc2 = Flc2::paper_default().unwrap();
        let v = flc2.decision_value(cv, rq, cs);
        prop_assert!((-1.0..=1.0).contains(&v));
    }

    #[test]
    fn flc2_never_prefers_a_fuller_cell(
        cv in 0.0f64..=1.0,
        rq in 0.0f64..=10.0,
        cs in 0.0f64..=35.0,
        extra in 1.0f64..=5.0,
    ) {
        // More occupancy can never make the same request meaningfully more
        // attractive.  The bound is not zero because Table 2 itself is only
        // piecewise monotone in Cs: with a good correction value both
        // (Go, ·, Sa) and (Go, ·, Md) map to Accept, so as occupancy moves
        // from the Small term into the Middle term the Accept clip level
        // *rises* and the centroid can climb with it until the Full terms
        // take over.  An exhaustive grid search over (Cv, Rq, Cs, +5 BU)
        // puts the largest such rise at ~0.163, so 0.18 bounds the paper's
        // own table behaviour while still catching real regressions.
        let flc2 = Flc2::paper_default().unwrap();
        let emptier = flc2.decision_value(cv, rq, cs);
        let fuller = flc2.decision_value(cv, rq, (cs + extra).min(40.0));
        prop_assert!(fuller <= emptier + 0.18, "cv={cv} rq={rq} cs={cs}+{extra}: {fuller} > {emptier}");
    }

    #[test]
    fn decisions_are_bounded_and_consistent_for_both_controllers(
        class_idx in 0usize..3,
        speed in 0.0f64..=120.0,
        angle in -180.0f64..=180.0,
        distance in 0.0f64..=1000.0,
        occupied in 0u32..=40,
        is_handoff in proptest::bool::ANY,
    ) {
        let station = station_with(occupied);
        let req = request(class_from_index(class_idx), speed, angle, distance, is_handoff);

        let facs = FacsController::paper_default();
        let facsp = FacsPController::paper_default();
        for score in [facs.decision_value(&req, &station), facsp.decision_value(&req, &station)] {
            prop_assert!((-1.0..=1.0).contains(&score));
        }
        // The boolean decision must agree with the score/threshold contract.
        let mut facs = facs;
        let mut facsp = facsp;
        let d1 = cellsim::AdmissionController::decide(&mut facs, &req, &station);
        prop_assert_eq!(d1.accept, d1.score > facs.config().accept_threshold);
        let d2 = cellsim::AdmissionController::decide(&mut facsp, &req, &station);
        prop_assert_eq!(d2.accept, d2.score > facsp.config().accept_threshold);
    }

    #[test]
    fn facsp_handoff_is_never_scored_below_the_same_new_call(
        class_idx in 0usize..3,
        speed in 0.0f64..=120.0,
        angle in -180.0f64..=180.0,
        occupied in 0u32..=40,
    ) {
        // Priority of on-going connections: for an identical request and
        // cell state, flagging it as a handoff can only help (up to the
        // few-hundredths slack inherent in centroid defuzzification when
        // both counter states land on the same output term).
        let station = station_with(occupied);
        let facsp = FacsPController::paper_default();
        let class = class_from_index(class_idx);
        let new_call = request(class, speed, angle, 400.0, false);
        let handoff = request(class, speed, angle, 400.0, true);
        let s_new = facsp.decision_value(&new_call, &station);
        let s_handoff = facsp.decision_value(&handoff, &station);
        prop_assert!(s_handoff >= s_new - 0.05, "handoff {s_handoff} < new {s_new} at occupied {occupied}");
    }

    #[test]
    fn facsp_is_never_more_permissive_than_its_priority_disabled_variant_for_new_calls(
        class_idx in 0usize..3,
        speed in 0.0f64..=120.0,
        angle in -180.0f64..=180.0,
        occupied in 0u32..=40,
    ) {
        let station = station_with(occupied);
        let class = class_from_index(class_idx);
        let req = request(class, speed, angle, 400.0, false);
        let with_priority = FacsPController::paper_default();
        let without_priority = FacsPController::new(
            facs::FacsPConfig::paper_default().without_priority(),
        ).unwrap();
        let strict = with_priority.decision_value(&req, &station);
        let relaxed = without_priority.decision_value(&req, &station);
        // Same slack as above: within the "accept" plateau the inflated
        // counter state can raise the centroid slightly, but it must never
        // turn a rejected new call into an accepted one.
        prop_assert!(strict <= relaxed + 0.1, "priority made a new call easier: {strict} > {relaxed}");
        if relaxed <= 0.0 {
            prop_assert!(strict <= 0.0, "priority flipped a reject into an accept");
        }
    }

    #[test]
    fn angle_symmetry_holds_for_facsp_decisions(
        class_idx in 0usize..3,
        speed in 0.0f64..=120.0,
        angle in 0.0f64..=180.0,
        occupied in 0u32..=40,
    ) {
        let station = station_with(occupied);
        let class = class_from_index(class_idx);
        let facsp = FacsPController::paper_default();
        let left = facsp.decision_value(&request(class, speed, -angle, 400.0, false), &station);
        let right = facsp.decision_value(&request(class, speed, angle, 400.0, false), &station);
        prop_assert!((left - right).abs() < 1e-9);
    }

    #[test]
    fn effective_counter_state_is_always_within_capacity(
        occupied in 0u32..=40,
        is_handoff in proptest::bool::ANY,
        alpha in 0.0f64..=2.0,
        beta in 0.0f64..=2.0,
        delta in 0.0f64..=1.0,
    ) {
        let station = station_with(occupied);
        let policy = PriorityPolicy {
            rt_protection_weight: alpha,
            nrt_protection_weight: beta,
            handoff_discount: delta,
        }.sanitized();
        let cs = policy.effective_counter_state(&station, is_handoff);
        prop_assert!(cs >= 0.0);
        prop_assert!(cs <= f64::from(station.capacity()) + 1e-9);
        if is_handoff {
            prop_assert!(cs <= f64::from(station.occupied()) + 1e-9);
        } else {
            prop_assert!(cs >= f64::from(station.occupied()) - 1e-9);
        }
    }
}
