//! FLC1 — the first fuzzy logic controller of the FACS-P cascade.
//!
//! Inputs: user Speed (`Sp`, km/h), user Angle (`An`, degrees relative to
//! the direction toward the serving base station) and Service request
//! (`Sr`, bandwidth units).  Output: the Correction value (`Cv` ∈ [0, 1]),
//! a fuzzy estimate of how worthwhile it is to commit resources to the
//! user (it encodes how predictable the user's trajectory is and how well
//! the requested bandwidth fits that prediction).
//!
//! [`DistanceFlc1`] is the previous-work variant (used by the FACS
//! comparison controller): the third input is the user-to-station distance
//! instead of the service request.

use crate::frb1::{frb1_lookup, frb1_rules};
use crate::params::PaperParams;
use fuzzy::compile::{CompiledEngine, Scratch};
use fuzzy::engine::MamdaniEngine;
use fuzzy::rule::{Antecedent, Connective, Consequent, Rule};
use fuzzy::Result;
use std::cell::RefCell;

/// Compile an FLC engine and pin the crisp fallback reported when no rule
/// fires (the same value the string-keyed wrappers passed to `crisp_or`).
fn compile_with_default(engine: &MamdaniEngine, default: f64) -> Result<(CompiledEngine, Scratch)> {
    let mut compiled = engine.compile()?;
    let out = fuzzy::VarId::from_index(0);
    compiled.set_empty_default(out, default);
    let scratch = compiled.scratch();
    Ok((compiled, scratch))
}

/// The proposed system's FLC1: `(Sp, An, Sr) -> Cv`.
///
/// The string-keyed [`MamdaniEngine`] is kept for introspection and as the
/// bit-identical reference implementation; every
/// [`Flc1::correction_value`] call runs on the compiled, allocation-free
/// execute path.
#[derive(Debug, Clone)]
pub struct Flc1 {
    engine: MamdaniEngine,
    compiled: CompiledEngine,
    scratch: RefCell<Scratch>,
}

impl Flc1 {
    /// Build FLC1 with the paper's membership functions (Fig. 5) and the
    /// 63-rule FRB1 (Table 1).
    pub fn paper_default() -> Result<Self> {
        let mut engine = MamdaniEngine::builder()
            .input(PaperParams::speed_variable()?)
            .input(PaperParams::angle_variable()?)
            .input(PaperParams::service_request_variable()?)
            .output(PaperParams::correction_value_output()?)
            .build()?;
        for rule in frb1_rules()? {
            engine.add_rule(rule)?;
        }
        let (compiled, scratch) = compile_with_default(&engine, 0.5)?;
        Ok(Self {
            engine,
            compiled,
            scratch: RefCell::new(scratch),
        })
    }

    /// The underlying Mamdani engine (exposed for the ablation benches and
    /// as the interpreted reference of the compiled path).
    #[must_use]
    pub fn engine(&self) -> &MamdaniEngine {
        &self.engine
    }

    /// The compiled execute-path engine.
    #[must_use]
    pub fn compiled(&self) -> &CompiledEngine {
        &self.compiled
    }

    /// Compute the correction value for a request.
    ///
    /// Inputs are clamped into the paper's universes (speed to
    /// `[0, 120]` km/h, angle to `[-180, 180]`°, service request to
    /// `[0, 10]` BU).  The result is always in `[0, 1]`.
    #[must_use]
    pub fn correction_value(&self, speed_kmh: f64, angle_deg: f64, service_bu: f64) -> f64 {
        let inputs = [
            clamp_or(speed_kmh, 0.0, PaperParams::SPEED_MAX_KMH, 0.0),
            clamp_or(
                angle_deg,
                -PaperParams::ANGLE_MAX_DEG,
                PaperParams::ANGLE_MAX_DEG,
                0.0,
            ),
            clamp_or(service_bu, 0.0, PaperParams::SR_MAX_BU, 1.0),
        ];
        let mut scratch = self.scratch.borrow_mut();
        self.compiled.infer_into(&inputs, &mut scratch)[0].clamp(0.0, 1.0)
    }
}

/// The previous-work FLC1 used by the FACS comparison controller:
/// `(Sp, An, Di) -> Cv`, where `Di` is the user-to-station distance.
///
/// The previous papers' rule table is not included in the reproduced text,
/// so the rules are a documented reconstruction: each `(Sp, An)` pair keeps
/// the structure of Table 1, with the distance terms mapped onto Table 1's
/// service-request columns — `Near` behaves like `Me` (most favourable),
/// `Middle` like `Bi`, and `Far` like `Sm` (least favourable) — reflecting
/// that nearby users are the safest resource commitment.
#[derive(Debug, Clone)]
pub struct DistanceFlc1 {
    engine: MamdaniEngine,
    compiled: CompiledEngine,
    scratch: RefCell<Scratch>,
}

impl DistanceFlc1 {
    /// Build the distance-based FLC1.
    pub fn paper_default() -> Result<Self> {
        let mut engine = MamdaniEngine::builder()
            .input(PaperParams::speed_variable()?)
            .input(PaperParams::angle_variable()?)
            .input(PaperParams::distance_variable()?)
            .output(PaperParams::correction_value_output()?)
            .build()?;
        for rule in distance_frb_rules()? {
            engine.add_rule(rule)?;
        }
        let (compiled, scratch) = compile_with_default(&engine, 0.5)?;
        Ok(Self {
            engine,
            compiled,
            scratch: RefCell::new(scratch),
        })
    }

    /// The underlying Mamdani engine.
    #[must_use]
    pub fn engine(&self) -> &MamdaniEngine {
        &self.engine
    }

    /// The compiled execute-path engine.
    #[must_use]
    pub fn compiled(&self) -> &CompiledEngine {
        &self.compiled
    }

    /// Compute the correction value from speed, angle and distance.
    #[must_use]
    pub fn correction_value(&self, speed_kmh: f64, angle_deg: f64, distance_m: f64) -> f64 {
        let inputs = [
            clamp_or(speed_kmh, 0.0, PaperParams::SPEED_MAX_KMH, 0.0),
            clamp_or(
                angle_deg,
                -PaperParams::ANGLE_MAX_DEG,
                PaperParams::ANGLE_MAX_DEG,
                0.0,
            ),
            clamp_or(distance_m, 0.0, PaperParams::DISTANCE_MAX_M, 500.0),
        ];
        let mut scratch = self.scratch.borrow_mut();
        self.compiled.infer_into(&inputs, &mut scratch)[0].clamp(0.0, 1.0)
    }
}

/// The reconstructed 63-rule table of the distance-based FLC1:
/// `Near -> Table 1's Me column`, `Middle -> Bi`, `Far -> Sm`.
pub fn distance_frb_rules() -> Result<Vec<Rule>> {
    let mut rules = Vec::with_capacity(63);
    let mapping = [("Ne", "Me"), ("Md", "Bi"), ("Fr", "Sm")];
    let mut index = 0usize;
    for sp in ["Sl", "Mi", "Fa"] {
        for an in ["B1", "L1", "L2", "St", "R1", "R2", "B2"] {
            for (di, sr_column) in mapping {
                let cv = frb1_lookup(sp, an, sr_column).expect("Table 1 covers the full grid");
                let rule = Rule::new(
                    vec![
                        Antecedent::is("Sp", sp),
                        Antecedent::is("An", an),
                        Antecedent::is("Di", di),
                    ],
                    Connective::And,
                    vec![Consequent::is("Cv", cv)],
                )?
                .with_label(format!("FRB1-D rule {index}"));
                rules.push(rule);
                index += 1;
            }
        }
    }
    Ok(rules)
}

fn clamp_or(value: f64, lo: f64, hi: f64, fallback: f64) -> f64 {
    if value.is_finite() {
        value.clamp(lo, hi)
    } else {
        fallback
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flc1() -> Flc1 {
        Flc1::paper_default().unwrap()
    }

    #[test]
    fn builds_with_63_rules() {
        let c = flc1();
        assert_eq!(c.engine().rules().len(), 63);
        let d = DistanceFlc1::paper_default().unwrap();
        assert_eq!(d.engine().rules().len(), 63);
    }

    #[test]
    fn output_is_always_in_unit_interval() {
        let c = flc1();
        for speed in [0.0, 4.0, 30.0, 60.0, 90.0, 120.0] {
            for angle in [-180.0, -90.0, -45.0, 0.0, 30.0, 60.0, 90.0, 150.0, 180.0] {
                for sr in [1.0, 5.0, 10.0] {
                    let cv = c.correction_value(speed, angle, sr);
                    assert!((0.0..=1.0).contains(&cv), "cv={cv} at {speed}/{angle}/{sr}");
                }
            }
        }
    }

    #[test]
    fn straight_fast_users_get_the_best_correction_value() {
        let c = flc1();
        let best = c.correction_value(120.0, 0.0, 5.0);
        assert!(best > 0.8, "Fa/St/Me should be near Cv9, got {best}");
        let worst = c.correction_value(120.0, 180.0, 10.0);
        assert!(worst < 0.25, "Fa/B2/Bi should be near Cv1, got {worst}");
        assert!(best > worst);
    }

    #[test]
    fn correction_value_increases_with_speed_when_heading_straight() {
        // Paper conclusion: "with the increase of the user speed, the
        // percentage of the number of the accepted calls is increased".
        let c = flc1();
        let cv_slow = c.correction_value(4.0, 0.0, 1.0);
        let cv_mid = c.correction_value(60.0, 0.0, 1.0);
        let cv_fast = c.correction_value(115.0, 0.0, 1.0);
        assert!(cv_slow < cv_mid, "{cv_slow} vs {cv_mid}");
        assert!(cv_mid <= cv_fast + 1e-9, "{cv_mid} vs {cv_fast}");
    }

    #[test]
    fn correction_value_decreases_with_angle() {
        // Paper conclusion: acceptance decreases as the angle grows.
        let c = flc1();
        let angles = [0.0, 30.0, 50.0, 60.0, 90.0, 135.0, 180.0];
        let cvs: Vec<f64> = angles
            .iter()
            .map(|&a| c.correction_value(60.0, a, 5.0))
            .collect();
        for w in cvs.windows(2) {
            assert!(
                w[1] <= w[0] + 0.05,
                "Cv should not increase with angle: {cvs:?}"
            );
        }
        assert!(cvs[0] > cvs[4], "angle 0 should beat angle 90: {cvs:?}");
    }

    #[test]
    fn symmetric_angles_give_symmetric_correction_values() {
        let c = flc1();
        for a in [15.0, 45.0, 90.0, 135.0] {
            let left = c.correction_value(50.0, -a, 5.0);
            let right = c.correction_value(50.0, a, 5.0);
            assert!((left - right).abs() < 1e-9, "asymmetry at ±{a}");
        }
    }

    #[test]
    fn out_of_range_inputs_are_clamped() {
        let c = flc1();
        let cv = c.correction_value(500.0, 720.0, 50.0);
        assert!((0.0..=1.0).contains(&cv));
        let nan = c.correction_value(f64::NAN, f64::INFINITY, f64::NAN);
        assert!((0.0..=1.0).contains(&nan));
    }

    #[test]
    fn distance_variant_prefers_nearby_users() {
        let d = DistanceFlc1::paper_default().unwrap();
        let near = d.correction_value(60.0, 0.0, 50.0);
        let far = d.correction_value(60.0, 0.0, 950.0);
        assert!(near >= far, "near {near} should be >= far {far}");
        // Off-straight headings make the difference pronounced.
        let near_side = d.correction_value(60.0, 45.0, 50.0);
        let far_side = d.correction_value(60.0, 45.0, 950.0);
        assert!(near_side > far_side);
    }

    #[test]
    fn distance_rules_cover_the_grid() {
        let rules = distance_frb_rules().unwrap();
        assert_eq!(rules.len(), 63);
        let inputs = [
            PaperParams::speed_variable().unwrap(),
            PaperParams::angle_variable().unwrap(),
            PaperParams::distance_variable().unwrap(),
        ];
        let rb = fuzzy::RuleBase::from_rules(rules);
        assert!(rb.uncovered_combinations(&inputs).is_empty());
    }

    #[test]
    fn text_requests_from_sideways_users_get_low_cv() {
        // Table 1 gives small requests away from Straight very low Cv.
        let c = flc1();
        let cv = c.correction_value(30.0, 90.0, 1.0);
        assert!(cv < 0.35, "got {cv}");
    }
}
