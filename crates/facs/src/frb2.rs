//! FRB2 — the 27-rule base of FLC2 (Table 2 of the paper), transcribed
//! verbatim.
//!
//! Each entry maps a combination of Correction-value term (`Bd`/`No`/`Go`),
//! Request term (`Tx`/`Vo`/`Vi`) and Counter-state term (`Sa`/`Md`/`Fu`) to
//! one of the five soft decisions `R` / `WR` / `NRNA` / `WA` / `A`.

use fuzzy::rule::{Antecedent, Connective, Consequent, Rule};
use fuzzy::Result;

/// One row of Table 2: `(Cv, Rq, Cs, A/R)`.
pub type Frb2Row = (&'static str, &'static str, &'static str, &'static str);

/// Table 2 of the paper, row by row (rule 0 to rule 26).
pub const FRB2_TABLE: [Frb2Row; 27] = [
    ("Bd", "Tx", "Sa", "A"),
    ("Bd", "Tx", "Md", "NRNA"),
    ("Bd", "Tx", "Fu", "NRNA"),
    ("Bd", "Vo", "Sa", "A"),
    ("Bd", "Vo", "Md", "NRNA"),
    ("Bd", "Vo", "Fu", "WR"),
    ("Bd", "Vi", "Sa", "WA"),
    ("Bd", "Vi", "Md", "NRNA"),
    ("Bd", "Vi", "Fu", "WR"),
    ("No", "Tx", "Sa", "A"),
    ("No", "Tx", "Md", "NRNA"),
    ("No", "Tx", "Fu", "NRNA"),
    ("No", "Vo", "Sa", "A"),
    ("No", "Vo", "Md", "NRNA"),
    ("No", "Vo", "Fu", "NRNA"),
    ("No", "Vi", "Sa", "WA"),
    ("No", "Vi", "Md", "NRNA"),
    ("No", "Vi", "Fu", "NRNA"),
    ("Go", "Tx", "Sa", "A"),
    ("Go", "Tx", "Md", "A"),
    ("Go", "Tx", "Fu", "NRNA"),
    ("Go", "Vo", "Sa", "A"),
    ("Go", "Vo", "Md", "A"),
    ("Go", "Vo", "Fu", "WR"),
    ("Go", "Vi", "Sa", "A"),
    ("Go", "Vi", "Md", "A"),
    ("Go", "Vi", "Fu", "R"),
];

/// Build the 27 FRB2 rules ready to be added to FLC2's engine.
pub fn frb2_rules() -> Result<Vec<Rule>> {
    FRB2_TABLE
        .iter()
        .enumerate()
        .map(|(i, (cv, rq, cs, ar))| {
            Rule::new(
                vec![
                    Antecedent::is("Cv", *cv),
                    Antecedent::is("Rq", *rq),
                    Antecedent::is("Cs", *cs),
                ],
                Connective::And,
                vec![Consequent::is("AR", *ar)],
            )
            .map(|r| r.with_label(format!("FRB2 rule {i}")))
        })
        .collect()
}

/// The decision Table 2 assigns to an exact `(Cv, Rq, Cs)` term
/// combination.
#[must_use]
pub fn frb2_lookup(cv: &str, rq: &str, cs: &str) -> Option<&'static str> {
    FRB2_TABLE
        .iter()
        .find(|(c, r, s, _)| *c == cv && *r == rq && *s == cs)
        .map(|(_, _, _, ar)| *ar)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::PaperParams;
    use fuzzy::RuleBase;
    use std::collections::HashSet;

    #[test]
    fn table_has_27_unique_antecedent_combinations() {
        assert_eq!(FRB2_TABLE.len(), 27);
        let combos: HashSet<(&str, &str, &str)> =
            FRB2_TABLE.iter().map(|(c, r, s, _)| (*c, *r, *s)).collect();
        assert_eq!(combos.len(), 27);
    }

    #[test]
    fn table_covers_the_full_term_grid() {
        let inputs = [
            PaperParams::correction_value_input().unwrap(),
            PaperParams::request_variable().unwrap(),
            PaperParams::counter_state_variable(40.0).unwrap(),
        ];
        let rb = RuleBase::from_rules(frb2_rules().unwrap());
        assert!(rb.uncovered_combinations(&inputs).is_empty());
    }

    #[test]
    fn all_rules_validate_against_the_paper_variables() {
        let inputs = [
            PaperParams::correction_value_input().unwrap(),
            PaperParams::request_variable().unwrap(),
            PaperParams::counter_state_variable(40.0).unwrap(),
        ];
        let outputs = [PaperParams::accept_reject_output().unwrap()];
        for rule in frb2_rules().unwrap() {
            rule.validate(&inputs, &outputs).unwrap();
        }
    }

    #[test]
    fn spot_check_rows_against_table_2() {
        assert_eq!(frb2_lookup("Bd", "Tx", "Sa"), Some("A"));
        assert_eq!(frb2_lookup("Bd", "Vi", "Sa"), Some("WA"));
        assert_eq!(frb2_lookup("Bd", "Vo", "Fu"), Some("WR"));
        assert_eq!(frb2_lookup("Go", "Tx", "Md"), Some("A"));
        assert_eq!(frb2_lookup("Go", "Vi", "Fu"), Some("R"));
        assert_eq!(frb2_lookup("No", "Vi", "Fu"), Some("NRNA"));
        assert_eq!(frb2_lookup("Xx", "Tx", "Sa"), None);
    }

    #[test]
    fn empty_cell_always_leans_accept() {
        // Every Sa (small counter state) row is A or WA.
        for (cv, rq, cs, ar) in FRB2_TABLE {
            if cs == "Sa" {
                assert!(ar == "A" || ar == "WA", "{cv}/{rq}/{cs} -> {ar}");
            }
        }
    }

    #[test]
    fn full_cell_never_accepts() {
        // Every Fu (full counter state) row is NRNA, WR or R.
        for (cv, rq, cs, ar) in FRB2_TABLE {
            if cs == "Fu" {
                assert!(
                    ar == "NRNA" || ar == "WR" || ar == "R",
                    "{cv}/{rq}/{cs} -> {ar}"
                );
            }
        }
    }

    #[test]
    fn good_cv_is_never_worse_than_bad_cv() {
        // Ordering of the output terms from worst to best.
        let rank = |ar: &str| match ar {
            "R" => 0,
            "WR" => 1,
            "NRNA" => 2,
            "WA" => 3,
            "A" => 4,
            _ => unreachable!(),
        };
        for rq in ["Tx", "Vo", "Vi"] {
            for cs in ["Sa", "Md"] {
                let bad = rank(frb2_lookup("Bd", rq, cs).unwrap());
                let good = rank(frb2_lookup("Go", rq, cs).unwrap());
                assert!(good >= bad, "{rq}/{cs}");
            }
        }
    }

    #[test]
    fn rules_carry_row_labels() {
        let rules = frb2_rules().unwrap();
        assert_eq!(rules.len(), 27);
        assert_eq!(rules[26].label(), Some("FRB2 rule 26"));
    }
}
