//! The FACS and FACS-P admission controllers.
//!
//! Both controllers implement [`cellsim::AdmissionController`] so they plug
//! directly into the simulator:
//!
//! * [`FacsController`] — the authors' *previous* system (the comparison
//!   point of Figs. 7 and 10): FLC1 driven by speed, angle and
//!   user-to-station distance, FLC2 driven by the physical counter state,
//!   no priority handling.
//! * [`FacsPController`] — the *proposed* system: FLC1 driven by speed,
//!   angle and the requested bandwidth, FLC2 driven by the priority-aware
//!   effective counter state of [`PriorityPolicy`].

use crate::flc1::{DistanceFlc1, Flc1};
use crate::flc2::{Flc2, Flc2Lut};
use crate::params::PaperParams;
use crate::priority::{PriorityPolicy, RequestPriority};
use cellsim::shard::BoxedController;
use cellsim::sim::{AdmissionController, AdmissionDecision, AdmissionRequest};
use cellsim::station::BaseStation;
use fuzzy::Result;
use serde::{Deserialize, Serialize};

/// Configuration of the previous-work FACS controller.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FacsConfig {
    /// Base-station capacity the counter-state terms are scaled to (BU).
    pub capacity_bu: f64,
    /// Crisp acceptance threshold on the defuzzified A/R value: the request
    /// is admitted when `A/R > accept_threshold`.  The paper's soft
    /// decision is collapsed with a threshold of 0 ("weak accept" or
    /// better admits).
    pub accept_threshold: f64,
    /// Distance assumed when a request carries no distance measurement
    /// (metres).
    pub default_distance_m: f64,
}

impl FacsConfig {
    /// The paper's configuration (40 BU, threshold 0, mid-cell default
    /// distance).
    #[must_use]
    pub fn paper_default() -> Self {
        Self {
            capacity_bu: PaperParams::CAPACITY_BU,
            accept_threshold: 0.0,
            default_distance_m: PaperParams::DISTANCE_MAX_M / 2.0,
        }
    }
}

impl Default for FacsConfig {
    fn default() -> Self {
        Self::paper_default()
    }
}

/// The authors' previous fuzzy admission control system (FACS).
#[derive(Debug, Clone)]
pub struct FacsController {
    flc1: DistanceFlc1,
    flc2: Flc2,
    /// Optional LUT-backed FLC2 (see [`FacsController::with_lut`]).
    lut: Option<Flc2Lut>,
    config: FacsConfig,
}

impl FacsController {
    /// Build the controller with [`FacsConfig::paper_default`].
    ///
    /// # Panics
    /// Never panics: the paper parameters are statically valid (covered by
    /// tests); the fallible constructor is [`FacsController::new`].
    #[must_use]
    pub fn paper_default() -> Self {
        Self::new(FacsConfig::paper_default()).expect("paper parameters are valid")
    }

    /// Build the controller from an explicit configuration.
    pub fn new(config: FacsConfig) -> Result<Self> {
        Ok(Self {
            flc1: DistanceFlc1::paper_default()?,
            flc2: Flc2::with_capacity(config.capacity_bu)?,
            lut: None,
            config,
        })
    }

    /// Switch the FLC2 stage to the LUT backend (pre-tabulated per-class
    /// `(Cv, Cs)` surfaces at the default refined settings).  Decisions
    /// then track the compiled path within the *measured*
    /// [`Flc2Lut::max_error`] (see its docs for the probe basis — coarse
    /// *uniform* tabulations installed via
    /// [`with_lut_backend`](Self::with_lut_backend) can exceed their
    /// midpoint-measured number near kink bands);
    /// the controller reports itself as `facs-lut`.
    pub fn with_lut(mut self) -> Result<Self> {
        self.lut = Some(self.flc2.compile_lut()?);
        Ok(self)
    }

    /// Install a pre-built LUT backend (e.g. a custom resolution, or one
    /// shared across controller instances).  The LUT must have been
    /// tabulated for the same station capacity.
    #[must_use]
    pub fn with_lut_backend(mut self, lut: Flc2Lut) -> Self {
        self.lut = Some(lut);
        self
    }

    /// The paper-default controller behind the [`AdmissionController`]
    /// trait object — the factory shape scenario specs build from.
    #[must_use]
    pub fn boxed_paper_default() -> BoxedController {
        Box::new(Self::paper_default())
    }

    /// The controller's configuration.
    #[must_use]
    pub fn config(&self) -> &FacsConfig {
        &self.config
    }

    /// The LUT backend, when enabled.
    #[must_use]
    pub fn lut(&self) -> Option<&Flc2Lut> {
        self.lut.as_ref()
    }

    /// The defuzzified A/R value FACS would produce for a request, given
    /// the station state (exposed for tests and the benches).
    #[must_use]
    pub fn decision_value(&self, request: &AdmissionRequest, station: &BaseStation) -> f64 {
        let distance = request.distance_m.unwrap_or(self.config.default_distance_m);
        let cv = self
            .flc1
            .correction_value(request.speed_kmh, request.angle_deg, distance);
        let rq = f64::from(request.bandwidth);
        let cs = f64::from(station.counter_state());
        match &self.lut {
            Some(lut) => lut.decision_value(cv, rq, cs),
            None => self.flc2.decision_value(cv, rq, cs),
        }
    }
}

impl AdmissionController for FacsController {
    fn name(&self) -> &'static str {
        if self.lut.is_some() {
            "facs-lut"
        } else {
            "facs"
        }
    }

    fn decide(&mut self, request: &AdmissionRequest, station: &BaseStation) -> AdmissionDecision {
        let score = self.decision_value(request, station);
        if score > self.config.accept_threshold {
            AdmissionDecision::accept(score)
        } else {
            AdmissionDecision::reject(score)
        }
    }
}

/// Configuration of the proposed FACS-P controller.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FacsPConfig {
    /// Base-station capacity the counter-state terms are scaled to (BU).
    pub capacity_bu: f64,
    /// Crisp acceptance threshold on the defuzzified A/R value.
    pub accept_threshold: f64,
    /// The on-going-connection priority policy.
    pub priority: PriorityPolicy,
    /// Default priority assigned to requesting connections (the paper's
    /// future-work extension; `Normal` reproduces the paper).
    pub request_priority: RequestPriority,
}

impl FacsPConfig {
    /// The paper's configuration.
    #[must_use]
    pub fn paper_default() -> Self {
        Self {
            capacity_bu: PaperParams::CAPACITY_BU,
            accept_threshold: 0.0,
            priority: PriorityPolicy::paper_default(),
            request_priority: RequestPriority::Normal,
        }
    }

    /// Disable the priority handling (ablation: plain FLC1/FLC2 cascade).
    #[must_use]
    pub fn without_priority(mut self) -> Self {
        self.priority = PriorityPolicy::disabled();
        self
    }

    /// Set the priority of requesting connections (future-work extension).
    #[must_use]
    pub fn with_request_priority(mut self, priority: RequestPriority) -> Self {
        self.request_priority = priority;
        self
    }
}

impl Default for FacsPConfig {
    fn default() -> Self {
        Self::paper_default()
    }
}

/// The proposed fuzzy admission control system with priority of on-going
/// connections (FACS-P).
#[derive(Debug, Clone)]
pub struct FacsPController {
    flc1: Flc1,
    flc2: Flc2,
    /// Optional LUT-backed FLC2 (see [`FacsPController::with_lut`]).
    lut: Option<Flc2Lut>,
    config: FacsPConfig,
}

impl FacsPController {
    /// Build the controller with [`FacsPConfig::paper_default`].
    #[must_use]
    pub fn paper_default() -> Self {
        Self::new(FacsPConfig::paper_default()).expect("paper parameters are valid")
    }

    /// Build the controller from an explicit configuration.
    pub fn new(config: FacsPConfig) -> Result<Self> {
        let config = FacsPConfig {
            priority: config.priority.sanitized(),
            ..config
        };
        Ok(Self {
            flc1: Flc1::paper_default()?,
            flc2: Flc2::with_capacity(config.capacity_bu)?,
            lut: None,
            config,
        })
    }

    /// Switch the FLC2 stage to the LUT backend (pre-tabulated per-class
    /// `(Cv, Cs)` surfaces at the default refined settings).  Decisions
    /// then track the compiled path within the *measured*
    /// [`Flc2Lut::max_error`] (see its docs for the probe basis — coarse
    /// *uniform* tabulations installed via
    /// [`with_lut_backend`](Self::with_lut_backend) can exceed their
    /// midpoint-measured number near kink bands);
    /// the controller reports itself as `facs-p-lut`.
    pub fn with_lut(mut self) -> Result<Self> {
        self.lut = Some(self.flc2.compile_lut()?);
        Ok(self)
    }

    /// Install a pre-built LUT backend (e.g. a custom resolution, or one
    /// shared across controller instances).  The LUT must have been
    /// tabulated for the same station capacity.
    #[must_use]
    pub fn with_lut_backend(mut self, lut: Flc2Lut) -> Self {
        self.lut = Some(lut);
        self
    }

    /// The paper-default controller with the LUT decision backend.
    ///
    /// The tabulation is shared process-wide ([`Flc2Lut::paper_shared`]):
    /// the first call pays the tabulation cost, every further call —
    /// including the thousands of per-cell controllers a sweep builds —
    /// reuses the same surfaces.
    ///
    /// # Panics
    /// Never panics: the paper parameters are statically valid.
    #[must_use]
    pub fn paper_default_lut() -> Self {
        Self::paper_default().with_lut_backend(Flc2Lut::paper_shared())
    }

    /// The paper-default controller behind the [`AdmissionController`]
    /// trait object — the factory shape scenario specs build from.
    #[must_use]
    pub fn boxed_paper_default() -> BoxedController {
        Box::new(Self::paper_default())
    }

    /// The paper-default LUT-backed controller behind the
    /// [`AdmissionController`] trait object.
    #[must_use]
    pub fn boxed_paper_default_lut() -> BoxedController {
        Box::new(Self::paper_default_lut())
    }

    /// The controller's configuration.
    #[must_use]
    pub fn config(&self) -> &FacsPConfig {
        &self.config
    }

    /// The LUT backend, when enabled.
    #[must_use]
    pub fn lut(&self) -> Option<&Flc2Lut> {
        self.lut.as_ref()
    }

    /// FLC1's correction value for a request (exposed for the benches).
    #[must_use]
    pub fn correction_value(&self, request: &AdmissionRequest) -> f64 {
        self.flc1.correction_value(
            request.speed_kmh,
            request.angle_deg,
            f64::from(request.bandwidth),
        )
    }

    /// The defuzzified A/R value FACS-P would produce for a request.
    #[must_use]
    pub fn decision_value(&self, request: &AdmissionRequest, station: &BaseStation) -> f64 {
        let cv = self.correction_value(request);
        let cs = self
            .config
            .priority
            .effective_counter_state_with_request_priority(
                station,
                request.is_handoff,
                self.config.request_priority,
            );
        let rq = f64::from(request.bandwidth);
        match &self.lut {
            Some(lut) => lut.decision_value(cv, rq, cs),
            None => self.flc2.decision_value(cv, rq, cs),
        }
    }
}

impl AdmissionController for FacsPController {
    fn name(&self) -> &'static str {
        if self.lut.is_some() {
            "facs-p-lut"
        } else {
            "facs-p"
        }
    }

    fn decide(&mut self, request: &AdmissionRequest, station: &BaseStation) -> AdmissionDecision {
        let score = self.decision_value(request, station);
        if score > self.config.accept_threshold {
            AdmissionDecision::accept(score)
        } else {
            AdmissionDecision::reject(score)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cellsim::geometry::CellId;
    use cellsim::sim::{SimConfig, Simulator};
    use cellsim::traffic::{ServiceClass, TrafficConfig};

    fn request(
        id: u64,
        class: ServiceClass,
        speed: f64,
        angle: f64,
        handoff: bool,
    ) -> AdmissionRequest {
        AdmissionRequest {
            id,
            cell: CellId::origin(),
            time: 0.0,
            class,
            bandwidth: class.paper_bandwidth(),
            holding_time: 180.0,
            speed_kmh: speed,
            angle_deg: angle,
            distance_m: Some(400.0),
            is_handoff: handoff,
        }
    }

    fn fill_station(station: &mut BaseStation, target_bu: u32) {
        let mut id = 10_000;
        while station.occupied() + 5 <= target_bu {
            station
                .admit(id, ServiceClass::Voice, 5, 0.0, 600.0, false)
                .unwrap();
            id += 1;
        }
        while station.occupied() < target_bu {
            station
                .admit(id, ServiceClass::Text, 1, 0.0, 600.0, false)
                .unwrap();
            id += 1;
        }
    }

    #[test]
    fn controllers_build_with_paper_defaults() {
        let facs = FacsController::paper_default();
        let facsp = FacsPController::paper_default();
        assert_eq!(facs.config().capacity_bu, 40.0);
        assert_eq!(facsp.config().capacity_bu, 40.0);
    }

    #[test]
    fn empty_station_accepts_favourable_requests() {
        let mut facs = FacsController::paper_default();
        let mut facsp = FacsPController::paper_default();
        let station = BaseStation::paper_default();
        let req = request(1, ServiceClass::Voice, 80.0, 0.0, false);
        assert!(facs.decide(&req, &station).accept);
        assert!(facsp.decide(&req, &station).accept);
    }

    #[test]
    fn full_station_rejects_everything() {
        let mut facs = FacsController::paper_default();
        let mut facsp = FacsPController::paper_default();
        let mut station = BaseStation::paper_default();
        fill_station(&mut station, 40);
        assert_eq!(station.occupied(), 40);
        let req = request(1, ServiceClass::Text, 100.0, 0.0, false);
        assert!(!facs.decide(&req, &station).accept);
        assert!(!facsp.decide(&req, &station).accept);
    }

    #[test]
    fn facsp_rejects_new_calls_earlier_than_facs_under_load() {
        // At moderate occupancy the priority inflation makes FACS-P stricter
        // with new calls than plain FACS for the same request.
        let facs = FacsController::paper_default();
        let facsp = FacsPController::paper_default();
        let mut station = BaseStation::paper_default();
        fill_station(&mut station, 20); // all voice => RTC-heavy
        let req = request(1, ServiceClass::Voice, 60.0, 20.0, false);
        let facs_score = facs.decision_value(&req, &station);
        let facsp_score = facsp.decision_value(&req, &station);
        assert!(
            facsp_score < facs_score,
            "facs-p ({facsp_score}) should be stricter than facs ({facs_score})"
        );
    }

    #[test]
    fn facsp_favours_handoffs_of_ongoing_connections() {
        let mut facsp = FacsPController::paper_default();
        let mut station = BaseStation::paper_default();
        fill_station(&mut station, 30);
        let new_call = request(1, ServiceClass::Voice, 60.0, 10.0, false);
        let handoff = request(2, ServiceClass::Voice, 60.0, 10.0, true);
        let new_score = facsp.decision_value(&new_call, &station);
        let handoff_score = facsp.decision_value(&handoff, &station);
        assert!(
            handoff_score > new_score,
            "handoff ({handoff_score}) should score above new call ({new_score})"
        );
        // At this load the handoff is accepted while the new call is not.
        assert!(facsp.decide(&handoff, &station).accept);
        assert!(!facsp.decide(&new_call, &station).accept);
    }

    #[test]
    fn disabling_priority_removes_the_handoff_advantage() {
        let plain = FacsPController::new(FacsPConfig::paper_default().without_priority()).unwrap();
        let mut station = BaseStation::paper_default();
        fill_station(&mut station, 25);
        let new_call = request(1, ServiceClass::Voice, 60.0, 10.0, false);
        let handoff = request(2, ServiceClass::Voice, 60.0, 10.0, true);
        let d_new = plain.decision_value(&new_call, &station);
        let d_handoff = plain.decision_value(&handoff, &station);
        assert!((d_new - d_handoff).abs() < 1e-9);
    }

    #[test]
    fn decision_score_sign_matches_accept_flag() {
        let mut facsp = FacsPController::paper_default();
        let station = BaseStation::paper_default();
        for (speed, angle, class) in [
            (100.0, 0.0, ServiceClass::Text),
            (5.0, 170.0, ServiceClass::Video),
            (60.0, 45.0, ServiceClass::Voice),
        ] {
            let req = request(7, class, speed, angle, false);
            let d = facsp.decide(&req, &station);
            assert_eq!(d.accept, d.score > facsp.config().accept_threshold);
        }
    }

    #[test]
    fn fast_straight_users_are_preferred_over_slow_backward_users() {
        let facsp = FacsPController::paper_default();
        let mut station = BaseStation::paper_default();
        fill_station(&mut station, 18);
        let good = request(1, ServiceClass::Voice, 110.0, 0.0, false);
        let bad = request(2, ServiceClass::Voice, 5.0, 175.0, false);
        assert!(facsp.decision_value(&good, &station) > facsp.decision_value(&bad, &station));
    }

    #[test]
    fn high_request_priority_accepts_more_than_low() {
        let high = FacsPController::new(
            FacsPConfig::paper_default().with_request_priority(RequestPriority::High),
        )
        .unwrap();
        let low = FacsPController::new(
            FacsPConfig::paper_default().with_request_priority(RequestPriority::Low),
        )
        .unwrap();
        let mut station = BaseStation::paper_default();
        fill_station(&mut station, 16);
        let req = request(1, ServiceClass::Voice, 60.0, 30.0, false);
        assert!(high.decision_value(&req, &station) >= low.decision_value(&req, &station));
    }

    #[test]
    fn lut_backend_tracks_the_compiled_decisions() {
        let exact = FacsPController::paper_default();
        let lut = FacsPController::paper_default_lut();
        assert!(lut.lut().map(Flc2Lut::max_error).is_some());
        let bound = lut.lut().unwrap().max_error();
        let mut station = BaseStation::paper_default();
        fill_station(&mut station, 22);
        for (speed, angle, class, handoff) in [
            (100.0, 0.0, ServiceClass::Text, false),
            (10.0, 120.0, ServiceClass::Video, false),
            (60.0, 30.0, ServiceClass::Voice, true),
            (80.0, -45.0, ServiceClass::Voice, false),
        ] {
            let req = request(9, class, speed, angle, handoff);
            let d_exact = exact.decision_value(&req, &station);
            let d_lut = lut.decision_value(&req, &station);
            assert!(
                (d_exact - d_lut).abs() <= bound + 1e-12,
                "LUT decision {d_lut} drifted from {d_exact} (bound {bound})"
            );
        }
    }

    #[test]
    fn lut_backend_reports_distinct_names() {
        // A coarse injected backend keeps this name-only test cheap.
        let coarse = || {
            crate::flc2::Flc2::paper_default()
                .unwrap()
                .compile_lut_with_resolution((17, 17))
                .unwrap()
        };
        let mut p = FacsPController::paper_default();
        assert_eq!(p.name(), "facs-p");
        p = p.with_lut_backend(coarse());
        assert_eq!(p.name(), "facs-p-lut");
        let mut f = FacsController::paper_default();
        assert_eq!(f.name(), "facs");
        f = f.with_lut_backend(coarse());
        assert_eq!(f.name(), "facs-lut");
    }

    #[test]
    fn decide_batch_matches_decide_on_a_snapshot() {
        let mut facsp = FacsPController::paper_default();
        let mut station = BaseStation::paper_default();
        fill_station(&mut station, 18);
        let requests: Vec<AdmissionRequest> = (0..16)
            .map(|i| {
                request(
                    i,
                    [ServiceClass::Text, ServiceClass::Voice, ServiceClass::Video]
                        [(i % 3) as usize],
                    7.5 * i as f64,
                    22.5 * i as f64 - 180.0,
                    i % 4 == 0,
                )
            })
            .collect();
        let mut batch = Vec::new();
        facsp.decide_batch(&requests, &station, &mut batch);
        assert_eq!(batch.len(), requests.len());
        for (r, d) in requests.iter().zip(&batch) {
            assert_eq!(*d, facsp.decide(r, &station));
        }
    }

    #[test]
    fn simulator_integration_both_controllers() {
        let mut facs = FacsController::paper_default();
        let mut sim = Simulator::new(SimConfig::paper_default().with_seed(21));
        let facs_report = sim.run_batch(&mut facs, 60);
        assert_eq!(facs_report.controller, "facs");
        assert!(facs_report.accepted > 0);
        assert!(facs_report.accepted <= facs_report.offered);

        let mut facsp = FacsPController::paper_default();
        let mut sim = Simulator::new(SimConfig::paper_default().with_seed(21));
        let facsp_report = sim.run_batch(&mut facsp, 60);
        assert_eq!(facsp_report.controller, "facs-p");
        assert!(facsp_report.accepted > 0);
    }

    #[test]
    fn facsp_protects_ongoing_connections_in_handoff_heavy_traffic() {
        // In a saturated multi-cell network FACS-P should admit handoffs of
        // on-going connections at a higher rate than brand-new calls: that
        // is exactly the priority mechanism of the paper.
        let mut cfg = SimConfig::paper_default().with_seed(33).with_grid_radius(1);
        cfg.cell_radius_m = 250.0;
        cfg.traffic = TrafficConfig {
            mean_interarrival_s: 1.5,
            mean_holding_s: 400.0,
            min_speed_kmh: 40.0,
            max_speed_kmh: 120.0,
            ..TrafficConfig::paper_default()
        };
        let mut facsp = FacsPController::paper_default();
        let mut sim = Simulator::new(cfg);
        let report = sim.run_poisson(&mut facsp, 600);
        let (ho_offered, ho_accepted, _) = report.metrics.handoffs();
        assert!(
            ho_offered > 20,
            "expected a handoff-heavy run, got {ho_offered}"
        );
        let handoff_acceptance = ho_accepted as f64 / ho_offered as f64;
        let new_offered = report.offered - ho_offered;
        let new_accepted = report.accepted - ho_accepted;
        let new_acceptance = new_accepted as f64 / new_offered as f64;
        assert!(
            handoff_acceptance > new_acceptance,
            "handoff acceptance {handoff_acceptance:.3} should exceed new-call acceptance {new_acceptance:.3}"
        );
    }
}
