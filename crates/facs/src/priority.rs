//! Priority handling for on-going connections — the "-P" in FACS-P.
//!
//! The paper extends the earlier FACS system by making the admission
//! decision respect the priority of connections that are *already being
//! served*.  The structure (Fig. 4) adds a Differentiated-service
//! classifier (`Ds`) and two occupancy counters — the Real-Time Counter
//! (`RTC`) and the Non-Real-Time Counter (`NRTC`) — whose state feeds the
//! Counter-state (`Cs`) input of FLC2.
//!
//! The paper does not spell the mechanism out numerically; the reproduction
//! implements it as follows (see `DESIGN.md` §4–5):
//!
//! * every admitted connection is classified real-time (voice, video) or
//!   non-real-time (text) and counted in RTC / NRTC — this bookkeeping
//!   lives in [`cellsim::BaseStation`];
//! * for a **new** call request the counter state presented to FLC2 is
//!   *inflated* by a protection weight applied to the on-going traffic
//!   (`Cs' = occupied + α·RTC + β·NRTC`, clamped to the capacity), so the
//!   fuzzy system sees the cell as "fuller" than it physically is and
//!   starts refusing new calls earlier, keeping headroom for the QoS of the
//!   connections already in progress;
//! * for a **handoff** of an on-going connection the counter state is
//!   *discounted* (`Cs' = occupied · (1 − δ)`), giving on-going connections
//!   priority access to the remaining capacity.

use cellsim::station::BaseStation;
use cellsim::traffic::ServiceClass;
use serde::{Deserialize, Serialize};

/// The Differentiated-service classification of a connection (the `Ds`
/// element of Fig. 4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DifferentiatedService {
    /// Real-time traffic (voice, video) — counted in the RTC.
    RealTime,
    /// Non-real-time traffic (text) — counted in the NRTC.
    NonRealTime,
}

impl DifferentiatedService {
    /// Classify a service class.
    #[must_use]
    pub fn classify(class: ServiceClass) -> Self {
        if class.is_real_time() {
            Self::RealTime
        } else {
            Self::NonRealTime
        }
    }

    /// `true` for the real-time class.
    #[must_use]
    pub fn is_real_time(&self) -> bool {
        matches!(self, Self::RealTime)
    }
}

/// Priority of a *requesting* connection.
///
/// The paper lists this as future work ("in the future, we would like to
/// consider also the priority of requesting connections"); the reproduction
/// provides it as an optional extension: high-priority requests see a
/// discounted counter state, low-priority requests an inflated one.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum RequestPriority {
    /// Background / best-effort request.
    Low,
    /// Ordinary request (the paper's behaviour).
    #[default]
    Normal,
    /// Emergency or premium request.
    High,
}

impl RequestPriority {
    /// The multiplicative factor applied to the effective counter state for
    /// this priority (>1 penalises, <1 favours).
    #[must_use]
    pub fn counter_state_factor(&self) -> f64 {
        match self {
            RequestPriority::Low => 1.25,
            RequestPriority::Normal => 1.0,
            RequestPriority::High => 0.75,
        }
    }
}

/// The tunable parameters of the on-going-connection priority mechanism.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PriorityPolicy {
    /// Protection weight α applied to the RTC when a *new* call asks for
    /// admission: each BU held by an on-going real-time connection counts
    /// as `1 + α` BU of perceived load.
    pub rt_protection_weight: f64,
    /// Protection weight β applied to the NRTC for new calls.
    pub nrt_protection_weight: f64,
    /// Discount δ applied to the counter state seen by handoffs of
    /// on-going connections (0 = no priority, 1 = handoffs always see an
    /// empty cell).
    pub handoff_discount: f64,
}

impl PriorityPolicy {
    /// The calibration used for the paper-reproduction experiments:
    /// α = 0.3, β = 0.1, δ = 0.6.
    #[must_use]
    pub fn paper_default() -> Self {
        Self {
            rt_protection_weight: 0.3,
            nrt_protection_weight: 0.1,
            handoff_discount: 0.6,
        }
    }

    /// A policy that disables priority handling entirely (new calls and
    /// handoffs both see the physical occupancy) — this reduces FACS-P to
    /// the plain FLC1/FLC2 cascade and is used by the ablation bench.
    #[must_use]
    pub fn disabled() -> Self {
        Self {
            rt_protection_weight: 0.0,
            nrt_protection_weight: 0.0,
            handoff_discount: 0.0,
        }
    }

    /// Clamp all parameters into their sensible ranges (weights ≥ 0,
    /// discount in `[0, 1]`).
    #[must_use]
    pub fn sanitized(mut self) -> Self {
        self.rt_protection_weight = self.rt_protection_weight.max(0.0);
        self.nrt_protection_weight = self.nrt_protection_weight.max(0.0);
        self.handoff_discount = self.handoff_discount.clamp(0.0, 1.0);
        self
    }

    /// The counter state (in BU) FLC2 should be shown for a request at
    /// `station`, given whether the request is a handoff of an on-going
    /// connection.
    #[must_use]
    pub fn effective_counter_state(&self, station: &BaseStation, is_handoff: bool) -> f64 {
        let occupied = f64::from(station.occupied());
        let capacity = f64::from(station.capacity());
        if is_handoff {
            (occupied * (1.0 - self.handoff_discount.clamp(0.0, 1.0))).max(0.0)
        } else {
            let inflated = occupied
                + self.rt_protection_weight.max(0.0) * f64::from(station.rtc())
                + self.nrt_protection_weight.max(0.0) * f64::from(station.nrtc());
            inflated.min(capacity)
        }
    }

    /// Effective counter state additionally adjusted for the priority of
    /// the requesting connection (the future-work extension).
    #[must_use]
    pub fn effective_counter_state_with_request_priority(
        &self,
        station: &BaseStation,
        is_handoff: bool,
        priority: RequestPriority,
    ) -> f64 {
        let base = self.effective_counter_state(station, is_handoff);
        (base * priority.counter_state_factor()).min(f64::from(station.capacity()))
    }
}

impl Default for PriorityPolicy {
    fn default() -> Self {
        Self::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cellsim::geometry::{CellId, Point};

    fn loaded_station() -> BaseStation {
        let mut s = BaseStation::new(CellId::origin(), Point::default(), 40);
        // 10 BU video (RT), 5 BU voice (RT), 3 BU text (NRT) => occupied 18.
        s.admit(1, ServiceClass::Video, 10, 0.0, 100.0, false)
            .unwrap();
        s.admit(2, ServiceClass::Voice, 5, 0.0, 100.0, false)
            .unwrap();
        s.admit(3, ServiceClass::Text, 1, 0.0, 100.0, false)
            .unwrap();
        s.admit(4, ServiceClass::Text, 1, 0.0, 100.0, false)
            .unwrap();
        s.admit(5, ServiceClass::Text, 1, 0.0, 100.0, false)
            .unwrap();
        s
    }

    #[test]
    fn differentiated_service_classification() {
        assert_eq!(
            DifferentiatedService::classify(ServiceClass::Voice),
            DifferentiatedService::RealTime
        );
        assert_eq!(
            DifferentiatedService::classify(ServiceClass::Video),
            DifferentiatedService::RealTime
        );
        assert_eq!(
            DifferentiatedService::classify(ServiceClass::Text),
            DifferentiatedService::NonRealTime
        );
        assert!(DifferentiatedService::RealTime.is_real_time());
        assert!(!DifferentiatedService::NonRealTime.is_real_time());
    }

    #[test]
    fn new_calls_see_inflated_counter_state() {
        let station = loaded_station();
        assert_eq!(station.occupied(), 18);
        assert_eq!(station.rtc(), 15);
        assert_eq!(station.nrtc(), 3);
        let policy = PriorityPolicy::paper_default();
        let cs = policy.effective_counter_state(&station, false);
        // 18 + 0.3*15 + 0.1*3 = 22.8
        assert!((cs - 22.8).abs() < 1e-9, "got {cs}");
        assert!(cs > f64::from(station.occupied()));
    }

    #[test]
    fn handoffs_see_discounted_counter_state() {
        let station = loaded_station();
        let policy = PriorityPolicy::paper_default();
        let cs = policy.effective_counter_state(&station, true);
        // 18 * (1 - 0.6) = 7.2
        assert!((cs - 7.2).abs() < 1e-9, "got {cs}");
        assert!(cs < f64::from(station.occupied()));
    }

    #[test]
    fn inflation_is_capped_at_capacity() {
        let mut station = BaseStation::new(CellId::origin(), Point::default(), 40);
        for id in 0..3 {
            station
                .admit(id, ServiceClass::Video, 10, 0.0, 100.0, false)
                .unwrap();
        }
        station
            .admit(3, ServiceClass::Voice, 5, 0.0, 100.0, false)
            .unwrap();
        // occupied 35, rtc 35: inflated would be 35 + 0.3*35 = 45.5 > 40.
        let policy = PriorityPolicy::paper_default();
        let cs = policy.effective_counter_state(&station, false);
        assert_eq!(cs, 40.0);
    }

    #[test]
    fn disabled_policy_shows_physical_occupancy() {
        let station = loaded_station();
        let policy = PriorityPolicy::disabled();
        assert_eq!(policy.effective_counter_state(&station, false), 18.0);
        assert_eq!(policy.effective_counter_state(&station, true), 18.0);
    }

    #[test]
    fn sanitize_clamps_bad_parameters() {
        let p = PriorityPolicy {
            rt_protection_weight: -1.0,
            nrt_protection_weight: -0.5,
            handoff_discount: 3.0,
        }
        .sanitized();
        assert_eq!(p.rt_protection_weight, 0.0);
        assert_eq!(p.nrt_protection_weight, 0.0);
        assert_eq!(p.handoff_discount, 1.0);
    }

    #[test]
    fn request_priority_orders_effective_counter_state() {
        let station = loaded_station();
        let policy = PriorityPolicy::paper_default();
        let low = policy.effective_counter_state_with_request_priority(
            &station,
            false,
            RequestPriority::Low,
        );
        let normal = policy.effective_counter_state_with_request_priority(
            &station,
            false,
            RequestPriority::Normal,
        );
        let high = policy.effective_counter_state_with_request_priority(
            &station,
            false,
            RequestPriority::High,
        );
        assert!(high < normal && normal < low);
        assert!(low <= f64::from(station.capacity()));
        assert_eq!(RequestPriority::default(), RequestPriority::Normal);
    }

    #[test]
    fn empty_station_counter_state_is_zero_for_everyone() {
        let station = BaseStation::paper_default();
        let policy = PriorityPolicy::paper_default();
        assert_eq!(policy.effective_counter_state(&station, false), 0.0);
        assert_eq!(policy.effective_counter_state(&station, true), 0.0);
    }
}
