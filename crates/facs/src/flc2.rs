//! FLC2 — the second fuzzy logic controller of the FACS-P cascade.
//!
//! Inputs: the Correction value produced by FLC1 (`Cv` ∈ [0, 1]), the
//! Request type (`Rq`, bandwidth units) and the Counter state (`Cs`, the
//! occupied bandwidth of the base station).  Output: the soft
//! Accept/Reject decision (`A/R` ∈ [-1, 1]) with linguistic terms
//! Reject / Weak Reject / Not-Reject-Not-Accept / Weak Accept / Accept.

use crate::frb2::frb2_rules;
use crate::params::PaperParams;
use fuzzy::compile::{CompiledEngine, Scratch};
use fuzzy::engine::MamdaniEngine;
use fuzzy::{Lut2d, Result};
use std::cell::RefCell;
use std::sync::{Arc, OnceLock};

/// Default base grid of [`Flc2Lut`]'s refined tabulation: uniform
/// `(Cv, Cs)` nodes per tabulated request class before local refinement.
pub const DEFAULT_LUT_BASE_RESOLUTION: (usize, usize) = (129, 129);

/// Default per-cell error target of [`Flc2Lut`]'s refined tabulation.
/// Chosen with ~2.5x headroom under the `1e-3` decision-value bound the
/// `lut_error_is_bounded` test pins (FRB2's kink bands make uniform grids
/// pay this density everywhere; the refined table pays it only along the
/// bands).
pub const DEFAULT_LUT_TARGET_ERROR: f64 = 4.0e-4;

/// Patch density cap of the refined tabulation (nodes per side per cell).
pub const DEFAULT_LUT_MAX_PATCH_NODES: usize = 129;

/// The admission-decision controller: `(Cv, Rq, Cs) -> A/R`.
///
/// The string-keyed [`MamdaniEngine`] is kept for introspection and as the
/// bit-identical reference implementation; every
/// [`Flc2::decision_value`] call runs on the compiled, allocation-free
/// execute path.
#[derive(Debug, Clone)]
pub struct Flc2 {
    engine: MamdaniEngine,
    compiled: CompiledEngine,
    scratch: RefCell<Scratch>,
    capacity_bu: f64,
}

impl Flc2 {
    /// Build FLC2 with the paper's membership functions (Fig. 6), the
    /// 27-rule FRB2 (Table 2) and the paper's 40-BU capacity.
    pub fn paper_default() -> Result<Self> {
        Self::with_capacity(PaperParams::CAPACITY_BU)
    }

    /// Build FLC2 for a base station with a different capacity; the counter
    /// state terms (Small / Middle / Full) scale with it.
    pub fn with_capacity(capacity_bu: f64) -> Result<Self> {
        let capacity_bu = if capacity_bu > 0.0 {
            capacity_bu
        } else {
            PaperParams::CAPACITY_BU
        };
        let mut engine = MamdaniEngine::builder()
            .input(PaperParams::correction_value_input()?)
            .input(PaperParams::request_variable()?)
            .input(PaperParams::counter_state_variable(capacity_bu)?)
            .output(PaperParams::accept_reject_output()?)
            .build()?;
        for rule in frb2_rules()? {
            engine.add_rule(rule)?;
        }
        let mut compiled = engine.compile()?;
        compiled.set_empty_default(fuzzy::VarId::from_index(0), 0.0);
        let scratch = compiled.scratch();
        Ok(Self {
            engine,
            compiled,
            scratch: RefCell::new(scratch),
            capacity_bu,
        })
    }

    /// The capacity (BU) the counter-state terms are scaled to.
    #[must_use]
    pub fn capacity_bu(&self) -> f64 {
        self.capacity_bu
    }

    /// The underlying Mamdani engine (exposed for the ablation benches and
    /// as the interpreted reference of the compiled path).
    #[must_use]
    pub fn engine(&self) -> &MamdaniEngine {
        &self.engine
    }

    /// The compiled execute-path engine.
    #[must_use]
    pub fn compiled(&self) -> &CompiledEngine {
        &self.compiled
    }

    /// Pre-tabulate this controller into per-request-class lookup tables
    /// (see [`Flc2Lut`]): a [`DEFAULT_LUT_BASE_RESOLUTION`] uniform grid
    /// refined until every probed cell error is at or below
    /// [`DEFAULT_LUT_TARGET_ERROR`].
    pub fn compile_lut(&self) -> Result<Flc2Lut> {
        Flc2Lut::tabulate_refined(
            self,
            DEFAULT_LUT_BASE_RESOLUTION,
            DEFAULT_LUT_TARGET_ERROR,
            DEFAULT_LUT_MAX_PATCH_NODES,
        )
    }

    /// Pre-tabulate on a plain uniform `(Cv, Cs)` grid (no refinement).
    pub fn compile_lut_with_resolution(&self, resolution: (usize, usize)) -> Result<Flc2Lut> {
        Flc2Lut::tabulate(self, resolution)
    }

    /// Compute the soft accept/reject value in `[-1, 1]`.
    ///
    /// * `correction_value` — FLC1's output, clamped to `[0, 1]`.
    /// * `request_bu` — requested bandwidth, clamped to `[0, 10]` BU.
    /// * `counter_state_bu` — occupied bandwidth, clamped to
    ///   `[0, capacity]`.
    ///
    /// Positive values lean toward acceptance, negative toward rejection;
    /// 0 is the "not reject, not accept" midpoint.
    #[must_use]
    pub fn decision_value(
        &self,
        correction_value: f64,
        request_bu: f64,
        counter_state_bu: f64,
    ) -> f64 {
        let inputs = [
            clamp_or(correction_value, 0.0, 1.0, 0.0),
            clamp_or(request_bu, 0.0, PaperParams::RQ_MAX_BU, 1.0),
            clamp_or(counter_state_bu, 0.0, self.capacity_bu, self.capacity_bu),
        ];
        let mut scratch = self.scratch.borrow_mut();
        self.compiled.infer_into(&inputs, &mut scratch)[0].clamp(-1.0, 1.0)
    }

    /// Convenience wrapper: `true` if the decision value exceeds
    /// `threshold` (the paper's soft decision collapsed to a hard one).
    #[must_use]
    pub fn accepts(
        &self,
        correction_value: f64,
        request_bu: f64,
        counter_state_bu: f64,
        threshold: f64,
    ) -> bool {
        self.decision_value(correction_value, request_bu, counter_state_bu) > threshold
    }
}

/// LUT-backed FLC2: one pre-tabulated `(Cv, Cs)` surface per paper request
/// class (text = 1 BU, voice = 5 BU, video = 10 BU).
///
/// The request-type axis of FRB2 is only ever exercised at the three
/// discrete bandwidths the traffic model emits, so fixing `Rq` per class
/// turns the 3-input controller into three 2-input surfaces that
/// [`Lut2d`] can quantise.  Lookups for a tabulated class cost four table
/// reads and a bilinear blend; any other request bandwidth transparently
/// falls back to the compiled engine, so the policy is total either way.
///
/// The approximation error is measured at tabulation time:
/// [`Flc2Lut::max_error`] is the worst [`Lut2d::max_error`] across the
/// class surfaces (`< 1e-3` at the default settings; pinned by a test).
/// Note the measurement basis: refined tabulations probe a 3x3 lattice
/// per base cell plus every patch sub-cell midpoint, while plain uniform
/// tabulations probe cell midpoints only — near the surface's kink bands
/// a coarse uniform table's true error can exceed its midpoint-measured
/// number, so size uniform grids generously or prefer the refined
/// default.
///
/// The class surfaces are stored behind an [`Arc`], so cloning an
/// `Flc2Lut` (e.g. to share one tabulation across many controllers via
/// [`crate::FacsPController::with_lut_backend`]) copies pointers, not
/// megabytes.
#[derive(Debug, Clone)]
pub struct Flc2Lut {
    /// `(request_bu, surface)` pairs for the tabulated classes, shared
    /// across clones.
    luts: Arc<[(f64, Lut2d)]>,
    /// Exact compiled fallback for non-tabulated request bandwidths
    /// (small: rule tables and pre-sampled terms, no surfaces).
    exact: CompiledEngine,
    scratch: RefCell<Scratch>,
    capacity_bu: f64,
}

impl Flc2Lut {
    /// Tabulate `flc2` for the paper's three request classes on plain
    /// uniform `(Cv, Cs)` grids of the given resolution.
    pub fn tabulate(flc2: &Flc2, (n_cv, n_cs): (usize, usize)) -> Result<Self> {
        Self::build(flc2, |compiled, scratch, rq| {
            Lut2d::tabulate_fn(0.0, 1.0, 0.0, flc2.capacity_bu, n_cv, n_cs, |cv, cs| {
                compiled.infer_into(&[cv, rq, cs], scratch)[0].clamp(-1.0, 1.0)
            })
        })
    }

    /// Tabulate `flc2` for the paper's three request classes on a uniform
    /// base grid with local refinement down to `target_error` (see
    /// [`Lut2d::tabulate_fn_refined`]).
    pub fn tabulate_refined(
        flc2: &Flc2,
        base: (usize, usize),
        target_error: f64,
        max_patch_nodes: usize,
    ) -> Result<Self> {
        Self::build(flc2, |compiled, scratch, rq| {
            Lut2d::tabulate_fn_refined(
                0.0,
                1.0,
                0.0,
                flc2.capacity_bu,
                base,
                target_error,
                max_patch_nodes,
                |cv, cs| compiled.infer_into(&[cv, rq, cs], scratch)[0].clamp(-1.0, 1.0),
            )
        })
    }

    /// One shared copy of the paper-default tabulation (40 BU capacity,
    /// default base/target): tabulated once per process, then handed out
    /// as cheap clones.  This is what lets a sweep build thousands of
    /// LUT-backed controllers without re-tabulating per cell.
    #[must_use]
    pub fn paper_shared() -> Self {
        // The cache holds only the Sync parts (surfaces + fallback
        // engine); each handed-out value gets fresh scratch memory.
        type SharedParts = (Arc<[(f64, Lut2d)]>, CompiledEngine, f64);
        static PAPER: OnceLock<SharedParts> = OnceLock::new();
        let (luts, exact, capacity_bu) = PAPER.get_or_init(|| {
            let lut = Flc2::paper_default()
                .expect("paper parameters are valid")
                .compile_lut()
                .expect("paper parameters tabulate cleanly");
            (lut.luts, lut.exact, lut.capacity_bu)
        });
        Self {
            luts: Arc::clone(luts),
            exact: exact.clone(),
            scratch: RefCell::new(exact.scratch()),
            capacity_bu: *capacity_bu,
        }
    }

    fn build(
        flc2: &Flc2,
        mut tabulate_class: impl FnMut(&CompiledEngine, &mut Scratch, f64) -> Result<Lut2d>,
    ) -> Result<Self> {
        let mut luts = Vec::with_capacity(3);
        let mut scratch = flc2.compiled.scratch();
        for rq in [1.0, 5.0, 10.0] {
            luts.push((rq, tabulate_class(&flc2.compiled, &mut scratch, rq)?));
        }
        Ok(Self {
            luts: luts.into(),
            exact: flc2.compiled.clone(),
            scratch: RefCell::new(scratch),
            capacity_bu: flc2.capacity_bu,
        })
    }

    /// The capacity (BU) the tabulated counter-state axis spans.
    #[must_use]
    pub fn capacity_bu(&self) -> f64 {
        self.capacity_bu
    }

    /// The worst measured interpolation error over every tabulated class
    /// surface (see the type docs for the measurement basis).
    #[must_use]
    pub fn max_error(&self) -> f64 {
        self.luts
            .iter()
            .map(|(_, lut)| lut.max_error())
            .fold(0.0, f64::max)
    }

    /// Total memory held by the tabulated surfaces, in bytes (shared
    /// across clones).
    #[must_use]
    pub fn sample_bytes(&self) -> usize {
        self.luts.iter().map(|(_, lut)| lut.sample_bytes()).sum()
    }

    /// The tabulated request bandwidths (BU).
    #[must_use]
    pub fn tabulated_classes(&self) -> Vec<f64> {
        self.luts.iter().map(|&(rq, _)| rq).collect()
    }

    /// The soft accept/reject value in `[-1, 1]`, served from the class
    /// surface when `request_bu` matches a tabulated class and from the
    /// compiled engine otherwise.
    #[must_use]
    pub fn decision_value(
        &self,
        correction_value: f64,
        request_bu: f64,
        counter_state_bu: f64,
    ) -> f64 {
        let rq = clamp_or(request_bu, 0.0, PaperParams::RQ_MAX_BU, 1.0);
        let cv = clamp_or(correction_value, 0.0, 1.0, 0.0);
        let cs = clamp_or(counter_state_bu, 0.0, self.capacity_bu, self.capacity_bu);
        for (tab_rq, lut) in self.luts.iter() {
            if rq == *tab_rq {
                return lut.lookup(cv, cs).clamp(-1.0, 1.0);
            }
        }
        // Exact fallback: the same operation sequence as
        // `Flc2::decision_value`, so untabulated classes stay bit-identical
        // to the compiled controller.
        let mut scratch = self.scratch.borrow_mut();
        self.exact.infer_into(&[cv, rq, cs], &mut scratch)[0].clamp(-1.0, 1.0)
    }
}

fn clamp_or(value: f64, lo: f64, hi: f64, fallback: f64) -> f64 {
    if value.is_finite() {
        value.clamp(lo, hi)
    } else {
        fallback
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flc2() -> Flc2 {
        Flc2::paper_default().unwrap()
    }

    #[test]
    fn builds_with_27_rules_and_paper_capacity() {
        let c = flc2();
        assert_eq!(c.engine().rules().len(), 27);
        assert_eq!(c.capacity_bu(), 40.0);
        let custom = Flc2::with_capacity(80.0).unwrap();
        assert_eq!(custom.capacity_bu(), 80.0);
        let fallback = Flc2::with_capacity(-5.0).unwrap();
        assert_eq!(fallback.capacity_bu(), 40.0);
    }

    #[test]
    fn output_is_always_in_minus_one_one() {
        let c = flc2();
        for cv in [0.0, 0.25, 0.5, 0.75, 1.0] {
            for rq in [1.0, 5.0, 10.0] {
                for cs in [0.0, 10.0, 20.0, 30.0, 40.0] {
                    let v = c.decision_value(cv, rq, cs);
                    assert!((-1.0..=1.0).contains(&v), "{cv}/{rq}/{cs} -> {v}");
                }
            }
        }
    }

    #[test]
    fn empty_station_accepts_everything() {
        // Every Sa row of Table 2 is A or WA.
        let c = flc2();
        for cv in [0.05, 0.5, 0.95] {
            for rq in [1.0, 5.0, 10.0] {
                let v = c.decision_value(cv, rq, 0.0);
                assert!(v > 0.0, "cv={cv} rq={rq} -> {v}");
            }
        }
    }

    #[test]
    fn full_station_rejects_everything() {
        // Every Fu row of Table 2 is NRNA, WR or R.
        let c = flc2();
        for cv in [0.05, 0.5, 0.95] {
            for rq in [1.0, 5.0, 10.0] {
                let v = c.decision_value(cv, rq, 40.0);
                assert!(v <= 0.0 + 1e-9, "cv={cv} rq={rq} -> {v}");
            }
        }
    }

    #[test]
    fn good_cv_accepts_at_half_load_bad_cv_does_not() {
        let c = flc2();
        // At the "Middle" counter state (3/4 of the capacity), Table 2
        // accepts only Good Cv.
        let good = c.decision_value(0.95, 5.0, 30.0);
        let bad = c.decision_value(0.05, 5.0, 30.0);
        assert!(good > 0.0, "good cv at Md should accept, got {good}");
        assert!(bad <= 1e-9, "bad cv at Md should not accept, got {bad}");
        assert!(good > bad);
    }

    #[test]
    fn decision_is_monotone_in_cv_at_moderate_load() {
        // Mamdani centroid defuzzification is only piecewise smooth, so we
        // allow a small tolerance on the pairwise comparison and require a
        // clear overall increase from the worst to the best Cv.
        let c = flc2();
        let values: Vec<f64> = [0.1, 0.3, 0.5, 0.7, 0.9]
            .iter()
            .map(|&cv| c.decision_value(cv, 5.0, 30.0))
            .collect();
        for w in values.windows(2) {
            assert!(w[1] >= w[0] - 0.02, "not monotone: {values:?}");
        }
        assert!(
            values.last().unwrap() - values.first().unwrap() > 0.3,
            "best Cv should clearly beat worst Cv: {values:?}"
        );
    }

    #[test]
    fn decision_decreases_as_station_fills() {
        let c = flc2();
        let values: Vec<f64> = [0.0, 10.0, 20.0, 30.0, 40.0]
            .iter()
            .map(|&cs| c.decision_value(0.7, 1.0, cs))
            .collect();
        for w in values.windows(2) {
            assert!(w[1] <= w[0] + 1e-9, "not decreasing: {values:?}");
        }
        assert!(values[0] > 0.0);
        assert!(*values.last().unwrap() <= 0.0);
    }

    #[test]
    fn video_at_full_load_with_good_cv_is_a_hard_reject() {
        // Rule 26: Go Vi Fu -> R.
        let c = flc2();
        let v = c.decision_value(1.0, 10.0, 40.0);
        assert!(v < -0.4, "expected a strong reject, got {v}");
    }

    #[test]
    fn accepts_threshold_semantics() {
        let c = flc2();
        assert!(c.accepts(0.9, 1.0, 0.0, 0.0));
        assert!(!c.accepts(0.1, 10.0, 40.0, 0.0));
        // A higher threshold is stricter.
        let v = c.decision_value(0.9, 1.0, 15.0);
        assert!(c.accepts(0.9, 1.0, 15.0, v - 0.01));
        assert!(!c.accepts(0.9, 1.0, 15.0, v + 0.01));
    }

    #[test]
    fn non_finite_inputs_do_not_panic() {
        let c = flc2();
        let v = c.decision_value(f64::NAN, f64::INFINITY, f64::NEG_INFINITY);
        assert!((-1.0..=1.0).contains(&v));
    }

    #[test]
    fn paper_shared_lut_reuses_one_tabulation() {
        use std::time::Instant;
        let first = Flc2Lut::paper_shared();
        // Every further hand-out reuses the cached surfaces: identical
        // tables, and no re-tabulation (micro-seconds, not seconds).
        let t = Instant::now();
        let second = Flc2Lut::paper_shared();
        assert!(
            t.elapsed().as_millis() < 100,
            "second paper_shared() must not re-tabulate"
        );
        assert_eq!(first.max_error().to_bits(), second.max_error().to_bits());
        assert_eq!(first.tabulated_classes(), second.tabulated_classes());
        for (cv, rq, cs) in [(0.1, 1.0, 5.0), (0.8, 5.0, 30.0), (0.5, 10.0, 38.0)] {
            assert_eq!(
                first.decision_value(cv, rq, cs).to_bits(),
                second.decision_value(cv, rq, cs).to_bits()
            );
        }
    }

    #[test]
    fn counter_state_scales_with_custom_capacity() {
        let small = Flc2::with_capacity(40.0).unwrap();
        let large = Flc2::with_capacity(400.0).unwrap();
        // 30 BU is "three quarters full" for the small cell but nearly
        // empty for the large one, so the large cell should be more
        // willing to accept.
        let v_small = small.decision_value(0.5, 5.0, 30.0);
        let v_large = large.decision_value(0.5, 5.0, 30.0);
        assert!(v_large > v_small);
    }
}
