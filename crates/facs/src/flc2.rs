//! FLC2 — the second fuzzy logic controller of the FACS-P cascade.
//!
//! Inputs: the Correction value produced by FLC1 (`Cv` ∈ [0, 1]), the
//! Request type (`Rq`, bandwidth units) and the Counter state (`Cs`, the
//! occupied bandwidth of the base station).  Output: the soft
//! Accept/Reject decision (`A/R` ∈ [-1, 1]) with linguistic terms
//! Reject / Weak Reject / Not-Reject-Not-Accept / Weak Accept / Accept.

use crate::frb2::frb2_rules;
use crate::params::PaperParams;
use fuzzy::engine::MamdaniEngine;
use fuzzy::Result;

/// The admission-decision controller: `(Cv, Rq, Cs) -> A/R`.
#[derive(Debug, Clone)]
pub struct Flc2 {
    engine: MamdaniEngine,
    capacity_bu: f64,
}

impl Flc2 {
    /// Build FLC2 with the paper's membership functions (Fig. 6), the
    /// 27-rule FRB2 (Table 2) and the paper's 40-BU capacity.
    pub fn paper_default() -> Result<Self> {
        Self::with_capacity(PaperParams::CAPACITY_BU)
    }

    /// Build FLC2 for a base station with a different capacity; the counter
    /// state terms (Small / Middle / Full) scale with it.
    pub fn with_capacity(capacity_bu: f64) -> Result<Self> {
        let capacity_bu = if capacity_bu > 0.0 {
            capacity_bu
        } else {
            PaperParams::CAPACITY_BU
        };
        let mut engine = MamdaniEngine::builder()
            .input(PaperParams::correction_value_input()?)
            .input(PaperParams::request_variable()?)
            .input(PaperParams::counter_state_variable(capacity_bu)?)
            .output(PaperParams::accept_reject_output()?)
            .build()?;
        for rule in frb2_rules()? {
            engine.add_rule(rule)?;
        }
        Ok(Self {
            engine,
            capacity_bu,
        })
    }

    /// The capacity (BU) the counter-state terms are scaled to.
    #[must_use]
    pub fn capacity_bu(&self) -> f64 {
        self.capacity_bu
    }

    /// The underlying Mamdani engine (exposed for the ablation benches).
    #[must_use]
    pub fn engine(&self) -> &MamdaniEngine {
        &self.engine
    }

    /// Compute the soft accept/reject value in `[-1, 1]`.
    ///
    /// * `correction_value` — FLC1's output, clamped to `[0, 1]`.
    /// * `request_bu` — requested bandwidth, clamped to `[0, 10]` BU.
    /// * `counter_state_bu` — occupied bandwidth, clamped to
    ///   `[0, capacity]`.
    ///
    /// Positive values lean toward acceptance, negative toward rejection;
    /// 0 is the "not reject, not accept" midpoint.
    #[must_use]
    pub fn decision_value(
        &self,
        correction_value: f64,
        request_bu: f64,
        counter_state_bu: f64,
    ) -> f64 {
        let inputs = [
            clamp_or(correction_value, 0.0, 1.0, 0.0),
            clamp_or(request_bu, 0.0, PaperParams::RQ_MAX_BU, 1.0),
            clamp_or(counter_state_bu, 0.0, self.capacity_bu, self.capacity_bu),
        ];
        match self.engine.infer(&inputs) {
            Ok(out) => out.crisp_or("AR", 0.0).clamp(-1.0, 1.0),
            Err(_) => 0.0,
        }
    }

    /// Convenience wrapper: `true` if the decision value exceeds
    /// `threshold` (the paper's soft decision collapsed to a hard one).
    #[must_use]
    pub fn accepts(
        &self,
        correction_value: f64,
        request_bu: f64,
        counter_state_bu: f64,
        threshold: f64,
    ) -> bool {
        self.decision_value(correction_value, request_bu, counter_state_bu) > threshold
    }
}

fn clamp_or(value: f64, lo: f64, hi: f64, fallback: f64) -> f64 {
    if value.is_finite() {
        value.clamp(lo, hi)
    } else {
        fallback
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flc2() -> Flc2 {
        Flc2::paper_default().unwrap()
    }

    #[test]
    fn builds_with_27_rules_and_paper_capacity() {
        let c = flc2();
        assert_eq!(c.engine().rules().len(), 27);
        assert_eq!(c.capacity_bu(), 40.0);
        let custom = Flc2::with_capacity(80.0).unwrap();
        assert_eq!(custom.capacity_bu(), 80.0);
        let fallback = Flc2::with_capacity(-5.0).unwrap();
        assert_eq!(fallback.capacity_bu(), 40.0);
    }

    #[test]
    fn output_is_always_in_minus_one_one() {
        let c = flc2();
        for cv in [0.0, 0.25, 0.5, 0.75, 1.0] {
            for rq in [1.0, 5.0, 10.0] {
                for cs in [0.0, 10.0, 20.0, 30.0, 40.0] {
                    let v = c.decision_value(cv, rq, cs);
                    assert!((-1.0..=1.0).contains(&v), "{cv}/{rq}/{cs} -> {v}");
                }
            }
        }
    }

    #[test]
    fn empty_station_accepts_everything() {
        // Every Sa row of Table 2 is A or WA.
        let c = flc2();
        for cv in [0.05, 0.5, 0.95] {
            for rq in [1.0, 5.0, 10.0] {
                let v = c.decision_value(cv, rq, 0.0);
                assert!(v > 0.0, "cv={cv} rq={rq} -> {v}");
            }
        }
    }

    #[test]
    fn full_station_rejects_everything() {
        // Every Fu row of Table 2 is NRNA, WR or R.
        let c = flc2();
        for cv in [0.05, 0.5, 0.95] {
            for rq in [1.0, 5.0, 10.0] {
                let v = c.decision_value(cv, rq, 40.0);
                assert!(v <= 0.0 + 1e-9, "cv={cv} rq={rq} -> {v}");
            }
        }
    }

    #[test]
    fn good_cv_accepts_at_half_load_bad_cv_does_not() {
        let c = flc2();
        // At the "Middle" counter state (3/4 of the capacity), Table 2
        // accepts only Good Cv.
        let good = c.decision_value(0.95, 5.0, 30.0);
        let bad = c.decision_value(0.05, 5.0, 30.0);
        assert!(good > 0.0, "good cv at Md should accept, got {good}");
        assert!(bad <= 1e-9, "bad cv at Md should not accept, got {bad}");
        assert!(good > bad);
    }

    #[test]
    fn decision_is_monotone_in_cv_at_moderate_load() {
        // Mamdani centroid defuzzification is only piecewise smooth, so we
        // allow a small tolerance on the pairwise comparison and require a
        // clear overall increase from the worst to the best Cv.
        let c = flc2();
        let values: Vec<f64> = [0.1, 0.3, 0.5, 0.7, 0.9]
            .iter()
            .map(|&cv| c.decision_value(cv, 5.0, 30.0))
            .collect();
        for w in values.windows(2) {
            assert!(w[1] >= w[0] - 0.02, "not monotone: {values:?}");
        }
        assert!(
            values.last().unwrap() - values.first().unwrap() > 0.3,
            "best Cv should clearly beat worst Cv: {values:?}"
        );
    }

    #[test]
    fn decision_decreases_as_station_fills() {
        let c = flc2();
        let values: Vec<f64> = [0.0, 10.0, 20.0, 30.0, 40.0]
            .iter()
            .map(|&cs| c.decision_value(0.7, 1.0, cs))
            .collect();
        for w in values.windows(2) {
            assert!(w[1] <= w[0] + 1e-9, "not decreasing: {values:?}");
        }
        assert!(values[0] > 0.0);
        assert!(*values.last().unwrap() <= 0.0);
    }

    #[test]
    fn video_at_full_load_with_good_cv_is_a_hard_reject() {
        // Rule 26: Go Vi Fu -> R.
        let c = flc2();
        let v = c.decision_value(1.0, 10.0, 40.0);
        assert!(v < -0.4, "expected a strong reject, got {v}");
    }

    #[test]
    fn accepts_threshold_semantics() {
        let c = flc2();
        assert!(c.accepts(0.9, 1.0, 0.0, 0.0));
        assert!(!c.accepts(0.1, 10.0, 40.0, 0.0));
        // A higher threshold is stricter.
        let v = c.decision_value(0.9, 1.0, 15.0);
        assert!(c.accepts(0.9, 1.0, 15.0, v - 0.01));
        assert!(!c.accepts(0.9, 1.0, 15.0, v + 0.01));
    }

    #[test]
    fn non_finite_inputs_do_not_panic() {
        let c = flc2();
        let v = c.decision_value(f64::NAN, f64::INFINITY, f64::NEG_INFINITY);
        assert!((-1.0..=1.0).contains(&v));
    }

    #[test]
    fn counter_state_scales_with_custom_capacity() {
        let small = Flc2::with_capacity(40.0).unwrap();
        let large = Flc2::with_capacity(400.0).unwrap();
        // 30 BU is "three quarters full" for the small cell but nearly
        // empty for the large one, so the large cell should be more
        // willing to accept.
        let v_small = small.decision_value(0.5, 5.0, 30.0);
        let v_large = large.decision_value(0.5, 5.0, 30.0);
        assert!(v_large > v_small);
    }
}
