//! Membership-function parameters of the paper's controllers.
//!
//! The paper defines the membership functions only graphically (Figs. 5 and
//! 6); this module fixes the break-points read off those figures and builds
//! the corresponding [`LinguisticVariable`]s.  Every constant carries a doc
//! comment citing the figure it was read from, so the calibration is
//! auditable and adjustable in one place.

use fuzzy::{LinguisticVariable, Result};

/// All universe bounds and break-points used by FLC1 and FLC2.
///
/// The associated constants are the values read off Figs. 5 and 6; the
/// methods build ready-to-use linguistic variables from them.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PaperParams;

impl PaperParams {
    /// Maximum user speed considered by the paper (km/h), Fig. 5(a).
    pub const SPEED_MAX_KMH: f64 = 120.0;
    /// Speed break-point separating "Slow" from "Middle" (km/h), Fig. 5(a).
    pub const SPEED_SLOW_ZERO: f64 = 60.0;
    /// Peak of the "Middle" speed term (km/h), Fig. 5(a).
    pub const SPEED_MIDDLE_PEAK: f64 = 60.0;
    /// Left foot of the "Middle" speed term (km/h), Fig. 5(a).
    pub const SPEED_MIDDLE_LEFT: f64 = 30.0;
    /// Speed at which "Fast" reaches full membership (km/h), Fig. 5(a).
    pub const SPEED_FAST_FULL: f64 = 120.0;
    /// Speed at which "Fast" membership starts rising (km/h), Fig. 5(a).
    pub const SPEED_FAST_ZERO: f64 = 60.0;

    /// Angle universe bound (degrees), Fig. 5(b).
    pub const ANGLE_MAX_DEG: f64 = 180.0;
    /// Spacing between adjacent directional terms (degrees), Fig. 5(b).
    pub const ANGLE_STEP_DEG: f64 = 45.0;

    /// Service-request universe upper bound (BU), Fig. 5(c).
    pub const SR_MAX_BU: f64 = 10.0;
    /// Peak of the "Medium" service-request term (BU), Fig. 5(c).
    pub const SR_MEDIUM_PEAK: f64 = 5.0;

    /// Number of correction-value terms (Cv1..Cv9), Fig. 5(d).
    pub const CV_TERMS: usize = 9;

    /// Peak of the "Normal" Cv input term of FLC2, Fig. 6(a).
    pub const CV_NORMAL_PEAK: f64 = 0.5;

    /// Request-type universe upper bound (BU), Fig. 6(b).
    pub const RQ_MAX_BU: f64 = 10.0;

    /// Default base-station capacity (BU), Section 4.
    pub const CAPACITY_BU: f64 = 40.0;

    /// Accept/Reject universe bounds, Fig. 6(d).
    pub const AR_MAX: f64 = 1.0;
    /// Peak of the "Weak Accept" / "Weak Reject" terms (±), Fig. 6(d).
    pub const AR_WEAK_PEAK: f64 = 0.3;
    /// Start of the full-accept / full-reject plateaus (±), Fig. 6(d).
    pub const AR_FULL_START: f64 = 0.6;

    /// Cell radius used for the distance variable of the previous-work FACS
    /// variant (metres).  The paper does not restate it; 1000 m matches the
    /// simulator's default cell.
    pub const DISTANCE_MAX_M: f64 = 1000.0;

    /// FLC1 input: user Speed `Sp` over `[0, 120]` km/h with terms
    /// Slow / Middle / Fast (Fig. 5(a)).
    pub fn speed_variable() -> Result<LinguisticVariable> {
        LinguisticVariable::builder("Sp", 0.0, Self::SPEED_MAX_KMH)
            .triangle("Sl", 0.0, 0.0, Self::SPEED_SLOW_ZERO)
            .triangle(
                "Mi",
                Self::SPEED_MIDDLE_LEFT,
                Self::SPEED_MIDDLE_PEAK,
                Self::SPEED_FAST_FULL,
            )
            .trapezoid(
                "Fa",
                Self::SPEED_FAST_ZERO,
                Self::SPEED_FAST_FULL,
                Self::SPEED_MAX_KMH,
                Self::SPEED_MAX_KMH,
            )
            .build()
    }

    /// FLC1 input: user Angle `An` over `[-180, 180]` degrees with terms
    /// Back1 / Left1 / Left2 / Straight / Right1 / Right2 / Back2
    /// (Fig. 5(b)).  0° means the user is heading straight at the base
    /// station; ±180° means it is heading directly away.
    pub fn angle_variable() -> Result<LinguisticVariable> {
        let s = Self::ANGLE_STEP_DEG;
        LinguisticVariable::builder("An", -Self::ANGLE_MAX_DEG, Self::ANGLE_MAX_DEG)
            // B1: heading away (negative side), full below -135°.
            .trapezoid("B1", -180.0, -180.0, -3.0 * s, -2.0 * s)
            .triangle("L1", -3.0 * s, -2.0 * s, -s)
            .triangle("L2", -2.0 * s, -s, 0.0)
            .triangle("St", -s, 0.0, s)
            .triangle("R1", 0.0, s, 2.0 * s)
            .triangle("R2", s, 2.0 * s, 3.0 * s)
            // B2: heading away (positive side), full above +135°.
            .trapezoid("B2", 2.0 * s, 3.0 * s, 180.0, 180.0)
            .build()
    }

    /// FLC1 input: Service request `Sr` over `[0, 10]` BU with terms
    /// Small / Medium / Big (Fig. 5(c)).
    pub fn service_request_variable() -> Result<LinguisticVariable> {
        LinguisticVariable::builder("Sr", 0.0, Self::SR_MAX_BU)
            .triangle("Sm", 0.0, 0.0, Self::SR_MEDIUM_PEAK)
            .triangle("Me", 0.0, Self::SR_MEDIUM_PEAK, Self::SR_MAX_BU)
            .triangle("Bi", Self::SR_MEDIUM_PEAK, Self::SR_MAX_BU, Self::SR_MAX_BU)
            .build()
    }

    /// FLC1 output: Correction value `Cv` over `[0, 1]` with nine evenly
    /// spaced terms Cv1..Cv9 (Fig. 5(d)).  Cv1 and Cv9 are shoulders, the
    /// rest are triangles 0.1 apart.
    pub fn correction_value_output() -> Result<LinguisticVariable> {
        let mut builder =
            LinguisticVariable::builder("Cv", 0.0, 1.0).trapezoid("Cv1", 0.0, 0.0, 0.1, 0.2);
        for k in 2..=8u32 {
            let peak = f64::from(k) / 10.0;
            builder = builder.triangle(&format!("Cv{k}"), peak - 0.1, peak, peak + 0.1);
        }
        builder.trapezoid("Cv9", 0.8, 0.9, 1.0, 1.0).build()
    }

    /// FLC2 input: Correction value `Cv` over `[0, 1]` with terms
    /// Bad / Normal / Good (Fig. 6(a)).
    pub fn correction_value_input() -> Result<LinguisticVariable> {
        LinguisticVariable::builder("Cv", 0.0, 1.0)
            .triangle("Bd", 0.0, 0.0, Self::CV_NORMAL_PEAK)
            .triangle("No", 0.0, Self::CV_NORMAL_PEAK, 1.0)
            .triangle("Go", Self::CV_NORMAL_PEAK, 1.0, 1.0)
            .build()
    }

    /// FLC2 input: user Request `Rq` over `[0, 10]` BU with terms
    /// Text / Voice / Video (Fig. 6(b)).
    pub fn request_variable() -> Result<LinguisticVariable> {
        LinguisticVariable::builder("Rq", 0.0, Self::RQ_MAX_BU)
            .triangle("Tx", 0.0, 0.0, 5.0)
            .triangle("Vo", 0.0, 5.0, 10.0)
            .triangle("Vi", 5.0, 10.0, 10.0)
            .build()
    }

    /// FLC2 input: Counter state `Cs` over `[0, capacity]` BU with terms
    /// Small / Middle / Full (Fig. 6(c), drawn for the paper's 40-BU cell).
    ///
    /// Fig. 6(c) is drawn qualitatively; the break-points used here
    /// ("Middle" peaking at 3/4 of the capacity, "Full" only near the
    /// physical limit) are the calibration that reproduces the acceptance
    /// levels of the paper's Figs. 7–10 — see `EXPERIMENTS.md` for the
    /// sensitivity discussion.
    pub fn counter_state_variable(capacity_bu: f64) -> Result<LinguisticVariable> {
        let cap = if capacity_bu > 0.0 {
            capacity_bu
        } else {
            Self::CAPACITY_BU
        };
        let half = cap / 2.0;
        let knee = 0.75 * cap;
        let full = 0.9 * cap;
        LinguisticVariable::builder("Cs", 0.0, cap)
            .triangle("Sa", 0.0, 0.0, knee)
            .triangle("Md", half, knee, full)
            .trapezoid("Fu", knee, full, cap, cap)
            .build()
    }

    /// FLC2 output: the soft Accept/Reject decision `A/R` over `[-1, 1]`
    /// with terms Reject / Weak Reject / Not-Reject-Not-Accept /
    /// Weak Accept / Accept (Fig. 6(d)).
    pub fn accept_reject_output() -> Result<LinguisticVariable> {
        let w = Self::AR_WEAK_PEAK;
        let f = Self::AR_FULL_START;
        LinguisticVariable::builder("AR", -Self::AR_MAX, Self::AR_MAX)
            .trapezoid("R", -1.0, -1.0, -f, -w)
            .triangle("WR", -f, -w, 0.0)
            .triangle("NRNA", -w, 0.0, w)
            .triangle("WA", 0.0, w, f)
            .trapezoid("A", w, f, 1.0, 1.0)
            .build()
    }

    /// Distance input of the authors' *previous* FACS system over
    /// `[0, 1000]` m with terms Near / Middle / Far.
    ///
    /// The previous papers ([14, 15] in the reference list) are not part of
    /// the reproduced text, so the break-points are a documented
    /// reconstruction: evenly spaced over the cell radius, mirroring the
    /// shape of the other three-term variables.
    pub fn distance_variable() -> Result<LinguisticVariable> {
        let max = Self::DISTANCE_MAX_M;
        let half = max / 2.0;
        LinguisticVariable::builder("Di", 0.0, max)
            .triangle("Ne", 0.0, 0.0, half)
            .triangle("Md", 0.0, half, max)
            .triangle("Fr", half, max, max)
            .build()
    }

    /// The names of the nine correction-value terms, in order.
    #[must_use]
    pub fn cv_term_names() -> [&'static str; 9] {
        [
            "Cv1", "Cv2", "Cv3", "Cv4", "Cv5", "Cv6", "Cv7", "Cv8", "Cv9",
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_variables_build() {
        PaperParams::speed_variable().unwrap();
        PaperParams::angle_variable().unwrap();
        PaperParams::service_request_variable().unwrap();
        PaperParams::correction_value_output().unwrap();
        PaperParams::correction_value_input().unwrap();
        PaperParams::request_variable().unwrap();
        PaperParams::counter_state_variable(40.0).unwrap();
        PaperParams::accept_reject_output().unwrap();
        PaperParams::distance_variable().unwrap();
    }

    #[test]
    fn every_input_variable_covers_its_universe() {
        for var in [
            PaperParams::speed_variable().unwrap(),
            PaperParams::angle_variable().unwrap(),
            PaperParams::service_request_variable().unwrap(),
            PaperParams::correction_value_input().unwrap(),
            PaperParams::request_variable().unwrap(),
            PaperParams::counter_state_variable(40.0).unwrap(),
            PaperParams::distance_variable().unwrap(),
        ] {
            assert!(
                var.covers_universe(1e-9, 500),
                "variable `{}` leaves part of its universe uncovered",
                var.name()
            );
        }
    }

    #[test]
    fn output_variables_cover_their_universes() {
        assert!(PaperParams::correction_value_output()
            .unwrap()
            .covers_universe(1e-9, 500));
        assert!(PaperParams::accept_reject_output()
            .unwrap()
            .covers_universe(1e-9, 500));
    }

    #[test]
    fn speed_terms_behave_as_in_fig_5a() {
        let sp = PaperParams::speed_variable().unwrap();
        assert_eq!(sp.best_term(0.0), "Sl");
        assert_eq!(sp.best_term(60.0), "Mi");
        assert_eq!(sp.best_term(119.0), "Fa");
        // 4 km/h is almost fully Slow.
        let d = sp.fuzzify_named(4.0);
        let slow = d.iter().find(|(n, _)| *n == "Sl").unwrap().1;
        assert!(slow > 0.9);
    }

    #[test]
    fn angle_terms_behave_as_in_fig_5b() {
        let an = PaperParams::angle_variable().unwrap();
        assert_eq!(an.term_count(), 7);
        assert_eq!(an.best_term(0.0), "St");
        assert_eq!(an.best_term(45.0), "R1");
        assert_eq!(an.best_term(90.0), "R2");
        assert_eq!(an.best_term(-45.0), "L2");
        assert_eq!(an.best_term(-90.0), "L1");
        assert_eq!(an.best_term(170.0), "B2");
        assert_eq!(an.best_term(-170.0), "B1");
    }

    #[test]
    fn service_request_matches_paper_sizes() {
        let sr = PaperParams::service_request_variable().unwrap();
        // text = 1 BU is mostly Small, voice = 5 BU is Medium, video = 10 BU is Big.
        assert_eq!(sr.best_term(1.0), "Sm");
        assert_eq!(sr.best_term(5.0), "Me");
        assert_eq!(sr.best_term(10.0), "Bi");
    }

    #[test]
    fn cv_output_has_nine_ordered_terms() {
        let cv = PaperParams::correction_value_output().unwrap();
        assert_eq!(cv.term_count(), 9);
        let names = PaperParams::cv_term_names();
        for (i, t) in cv.terms().iter().enumerate() {
            assert_eq!(t.name(), names[i]);
        }
        // Peaks are increasing.
        assert_eq!(cv.best_term(0.05), "Cv1");
        assert_eq!(cv.best_term(0.5), "Cv5");
        assert_eq!(cv.best_term(0.95), "Cv9");
    }

    #[test]
    fn counter_state_scales_with_capacity() {
        let cs40 = PaperParams::counter_state_variable(40.0).unwrap();
        assert_eq!(cs40.best_term(0.0), "Sa");
        assert_eq!(cs40.best_term(30.0), "Md");
        assert_eq!(cs40.best_term(40.0), "Fu");
        // Half load is still dominated by "Small": the cell does not start
        // looking busy until ~3/4 of the capacity is committed.
        assert_eq!(cs40.best_term(20.0), "Sa");
        let cs100 = PaperParams::counter_state_variable(100.0).unwrap();
        assert_eq!(cs100.best_term(75.0), "Md");
        assert_eq!(cs100.best_term(99.0), "Fu");
        // Non-positive capacities fall back to the paper's 40 BU.
        let fallback = PaperParams::counter_state_variable(0.0).unwrap();
        assert_eq!(fallback.max(), 40.0);
    }

    #[test]
    fn accept_reject_terms_are_ordered() {
        let ar = PaperParams::accept_reject_output().unwrap();
        assert_eq!(ar.best_term(-0.9), "R");
        assert_eq!(ar.best_term(-0.3), "WR");
        assert_eq!(ar.best_term(0.0), "NRNA");
        assert_eq!(ar.best_term(0.3), "WA");
        assert_eq!(ar.best_term(0.9), "A");
    }

    #[test]
    fn distance_terms_cover_the_cell() {
        let di = PaperParams::distance_variable().unwrap();
        assert_eq!(di.best_term(0.0), "Ne");
        assert_eq!(di.best_term(500.0), "Md");
        assert_eq!(di.best_term(1000.0), "Fr");
    }
}
