//! FRB1 — the 63-rule base of FLC1 (Table 1 of the paper), transcribed
//! verbatim.
//!
//! Each entry maps a combination of Speed term (`Sl`/`Mi`/`Fa`), Angle term
//! (`B1`/`L1`/`L2`/`St`/`R1`/`R2`/`B2`) and Service-request term
//! (`Sm`/`Me`/`Bi`) to one of the nine Correction-value terms `Cv1`..`Cv9`.

use fuzzy::rule::{Antecedent, Connective, Consequent, Rule};
use fuzzy::Result;

/// One row of Table 1: `(Sp, An, Sr, Cv)`.
pub type Frb1Row = (&'static str, &'static str, &'static str, &'static str);

/// Table 1 of the paper, row by row (rule 0 to rule 62).
pub const FRB1_TABLE: [Frb1Row; 63] = [
    ("Sl", "B1", "Sm", "Cv1"),
    ("Sl", "B1", "Me", "Cv3"),
    ("Sl", "B1", "Bi", "Cv2"),
    ("Sl", "L1", "Sm", "Cv1"),
    ("Sl", "L1", "Me", "Cv4"),
    ("Sl", "L1", "Bi", "Cv3"),
    ("Sl", "L2", "Sm", "Cv2"),
    ("Sl", "L2", "Me", "Cv6"),
    ("Sl", "L2", "Bi", "Cv4"),
    ("Sl", "St", "Sm", "Cv5"),
    ("Sl", "St", "Me", "Cv9"),
    ("Sl", "St", "Bi", "Cv7"),
    ("Sl", "R1", "Sm", "Cv2"),
    ("Sl", "R1", "Me", "Cv6"),
    ("Sl", "R1", "Bi", "Cv4"),
    ("Sl", "R2", "Sm", "Cv1"),
    ("Sl", "R2", "Me", "Cv4"),
    ("Sl", "R2", "Bi", "Cv3"),
    ("Sl", "B2", "Sm", "Cv1"),
    ("Sl", "B2", "Me", "Cv3"),
    ("Sl", "B2", "Bi", "Cv2"),
    ("Mi", "B1", "Sm", "Cv1"),
    ("Mi", "B1", "Me", "Cv2"),
    ("Mi", "B1", "Bi", "Cv1"),
    ("Mi", "L1", "Sm", "Cv1"),
    ("Mi", "L1", "Me", "Cv4"),
    ("Mi", "L1", "Bi", "Cv3"),
    ("Mi", "L2", "Sm", "Cv1"),
    ("Mi", "L2", "Me", "Cv5"),
    ("Mi", "L2", "Bi", "Cv3"),
    ("Mi", "St", "Sm", "Cv8"),
    ("Mi", "St", "Me", "Cv9"),
    ("Mi", "St", "Bi", "Cv9"),
    ("Mi", "R1", "Sm", "Cv1"),
    ("Mi", "R1", "Me", "Cv5"),
    ("Mi", "R1", "Bi", "Cv3"),
    ("Mi", "R2", "Sm", "Cv1"),
    ("Mi", "R2", "Me", "Cv4"),
    ("Mi", "R2", "Bi", "Cv3"),
    ("Mi", "B2", "Sm", "Cv1"),
    ("Mi", "B2", "Me", "Cv2"),
    ("Mi", "B2", "Bi", "Cv1"),
    ("Fa", "B1", "Sm", "Cv1"),
    ("Fa", "B1", "Me", "Cv2"),
    ("Fa", "B1", "Bi", "Cv1"),
    ("Fa", "L1", "Sm", "Cv1"),
    ("Fa", "L1", "Me", "Cv3"),
    ("Fa", "L1", "Bi", "Cv2"),
    ("Fa", "L2", "Sm", "Cv2"),
    ("Fa", "L2", "Me", "Cv5"),
    ("Fa", "L2", "Bi", "Cv3"),
    ("Fa", "St", "Sm", "Cv9"),
    ("Fa", "St", "Me", "Cv9"),
    ("Fa", "St", "Bi", "Cv9"),
    ("Fa", "R1", "Sm", "Cv2"),
    ("Fa", "R1", "Me", "Cv5"),
    ("Fa", "R1", "Bi", "Cv3"),
    ("Fa", "R2", "Sm", "Cv1"),
    ("Fa", "R2", "Me", "Cv3"),
    ("Fa", "R2", "Bi", "Cv2"),
    ("Fa", "B2", "Sm", "Cv1"),
    ("Fa", "B2", "Me", "Cv2"),
    ("Fa", "B2", "Bi", "Cv1"),
];

/// Build the 63 FRB1 rules ready to be added to FLC1's engine.
pub fn frb1_rules() -> Result<Vec<Rule>> {
    FRB1_TABLE
        .iter()
        .enumerate()
        .map(|(i, (sp, an, sr, cv))| {
            Rule::new(
                vec![
                    Antecedent::is("Sp", *sp),
                    Antecedent::is("An", *an),
                    Antecedent::is("Sr", *sr),
                ],
                Connective::And,
                vec![Consequent::is("Cv", *cv)],
            )
            .map(|r| r.with_label(format!("FRB1 rule {i}")))
        })
        .collect()
}

/// The Cv term Table 1 assigns to an exact `(Sp, An, Sr)` term combination,
/// or `None` if the combination does not appear (it always does — the table
/// enumerates the full grid).
#[must_use]
pub fn frb1_lookup(sp: &str, an: &str, sr: &str) -> Option<&'static str> {
    FRB1_TABLE
        .iter()
        .find(|(s, a, r, _)| *s == sp && *a == an && *r == sr)
        .map(|(_, _, _, cv)| *cv)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::PaperParams;
    use fuzzy::RuleBase;
    use std::collections::HashSet;

    #[test]
    fn table_has_63_unique_antecedent_combinations() {
        assert_eq!(FRB1_TABLE.len(), 63);
        let combos: HashSet<(&str, &str, &str)> =
            FRB1_TABLE.iter().map(|(s, a, r, _)| (*s, *a, *r)).collect();
        assert_eq!(combos.len(), 63, "duplicate antecedent combination");
    }

    #[test]
    fn table_covers_the_full_term_grid() {
        let inputs = [
            PaperParams::speed_variable().unwrap(),
            PaperParams::angle_variable().unwrap(),
            PaperParams::service_request_variable().unwrap(),
        ];
        let rb = RuleBase::from_rules(frb1_rules().unwrap());
        assert!(rb.uncovered_combinations(&inputs).is_empty());
    }

    #[test]
    fn all_rules_validate_against_the_paper_variables() {
        let inputs = [
            PaperParams::speed_variable().unwrap(),
            PaperParams::angle_variable().unwrap(),
            PaperParams::service_request_variable().unwrap(),
        ];
        let outputs = [PaperParams::correction_value_output().unwrap()];
        for rule in frb1_rules().unwrap() {
            rule.validate(&inputs, &outputs).unwrap();
        }
    }

    #[test]
    fn spot_check_rows_against_table_1() {
        // Row 10: Sl St Me -> Cv9.
        assert_eq!(frb1_lookup("Sl", "St", "Me"), Some("Cv9"));
        // Row 30: Mi St Sm -> Cv8.
        assert_eq!(frb1_lookup("Mi", "St", "Sm"), Some("Cv8"));
        // Rows 51-53: Fa St * -> Cv9.
        for sr in ["Sm", "Me", "Bi"] {
            assert_eq!(frb1_lookup("Fa", "St", sr), Some("Cv9"));
        }
        // Row 0 and row 62.
        assert_eq!(frb1_lookup("Sl", "B1", "Sm"), Some("Cv1"));
        assert_eq!(frb1_lookup("Fa", "B2", "Bi"), Some("Cv1"));
        // Unknown combination.
        assert_eq!(frb1_lookup("Sl", "St", "Xx"), None);
    }

    #[test]
    fn straight_heading_never_gets_a_worse_cv_than_heading_back() {
        // For every speed and request size, the Cv index for St is >= B1/B2.
        let cv_index = |cv: &str| cv[2..].parse::<u32>().unwrap();
        for sp in ["Sl", "Mi", "Fa"] {
            for sr in ["Sm", "Me", "Bi"] {
                let st = cv_index(frb1_lookup(sp, "St", sr).unwrap());
                for back in ["B1", "B2"] {
                    let b = cv_index(frb1_lookup(sp, back, sr).unwrap());
                    assert!(st >= b, "{sp}/{sr}: St {st} < {back} {b}");
                }
            }
        }
    }

    #[test]
    fn table_is_left_right_symmetric() {
        // L1 mirrors R2, L2 mirrors R1, B1 mirrors B2 in Table 1.
        for sp in ["Sl", "Mi", "Fa"] {
            for sr in ["Sm", "Me", "Bi"] {
                assert_eq!(frb1_lookup(sp, "L1", sr), frb1_lookup(sp, "R2", sr));
                assert_eq!(frb1_lookup(sp, "L2", sr), frb1_lookup(sp, "R1", sr));
                assert_eq!(frb1_lookup(sp, "B1", sr), frb1_lookup(sp, "B2", sr));
            }
        }
    }

    #[test]
    fn rules_carry_row_labels() {
        let rules = frb1_rules().unwrap();
        assert_eq!(rules.len(), 63);
        assert_eq!(rules[10].label(), Some("FRB1 rule 10"));
    }
}
