//! FACS and FACS-P: fuzzy call-admission control for wireless cellular
//! networks.
//!
//! This crate is the primary contribution of the reproduced paper,
//! *"A Fuzzy-based Call Admission Control Scheme for Wireless Cellular
//! Networks Considering Priority of On-going Connections"* (Mino, Barolli,
//! Durresi, Xhafa, Koyama — ICDCS Workshops 2009).  It implements:
//!
//! * **FLC1** ([`Flc1`]) — the first fuzzy logic controller: user Speed
//!   (`Sp`), user Angle (`An`) and Service request (`Sr`) are mapped to a
//!   Correction value (`Cv`) through the 63-rule FRB1 (Table 1 of the
//!   paper).
//! * **FLC2** ([`Flc2`]) — the second controller: `Cv`, the Request type
//!   (`Rq`) and the Counter state (`Cs`) are mapped to a soft Accept/Reject
//!   value (`A/R`) through the 27-rule FRB2 (Table 2).
//! * **FACS-P** ([`FacsPController`]) — the proposed system: the FLC1→FLC2
//!   cascade plus the priority handling for on-going connections (the
//!   Differentiated-service classifier and the RTC/NRTC counters that
//!   inflate the counter state seen by new calls so that admitted — and in
//!   particular real-time — connections keep their QoS).
//! * **FACS** ([`FacsController`]) — the authors' previous system (used as
//!   a comparison point in Figs. 7 and 10): the same cascade but with FLC1
//!   driven by the user-to-station *distance* instead of the service
//!   request, and no priority handling.
//!
//! Both controllers implement [`cellsim::AdmissionController`], so they
//! plug directly into the `cellsim` discrete-event simulator and can be
//! compared against the `scc` baseline.
//!
//! # Quick start
//!
//! ```
//! use cellsim::{SimConfig, Simulator};
//! use facs::FacsPController;
//!
//! let mut controller = FacsPController::paper_default();
//! let mut sim = Simulator::new(SimConfig::paper_default());
//! let report = sim.run_batch(&mut controller, 30);
//! println!("accepted {} of {} requests", report.accepted, report.offered);
//! assert!(report.accepted > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod controller;
pub mod flc1;
pub mod flc2;
pub mod frb1;
pub mod frb2;
pub mod params;
pub mod priority;

pub use controller::{FacsConfig, FacsController, FacsPConfig, FacsPController};
pub use flc1::{DistanceFlc1, Flc1};
pub use flc2::{
    Flc2, Flc2Lut, DEFAULT_LUT_BASE_RESOLUTION, DEFAULT_LUT_MAX_PATCH_NODES,
    DEFAULT_LUT_TARGET_ERROR,
};
pub use params::PaperParams;
pub use priority::{DifferentiatedService, PriorityPolicy, RequestPriority};
