//! The `admitd` telemetry schema.
//!
//! One static [`Schema`] covers the server (per-shard registries plus a
//! server-level registry for connection/HTTP counters) and the bench
//! client (per-connection registries merged at the end).  Following the
//! `cellsim::telem` idiom, metric ids are dense indices into the static
//! schema so the hot path never does a name lookup.

use telemetry::{CounterId, GaugeId, HistogramId, MetricDef, Schema, SpanId};

use crate::wire::Status;

/// Counter ids into [`SCHEMA`].
pub mod counter {
    use super::CounterId;

    /// Admit request frames received.
    pub const FRAMES_ADMIT: CounterId = CounterId(0);
    /// Release request frames received.
    pub const FRAMES_RELEASE: CounterId = CounterId(1);
    /// First of the four response-status counters; see
    /// [`super::response_counter`].
    pub const RESPONSE_BASE: u16 = 2;
    /// Binary-protocol connections accepted.
    pub const CONNECTIONS: CounterId = CounterId(6);
    /// HTTP requests served (all paths).
    pub const HTTP_REQUESTS: CounterId = CounterId(7);
    /// `decide_batch` calls issued by the micro-batching engine.
    pub const BATCHES: CounterId = CounterId(8);
    /// Connections the controller saw expire (implicit releases).
    pub const EXPIRED: CounterId = CounterId(9);
    /// Connections freed because their client disconnected
    /// (`--release-on-disconnect`).
    pub const DISCONNECT_RELEASES: CounterId = CounterId(10);
    /// Chaos injections: connections reset before a response window.
    pub const CHAOS_RESETS: CounterId = CounterId(11);
    /// Chaos injections: response windows truncated mid-frame.
    pub const CHAOS_TRUNCATIONS: CounterId = CounterId(12);
    /// Chaos injections: response windows delayed.
    pub const CHAOS_DELAYS: CounterId = CounterId(13);
}

/// Histogram ids into [`SCHEMA`].
pub mod histogram {
    use super::HistogramId;

    /// Decisions covered by one `decide_batch` call (log2 buckets).
    pub const BATCH_SIZE: HistogramId = HistogramId(0);
    /// Bench-client request → response latency, nanoseconds.
    pub const CLIENT_LATENCY_NS: HistogramId = HistogramId(1);
}

/// Gauge (high-water mark) ids into [`SCHEMA`].
pub mod gauge {
    use super::GaugeId;

    /// High-water mark of concurrently open binary connections.
    pub const OPEN_CONNECTIONS: GaugeId = GaugeId(0);
}

/// Span-timer ids into [`SCHEMA`].
pub mod span {
    use super::SpanId;

    /// Wall time spent inside [`crate::state::World::process`].
    pub const PROCESS: SpanId = SpanId(0);
}

/// The response counter for one wire [`Status`].
#[inline]
#[must_use]
pub fn response_counter(status: Status) -> CounterId {
    let offset = match status {
        Status::Reject => 0,
        Status::Accept => 1,
        Status::Overload => 2,
        Status::Error => 3,
    };
    CounterId(counter::RESPONSE_BASE + offset)
}

/// The `admitd` metric layout.
pub static SCHEMA: Schema = Schema {
    counters: &[
        MetricDef {
            name: "admitd_frames_total",
            help: "Request frames received, by operation",
            labels: &[("op", "admit")],
        },
        MetricDef {
            name: "admitd_frames_total",
            help: "Request frames received, by operation",
            labels: &[("op", "release")],
        },
        MetricDef {
            name: "admitd_responses_total",
            help: "Response frames sent, by status",
            labels: &[("status", "reject")],
        },
        MetricDef {
            name: "admitd_responses_total",
            help: "Response frames sent, by status",
            labels: &[("status", "accept")],
        },
        MetricDef {
            name: "admitd_responses_total",
            help: "Response frames sent, by status",
            labels: &[("status", "overload")],
        },
        MetricDef {
            name: "admitd_responses_total",
            help: "Response frames sent, by status",
            labels: &[("status", "error")],
        },
        MetricDef {
            name: "admitd_connections_total",
            help: "Binary-protocol connections accepted",
            labels: &[],
        },
        MetricDef {
            name: "admitd_http_requests_total",
            help: "HTTP requests served",
            labels: &[],
        },
        MetricDef {
            name: "admitd_batches_total",
            help: "decide_batch calls issued by the micro-batching engine",
            labels: &[],
        },
        MetricDef {
            name: "admitd_expired_releases_total",
            help: "Connections released by holding-time expiry",
            labels: &[],
        },
        MetricDef {
            name: "admitd_disconnect_releases_total",
            help: "Connections freed because their client disconnected",
            labels: &[],
        },
        MetricDef {
            name: "admitd_chaos_injections_total",
            help: "Server-side chaos faults injected, by kind",
            labels: &[("kind", "reset")],
        },
        MetricDef {
            name: "admitd_chaos_injections_total",
            help: "Server-side chaos faults injected, by kind",
            labels: &[("kind", "truncate")],
        },
        MetricDef {
            name: "admitd_chaos_injections_total",
            help: "Server-side chaos faults injected, by kind",
            labels: &[("kind", "delay")],
        },
    ],
    histograms: &[
        MetricDef {
            name: "admitd_batch_size",
            help: "Decisions covered by one decide_batch call (log2 buckets)",
            labels: &[],
        },
        MetricDef {
            name: "admitd_client_latency_ns",
            help: "Bench-client request to response latency in nanoseconds",
            labels: &[],
        },
    ],
    gauges: &[MetricDef {
        name: "admitd_open_connections_high_water",
        help: "High-water mark of concurrently open binary connections",
        labels: &[],
    }],
    spans: &[MetricDef {
        name: "admitd_process_ns",
        help: "Wall time spent applying request batches to world state",
        labels: &[],
    }],
    trace_kinds: &[],
    trace_capacity: 0,
};

#[cfg(test)]
mod tests {
    use super::*;
    use telemetry::{lint_prometheus, Recorder, Registry};

    #[test]
    fn response_counters_line_up_with_the_schema() {
        for (status, label) in [
            (Status::Reject, "reject"),
            (Status::Accept, "accept"),
            (Status::Overload, "overload"),
            (Status::Error, "error"),
        ] {
            let id = response_counter(status);
            let def = SCHEMA.counters[id.0 as usize];
            assert_eq!(def.name, "admitd_responses_total");
            assert_eq!(def.labels, &[("status", label)]);
        }
    }

    #[test]
    fn exposition_lints_clean() {
        let mut reg = Registry::for_schema(&SCHEMA);
        reg.add(counter::FRAMES_ADMIT, 3);
        reg.add(response_counter(Status::Accept), 2);
        reg.observe(histogram::BATCH_SIZE, 17);
        reg.high_water(gauge::OPEN_CONNECTIONS, 4);
        reg.span_ns(span::PROCESS, 12_345);
        lint_prometheus(&reg.snapshot().to_prometheus()).expect("clean exposition");
    }
}
