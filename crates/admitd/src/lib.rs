//! `admitd` — admission control as a service.
//!
//! The paper's admission controllers decide in about a microsecond;
//! this crate is what production would actually deploy around that hot
//! path: a long-running TCP server that owns the authoritative
//! per-cell [`BaseStation`](cellsim::BaseStation) counter state behind
//! sharded locks, answers length-prefixed binary admission requests
//! from many concurrent connections through the controllers'
//! `decide_batch` one-snapshot contract, and exposes live Prometheus
//! metrics (`/metrics`) and a JSON occupancy snapshot (`/state`) over
//! plain HTTP/1.1 — `std::net` only, no async runtime.
//!
//! The crate splits into:
//!
//! - [`wire`] — the binary frame protocol (see `docs/SERVER.md`);
//! - [`state`] — the sharded world, the micro-batching engine and the
//!   snapshot/restore checkpoint path (see `docs/FAULTS.md`);
//! - [`server`] — accept loop, backpressure, HTTP endpoints, shutdown;
//! - [`chaos`] — seeded, deterministic transport-fault injection;
//! - [`client`] — the scenario-replay load generator, with capped
//!   exponential backoff and transparent reconnect;
//! - [`scenario`] — bit-exact reconstruction of a simulator scenario's
//!   arrival stream (the determinism tests replay it through the
//!   server and demand the engine's exact accept/reject sequence);
//! - [`metrics`] — the `admitd` telemetry schema.

pub mod chaos;
pub mod client;
pub mod http;
pub mod metrics;
pub mod scenario;
pub mod server;
pub mod state;
pub mod wire;

pub use chaos::{ChaosAction, ChaosConfig, ChaosInjector};
pub use client::{BenchConfig, BenchReport, RetryConfig};
pub use server::{Server, ServerConfig, ServerSummary};
pub use state::{World, WorldConfig, WorldSnapshot};

use sweep::ControllerSpec;

/// Parse a controller name as accepted by `admitd serve --controller`.
///
/// Accepted names: `facs-p`, `facs-p-lut`, `facs`, `scc`,
/// `always-accept`, and `threshold:NEW/HANDOFF` (two utilisation
/// fractions, e.g. `threshold:0.85/0.95`).
pub fn parse_controller(name: &str) -> Result<ControllerSpec, String> {
    match name {
        "facs-p" => Ok(ControllerSpec::FacsP),
        "facs-p-lut" => Ok(ControllerSpec::FacsPLut),
        "facs" => Ok(ControllerSpec::Facs),
        "scc" => Ok(ControllerSpec::Scc),
        "always-accept" => Ok(ControllerSpec::AlwaysAccept),
        other => {
            if let Some(rest) = other.strip_prefix("threshold:") {
                let (new_call, handoff) = rest
                    .split_once('/')
                    .ok_or_else(|| format!("expected threshold:NEW/HANDOFF, got `{other}`"))?;
                let parse = |s: &str| -> Result<f64, String> {
                    let v: f64 = s
                        .parse()
                        .map_err(|_| format!("`{s}` is not a number in `{other}`"))?;
                    if !(0.0..=1.0).contains(&v) {
                        return Err(format!("threshold `{s}` is outside [0, 1]"));
                    }
                    Ok(v)
                };
                Ok(ControllerSpec::Threshold {
                    new_call: parse(new_call)?,
                    handoff: parse(handoff)?,
                })
            } else {
                Err(format!(
                    "unknown controller `{other}` (expected facs-p, facs-p-lut, facs, scc, \
                     always-accept or threshold:NEW/HANDOFF)"
                ))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn controller_names_round_trip_through_labels() {
        for name in ["facs-p", "facs-p-lut", "facs", "scc", "always-accept"] {
            let spec = parse_controller(name).unwrap();
            assert_eq!(spec.label().to_lowercase(), name);
        }
        assert_eq!(
            parse_controller("threshold:0.85/0.95").unwrap(),
            ControllerSpec::Threshold {
                new_call: 0.85,
                handoff: 0.95
            }
        );
        assert!(parse_controller("nope").is_err());
        assert!(parse_controller("threshold:2.0/0.5").is_err());
        assert!(parse_controller("threshold:0.5").is_err());
    }
}
