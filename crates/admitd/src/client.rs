//! The scenario-replay load generator (`admitd bench`).
//!
//! Replays a scenario's batch arrival stream (rebuilt bit-identically
//! via [`crate::scenario::batch_frames`]) against a running server
//! over N concurrent connections.  Frames are pipelined in fixed-size
//! windows — one `write_all` per window, then one response read per
//! outstanding frame — and per-frame latency is recorded into a
//! [`telemetry`] log2 histogram, merged across connections for the
//! final report.

use std::collections::VecDeque;
use std::io::{self, Read, Write};
use std::net::TcpStream;
use std::time::Instant;

use cellsim::SimConfig;
use serde::Serialize;
use telemetry::{Recorder, Registry, TelemetrySnapshot};

use crate::metrics::{self, SCHEMA};
use crate::scenario;
use crate::wire::{self, Request, Status};

/// Pipelined frames per write window.
const WINDOW: usize = 64;

/// Load-generator parameters.
#[derive(Debug, Clone)]
pub struct BenchConfig {
    /// Server address, e.g. `127.0.0.1:4640`.
    pub addr: String,
    /// Concurrent connections.
    pub connections: usize,
    /// Requests replayed per connection.
    pub requests_per_connection: usize,
    /// Scenario whose arrival stream is replayed.
    pub sim: SimConfig,
}

/// Aggregated results of one bench run.
#[derive(Debug, Clone, Serialize)]
pub struct BenchReport {
    /// Connections that ran.
    pub connections: usize,
    /// Total requests sent (and responses received).
    pub requests: u64,
    /// Accept responses.
    pub accepted: u64,
    /// Reject responses.
    pub rejected: u64,
    /// Overload responses.
    pub overloaded: u64,
    /// Error responses.
    pub errors: u64,
    /// Wall-clock time of the slowest connection (seconds).
    pub elapsed_s: f64,
    /// Requests per second across all connections.
    pub requests_per_sec: f64,
    /// Median request→response latency (nanoseconds, log2-bucket
    /// upper bound).
    pub latency_p50_ns: u64,
    /// 99th-percentile latency (nanoseconds, log2-bucket upper bound).
    pub latency_p99_ns: u64,
}

struct ConnStats {
    sent: u64,
    accepted: u64,
    rejected: u64,
    overloaded: u64,
    errors: u64,
    elapsed_s: f64,
    telemetry: TelemetrySnapshot,
}

/// Run the load generator against a live server.
pub fn run(config: &BenchConfig) -> io::Result<BenchReport> {
    let connections = config.connections.max(1);
    let per_conn = config.requests_per_connection.max(1);
    let mut handles = Vec::with_capacity(connections);
    for conn_index in 0..connections {
        let addr = config.addr.clone();
        let sim = config.sim.clone();
        handles.push(std::thread::spawn(move || -> io::Result<ConnStats> {
            // Distinct id ranges so concurrent replays never collide on
            // live connection ids.
            let offset = conn_index as u64 * 1_000_000_000;
            let frames = scenario::batch_frames(&sim, per_conn, offset);
            run_connection(&addr, &frames)
        }));
    }
    let mut merged = TelemetrySnapshot::default();
    let mut report = BenchReport {
        connections,
        requests: 0,
        accepted: 0,
        rejected: 0,
        overloaded: 0,
        errors: 0,
        elapsed_s: 0.0,
        requests_per_sec: 0.0,
        latency_p50_ns: 0,
        latency_p99_ns: 0,
    };
    for handle in handles {
        let stats = handle
            .join()
            .map_err(|_| io::Error::other("bench connection thread panicked"))??;
        report.requests += stats.sent;
        report.accepted += stats.accepted;
        report.rejected += stats.rejected;
        report.overloaded += stats.overloaded;
        report.errors += stats.errors;
        report.elapsed_s = report.elapsed_s.max(stats.elapsed_s);
        merged.merge(&stats.telemetry);
    }
    if report.elapsed_s > 0.0 {
        report.requests_per_sec = report.requests as f64 / report.elapsed_s;
    }
    (report.latency_p50_ns, report.latency_p99_ns) = latency_percentiles(&merged);
    Ok(report)
}

/// Replay one frame stream over one connection, returning its stats.
fn run_connection(addr: &str, frames: &[Request]) -> io::Result<ConnStats> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_nodelay(true)?;
    let mut registry = Registry::for_schema(&SCHEMA);
    let mut stats = ConnStats {
        sent: 0,
        accepted: 0,
        rejected: 0,
        overloaded: 0,
        errors: 0,
        elapsed_s: 0.0,
        telemetry: TelemetrySnapshot::default(),
    };
    let mut outbuf = Vec::with_capacity(WINDOW * 72);
    let mut inbuf: Vec<u8> = Vec::with_capacity(WINDOW * 32);
    let mut chunk = [0u8; 16 * 1024];
    let mut sent_at: VecDeque<Instant> = VecDeque::with_capacity(WINDOW);
    let started = Instant::now();
    stream.write_all(&wire::MAGIC)?;
    for window in frames.chunks(WINDOW) {
        outbuf.clear();
        for frame in window {
            wire::encode_request(frame, &mut outbuf);
        }
        stream.write_all(&outbuf)?;
        let now = Instant::now();
        sent_at.extend(std::iter::repeat_n(now, window.len()));
        stats.sent += window.len() as u64;

        let mut pending = window.len();
        while pending > 0 {
            if let Some((start, end)) = wire::next_frame(&inbuf)
                .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?
            {
                let response = wire::decode_response(&inbuf[start..end])
                    .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
                inbuf.drain(..end);
                pending -= 1;
                if let Some(at) = sent_at.pop_front() {
                    let ns = at.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64;
                    registry.observe(metrics::histogram::CLIENT_LATENCY_NS, ns);
                }
                match response.status {
                    Status::Accept => stats.accepted += 1,
                    Status::Reject => stats.rejected += 1,
                    Status::Overload => stats.overloaded += 1,
                    Status::Error => stats.errors += 1,
                }
                continue;
            }
            let n = stream.read(&mut chunk)?;
            if n == 0 {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "server closed with responses outstanding",
                ));
            }
            inbuf.extend_from_slice(&chunk[..n]);
        }
    }
    stats.elapsed_s = started.elapsed().as_secs_f64();
    stats.telemetry = registry.snapshot();
    Ok(stats)
}

/// `(p50, p99)` upper bounds from the merged client latency histogram.
fn latency_percentiles(snapshot: &TelemetrySnapshot) -> (u64, u64) {
    let Some(hist) = snapshot
        .histograms
        .iter()
        .find(|h| h.name == "admitd_client_latency_ns")
    else {
        return (0, 0);
    };
    (percentile(hist, 0.50), percentile(hist, 0.99))
}

fn percentile(hist: &telemetry::HistogramSnapshot, q: f64) -> u64 {
    if hist.count == 0 {
        return 0;
    }
    let target = (hist.count as f64 * q).ceil() as u64;
    let mut cumulative = 0;
    for bucket in &hist.buckets {
        cumulative += bucket.count;
        if cumulative >= target {
            return bucket.le;
        }
    }
    hist.buckets.last().map_or(0, |b| b.le)
}

#[cfg(test)]
mod tests {
    use super::*;
    use telemetry::{BucketCount, HistogramSnapshot};

    #[test]
    fn percentiles_walk_the_buckets() {
        let hist = HistogramSnapshot {
            name: "admitd_client_latency_ns".into(),
            count: 100,
            sum: 0,
            buckets: vec![
                BucketCount {
                    le: 1024,
                    count: 60,
                },
                BucketCount {
                    le: 2048,
                    count: 39,
                },
                BucketCount { le: 4096, count: 1 },
            ],
            ..Default::default()
        };
        assert_eq!(percentile(&hist, 0.50), 1024);
        assert_eq!(percentile(&hist, 0.99), 2048);
        assert_eq!(percentile(&hist, 1.0), 4096);
    }
}
