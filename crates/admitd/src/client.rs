//! The scenario-replay load generator (`admitd bench`).
//!
//! Replays a scenario's batch arrival stream (rebuilt bit-identically
//! via [`crate::scenario::batch_frames`]) against a running server
//! over N concurrent connections.  Frames are pipelined in fixed-size
//! windows — one `write_all` per window, then one response read per
//! outstanding frame — and per-frame latency is recorded into a
//! [`telemetry`] log2 histogram, merged across connections for the
//! final report.
//!
//! # Resilience
//!
//! Each connection keeps a cursor over its frame stream and advances
//! it only on acknowledged responses.  When the transport fails — a
//! reset, a truncated frame, a missed per-request deadline — the
//! connection backs off (capped exponential, deterministic jitter from
//! the [`RetryConfig::seed`]), reconnects transparently and resends
//! every unacknowledged frame.  The server answers replayed admits
//! idempotently, so at-least-once delivery converges on exactly-once
//! state.

use std::collections::VecDeque;
use std::io::{self, Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

use cellsim::{SimConfig, SimRng};
use serde::Serialize;
use telemetry::{Recorder, Registry, TelemetrySnapshot};

use crate::metrics::{self, SCHEMA};
use crate::scenario;
use crate::wire::{self, Request, Status};

/// Pipelined frames per write window.
const WINDOW: usize = 64;

/// Reconnect, backoff and deadline policy of the load generator.
#[derive(Debug, Clone)]
pub struct RetryConfig {
    /// Total connection attempts per bench connection (1 = fail on the
    /// first transport error, the pre-chaos behaviour).
    pub max_attempts: u32,
    /// Backoff before the first reconnect; doubles per consecutive
    /// failure.
    pub base_backoff: Duration,
    /// Cap on the (pre-jitter) backoff.
    pub max_backoff: Duration,
    /// Per-request response deadline; `None` waits indefinitely.
    pub deadline: Option<Duration>,
    /// Seed of the deterministic backoff jitter.
    pub seed: u64,
}

impl Default for RetryConfig {
    fn default() -> Self {
        Self {
            max_attempts: 1,
            base_backoff: Duration::from_millis(25),
            max_backoff: Duration::from_secs(2),
            deadline: None,
            seed: 0x00AD_5EED,
        }
    }
}

impl RetryConfig {
    /// The jittered backoff before reconnect attempt number
    /// `failures` (1-based): `base * 2^(failures-1)` capped at
    /// [`RetryConfig::max_backoff`], scaled by a uniform draw in
    /// `[0.5, 1.0)` so a fleet of clients never thunders back in
    /// lockstep.
    #[must_use]
    pub fn backoff(&self, failures: u32, rng: &mut SimRng) -> Duration {
        let doubled = self.base_backoff.as_secs_f64() * f64::from(1_u32 << (failures - 1).min(16));
        let capped = doubled.min(self.max_backoff.as_secs_f64());
        Duration::from_secs_f64(capped * rng.uniform(0.5, 1.0))
    }
}

/// Load-generator parameters.
#[derive(Debug, Clone)]
pub struct BenchConfig {
    /// Server address, e.g. `127.0.0.1:4640`.
    pub addr: String,
    /// Concurrent connections.
    pub connections: usize,
    /// Requests replayed per connection.
    pub requests_per_connection: usize,
    /// Scenario whose arrival stream is replayed.
    pub sim: SimConfig,
    /// Reconnect/backoff/deadline policy.
    pub retry: RetryConfig,
}

impl Default for BenchConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:4640".to_string(),
            connections: 4,
            requests_per_connection: 25_000,
            sim: SimConfig::paper_default(),
            retry: RetryConfig::default(),
        }
    }
}

/// Aggregated results of one bench run.
#[derive(Debug, Clone, Serialize)]
pub struct BenchReport {
    /// Connections that ran.
    pub connections: usize,
    /// Total requests sent (and responses received).
    pub requests: u64,
    /// Accept responses.
    pub accepted: u64,
    /// Reject responses.
    pub rejected: u64,
    /// Overload responses.
    pub overloaded: u64,
    /// Error responses.
    pub errors: u64,
    /// Wall-clock time of the slowest connection (seconds).
    pub elapsed_s: f64,
    /// Requests per second across all connections.
    pub requests_per_sec: f64,
    /// Median request→response latency (nanoseconds, log2-bucket
    /// upper bound).
    pub latency_p50_ns: u64,
    /// 99th-percentile latency (nanoseconds, log2-bucket upper bound).
    pub latency_p99_ns: u64,
    /// Transparent reconnects performed across all connections.
    pub reconnects: u64,
}

struct ConnStats {
    sent: u64,
    accepted: u64,
    rejected: u64,
    overloaded: u64,
    errors: u64,
    reconnects: u64,
    elapsed_s: f64,
    telemetry: TelemetrySnapshot,
}

/// Run the load generator against a live server.
pub fn run(config: &BenchConfig) -> io::Result<BenchReport> {
    let connections = config.connections.max(1);
    let per_conn = config.requests_per_connection.max(1);
    let mut handles = Vec::with_capacity(connections);
    for conn_index in 0..connections {
        let addr = config.addr.clone();
        let sim = config.sim.clone();
        let retry = config.retry.clone();
        handles.push(std::thread::spawn(move || -> io::Result<ConnStats> {
            // Distinct id ranges so concurrent replays never collide on
            // live connection ids.
            let offset = conn_index as u64 * 1_000_000_000;
            let frames = scenario::batch_frames(&sim, per_conn, offset);
            run_connection(&addr, &frames, &retry, conn_index as u64)
        }));
    }
    let mut merged = TelemetrySnapshot::default();
    let mut report = BenchReport {
        connections,
        requests: 0,
        accepted: 0,
        rejected: 0,
        overloaded: 0,
        errors: 0,
        elapsed_s: 0.0,
        requests_per_sec: 0.0,
        latency_p50_ns: 0,
        latency_p99_ns: 0,
        reconnects: 0,
    };
    for handle in handles {
        let stats = handle
            .join()
            .map_err(|_| io::Error::other("bench connection thread panicked"))??;
        report.requests += stats.sent;
        report.accepted += stats.accepted;
        report.rejected += stats.rejected;
        report.overloaded += stats.overloaded;
        report.errors += stats.errors;
        report.reconnects += stats.reconnects;
        report.elapsed_s = report.elapsed_s.max(stats.elapsed_s);
        merged.merge(&stats.telemetry);
    }
    if report.elapsed_s > 0.0 {
        report.requests_per_sec = report.requests as f64 / report.elapsed_s;
    }
    (report.latency_p50_ns, report.latency_p99_ns) = latency_percentiles(&merged);
    Ok(report)
}

/// Replay one frame stream, reconnecting through transport failures,
/// and return the connection's stats.
///
/// The cursor advances only on acknowledged responses, so every frame
/// is counted exactly once even when the tail of a window has to be
/// resent after a reconnect.
fn run_connection(
    addr: &str,
    frames: &[Request],
    retry: &RetryConfig,
    conn_index: u64,
) -> io::Result<ConnStats> {
    let mut registry = Registry::for_schema(&SCHEMA);
    let mut stats = ConnStats {
        sent: 0,
        accepted: 0,
        rejected: 0,
        overloaded: 0,
        errors: 0,
        reconnects: 0,
        elapsed_s: 0.0,
        telemetry: TelemetrySnapshot::default(),
    };
    let mut rng = SimRng::new(retry.seed).derive(conn_index ^ 0x00BA_C0FF);
    let max_attempts = retry.max_attempts.max(1);
    let mut cursor = 0usize;
    let mut attempt = 0u32;
    let started = Instant::now();
    while cursor < frames.len() {
        attempt += 1;
        match replay_from(
            addr,
            frames,
            &mut cursor,
            &mut stats,
            &mut registry,
            retry.deadline,
        ) {
            Ok(()) => break,
            Err(e) if attempt >= max_attempts => {
                return Err(io::Error::new(
                    e.kind(),
                    format!(
                        "connection to {addr} failed after {attempt} attempt(s): {e} \
                         (is `admitd serve` running at {addr}?)"
                    ),
                ));
            }
            Err(_) => {
                stats.reconnects += 1;
                std::thread::sleep(retry.backoff(attempt, &mut rng));
            }
        }
    }
    stats.elapsed_s = started.elapsed().as_secs_f64();
    stats.telemetry = registry.snapshot();
    Ok(stats)
}

/// One connection attempt: connect, then pipeline `frames[*cursor..]`
/// in windows, advancing the cursor per acknowledged response.
fn replay_from(
    addr: &str,
    frames: &[Request],
    cursor: &mut usize,
    stats: &mut ConnStats,
    registry: &mut Registry,
    deadline: Option<Duration>,
) -> io::Result<()> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_nodelay(true)?;
    stream.set_read_timeout(deadline)?;
    let mut outbuf = Vec::with_capacity(WINDOW * 72);
    let mut inbuf: Vec<u8> = Vec::with_capacity(WINDOW * 32);
    let mut chunk = [0u8; 16 * 1024];
    let mut sent_at: VecDeque<Instant> = VecDeque::with_capacity(WINDOW);
    stream.write_all(&wire::MAGIC)?;
    while *cursor < frames.len() {
        let window = &frames[*cursor..(*cursor + WINDOW).min(frames.len())];
        outbuf.clear();
        for frame in window {
            wire::encode_request(frame, &mut outbuf);
        }
        stream.write_all(&outbuf)?;
        let now = Instant::now();
        sent_at.clear();
        sent_at.extend(std::iter::repeat_n(now, window.len()));

        let mut pending = window.len();
        while pending > 0 {
            if let Some((start, end)) = wire::next_frame(&inbuf)
                .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?
            {
                let response = wire::decode_response(&inbuf[start..end])
                    .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
                inbuf.drain(..end);
                pending -= 1;
                *cursor += 1;
                stats.sent += 1;
                if let Some(at) = sent_at.pop_front() {
                    let ns = at.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64;
                    registry.observe(metrics::histogram::CLIENT_LATENCY_NS, ns);
                }
                match response.status {
                    Status::Accept => stats.accepted += 1,
                    Status::Reject => stats.rejected += 1,
                    Status::Overload => stats.overloaded += 1,
                    Status::Error => stats.errors += 1,
                }
                continue;
            }
            let n = match stream.read(&mut chunk) {
                Ok(n) => n,
                Err(e)
                    if matches!(
                        e.kind(),
                        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                    ) =>
                {
                    return Err(io::Error::new(
                        io::ErrorKind::TimedOut,
                        "request deadline exceeded",
                    ));
                }
                Err(e) => return Err(e),
            };
            if n == 0 {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "server closed with responses outstanding",
                ));
            }
            inbuf.extend_from_slice(&chunk[..n]);
        }
    }
    Ok(())
}

/// `(p50, p99)` upper bounds from the merged client latency histogram.
fn latency_percentiles(snapshot: &TelemetrySnapshot) -> (u64, u64) {
    let Some(hist) = snapshot
        .histograms
        .iter()
        .find(|h| h.name == "admitd_client_latency_ns")
    else {
        return (0, 0);
    };
    (percentile(hist, 0.50), percentile(hist, 0.99))
}

fn percentile(hist: &telemetry::HistogramSnapshot, q: f64) -> u64 {
    if hist.count == 0 {
        return 0;
    }
    let target = (hist.count as f64 * q).ceil() as u64;
    let mut cumulative = 0;
    for bucket in &hist.buckets {
        cumulative += bucket.count;
        if cumulative >= target {
            return bucket.le;
        }
    }
    hist.buckets.last().map_or(0, |b| b.le)
}

#[cfg(test)]
mod tests {
    use super::*;
    use telemetry::{BucketCount, HistogramSnapshot};

    #[test]
    fn percentiles_walk_the_buckets() {
        let hist = HistogramSnapshot {
            name: "admitd_client_latency_ns".into(),
            count: 100,
            sum: 0,
            buckets: vec![
                BucketCount {
                    le: 1024,
                    count: 60,
                },
                BucketCount {
                    le: 2048,
                    count: 39,
                },
                BucketCount { le: 4096, count: 1 },
            ],
            ..Default::default()
        };
        assert_eq!(percentile(&hist, 0.50), 1024);
        assert_eq!(percentile(&hist, 0.99), 2048);
        assert_eq!(percentile(&hist, 1.0), 4096);
    }
}
