//! Rebuild a simulator scenario's batch arrival stream as wire frames.
//!
//! [`Simulator::run_batch`] derives its generator
//! seed and its per-request distance draws from documented, public
//! seeding rules (`SimRng::new(seed).derive(0xD15C)`, generator stream
//! `1`), so an external client can reproduce the *exact* request
//! sequence — ids, classes, arrival times, holding times, kinematics
//! and distances — the in-process engine would offer.  That is what
//! makes the server's determinism contract testable end to end: replay
//! these frames over one connection and the accept/reject sequence
//! must be bit-identical to the engine's.
//!
//! [`Simulator::run_batch`]: cellsim::Simulator::run_batch

use cellsim::{CellGrid, CellId, SimConfig, SimRng, TrafficGenerator};

use crate::wire::{AdmitFrame, Request};

/// The batch arrival stream of `config`, as admit frames against the
/// origin cell — bit-identical to the requests
/// [`cellsim::Simulator::run_batch`] would offer, including the
/// distance draws.
///
/// `id_offset` shifts every connection id; use distinct offsets when
/// several connections replay the same scenario against one world so
/// ids never collide.
#[must_use]
pub fn batch_frames(config: &SimConfig, n: usize, id_offset: u64) -> Vec<Request> {
    let base = SimRng::new(config.seed).derive(0xD15C);
    let mut generator = TrafficGenerator::with_model(
        config.traffic.clone(),
        &config.traffic_model,
        base.derive(1).seed(),
    );
    let calls = generator.generate_batch(n);
    // `offer_requests` draws one distance per request from the same
    // stream, after deriving the generator seed.
    let mut rng = base;
    let grid = CellGrid::new(config.grid_radius_cells, config.cell_radius_m);
    let origin = grid
        .index_of(&CellId::origin())
        .expect("every grid contains the origin cell");
    calls
        .iter()
        .map(|call| {
            let distance = rng.uniform(0.0, grid.cell_radius_m()).max(0.0);
            Request::Admit(AdmitFrame {
                cell: origin.0,
                id: call.id + id_offset,
                class: call.class,
                is_handoff: call.is_handoff,
                bandwidth: call.bandwidth,
                time: call.arrival_time,
                holding_time: call.holding_time,
                speed_kmh: call.speed_kmh,
                angle_deg: call.angle_deg,
                distance_m: Some(distance),
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cellsim::{AlwaysAccept, Simulator};

    #[test]
    fn frames_are_deterministic_and_offset_shifts_ids() {
        let config = SimConfig::paper_default();
        let a = batch_frames(&config, 32, 0);
        let b = batch_frames(&config, 32, 0);
        assert_eq!(a, b);
        let shifted = batch_frames(&config, 32, 1_000);
        for (orig, moved) in a.iter().zip(&shifted) {
            assert_eq!(orig.id() + 1_000, moved.id());
        }
    }

    /// The stream must stay pinned to the engine: offering the same
    /// calls through `run_batch` admits exactly as many connections as
    /// the frame count predicts it was built from.
    #[test]
    fn frame_count_matches_the_engine_workload() {
        let config = SimConfig::paper_default();
        let frames = batch_frames(&config, 48, 0);
        assert_eq!(frames.len(), 48);
        let mut sim = Simulator::new(config);
        let report = sim.run_batch(&mut AlwaysAccept, 48);
        assert_eq!(report.metrics.offered(), 48);
    }
}
