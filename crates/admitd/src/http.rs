//! Minimal HTTP/1.1 responder for the observability endpoints.
//!
//! Connections that do not open with the binary magic are parsed as one
//! HTTP request and answered with `Connection: close`:
//!
//! - `GET /metrics` — Prometheus text exposition of the merged server
//!   and shard registries (always passes `telemetry::lint_prometheus`).
//! - `GET /state` — JSON per-cell occupancy snapshot.
//! - `GET /healthz` — liveness probe (`ok`).
//!
//! Anything else gets a 404; non-GET methods get a 405.

/// A rendered HTTP response, ready to write.
#[must_use]
pub fn render_response(status: u16, reason: &str, content_type: &str, body: &str) -> Vec<u8> {
    let mut out = Vec::with_capacity(body.len() + 128);
    out.extend_from_slice(
        format!(
            "HTTP/1.1 {status} {reason}\r\nContent-Type: {content_type}\r\n\
             Content-Length: {}\r\nConnection: close\r\n\r\n",
            body.len()
        )
        .as_bytes(),
    );
    out.extend_from_slice(body.as_bytes());
    out
}

/// The request target of an HTTP request head, if it is a well-formed
/// GET; `Err` carries the ready-to-write error response.
pub fn parse_get_target(head: &str) -> Result<String, Vec<u8>> {
    let request_line = head.lines().next().unwrap_or("");
    let mut parts = request_line.split_whitespace();
    let method = parts.next().unwrap_or("");
    let target = parts.next().unwrap_or("");
    if method.is_empty() || target.is_empty() {
        return Err(render_response(
            400,
            "Bad Request",
            "text/plain; charset=utf-8",
            "malformed request line\n",
        ));
    }
    if method != "GET" {
        return Err(render_response(
            405,
            "Method Not Allowed",
            "text/plain; charset=utf-8",
            "only GET is supported\n",
        ));
    }
    Ok(target.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_get_targets() {
        assert_eq!(
            parse_get_target("GET /metrics HTTP/1.1\r\nHost: x\r\n\r\n").unwrap(),
            "/metrics"
        );
        assert!(parse_get_target("POST /metrics HTTP/1.1\r\n\r\n").is_err());
        assert!(parse_get_target("\r\n\r\n").is_err());
    }

    #[test]
    fn renders_content_length() {
        let resp = render_response(200, "OK", "text/plain; charset=utf-8", "ok\n");
        let text = String::from_utf8(resp).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("Content-Length: 3\r\n"));
        assert!(text.ends_with("\r\n\r\nok\n"));
    }
}
