//! The length-prefixed binary wire protocol of `admitd`.
//!
//! A client opens a TCP connection and sends the 4-byte magic
//! [`MAGIC`] (`b"FAC1"`); everything after the magic is a stream of
//! frames, each a little-endian `u32` payload length followed by the
//! payload.  Connections that do *not* start with the magic are served
//! as HTTP/1.1 (`/metrics`, `/state`, `/healthz`) instead.
//!
//! Two request payloads exist — [`AdmitFrame`] (offer one call /
//! handoff to a cell) and [`ReleaseFrame`] (end an admitted
//! connection) — and one [`Response`] payload.  The server answers
//! every request frame with exactly one response frame, in request
//! order.  All multi-byte fields are little-endian; see
//! `docs/SERVER.md` for the normative byte layout.

use cellsim::ServiceClass;

/// Connection-opening magic selecting the binary protocol.
pub const MAGIC: [u8; 4] = *b"FAC1";

/// Upper bound on a frame payload, bytes.  Both sides reject frames
/// whose length prefix exceeds this — a corrupt or hostile length can
/// never make the peer buffer unboundedly.
pub const MAX_PAYLOAD: usize = 256;

/// Payload length of an encoded [`AdmitFrame`].
pub const ADMIT_PAYLOAD_LEN: usize = 60;
/// Payload length of an encoded [`ReleaseFrame`].
pub const RELEASE_PAYLOAD_LEN: usize = 24;
/// Payload length of an encoded [`Response`].
pub const RESPONSE_PAYLOAD_LEN: usize = 20;

const OP_ADMIT: u8 = 1;
const OP_RELEASE: u8 = 2;

/// Offer one new call or handoff to a cell.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdmitFrame {
    /// Dense cell index ([`cellsim::CellIdx`]) of the serving cell.
    pub cell: u32,
    /// Connection id; must be unique among the cell's live connections.
    pub id: u64,
    /// Service class of the request.
    pub class: ServiceClass,
    /// `true` for a handoff of an on-going connection, `false` for a
    /// new call.
    pub is_handoff: bool,
    /// Requested bandwidth (BU).
    pub bandwidth: u32,
    /// Arrival time on the caller's clock (seconds).  The server's
    /// per-cell clock only moves forward, so out-of-order timestamps
    /// are clamped, never rewound.
    pub time: f64,
    /// Expected holding time (seconds).
    pub holding_time: f64,
    /// User speed (km/h) — the `Sp` input of FLC1.
    pub speed_kmh: f64,
    /// Heading relative to the serving base station (degrees) — the
    /// `An` input of FLC1.
    pub angle_deg: f64,
    /// Distance to the base station (metres); `None` when unknown
    /// (encoded as NaN on the wire).
    pub distance_m: Option<f64>,
}

/// Release an admitted connection (normal completion or handoff-out).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReleaseFrame {
    /// Dense cell index of the serving cell.
    pub cell: u32,
    /// Connection id to release.
    pub id: u64,
    /// Release time on the caller's clock (seconds).
    pub time: f64,
}

/// One request frame.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Request {
    /// Offer a call ([`AdmitFrame`]).
    Admit(AdmitFrame),
    /// Release a connection ([`ReleaseFrame`]).
    Release(ReleaseFrame),
}

impl Request {
    /// The connection id the frame refers to.
    #[must_use]
    pub fn id(&self) -> u64 {
        match self {
            Request::Admit(f) => f.id,
            Request::Release(f) => f.id,
        }
    }
}

/// Outcome carried by a [`Response`] frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Status {
    /// The request was rejected by policy or capacity.
    Reject,
    /// The request was admitted (or the release succeeded).
    Accept,
    /// The request was shed by backpressure before any decision was
    /// made; the caller may retry.
    Overload,
    /// The request was malformed or referred to unknown state (bad
    /// cell index, duplicate or unknown connection id).
    Error,
}

impl Status {
    fn from_byte(b: u8) -> Result<Self, WireError> {
        match b {
            0 => Ok(Status::Reject),
            1 => Ok(Status::Accept),
            2 => Ok(Status::Overload),
            3 => Ok(Status::Error),
            other => Err(WireError::BadStatus(other)),
        }
    }

    fn to_byte(self) -> u8 {
        match self {
            Status::Reject => 0,
            Status::Accept => 1,
            Status::Overload => 2,
            Status::Error => 3,
        }
    }
}

/// The server's answer to one request frame.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Response {
    /// Outcome.
    pub status: Status,
    /// Echo of the request's connection id.
    pub id: u64,
    /// The controller's decision score (`-1` for capacity rejections,
    /// `0` for releases/overload/errors).
    pub score: f64,
}

impl Response {
    /// An overload response for a shed request.
    #[must_use]
    pub fn overload(id: u64) -> Self {
        Self {
            status: Status::Overload,
            id,
            score: 0.0,
        }
    }

    /// An error response for a malformed or unknown-state request.
    #[must_use]
    pub fn error(id: u64) -> Self {
        Self {
            status: Status::Error,
            id,
            score: 0.0,
        }
    }
}

/// Decode errors for either direction of the protocol.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The length prefix exceeded [`MAX_PAYLOAD`].
    Oversized(usize),
    /// The payload length did not match the opcode's fixed layout.
    BadLength {
        /// Opcode (or 0 for a response frame).
        op: u8,
        /// Actual payload length.
        len: usize,
    },
    /// Unknown opcode byte.
    BadOp(u8),
    /// Unknown status byte in a response.
    BadStatus(u8),
    /// Unknown service-class byte.
    BadClass(u8),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Oversized(len) => {
                write!(f, "frame payload of {len} bytes exceeds {MAX_PAYLOAD}")
            }
            WireError::BadLength { op, len } => {
                write!(f, "payload length {len} is wrong for opcode {op}")
            }
            WireError::BadOp(op) => write!(f, "unknown opcode {op}"),
            WireError::BadStatus(s) => write!(f, "unknown response status {s}"),
            WireError::BadClass(c) => write!(f, "unknown service class {c}"),
        }
    }
}

impl std::error::Error for WireError {}

fn class_to_byte(class: ServiceClass) -> u8 {
    class.index() as u8
}

fn class_from_byte(b: u8) -> Result<ServiceClass, WireError> {
    ServiceClass::ALL
        .get(b as usize)
        .copied()
        .ok_or(WireError::BadClass(b))
}

fn push_f64(buf: &mut Vec<u8>, v: f64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn read_u32(p: &[u8], at: usize) -> u32 {
    u32::from_le_bytes(p[at..at + 4].try_into().expect("4 bytes"))
}

fn read_u64(p: &[u8], at: usize) -> u64 {
    u64::from_le_bytes(p[at..at + 8].try_into().expect("8 bytes"))
}

fn read_f64(p: &[u8], at: usize) -> f64 {
    f64::from_le_bytes(p[at..at + 8].try_into().expect("8 bytes"))
}

/// Append one length-prefixed request frame to `buf`.
pub fn encode_request(request: &Request, buf: &mut Vec<u8>) {
    match request {
        Request::Admit(fr) => {
            buf.extend_from_slice(&(ADMIT_PAYLOAD_LEN as u32).to_le_bytes());
            buf.push(OP_ADMIT);
            buf.push(u8::from(fr.is_handoff));
            buf.push(class_to_byte(fr.class));
            buf.push(0);
            buf.extend_from_slice(&fr.cell.to_le_bytes());
            buf.extend_from_slice(&fr.id.to_le_bytes());
            buf.extend_from_slice(&fr.bandwidth.to_le_bytes());
            push_f64(buf, fr.time);
            push_f64(buf, fr.holding_time);
            push_f64(buf, fr.speed_kmh);
            push_f64(buf, fr.angle_deg);
            push_f64(buf, fr.distance_m.unwrap_or(f64::NAN));
        }
        Request::Release(fr) => {
            buf.extend_from_slice(&(RELEASE_PAYLOAD_LEN as u32).to_le_bytes());
            buf.push(OP_RELEASE);
            buf.extend_from_slice(&[0, 0, 0]);
            buf.extend_from_slice(&fr.cell.to_le_bytes());
            buf.extend_from_slice(&fr.id.to_le_bytes());
            push_f64(buf, fr.time);
        }
    }
}

/// Decode one request payload (the bytes *after* the length prefix).
pub fn decode_request(payload: &[u8]) -> Result<Request, WireError> {
    let op = *payload
        .first()
        .ok_or(WireError::BadLength { op: 0, len: 0 })?;
    match op {
        OP_ADMIT => {
            if payload.len() != ADMIT_PAYLOAD_LEN {
                return Err(WireError::BadLength {
                    op,
                    len: payload.len(),
                });
            }
            let distance = read_f64(payload, 52);
            Ok(Request::Admit(AdmitFrame {
                is_handoff: payload[1] != 0,
                class: class_from_byte(payload[2])?,
                cell: read_u32(payload, 4),
                id: read_u64(payload, 8),
                bandwidth: read_u32(payload, 16),
                time: read_f64(payload, 20),
                holding_time: read_f64(payload, 28),
                speed_kmh: read_f64(payload, 36),
                angle_deg: read_f64(payload, 44),
                distance_m: if distance.is_nan() {
                    None
                } else {
                    Some(distance)
                },
            }))
        }
        OP_RELEASE => {
            if payload.len() != RELEASE_PAYLOAD_LEN {
                return Err(WireError::BadLength {
                    op,
                    len: payload.len(),
                });
            }
            Ok(Request::Release(ReleaseFrame {
                cell: read_u32(payload, 4),
                id: read_u64(payload, 8),
                time: read_f64(payload, 16),
            }))
        }
        other => Err(WireError::BadOp(other)),
    }
}

/// Append one length-prefixed response frame to `buf`.
pub fn encode_response(response: &Response, buf: &mut Vec<u8>) {
    buf.extend_from_slice(&(RESPONSE_PAYLOAD_LEN as u32).to_le_bytes());
    buf.push(response.status.to_byte());
    buf.extend_from_slice(&[0, 0, 0]);
    buf.extend_from_slice(&response.id.to_le_bytes());
    push_f64(buf, response.score);
}

/// Decode one response payload (the bytes *after* the length prefix).
pub fn decode_response(payload: &[u8]) -> Result<Response, WireError> {
    if payload.len() != RESPONSE_PAYLOAD_LEN {
        return Err(WireError::BadLength {
            op: 0,
            len: payload.len(),
        });
    }
    Ok(Response {
        status: Status::from_byte(payload[0])?,
        id: read_u64(payload, 4),
        score: read_f64(payload, 12),
    })
}

/// Split the next complete frame off `buf`, returning its payload
/// range, or `None` when `buf` holds only a partial frame.
///
/// On `Some((start, end))` the frame occupies `buf[..end]` with the
/// payload at `buf[start..end]`; the caller consumes by draining
/// `..end`.  Oversized length prefixes are a protocol error.
pub fn next_frame(buf: &[u8]) -> Result<Option<(usize, usize)>, WireError> {
    if buf.len() < 4 {
        return Ok(None);
    }
    let len = read_u32(buf, 0) as usize;
    if len > MAX_PAYLOAD {
        return Err(WireError::Oversized(len));
    }
    if buf.len() < 4 + len {
        return Ok(None);
    }
    Ok(Some((4, 4 + len)))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_admit() -> AdmitFrame {
        AdmitFrame {
            cell: 7,
            id: 0xDEAD_BEEF,
            class: ServiceClass::Voice,
            is_handoff: true,
            bandwidth: 5,
            time: 12.5,
            holding_time: 180.0,
            speed_kmh: 61.0,
            angle_deg: -45.0,
            distance_m: Some(412.0),
        }
    }

    #[test]
    fn requests_round_trip() {
        let cases = [
            Request::Admit(sample_admit()),
            Request::Admit(AdmitFrame {
                distance_m: None,
                is_handoff: false,
                class: ServiceClass::Text,
                ..sample_admit()
            }),
            Request::Release(ReleaseFrame {
                cell: 3,
                id: 99,
                time: 1.0,
            }),
        ];
        for case in cases {
            let mut buf = Vec::new();
            encode_request(&case, &mut buf);
            let (start, end) = next_frame(&buf).unwrap().expect("complete frame");
            assert_eq!(end, buf.len());
            assert_eq!(decode_request(&buf[start..end]).unwrap(), case);
        }
    }

    #[test]
    fn responses_round_trip() {
        for status in [
            Status::Reject,
            Status::Accept,
            Status::Overload,
            Status::Error,
        ] {
            let resp = Response {
                status,
                id: 42,
                score: -0.25,
            };
            let mut buf = Vec::new();
            encode_response(&resp, &mut buf);
            let (start, end) = next_frame(&buf).unwrap().expect("complete frame");
            assert_eq!(decode_response(&buf[start..end]).unwrap(), resp);
        }
    }

    #[test]
    fn partial_frames_wait_for_more_bytes() {
        let mut buf = Vec::new();
        encode_request(&Request::Admit(sample_admit()), &mut buf);
        for cut in 0..buf.len() {
            assert_eq!(next_frame(&buf[..cut]).unwrap(), None, "cut at {cut}");
        }
    }

    #[test]
    fn malformed_frames_are_rejected() {
        assert!(matches!(
            next_frame(&u32::MAX.to_le_bytes()),
            Err(WireError::Oversized(_))
        ));
        assert_eq!(decode_request(&[9, 0, 0, 0]), Err(WireError::BadOp(9)));
        assert!(matches!(
            decode_request(&[OP_ADMIT, 0, 0]),
            Err(WireError::BadLength { .. })
        ));
        let mut buf = Vec::new();
        encode_request(&Request::Admit(sample_admit()), &mut buf);
        buf[4 + 2] = 77; // class byte
        assert_eq!(decode_request(&buf[4..]), Err(WireError::BadClass(77)));
        assert!(matches!(
            decode_response(&[8, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0]),
            Err(WireError::BadStatus(8))
        ));
    }
}
