//! The `admitd` binary: serve admission decisions, bench a running
//! server, or lint a scraped metrics exposition.
//!
//! ```text
//! admitd serve [--addr H:P] [--controller NAME] [--scenario NAME]
//!              [--grid-radius N] [--cell-radius M] [--capacity BU]
//!              [--shards N] [--max-pending N] [--chaos SEED]
//!              [--snapshot PATH] [--snapshot-every SECS]
//!              [--restore PATH] [--release-on-disconnect]
//! admitd bench [--addr H:P] [--scenario NAME] [--connections N]
//!              [--requests N] [--seed N] [--retries N]
//!              [--deadline-ms MS] [--json]
//! admitd check-metrics PATH
//! ```
//!
//! `serve` runs until SIGINT/SIGTERM (installed via a raw `signal(2)`
//! binding — the workspace is offline, so no signal crate), then joins
//! every connection, logs a state summary and exits 0.  `--chaos`,
//! `--snapshot`/`--restore` and `--release-on-disconnect` are the
//! robustness toolkit documented in `docs/FAULTS.md`.

use std::process::ExitCode;
use std::sync::Arc;
use std::time::Duration;

use admitd::{client, parse_controller, ChaosConfig, Server, ServerConfig, World, WorldConfig};
use cellsim::SimConfig;
use sweep::{builtin, builtin_names, ControllerSpec};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((command, rest)) = args.split_first() else {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    };
    let result = match command.as_str() {
        "serve" => cmd_serve(rest),
        "bench" => cmd_bench(rest),
        "check-metrics" => cmd_check_metrics(rest),
        "--help" | "-h" | "help" => {
            println!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        other => Err(format!("unknown command `{other}`\n{USAGE}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("admitd: {message}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "\
admitd — admission control as a service

USAGE:
    admitd serve [--addr HOST:PORT] [--controller NAME] [--scenario NAME]
                 [--grid-radius N] [--cell-radius METRES] [--capacity BU]
                 [--shards N] [--max-pending N] [--chaos SEED]
                 [--snapshot PATH] [--snapshot-every SECS]
                 [--restore PATH] [--release-on-disconnect]
    admitd bench [--addr HOST:PORT] [--scenario NAME] [--connections N]
                 [--requests N] [--seed N] [--retries N]
                 [--deadline-ms MS] [--json]
    admitd check-metrics PATH

Controllers: facs-p (default), facs-p-lut, facs, scc, always-accept,
threshold:NEW/HANDOFF.  --scenario adopts a built-in sweep scenario's
grid/capacity (serve) or arrival stream (bench).

Robustness (docs/FAULTS.md): --chaos injects seeded connection resets,
delays and truncated frames server-side; --snapshot checkpoints world
state every --snapshot-every seconds (and on shutdown) for --restore
after a crash; --release-on-disconnect frees a dropped client's calls.
bench survives all of it with --retries reconnect attempts per
connection and an optional per-request --deadline-ms.";

/// Pop `--flag VALUE` pairs from an argument list.
struct Args<'a> {
    rest: &'a [String],
    at: usize,
}

impl<'a> Args<'a> {
    fn new(rest: &'a [String]) -> Self {
        Self { rest, at: 0 }
    }

    fn next_flag(&mut self) -> Option<&'a str> {
        let flag = self.rest.get(self.at)?;
        self.at += 1;
        Some(flag.as_str())
    }

    fn value(&mut self, flag: &str) -> Result<&'a str, String> {
        let value = self
            .rest
            .get(self.at)
            .ok_or_else(|| format!("{flag} needs a value"))?;
        self.at += 1;
        Ok(value.as_str())
    }
}

fn parse_num<T: std::str::FromStr>(flag: &str, raw: &str) -> Result<T, String> {
    raw.parse()
        .map_err(|_| format!("{flag}: `{raw}` is not a valid number"))
}

fn scenario_sim_config(name: &str, controller: &ControllerSpec) -> Result<SimConfig, String> {
    let spec = builtin(name).ok_or_else(|| {
        format!(
            "unknown scenario `{name}` (built-ins: {})",
            builtin_names().join(", ")
        )
    })?;
    Ok(spec.sim_config(controller, 0, 0))
}

fn cmd_serve(rest: &[String]) -> Result<(), String> {
    let mut addr = "127.0.0.1:4640".to_string();
    let mut controller = ControllerSpec::FacsP;
    let mut world_config = WorldConfig::paper_default();
    let mut server_config = ServerConfig::default();
    let mut scenario: Option<String> = None;
    let mut restore: Option<String> = None;
    let mut args = Args::new(rest);
    while let Some(flag) = args.next_flag() {
        match flag {
            "--addr" => addr = args.value(flag)?.to_string(),
            "--controller" => controller = parse_controller(args.value(flag)?)?,
            "--scenario" => scenario = Some(args.value(flag)?.to_string()),
            "--grid-radius" => {
                world_config.grid_radius_cells = parse_num(flag, args.value(flag)?)?;
            }
            "--cell-radius" => world_config.cell_radius_m = parse_num(flag, args.value(flag)?)?,
            "--capacity" => world_config.station_capacity = parse_num(flag, args.value(flag)?)?,
            "--shards" => world_config.shards = parse_num(flag, args.value(flag)?)?,
            "--max-pending" => {
                server_config.max_pending = parse_num::<usize>(flag, args.value(flag)?)?.max(1);
            }
            "--chaos" => {
                server_config.chaos =
                    Some(ChaosConfig::with_seed(parse_num(flag, args.value(flag)?)?));
            }
            "--snapshot" => {
                server_config.snapshot_path = Some(args.value(flag)?.into());
            }
            "--snapshot-every" => {
                let secs: f64 = parse_num(flag, args.value(flag)?)?;
                if !(secs >= 0.0 && secs.is_finite()) {
                    return Err(format!("{flag}: `{secs}` is not a valid interval"));
                }
                server_config.snapshot_every = Duration::from_secs_f64(secs);
            }
            "--restore" => restore = Some(args.value(flag)?.to_string()),
            "--release-on-disconnect" => server_config.release_on_disconnect = true,
            other => return Err(format!("unknown serve flag `{other}`\n{USAGE}")),
        }
    }
    if let Some(name) = &scenario {
        let sim = scenario_sim_config(name, &controller)?;
        let shards = world_config.shards;
        world_config = WorldConfig::from_sim_config(&sim, shards);
    }

    install_signal_handlers();

    let world = Arc::new(World::new(&world_config, &controller.label(), || {
        controller.build()
    }));
    if let Some(path) = &restore {
        let snapshot = admitd::state::load_snapshot(std::path::Path::new(path))?;
        let restored = world.restore(&snapshot).map_err(|e| {
            format!("cannot restore {path}: {e} (did the grid/shard flags change?)")
        })?;
        println!(
            "admitd: restored {restored} live connections from {path} \
             (snapshot taken under {})",
            snapshot.controller
        );
    }
    let server = Server::bind(Arc::clone(&world), &addr, server_config)
        .map_err(|e| format!("cannot bind {addr}: {e}"))?;
    let bound = server
        .local_addr()
        .map_err(|e| format!("cannot read bound address: {e}"))?;
    println!(
        "admitd: serving {} cells ({} shards) with {} on {bound}",
        world.grid().len(),
        world_config.shards.clamp(1, world.grid().len()),
        controller.label(),
    );
    let summary = server.run().map_err(|e| format!("server error: {e}"))?;
    let state = world.state();
    println!(
        "admitd: shutdown complete — {summary}; {} BU occupied across {} cells",
        state.occupied_total, state.cells
    );
    Ok(())
}

fn cmd_bench(rest: &[String]) -> Result<(), String> {
    let mut config = client::BenchConfig {
        addr: "127.0.0.1:4640".to_string(),
        connections: 4,
        requests_per_connection: 25_000,
        sim: SimConfig::paper_default(),
        retry: client::RetryConfig::default(),
    };
    let mut controller = ControllerSpec::FacsP;
    let mut scenario: Option<String> = None;
    let mut seed: Option<u64> = None;
    let mut json = false;
    let mut args = Args::new(rest);
    while let Some(flag) = args.next_flag() {
        match flag {
            "--addr" => config.addr = args.value(flag)?.to_string(),
            "--scenario" => scenario = Some(args.value(flag)?.to_string()),
            "--controller" => controller = parse_controller(args.value(flag)?)?,
            "--connections" => {
                config.connections = parse_num::<usize>(flag, args.value(flag)?)?.max(1);
            }
            "--requests" => {
                config.requests_per_connection =
                    parse_num::<usize>(flag, args.value(flag)?)?.max(1);
            }
            "--seed" => seed = Some(parse_num(flag, args.value(flag)?)?),
            "--retries" => {
                let retries: u32 = parse_num(flag, args.value(flag)?)?;
                config.retry.max_attempts = retries.saturating_add(1);
            }
            "--deadline-ms" => {
                let ms: u64 = parse_num(flag, args.value(flag)?)?;
                if ms == 0 {
                    return Err(format!("{flag}: the deadline must be positive"));
                }
                config.retry.deadline = Some(Duration::from_millis(ms));
            }
            "--json" => json = true,
            other => return Err(format!("unknown bench flag `{other}`\n{USAGE}")),
        }
    }
    if let Some(name) = &scenario {
        config.sim = scenario_sim_config(name, &controller)?;
    }
    if let Some(seed) = seed {
        config.sim.seed = seed;
    }
    let report = client::run(&config).map_err(|e| format!("bench failed: {e}"))?;
    if json {
        println!(
            "{}",
            serde_json::to_string_pretty(&report).map_err(|e| e.to_string())?
        );
    } else {
        println!(
            "admitd bench: {} requests over {} connections in {:.3}s — {:.0} req/s \
             ({} accepted, {} rejected, {} overloaded, {} errors, {} reconnects), \
             latency p50 ≤ {}ns p99 ≤ {}ns",
            report.requests,
            report.connections,
            report.elapsed_s,
            report.requests_per_sec,
            report.accepted,
            report.rejected,
            report.overloaded,
            report.errors,
            report.reconnects,
            report.latency_p50_ns,
            report.latency_p99_ns,
        );
    }
    if report.requests > 0 && report.errors == report.requests {
        return Err("every request errored".to_string());
    }
    Ok(())
}

fn cmd_check_metrics(rest: &[String]) -> Result<(), String> {
    let [path] = rest else {
        return Err("check-metrics takes exactly one PATH".to_string());
    };
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    telemetry::lint_prometheus(&text).map_err(|e| format!("{path}: {e}"))?;
    println!("admitd: {path} is valid Prometheus text exposition");
    Ok(())
}

/// Route SIGINT and SIGTERM to [`admitd::server::request_shutdown`].
///
/// The workspace vendors no signal crate, so this binds `signal(2)`
/// directly; `std` already links libc on every Unix target.  The
/// handler body is a single atomic store — async-signal-safe.
#[cfg(unix)]
fn install_signal_handlers() {
    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }
    extern "C" fn on_signal(_signum: i32) {
        admitd::server::request_shutdown();
    }
    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;
    let handler = on_signal as extern "C" fn(i32) as usize;
    unsafe {
        signal(SIGINT, handler);
        signal(SIGTERM, handler);
    }
}

/// No signal wiring off Unix; ctrl-c terminates the process directly.
#[cfg(not(unix))]
fn install_signal_handlers() {}
