//! Authoritative per-cell counter state behind sharded locks, and the
//! micro-batching decision engine.
//!
//! The server owns one [`BaseStation`] per cell in the dense
//! [`CellIdx`](cellsim::geometry::CellIdx) layout `cellsim` uses,
//! partitioned into contiguous
//! shards each guarded by its own mutex.  Every shard also owns its
//! own controller instance (the same per-shard controller-bank
//! semantics as `cellsim::shard::ShardedSimulator`) plus a telemetry
//! registry, so concurrent connections touching different shards never
//! contend.
//!
//! # Micro-batching and the one-snapshot contract
//!
//! [`World::process`] groups consecutive same-cell admit frames and
//! drives them through one
//! [`AdmissionController::decide_batch`](cellsim::AdmissionController::decide_batch)
//! call where it can.  `decide_batch` answers against a *single* station
//! snapshot, so a cached batch decision is only reusable while the
//! station state is exactly the snapshot it was decided against.  The
//! engine therefore re-batches from the current request onward whenever
//! state changed — an admission or an expiry — and reuses the cached
//! tail across the two state-preserving outcomes (policy rejections and
//! capacity rejections).  Because `decide` never mutates (controllers
//! learn only via `on_admitted`/`on_released`), the produced sequence
//! is bit-identical to offering every request sequentially, which is
//! exactly what `tests/determinism.rs` proves against the in-process
//! engine.

use std::path::Path;
use std::sync::Mutex;

use cellsim::{
    AdmissionDecision, AdmissionRequest, Bandwidth, BaseStation, BoxedController, CellGrid,
    SimConfig,
};
use serde::{Deserialize, Serialize};
use telemetry::{Recorder, Registry, Stopwatch, TelemetrySnapshot};

use crate::metrics::{self, SCHEMA};
use crate::wire::{AdmitFrame, Request, Response, Status};

/// Everything needed to build a [`World`].
#[derive(Debug, Clone)]
pub struct WorldConfig {
    /// Hex-grid radius in cells (0 = single cell).
    pub grid_radius_cells: u32,
    /// Cell radius in metres.
    pub cell_radius_m: f64,
    /// Station capacity (BU).
    pub station_capacity: Bandwidth,
    /// Number of lock shards (clamped to `[1, cells]`).
    pub shards: usize,
}

impl WorldConfig {
    /// The paper's single 40-BU cell behind one lock.
    #[must_use]
    pub fn paper_default() -> Self {
        Self {
            grid_radius_cells: 0,
            cell_radius_m: 1000.0,
            station_capacity: 40,
            shards: 1,
        }
    }

    /// Adopt the world-shaping fields of a simulator config (grid,
    /// cell radius, capacity).
    #[must_use]
    pub fn from_sim_config(config: &SimConfig, shards: usize) -> Self {
        Self {
            grid_radius_cells: config.grid_radius_cells,
            cell_radius_m: config.cell_radius_m,
            station_capacity: config.station_capacity,
            shards,
        }
    }
}

/// One lock shard: a contiguous run of stations plus its controller.
struct Shard {
    /// Dense index of the first cell in this shard.
    base: usize,
    stations: Vec<BaseStation>,
    /// Per-cell logical clocks (seconds); only move forward.
    clocks: Vec<f64>,
    controller: BoxedController,
    registry: Registry,
    /// Scratch for `decide_batch` output.
    decisions: Vec<AdmissionDecision>,
    /// Scratch for expired connections.
    expired: Vec<cellsim::station::ActiveConnection>,
    /// Scratch for the admission requests of one group.
    requests: Vec<AdmissionRequest>,
}

/// Occupancy snapshot of one cell, as served by `/state`.
#[derive(Debug, Clone, Serialize)]
pub struct CellState {
    /// Axial `q` coordinate of the cell.
    pub q: i32,
    /// Axial `r` coordinate of the cell.
    pub r: i32,
    /// Occupied bandwidth (BU).
    pub occupied: Bandwidth,
    /// Station capacity (BU).
    pub capacity: Bandwidth,
    /// Live connection count.
    pub active: usize,
    /// Real-time counter (RTC) bandwidth.
    pub rtc: Bandwidth,
    /// Non-real-time counter (NRTC) bandwidth.
    pub nrtc: Bandwidth,
    /// Connections admitted over the cell's lifetime.
    pub total_admitted: u64,
    /// Connections released over the cell's lifetime.
    pub total_released: u64,
}

/// Whole-world snapshot of `/state`.
#[derive(Debug, Clone, Serialize)]
pub struct WorldState {
    /// Controller driving admissions.
    pub controller: String,
    /// Number of cells in the grid.
    pub cells: usize,
    /// Number of lock shards.
    pub shards: usize,
    /// Sum of `occupied` across cells (BU).
    pub occupied_total: u64,
    /// Sum of live connections across cells.
    pub active_total: u64,
    /// Per-cell occupancy in dense [`CellIdx`](cellsim::geometry::CellIdx)
    /// order.
    pub per_cell: Vec<CellState>,
}

/// The server's authoritative admission state.
pub struct World {
    grid: CellGrid,
    shards: Vec<Mutex<Shard>>,
    cells_per_shard: usize,
    controller_label: String,
}

impl World {
    /// Build a world whose shards each own a fresh controller from
    /// `build_controller`.
    pub fn new(
        config: &WorldConfig,
        controller_label: &str,
        mut build_controller: impl FnMut() -> BoxedController,
    ) -> Self {
        let grid = CellGrid::new(config.grid_radius_cells, config.cell_radius_m);
        let cells = grid.len();
        let shard_count = config.shards.clamp(1, cells);
        let cells_per_shard = cells.div_ceil(shard_count);
        let mut shards = Vec::with_capacity(shard_count);
        let mut base = 0usize;
        while base < cells {
            let end = (base + cells_per_shard).min(cells);
            let stations: Vec<BaseStation> = grid.cells()[base..end]
                .iter()
                .map(|&c| BaseStation::new(c, grid.center_of(&c), config.station_capacity))
                .collect();
            shards.push(Mutex::new(Shard {
                base,
                clocks: vec![0.0; stations.len()],
                stations,
                controller: build_controller(),
                registry: Registry::for_schema(&SCHEMA),
                decisions: Vec::new(),
                expired: Vec::new(),
                requests: Vec::new(),
            }));
            base = end;
        }
        Self {
            grid,
            shards,
            cells_per_shard,
            controller_label: controller_label.to_string(),
        }
    }

    /// The world's cell grid.
    #[must_use]
    pub fn grid(&self) -> &CellGrid {
        &self.grid
    }

    /// Label of the controller driving admissions.
    #[must_use]
    pub fn controller_label(&self) -> &str {
        &self.controller_label
    }

    fn shard_of(&self, cell: usize) -> usize {
        cell / self.cells_per_shard
    }

    /// Apply a run of request frames, appending exactly one response
    /// per frame to `out`, in order.
    ///
    /// Consecutive admit frames for the same cell are decided through
    /// the micro-batching engine under one shard lock; everything else
    /// is applied frame by frame.  Frames naming a cell outside the
    /// grid get [`Status::Error`] responses.
    pub fn process(&self, requests: &[Request], out: &mut Vec<Response>) {
        let mut i = 0;
        while i < requests.len() {
            match requests[i] {
                Request::Admit(first) => {
                    // Extend the group over consecutive same-cell admits.
                    let mut j = i + 1;
                    while j < requests.len() {
                        match requests[j] {
                            Request::Admit(f) if f.cell == first.cell => j += 1,
                            _ => break,
                        }
                    }
                    self.admit_group(&requests[i..j], out);
                    i = j;
                }
                Request::Release(frame) => {
                    out.push(self.release_one(frame.cell, frame.id, frame.time));
                    i += 1;
                }
            }
        }
    }

    /// Decide and apply one group of same-cell admit frames.
    fn admit_group(&self, group: &[Request], out: &mut Vec<Response>) {
        let cell = match group[0] {
            Request::Admit(f) => f.cell as usize,
            Request::Release(_) => unreachable!("admit_group only sees admit runs"),
        };
        if cell >= self.grid.len() {
            out.extend(group.iter().map(|r| Response::error(r.id())));
            return;
        }
        let shard = &mut *self.shards[self.shard_of(cell)].lock().expect("shard lock");
        let local = cell - shard.base;
        let watch = Stopwatch::started(true);
        let cell_id = shard.stations[local].cell();

        shard.requests.clear();
        for request in group {
            let Request::Admit(frame) = request else {
                unreachable!("admit_group only sees admit runs");
            };
            shard.registry.add(metrics::counter::FRAMES_ADMIT, 1);
            shard.requests.push(admission_request(frame, cell_id));
        }

        // Index into `decisions` of the request the cached batch starts
        // at; `None` = no valid cache (state changed since it was cut).
        let mut cache_start: Option<usize> = None;
        let requests = std::mem::take(&mut shard.requests);
        for (k, request) in requests.iter().enumerate() {
            // Advance the cell clock and complete expired calls, exactly
            // as the sequential engine does before every offer.
            let now = shard.clocks[local].max(request.time);
            shard.clocks[local] = now;
            let mut expired = std::mem::take(&mut shard.expired);
            expired.clear();
            shard.stations[local].release_expired_into(now, &mut expired);
            if !expired.is_empty() {
                cache_start = None;
                shard
                    .registry
                    .add(metrics::counter::EXPIRED, expired.len() as u64);
                for conn in &expired {
                    shard
                        .controller
                        .on_released(conn.id, &shard.stations[local]);
                }
            }
            shard.expired = expired;

            let station = &shard.stations[local];
            // Idempotent replay: a client that reconnected after a lost
            // response window resends every unacknowledged frame, so an
            // id that is already admitted must answer Accept again
            // without re-admitting (or panicking on the duplicate).
            // State is untouched, so the cached batch stays valid.
            if station.connection(request.id).is_some() {
                out.push(Response {
                    status: Status::Accept,
                    id: request.id,
                    score: 0.0,
                });
                shard
                    .registry
                    .add(metrics::response_counter(Status::Accept), 1);
                continue;
            }
            // Capacity screen first — the sequential engine never
            // consults the controller for a request that cannot fit,
            // and the rejection leaves state (and the cache) intact.
            if !station.can_fit(request.bandwidth) {
                out.push(Response {
                    status: Status::Reject,
                    id: request.id,
                    score: -1.0,
                });
                shard
                    .registry
                    .add(metrics::response_counter(Status::Reject), 1);
                continue;
            }
            let start = match cache_start {
                Some(start) => start,
                None => {
                    // (Re-)decide the remaining tail against the current
                    // snapshot in one batch.
                    let Shard {
                        controller,
                        stations,
                        decisions,
                        registry,
                        ..
                    } = shard;
                    controller.decide_batch(&requests[k..], &stations[local], decisions);
                    registry.add(metrics::counter::BATCHES, 1);
                    registry.observe(metrics::histogram::BATCH_SIZE, (requests.len() - k) as u64);
                    cache_start = Some(k);
                    k
                }
            };
            let decision = shard.decisions[k - start];
            if decision.accept {
                shard.stations[local]
                    .admit(
                        request.id,
                        request.class,
                        request.bandwidth,
                        request.time,
                        request.holding_time,
                        request.is_handoff,
                    )
                    .expect("admission checked via can_fit");
                let Shard {
                    controller,
                    stations,
                    ..
                } = shard;
                controller.on_admitted(request, &stations[local]);
                // The admission changed both occupancy and controller
                // state: the cached tail no longer matches a snapshot.
                cache_start = None;
                out.push(Response {
                    status: Status::Accept,
                    id: request.id,
                    score: decision.score,
                });
                shard
                    .registry
                    .add(metrics::response_counter(Status::Accept), 1);
            } else {
                out.push(Response {
                    status: Status::Reject,
                    id: request.id,
                    score: decision.score,
                });
                shard
                    .registry
                    .add(metrics::response_counter(Status::Reject), 1);
            }
        }
        shard.requests = requests;
        shard.requests.clear();
        if let Some(ns) = watch.elapsed_ns() {
            shard.registry.span_ns(metrics::span::PROCESS, ns);
        }
    }

    /// Apply one release frame.
    fn release_one(&self, cell: u32, id: u64, time: f64) -> Response {
        let cell = cell as usize;
        if cell >= self.grid.len() {
            return Response::error(id);
        }
        let shard = &mut *self.shards[self.shard_of(cell)].lock().expect("shard lock");
        let local = cell - shard.base;
        shard.registry.add(metrics::counter::FRAMES_RELEASE, 1);
        let now = shard.clocks[local].max(time);
        shard.clocks[local] = now;
        let mut expired = std::mem::take(&mut shard.expired);
        expired.clear();
        shard.stations[local].release_expired_into(now, &mut expired);
        if !expired.is_empty() {
            shard
                .registry
                .add(metrics::counter::EXPIRED, expired.len() as u64);
            for conn in &expired {
                shard
                    .controller
                    .on_released(conn.id, &shard.stations[local]);
            }
        }
        shard.expired = expired;
        let response = match shard.stations[local].release(id) {
            Ok(_) => {
                let Shard {
                    controller,
                    stations,
                    ..
                } = shard;
                controller.on_released(id, &stations[local]);
                Response {
                    status: Status::Accept,
                    id,
                    score: 0.0,
                }
            }
            Err(_) => Response::error(id),
        };
        let counted = if response.status == Status::Accept {
            Status::Accept
        } else {
            Status::Error
        };
        shard.registry.add(metrics::response_counter(counted), 1);
        response
    }

    /// Merge every shard's telemetry into one snapshot.
    #[must_use]
    pub fn telemetry(&self) -> TelemetrySnapshot {
        let mut merged = TelemetrySnapshot::default();
        for shard in &self.shards {
            let snap = shard.lock().expect("shard lock").registry.snapshot();
            merged.merge(&snap);
        }
        merged
    }

    /// Per-cell occupancy snapshot (the `/state` payload).
    #[must_use]
    pub fn state(&self) -> WorldState {
        let mut per_cell = Vec::with_capacity(self.grid.len());
        for shard in &self.shards {
            let shard = shard.lock().expect("shard lock");
            for station in &shard.stations {
                per_cell.push(CellState {
                    q: station.cell().q,
                    r: station.cell().r,
                    occupied: station.occupied(),
                    capacity: station.capacity(),
                    active: station.active_connections(),
                    rtc: station.rtc(),
                    nrtc: station.nrtc(),
                    total_admitted: station.total_admitted(),
                    total_released: station.total_released(),
                });
            }
        }
        WorldState {
            controller: self.controller_label.clone(),
            cells: per_cell.len(),
            shards: self.shards.len(),
            occupied_total: per_cell.iter().map(|c| u64::from(c.occupied)).sum(),
            active_total: per_cell.iter().map(|c| c.active as u64).sum(),
            per_cell,
        }
    }

    /// Occupied bandwidth of one cell by dense index, if it exists.
    #[must_use]
    pub fn occupied(&self, cell: usize) -> Option<Bandwidth> {
        if cell >= self.grid.len() {
            return None;
        }
        let shard = self.shards[self.shard_of(cell)].lock().expect("shard lock");
        Some(shard.stations[cell - shard.base].occupied())
    }

    /// Release every `(cell, id)` a disconnected client left behind,
    /// at each cell's current clock.  Ids that are no longer active
    /// (already expired or explicitly released) are skipped silently.
    /// Returns the number of connections actually freed.
    pub fn release_abandoned(&self, connections: &[(u32, u64)]) -> u64 {
        let mut freed = 0;
        for &(cell, id) in connections {
            let cell = cell as usize;
            if cell >= self.grid.len() {
                continue;
            }
            let shard = &mut *self.shards[self.shard_of(cell)].lock().expect("shard lock");
            let local = cell - shard.base;
            if shard.stations[local].release(id).is_ok() {
                let Shard {
                    controller,
                    stations,
                    registry,
                    ..
                } = shard;
                controller.on_released(id, &stations[local]);
                registry.add(metrics::counter::DISCONNECT_RELEASES, 1);
                freed += 1;
            }
        }
        freed
    }

    /// Checkpoint the authoritative state: every station (active
    /// connections included) plus the per-cell clocks, in dense cell
    /// order.  Taken shard by shard under each shard's lock.
    #[must_use]
    pub fn snapshot(&self) -> WorldSnapshot {
        let mut stations = Vec::with_capacity(self.grid.len());
        let mut clocks = Vec::with_capacity(self.grid.len());
        for shard in &self.shards {
            let shard = shard.lock().expect("shard lock");
            stations.extend(shard.stations.iter().cloned());
            clocks.extend(shard.clocks.iter().copied());
        }
        WorldSnapshot {
            controller: self.controller_label.clone(),
            cells: stations.len(),
            stations,
            clocks,
        }
    }

    /// Install a checkpoint into this (freshly built) world: stations
    /// and clocks are restored exactly, and the per-shard controllers
    /// are re-warmed with one synthetic `on_admitted` per surviving
    /// connection.  Kinematics (speed, heading, distance) are not part
    /// of a checkpoint, so mobility-informed controller internals
    /// restart cold; the counter state every shipped controller decides
    /// against is bit-exact.  Returns the number of live connections
    /// restored.
    ///
    /// # Errors
    ///
    /// Fails without touching state when the snapshot's cell count does
    /// not match this world's grid.
    pub fn restore(&self, snapshot: &WorldSnapshot) -> Result<u64, String> {
        if snapshot.cells != self.grid.len()
            || snapshot.stations.len() != self.grid.len()
            || snapshot.clocks.len() != self.grid.len()
        {
            return Err(format!(
                "snapshot has {} cells but this world has {}",
                snapshot.stations.len(),
                self.grid.len()
            ));
        }
        let mut restored = 0;
        for shard in &self.shards {
            let shard = &mut *shard.lock().expect("shard lock");
            let base = shard.base;
            for local in 0..shard.stations.len() {
                shard.stations[local] = snapshot.stations[base + local].clone();
                shard.clocks[local] = snapshot.clocks[base + local];
                let Shard {
                    controller,
                    stations,
                    ..
                } = shard;
                let station = &stations[local];
                for conn in station.connections() {
                    controller.on_admitted(&replayed_request(conn, station), station);
                    restored += 1;
                }
            }
        }
        Ok(restored)
    }
}

/// A durable checkpoint of a [`World`]'s authoritative state, written
/// by `admitd serve --snapshot` and re-installed by `--restore`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WorldSnapshot {
    /// Label of the controller the world was running.
    pub controller: String,
    /// Number of cells (must match the restoring world's grid).
    pub cells: usize,
    /// Every station in dense cell order, active connections included.
    pub stations: Vec<BaseStation>,
    /// Per-cell logical clocks in dense cell order.
    pub clocks: Vec<f64>,
}

/// Serialize `world` and write it to `path` atomically (temp file in
/// the same directory, then rename), so a crash mid-write can never
/// leave a torn checkpoint behind.
///
/// # Errors
///
/// Propagates filesystem errors from the write or the rename.
pub fn save_snapshot(world: &World, path: &Path) -> std::io::Result<()> {
    let snapshot = world.snapshot();
    let json = serde_json::to_string(&snapshot)
        .map_err(|e| std::io::Error::other(format!("cannot serialize snapshot: {e}")))?;
    let tmp = path.with_extension("tmp");
    std::fs::write(&tmp, json)?;
    std::fs::rename(&tmp, path)
}

/// Read and parse a checkpoint written by [`save_snapshot`].
///
/// # Errors
///
/// Returns a message naming the path for unreadable files and parse
/// failures alike.
pub fn load_snapshot(path: &Path) -> Result<WorldSnapshot, String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read snapshot {}: {e}", path.display()))?;
    serde_json::from_str(&text)
        .map_err(|e| format!("snapshot {} is not valid: {e}", path.display()))
}

/// The admission request re-announced to a controller for a connection
/// restored from a checkpoint.
fn replayed_request(
    conn: &cellsim::station::ActiveConnection,
    station: &BaseStation,
) -> AdmissionRequest {
    AdmissionRequest {
        id: conn.id,
        cell: station.cell(),
        time: conn.admitted_at,
        class: conn.class,
        bandwidth: conn.bandwidth,
        holding_time: conn.ends_at - conn.admitted_at,
        speed_kmh: 0.0,
        angle_deg: 0.0,
        distance_m: None,
        is_handoff: conn.was_handoff,
    }
}

/// Translate a wire frame into the engine's request type.
fn admission_request(frame: &AdmitFrame, cell: cellsim::CellId) -> AdmissionRequest {
    let mut request = AdmissionRequest {
        id: frame.id,
        cell,
        time: frame.time,
        class: frame.class,
        bandwidth: frame.bandwidth,
        holding_time: frame.holding_time,
        speed_kmh: frame.speed_kmh,
        angle_deg: frame.angle_deg,
        distance_m: None,
        is_handoff: frame.is_handoff,
    };
    if let Some(distance) = frame.distance_m {
        request = request.with_distance(distance);
    }
    request
}

#[cfg(test)]
mod tests {
    use super::*;
    use cellsim::ServiceClass;
    use sweep::ControllerSpec;

    fn frame(id: u64, class: ServiceClass, time: f64, holding: f64) -> Request {
        Request::Admit(AdmitFrame {
            cell: 0,
            id,
            class,
            is_handoff: id % 3 == 0,
            bandwidth: class.paper_bandwidth(),
            time,
            holding_time: holding,
            speed_kmh: 40.0 + id as f64,
            angle_deg: (id as f64 * 37.0) % 180.0 - 90.0,
            distance_m: Some(200.0 + id as f64),
        })
    }

    fn workload(n: u64) -> Vec<Request> {
        (0..n)
            .map(|i| {
                let class = ServiceClass::ALL[(i % 3) as usize];
                frame(i, class, i as f64 * 0.25, 8.0 + (i % 5) as f64)
            })
            .collect()
    }

    /// Submitting a whole group at once (micro-batched) must answer
    /// exactly like submitting the same frames one by one (pure
    /// sequential path), for every shipped controller.
    #[test]
    fn batched_processing_matches_frame_at_a_time() {
        let specs = [
            ControllerSpec::FacsP,
            ControllerSpec::FacsPLut,
            ControllerSpec::Facs,
            ControllerSpec::Scc,
            ControllerSpec::AlwaysAccept,
            ControllerSpec::Threshold {
                new_call: 0.85,
                handoff: 0.95,
            },
        ];
        let requests = workload(160);
        for spec in specs {
            let config = WorldConfig::paper_default();
            let batched = World::new(&config, &spec.label(), || spec.build());
            let sequential = World::new(&config, &spec.label(), || spec.build());
            let mut batched_out = Vec::new();
            batched.process(&requests, &mut batched_out);
            let mut sequential_out = Vec::new();
            for request in &requests {
                sequential.process(std::slice::from_ref(request), &mut sequential_out);
            }
            assert_eq!(batched_out, sequential_out, "controller {}", spec.label());
            assert_eq!(batched.occupied(0), sequential.occupied(0));
        }
    }

    #[test]
    fn releases_free_capacity_and_unknown_ids_error() {
        let world = World::new(&WorldConfig::paper_default(), "always-accept", || {
            ControllerSpec::AlwaysAccept.build()
        });
        let mut out = Vec::new();
        world.process(&workload(4), &mut out);
        assert!(out.iter().all(|r| r.status == Status::Accept));
        let occupied = world.occupied(0).unwrap();
        assert!(occupied > 0);

        out.clear();
        world.process(
            &[Request::Release(crate::wire::ReleaseFrame {
                cell: 0,
                id: 1,
                time: 2.0,
            })],
            &mut out,
        );
        assert_eq!(out[0].status, Status::Accept);
        assert!(world.occupied(0).unwrap() < occupied);

        out.clear();
        world.process(
            &[Request::Release(crate::wire::ReleaseFrame {
                cell: 0,
                id: 999,
                time: 2.0,
            })],
            &mut out,
        );
        assert_eq!(out[0].status, Status::Error);
    }

    #[test]
    fn out_of_grid_cells_get_error_responses() {
        let world = World::new(&WorldConfig::paper_default(), "always-accept", || {
            ControllerSpec::AlwaysAccept.build()
        });
        let mut out = Vec::new();
        let mut bad = workload(1);
        if let Request::Admit(f) = &mut bad[0] {
            f.cell = 77;
        }
        world.process(&bad, &mut out);
        assert_eq!(out[0].status, Status::Error);
    }

    #[test]
    fn telemetry_snapshot_lints_clean() {
        let world = World::new(&WorldConfig::paper_default(), "FACS-P", || {
            ControllerSpec::FacsP.build()
        });
        let mut out = Vec::new();
        world.process(&workload(64), &mut out);
        telemetry::lint_prometheus(&world.telemetry().to_prometheus()).expect("clean exposition");
        let state = world.state();
        assert_eq!(state.cells, 1);
        assert_eq!(state.per_cell.len(), 1);
        assert_eq!(u64::from(state.per_cell[0].occupied), state.occupied_total);
    }
}
