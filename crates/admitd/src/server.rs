//! The `admitd` TCP server: accept loop, per-connection protocol
//! handlers, micro-batch window collection and backpressure.
//!
//! # Connection model
//!
//! One OS thread per connection over a non-blocking accept loop (the
//! workspace is offline — `std::net` only).  A connection's first four
//! bytes select the protocol: the binary magic
//! ([`crate::wire::MAGIC`]) starts a frame stream, anything else is
//! served as one HTTP request ([`crate::http`]).
//!
//! # Micro-batching and backpressure
//!
//! The handler blocks for the first frame, then drains whatever
//! complete frames the socket already buffered (one non-blocking fill)
//! into a *bounded* window of [`ServerConfig::max_pending`] requests.
//! The window is decided in one [`crate::state::World::process`] call
//! — consecutive same-cell frames within it share `decide_batch`
//! invocations — and every response is written back in request order.
//! Frames beyond the bound are answered with
//! [`Status::Overload`](crate::wire::Status::Overload) *without*
//! touching world state; nothing is ever buffered unboundedly.
//!
//! # Shutdown
//!
//! [`Server::run`] polls its own [`Server::shutdown_handle`] flag and
//! the process-global flag ([`request_shutdown`], set by the binary's
//! SIGINT/SIGTERM handler).  On shutdown the listener stops accepting,
//! every connection handler notices via its read timeout and drains,
//! and `run` joins them all before returning a [`ServerSummary`].

use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use telemetry::{Recorder, Registry, TelemetrySnapshot};

use crate::chaos::{ChaosAction, ChaosConfig, ChaosInjector};
use crate::http;
use crate::metrics::{self, SCHEMA};
use crate::state::{self, World};
use crate::wire::{self, Request, Response};

/// Process-global shutdown flag, set by signal handlers in the binary.
static GLOBAL_SHUTDOWN: AtomicBool = AtomicBool::new(false);

/// Request shutdown of every [`Server::run`] loop in the process.
/// Async-signal-safe (one atomic store).
pub fn request_shutdown() {
    GLOBAL_SHUTDOWN.store(true, Ordering::SeqCst);
}

/// `true` once [`request_shutdown`] has been called.
#[must_use]
pub fn global_shutdown_requested() -> bool {
    GLOBAL_SHUTDOWN.load(Ordering::SeqCst)
}

/// Tunables of the accept loop and connection handlers.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bound on requests decided per micro-batch window; frames beyond
    /// it are shed with overload responses.
    pub max_pending: usize,
    /// Read timeout used to poll the shutdown flag on idle
    /// connections.
    pub poll_interval: Duration,
    /// Seeded transport-fault injection (`--chaos`); `None` serves
    /// faithfully.
    pub chaos: Option<ChaosConfig>,
    /// Free a disconnected client's still-admitted connections
    /// (`--release-on-disconnect`).
    pub release_on_disconnect: bool,
    /// Periodically checkpoint world state to this path (`--snapshot`).
    pub snapshot_path: Option<PathBuf>,
    /// Interval between checkpoints when `snapshot_path` is set.
    pub snapshot_every: Duration,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            max_pending: 1024,
            poll_interval: Duration::from_millis(50),
            chaos: None,
            release_on_disconnect: false,
            snapshot_path: None,
            snapshot_every: Duration::from_secs(1),
        }
    }
}

/// Totals reported after a clean shutdown.
#[derive(Debug, Clone, Default)]
pub struct ServerSummary {
    /// Binary connections served.
    pub connections: u64,
    /// Request frames processed (admits + releases).
    pub frames: u64,
    /// Accept responses sent.
    pub accepted: u64,
    /// Reject responses sent.
    pub rejected: u64,
    /// Overload responses sent.
    pub overloaded: u64,
    /// HTTP requests served.
    pub http_requests: u64,
}

impl std::fmt::Display for ServerSummary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} connections, {} frames ({} accepted, {} rejected, {} overloaded), {} http requests",
            self.connections,
            self.frames,
            self.accepted,
            self.rejected,
            self.overloaded,
            self.http_requests
        )
    }
}

/// A bound `admitd` server, ready to [`run`](Server::run).
pub struct Server {
    listener: TcpListener,
    world: Arc<World>,
    config: ServerConfig,
    shutdown: Arc<AtomicBool>,
    registry: Arc<Mutex<Registry>>,
}

impl Server {
    /// Bind to `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port).
    pub fn bind(world: Arc<World>, addr: &str, config: ServerConfig) -> io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        Ok(Self {
            listener,
            world,
            config,
            shutdown: Arc::new(AtomicBool::new(false)),
            registry: Arc::new(Mutex::new(Registry::for_schema(&SCHEMA))),
        })
    }

    /// The bound socket address.
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// A flag that stops this server (and only this server) when set.
    #[must_use]
    pub fn shutdown_handle(&self) -> Arc<AtomicBool> {
        Arc::clone(&self.shutdown)
    }

    fn should_stop(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst) || global_shutdown_requested()
    }

    /// Serve until shutdown is requested, then join every connection
    /// handler and return the session totals.
    pub fn run(self) -> io::Result<ServerSummary> {
        let mut handlers: Vec<std::thread::JoinHandle<()>> = Vec::new();
        let mut connection_index: u64 = 0;
        let mut last_snapshot = Instant::now();
        while !self.should_stop() {
            if let Some(path) = &self.config.snapshot_path {
                if last_snapshot.elapsed() >= self.config.snapshot_every {
                    if let Err(e) = state::save_snapshot(&self.world, path) {
                        eprintln!("admitd: snapshot to {} failed: {e}", path.display());
                    }
                    last_snapshot = Instant::now();
                }
            }
            match self.listener.accept() {
                Ok((stream, _peer)) => {
                    let world = Arc::clone(&self.world);
                    let registry = Arc::clone(&self.registry);
                    let shutdown = Arc::clone(&self.shutdown);
                    let config = self.config.clone();
                    let index = connection_index;
                    connection_index += 1;
                    // Reap finished handlers so a long-lived server does
                    // not accumulate join handles.
                    handlers.retain(|h| !h.is_finished());
                    handlers.push(std::thread::spawn(move || {
                        let _ =
                            handle_connection(stream, &world, &registry, &shutdown, &config, index);
                    }));
                    self.registry
                        .lock()
                        .expect("server registry")
                        .high_water(metrics::gauge::OPEN_CONNECTIONS, handlers.len() as u64);
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    std::thread::sleep(self.config.poll_interval.min(Duration::from_millis(10)));
                }
                Err(e) => return Err(e),
            }
        }
        // Close the listening socket while connections drain, then
        // derive the session totals from the merged telemetry.
        let Server {
            listener,
            world,
            registry,
            config,
            ..
        } = self;
        drop(listener);
        for handle in handlers {
            let _ = handle.join();
        }
        // One final checkpoint after the drain, so a clean shutdown
        // leaves the freshest possible restore point behind.
        if let Some(path) = &config.snapshot_path {
            if let Err(e) = state::save_snapshot(&world, path) {
                eprintln!("admitd: final snapshot to {} failed: {e}", path.display());
            }
        }
        Ok(summary_from(&merged_telemetry(&world, &registry)))
    }

    /// Merged telemetry of the accept loop and every shard.
    #[must_use]
    pub fn telemetry(&self) -> TelemetrySnapshot {
        merged_telemetry(&self.world, &self.registry)
    }
}

fn merged_telemetry(world: &World, registry: &Mutex<Registry>) -> TelemetrySnapshot {
    let mut merged = world.telemetry();
    let server_snap = registry.lock().expect("server registry").snapshot();
    merged.merge(&server_snap);
    merged
}

fn counter_value(snapshot: &TelemetrySnapshot, name: &str, label: Option<(&str, &str)>) -> u64 {
    snapshot
        .counters
        .iter()
        .filter(|c| {
            c.name == name
                && label.is_none_or(|(k, v)| {
                    c.labels.iter().any(|pair| pair.key == k && pair.value == v)
                })
        })
        .map(|c| c.value)
        .sum()
}

/// Derive the shutdown summary from a merged telemetry snapshot.
#[must_use]
pub fn summary_from(snapshot: &TelemetrySnapshot) -> ServerSummary {
    ServerSummary {
        connections: counter_value(snapshot, "admitd_connections_total", None),
        frames: counter_value(snapshot, "admitd_frames_total", None),
        accepted: counter_value(
            snapshot,
            "admitd_responses_total",
            Some(("status", "accept")),
        ),
        rejected: counter_value(
            snapshot,
            "admitd_responses_total",
            Some(("status", "reject")),
        ),
        overloaded: counter_value(
            snapshot,
            "admitd_responses_total",
            Some(("status", "overload")),
        ),
        http_requests: counter_value(snapshot, "admitd_http_requests_total", None),
    }
}

/// Split `inbuf` into at most `max_pending` decodable requests plus
/// shed/error responses for the remainder, consuming every complete
/// frame.  Returns the number of bytes consumed.
///
/// This is the bounded-queue policy in one pure function: complete
/// frames beyond `max_pending` get overload responses *now* instead of
/// queueing, and undecodable payloads get error responses.
pub fn drain_window(
    inbuf: &[u8],
    max_pending: usize,
    requests: &mut Vec<Request>,
    shed: &mut Vec<(usize, Response)>,
) -> Result<usize, wire::WireError> {
    let mut consumed = 0;
    let mut position = 0;
    while let Some((start, end)) = wire::next_frame(&inbuf[consumed..])? {
        let payload = &inbuf[consumed + start..consumed + end];
        match wire::decode_request(payload) {
            Ok(request) if requests.len() < max_pending => requests.push(request),
            Ok(request) => shed.push((position, Response::overload(request.id()))),
            Err(_) => shed.push((position, Response::error(0))),
        }
        consumed += end;
        position += 1;
    }
    Ok(consumed)
}

fn handle_connection(
    mut stream: TcpStream,
    world: &World,
    registry: &Mutex<Registry>,
    shutdown: &AtomicBool,
    config: &ServerConfig,
    connection_index: u64,
) -> io::Result<()> {
    stream.set_nodelay(true).ok();
    stream.set_read_timeout(Some(config.poll_interval))?;

    // Protocol selection: read until we have 4 bytes (or EOF).
    let mut head = [0u8; 4];
    let mut have = 0;
    while have < head.len() {
        if shutdown.load(Ordering::SeqCst) || global_shutdown_requested() {
            return Ok(());
        }
        match stream.read(&mut head[have..]) {
            Ok(0) => return Ok(()),
            Ok(n) => have += n,
            Err(e) if would_block(&e) => continue,
            Err(e) => return Err(e),
        }
    }
    if head == wire::MAGIC {
        registry
            .lock()
            .expect("server registry")
            .add(metrics::counter::CONNECTIONS, 1);
        serve_binary(stream, world, registry, shutdown, config, connection_index)
    } else {
        registry
            .lock()
            .expect("server registry")
            .add(metrics::counter::HTTP_REQUESTS, 1);
        serve_http(stream, world, registry, &head)
    }
}

fn would_block(e: &io::Error) -> bool {
    matches!(
        e.kind(),
        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
    )
}

fn serve_binary(
    stream: TcpStream,
    world: &World,
    registry: &Mutex<Registry>,
    shutdown: &AtomicBool,
    config: &ServerConfig,
    connection_index: u64,
) -> io::Result<()> {
    let mut chaos = config
        .chaos
        .as_ref()
        .map(|c| ChaosInjector::for_connection(c, connection_index));
    let mut admitted: Vec<(u32, u64)> = Vec::new();
    let result = serve_binary_loop(
        stream,
        world,
        registry,
        shutdown,
        config,
        &mut chaos,
        &mut admitted,
    );
    // Whatever ended the stream — clean EOF, an io error or a chaos
    // cut — the client is gone; free what it still held if asked to.
    if config.release_on_disconnect && !admitted.is_empty() {
        world.release_abandoned(&admitted);
    }
    result
}

fn serve_binary_loop(
    mut stream: TcpStream,
    world: &World,
    registry: &Mutex<Registry>,
    shutdown: &AtomicBool,
    config: &ServerConfig,
    chaos: &mut Option<ChaosInjector>,
    admitted: &mut Vec<(u32, u64)>,
) -> io::Result<()> {
    let mut inbuf: Vec<u8> = Vec::with_capacity(64 * 1024);
    let mut chunk = [0u8; 64 * 1024];
    let mut requests = Vec::with_capacity(config.max_pending);
    let mut shed: Vec<(usize, Response)> = Vec::new();
    let mut responses = Vec::with_capacity(config.max_pending);
    let mut outbuf: Vec<u8> = Vec::with_capacity(64 * 1024);
    loop {
        // Block (with timeout, to poll shutdown) until bytes arrive.
        match stream.read(&mut chunk) {
            Ok(0) => return Ok(()),
            Ok(n) => inbuf.extend_from_slice(&chunk[..n]),
            Err(e) if would_block(&e) => {
                if shutdown.load(Ordering::SeqCst) || global_shutdown_requested() {
                    return Ok(());
                }
                continue;
            }
            Err(e) => return Err(e),
        }

        requests.clear();
        shed.clear();
        let consumed = match drain_window(&inbuf, config.max_pending, &mut requests, &mut shed) {
            Ok(consumed) => consumed,
            // Protocol error (oversized length prefix): drop the
            // connection; there is no way to resynchronise the stream.
            Err(_) => return Ok(()),
        };
        if consumed == 0 {
            continue; // only a partial frame buffered so far
        }
        inbuf.drain(..consumed);

        responses.clear();
        world.process(&requests, &mut responses);
        if config.release_on_disconnect {
            track_admissions(&requests, &responses, admitted);
        }

        // Interleave decided and shed responses back into arrival order.
        outbuf.clear();
        let mut decided = responses.iter();
        let mut shed_iter = shed.iter().peekable();
        let total = requests.len() + shed.len();
        for position in 0..total {
            if let Some(&&(at, response)) = shed_iter.peek() {
                if at == position {
                    wire::encode_response(&response, &mut outbuf);
                    shed_iter.next();
                    continue;
                }
            }
            let response = decided.next().expect("one response per request");
            wire::encode_response(response, &mut outbuf);
        }

        // Chaos fires *after* the world mutated and *before* the client
        // hears about it — exactly the window a real crash would hit.
        if let Some(injector) = chaos {
            match injector.next_action() {
                ChaosAction::None => {}
                ChaosAction::Delay(delay) => {
                    registry
                        .lock()
                        .expect("server registry")
                        .add(metrics::counter::CHAOS_DELAYS, 1);
                    std::thread::sleep(delay);
                }
                ChaosAction::Truncate => {
                    registry
                        .lock()
                        .expect("server registry")
                        .add(metrics::counter::CHAOS_TRUNCATIONS, 1);
                    let _ = stream.write_all(&outbuf[..outbuf.len() / 2]);
                    return Ok(());
                }
                ChaosAction::Reset => {
                    registry
                        .lock()
                        .expect("server registry")
                        .add(metrics::counter::CHAOS_RESETS, 1);
                    return Ok(());
                }
            }
        }
        stream.write_all(&outbuf)?;
    }
}

/// Maintain the set of connections this client is responsible for:
/// accepted admits join it, client-issued releases leave it.
fn track_admissions(requests: &[Request], responses: &[Response], admitted: &mut Vec<(u32, u64)>) {
    for (request, response) in requests.iter().zip(responses) {
        match request {
            Request::Admit(frame)
                if response.status == wire::Status::Accept
                    && !admitted.contains(&(frame.cell, frame.id)) =>
            {
                admitted.push((frame.cell, frame.id));
            }
            Request::Release(frame) => {
                admitted.retain(|&(cell, id)| (cell, id) != (frame.cell, frame.id));
            }
            _ => {}
        }
    }
}

fn serve_http(
    mut stream: TcpStream,
    world: &World,
    registry: &Mutex<Registry>,
    head: &[u8],
) -> io::Result<()> {
    let mut raw = head.to_vec();
    let mut chunk = [0u8; 8192];
    // Read until the end of the request head (or a bounded limit).
    while !raw.windows(4).any(|w| w == b"\r\n\r\n") && raw.len() < 64 * 1024 {
        match stream.read(&mut chunk) {
            Ok(0) => break,
            Ok(n) => raw.extend_from_slice(&chunk[..n]),
            Err(e) if would_block(&e) => break,
            Err(e) => return Err(e),
        }
    }
    let text = String::from_utf8_lossy(&raw);
    let response = match http::parse_get_target(&text) {
        Err(error_response) => error_response,
        Ok(target) => match target.as_str() {
            "/metrics" => {
                let exposition = merged_telemetry(world, registry).to_prometheus();
                http::render_response(
                    200,
                    "OK",
                    "text/plain; version=0.0.4; charset=utf-8",
                    &exposition,
                )
            }
            "/state" => {
                let state = world.state();
                let body =
                    serde_json::to_string_pretty(&state).unwrap_or_else(|_| "{}".to_string());
                http::render_response(200, "OK", "application/json", &body)
            }
            "/healthz" => http::render_response(200, "OK", "text/plain; charset=utf-8", "ok\n"),
            _ => http::render_response(
                404,
                "Not Found",
                "text/plain; charset=utf-8",
                "unknown path; try /metrics, /state or /healthz\n",
            ),
        },
    };
    stream.write_all(&response)?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::{AdmitFrame, Status};
    use cellsim::ServiceClass;

    fn admit(id: u64) -> Request {
        Request::Admit(AdmitFrame {
            cell: 0,
            id,
            class: ServiceClass::Text,
            is_handoff: false,
            bandwidth: 1,
            time: 0.0,
            holding_time: 10.0,
            speed_kmh: 10.0,
            angle_deg: 0.0,
            distance_m: Some(100.0),
        })
    }

    #[test]
    fn drain_window_bounds_the_queue_and_sheds_with_overload() {
        let mut buf = Vec::new();
        for id in 0..6 {
            wire::encode_request(&admit(id), &mut buf);
        }
        let mut requests = Vec::new();
        let mut shed = Vec::new();
        let consumed = drain_window(&buf, 4, &mut requests, &mut shed).unwrap();
        assert_eq!(consumed, buf.len());
        assert_eq!(requests.len(), 4);
        assert_eq!(shed.len(), 2);
        assert_eq!(shed[0], (4, Response::overload(4)));
        assert_eq!(shed[1], (5, Response::overload(5)));
    }

    #[test]
    fn drain_window_keeps_partial_frames_buffered() {
        let mut buf = Vec::new();
        wire::encode_request(&admit(1), &mut buf);
        let full = buf.len();
        wire::encode_request(&admit(2), &mut buf);
        let mut requests = Vec::new();
        let mut shed = Vec::new();
        let consumed = drain_window(&buf[..buf.len() - 3], 16, &mut requests, &mut shed).unwrap();
        assert_eq!(consumed, full);
        assert_eq!(requests.len(), 1);
        assert!(shed.is_empty());
    }

    #[test]
    fn drain_window_converts_bad_payloads_to_error_responses() {
        let mut buf = Vec::new();
        // A well-formed frame with an unknown opcode.
        buf.extend_from_slice(&4u32.to_le_bytes());
        buf.extend_from_slice(&[9, 0, 0, 0]);
        let mut requests = Vec::new();
        let mut shed = Vec::new();
        let consumed = drain_window(&buf, 16, &mut requests, &mut shed).unwrap();
        assert_eq!(consumed, buf.len());
        assert!(requests.is_empty());
        assert_eq!(shed[0].1.status, Status::Error);
    }
}
