//! Seeded, deterministic server-side fault injection (`admitd serve
//! --chaos SEED`).
//!
//! Chaos mode exercises the failure paths a production admission
//! server must survive: connections cut mid-stream, responses that
//! arrive late, and frames truncated at the transport.  Every
//! injection is drawn from a [`SimRng`] stream
//! derived from the chaos seed and the connection's accept index, so a
//! given `(seed, connection)` pair misbehaves identically on every
//! run — chaos tests are replayable, never flaky by construction.
//!
//! The injector only ever corrupts the *transport*: world state is
//! mutated before the fault fires, exactly as a real crash between
//! "decision applied" and "response delivered" would.  Clients recover
//! through the retry/reconnect path in [`crate::client`], and replayed
//! admits are answered idempotently by [`crate::state::World`].

use std::time::Duration;

use cellsim::SimRng;

/// Probabilities and magnitudes of the injected faults.
///
/// The probabilities are evaluated per response window (one batch of
/// decided frames about to be written back), in the order reset →
/// truncate → delay; at most one fault fires per window.
#[derive(Debug, Clone)]
pub struct ChaosConfig {
    /// Seed of every per-connection injection stream.
    pub seed: u64,
    /// Probability of cutting the connection before the write.
    pub reset_prob: f64,
    /// Probability of writing only a prefix of the response bytes and
    /// then cutting the connection.
    pub truncate_prob: f64,
    /// Probability of delaying the write by [`ChaosConfig::delay`].
    pub delay_prob: f64,
    /// How long a delayed write stalls.
    pub delay: Duration,
}

impl ChaosConfig {
    /// The default chaos profile under `seed`: 2 % resets, 2 %
    /// truncations and 5 % delayed (10 ms) responses — aggressive
    /// enough that a few-thousand-request bench run hits every fault
    /// kind, mild enough that capped backoff converges quickly.
    #[must_use]
    pub fn with_seed(seed: u64) -> Self {
        Self {
            seed,
            reset_prob: 0.02,
            truncate_prob: 0.02,
            delay_prob: 0.05,
            delay: Duration::from_millis(10),
        }
    }
}

/// The fault (if any) to inject into one response window.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChaosAction {
    /// Deliver the window normally.
    None,
    /// Sleep for the configured delay, then deliver normally.
    Delay(Duration),
    /// Write only a prefix of the window, then drop the connection.
    Truncate,
    /// Drop the connection without writing anything.
    Reset,
}

/// One connection's deterministic injection stream.
#[derive(Debug)]
pub struct ChaosInjector {
    rng: SimRng,
    reset_prob: f64,
    truncate_prob: f64,
    delay_prob: f64,
    delay: Duration,
}

impl ChaosInjector {
    /// The injector for the `connection_index`-th accepted connection.
    #[must_use]
    pub fn for_connection(config: &ChaosConfig, connection_index: u64) -> Self {
        Self {
            rng: SimRng::new(config.seed).derive(connection_index ^ 0xC4A0_5EED),
            reset_prob: config.reset_prob,
            truncate_prob: config.truncate_prob,
            delay_prob: config.delay_prob,
            delay: config.delay,
        }
    }

    /// Draw the fault for the next response window.
    pub fn next_action(&mut self) -> ChaosAction {
        if self.rng.chance(self.reset_prob) {
            return ChaosAction::Reset;
        }
        if self.rng.chance(self.truncate_prob) {
            return ChaosAction::Truncate;
        }
        if self.rng.chance(self.delay_prob) {
            return ChaosAction::Delay(self.delay);
        }
        ChaosAction::None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn actions(config: &ChaosConfig, connection: u64, n: usize) -> Vec<ChaosAction> {
        let mut injector = ChaosInjector::for_connection(config, connection);
        (0..n).map(|_| injector.next_action()).collect()
    }

    #[test]
    fn injection_streams_are_deterministic_per_connection() {
        let config = ChaosConfig::with_seed(0xBAD);
        assert_eq!(actions(&config, 3, 500), actions(&config, 3, 500));
        assert_ne!(
            actions(&config, 3, 500),
            actions(&config, 4, 500),
            "distinct connections draw distinct streams"
        );
    }

    #[test]
    fn default_profile_fires_every_fault_kind() {
        let config = ChaosConfig::with_seed(7);
        let drawn = actions(&config, 0, 2000);
        assert!(drawn.contains(&ChaosAction::Reset));
        assert!(drawn.contains(&ChaosAction::Truncate));
        assert!(drawn.contains(&ChaosAction::Delay(config.delay)));
        let faults = drawn.iter().filter(|a| **a != ChaosAction::None).count();
        // ~9 % of windows fault under the default profile.
        assert!((50..500).contains(&faults), "{faults} faults in 2000 draws");
    }

    #[test]
    fn zeroed_probabilities_never_fault() {
        let config = ChaosConfig {
            reset_prob: 0.0,
            truncate_prob: 0.0,
            delay_prob: 0.0,
            ..ChaosConfig::with_seed(1)
        };
        assert!(actions(&config, 0, 200)
            .iter()
            .all(|a| *a == ChaosAction::None));
    }
}
