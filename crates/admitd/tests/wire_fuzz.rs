//! Deterministic fuzz suite for the `admitd` wire codec.
//!
//! The workspace is offline (no proptest/cargo-fuzz), so this is a
//! hand-rolled property harness over a seeded [`SimRng`]: tens of
//! thousands of adversarial buffers — pure noise, truncations of valid
//! streams, single-byte corruptions, oversized length prefixes — are
//! thrown at `next_frame`/`decode_request`/`decode_response`, which
//! must always return a clean `Ok`/`WireError` without panicking,
//! looping or reading out of bounds.  Every failure reproduces from
//! the fixed seed.

use admitd::wire::{
    self, AdmitFrame, ReleaseFrame, Request, Response, Status, WireError, MAX_PAYLOAD,
};
use cellsim::{ServiceClass, SimRng};

/// Drive the framing + decode pipeline over one buffer the way
/// `drain_window` does, returning how many complete frames it yielded.
/// Must terminate and never panic, whatever the bytes.
fn scan(buf: &[u8]) -> Result<usize, WireError> {
    let mut consumed = 0;
    let mut frames = 0;
    while let Some((start, end)) = wire::next_frame(&buf[consumed..])? {
        assert!(
            start <= end && consumed + end <= buf.len(),
            "frame bounds escape the buffer: {start}..{end} of {}",
            buf.len()
        );
        // Both decoders must tolerate the payload, whatever it is.
        let _ = wire::decode_request(&buf[consumed + start..consumed + end]);
        let _ = wire::decode_response(&buf[consumed + start..consumed + end]);
        consumed += end;
        frames += 1;
    }
    Ok(frames)
}

fn random_request(rng: &mut SimRng) -> Request {
    if rng.chance(0.8) {
        Request::Admit(AdmitFrame {
            cell: rng.uniform_u32(0, 4000),
            id: u64::from(rng.uniform_u32(0, u32::MAX)),
            class: ServiceClass::ALL[rng.uniform_u32(0, 2) as usize],
            is_handoff: rng.chance(0.5),
            bandwidth: rng.uniform_u32(1, 40),
            time: rng.uniform(0.0, 1e6),
            holding_time: rng.uniform(0.0, 1e4),
            speed_kmh: rng.uniform(0.0, 200.0),
            angle_deg: rng.uniform(-90.0, 90.0),
            distance_m: if rng.chance(0.5) {
                Some(rng.uniform(0.0, 2000.0))
            } else {
                None
            },
        })
    } else {
        Request::Release(ReleaseFrame {
            cell: rng.uniform_u32(0, 4000),
            id: u64::from(rng.uniform_u32(0, u32::MAX)),
            time: rng.uniform(0.0, 1e6),
        })
    }
}

#[test]
fn pure_noise_never_panics_and_always_terminates() {
    let mut rng = SimRng::new(0xF022_1E5E);
    for _ in 0..20_000 {
        let len = rng.uniform_u32(0, 64) as usize;
        let buf: Vec<u8> = (0..len).map(|_| rng.uniform_u32(0, 255) as u8).collect();
        // Either a clean scan or a clean protocol error; nothing else.
        let _ = scan(&buf);
    }
}

#[test]
fn noise_biased_toward_plausible_length_prefixes() {
    let mut rng = SimRng::new(0x5CA_FF01);
    for _ in 0..5_000 {
        // A believable length prefix followed by too few / garbage bytes
        // exercises the partial-frame and bad-payload paths far more
        // often than uniform noise does.
        let declared = rng.uniform_u32(0, MAX_PAYLOAD as u32 + 8);
        let supplied = rng.uniform_u32(0, 80) as usize;
        let mut buf = declared.to_le_bytes().to_vec();
        buf.extend((0..supplied).map(|_| rng.uniform_u32(0, 255) as u8));
        match scan(&buf) {
            Ok(_) => {}
            Err(WireError::Oversized(len)) => assert!(len > MAX_PAYLOAD),
            Err(other) => panic!("framing can only fail with Oversized, got {other}"),
        }
    }
}

#[test]
fn every_truncation_of_a_valid_stream_is_handled() {
    let mut rng = SimRng::new(0x7120_0CA7);
    let mut buf = Vec::new();
    for _ in 0..8 {
        wire::encode_request(&random_request(&mut rng), &mut buf);
    }
    wire::encode_response(&Response::overload(42), &mut buf);
    for cut in 0..=buf.len() {
        let frames = scan(&buf[..cut]).expect("truncations are partial frames, not errors");
        assert!(frames <= 9);
    }
    assert_eq!(scan(&buf).expect("full stream scans"), 9);
}

#[test]
fn single_byte_corruptions_fail_cleanly_or_decode() {
    let mut rng = SimRng::new(0xC0_22FF);
    let mut clean = Vec::new();
    wire::encode_request(&random_request(&mut rng), &mut clean);
    for at in 0..clean.len() {
        for value in [0x00, 0x01, 0x7F, 0x80, 0xFF] {
            let mut corrupt = clean.clone();
            corrupt[at] = value;
            match scan(&corrupt) {
                Ok(_) => {}
                Err(WireError::Oversized(len)) => assert!(len > MAX_PAYLOAD),
                Err(other) => panic!("framing error from a byte flip: {other}"),
            }
        }
    }
}

#[test]
fn random_requests_and_responses_round_trip() {
    let mut rng = SimRng::new(0x2017_2112);
    for i in 0..2_000u64 {
        let request = random_request(&mut rng);
        let mut buf = Vec::new();
        wire::encode_request(&request, &mut buf);
        let (start, end) = wire::next_frame(&buf)
            .expect("valid frame")
            .expect("complete frame");
        assert_eq!(end, buf.len());
        assert_eq!(
            wire::decode_request(&buf[start..end]).expect("decodes"),
            request
        );

        let response = Response {
            status: [
                Status::Reject,
                Status::Accept,
                Status::Overload,
                Status::Error,
            ][(i % 4) as usize],
            id: i,
            score: rng.uniform(-1.0, 1.0),
        };
        buf.clear();
        wire::encode_response(&response, &mut buf);
        let (start, end) = wire::next_frame(&buf)
            .expect("valid frame")
            .expect("complete frame");
        assert_eq!(
            wire::decode_response(&buf[start..end]).expect("decodes"),
            response
        );
    }
}

#[test]
fn oversized_prefixes_are_rejected_not_buffered() {
    for len in [MAX_PAYLOAD as u32 + 1, 1 << 20, u32::MAX] {
        let mut buf = len.to_le_bytes().to_vec();
        buf.extend_from_slice(&[0u8; 16]);
        match wire::next_frame(&buf) {
            Err(WireError::Oversized(reported)) => assert_eq!(reported, len as usize),
            other => panic!("expected Oversized for len {len}, got {other:?}"),
        }
    }
}
