//! The server's determinism contract: replaying a scenario's arrival
//! stream through `admitd` over one connection must produce the
//! bit-identical accept/reject sequence the in-process engine
//! produces.
//!
//! The reference sequence comes from offering the engine's own batch
//! workload one request at a time through
//! `Simulator::offer_requests` (whose loop body is exactly the
//! sequential per-request path), reading the accept count delta after
//! each offer.  The server side replays the same stream — rebuilt
//! bit-identically by `admitd::scenario::batch_frames`, distances
//! included — over one TCP connection.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;

use admitd::{scenario, Server, ServerConfig, World, WorldConfig};
use cellsim::{CellId, SimConfig, SimRng, Simulator, TrafficGenerator};
use sweep::ControllerSpec;

/// Reference accept/reject sequence from the in-process engine.
fn engine_sequence(config: &SimConfig, n: usize, spec: &ControllerSpec) -> (Vec<bool>, u32) {
    let mut sim = Simulator::new(config.clone());
    let mut controller = spec.build();
    // Rebuild the calls exactly as `run_batch` does.
    let mut generator = TrafficGenerator::with_model(
        config.traffic.clone(),
        &config.traffic_model,
        SimRng::new(config.seed).derive(0xD15C).derive(1).seed(),
    );
    let calls = generator.generate_batch(n);
    let mut accepts = Vec::with_capacity(n);
    let mut accepted_so_far = 0;
    for call in &calls {
        sim.offer_requests(&mut *controller, std::slice::from_ref(call));
        let now_accepted = sim.metrics().accepted();
        accepts.push(now_accepted > accepted_so_far);
        accepted_so_far = now_accepted;
    }
    let occupied = sim
        .station(&CellId::origin())
        .expect("origin station")
        .occupied();
    (accepts, occupied)
}

/// Accept/reject sequence observed through the server on one
/// connection, one frame at a time, plus the final origin occupancy.
fn server_sequence(config: &SimConfig, n: usize, spec: &ControllerSpec) -> (Vec<bool>, u32) {
    let world = Arc::new(World::new(
        &WorldConfig::from_sim_config(config, 1),
        &spec.label(),
        || spec.build(),
    ));
    let server = Server::bind(Arc::clone(&world), "127.0.0.1:0", ServerConfig::default())
        .expect("bind loopback");
    let addr = server.local_addr().expect("bound address");
    let shutdown = server.shutdown_handle();
    let handle = std::thread::spawn(move || server.run().expect("server run"));

    let frames = scenario::batch_frames(config, n, 0);
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.set_nodelay(true).expect("nodelay");
    stream.write_all(&admitd::wire::MAGIC).expect("magic");
    let mut accepts = Vec::with_capacity(n);
    let mut buf = Vec::new();
    let mut response = [0u8; 4 + admitd::wire::RESPONSE_PAYLOAD_LEN];
    for frame in &frames {
        buf.clear();
        admitd::wire::encode_request(frame, &mut buf);
        stream.write_all(&buf).expect("send frame");
        stream.read_exact(&mut response).expect("read response");
        let decoded = admitd::wire::decode_response(&response[4..]).expect("decode response");
        assert_eq!(decoded.id, frame.id(), "responses arrive in request order");
        assert_ne!(
            decoded.status,
            admitd::wire::Status::Overload,
            "single outstanding frame can never overload"
        );
        accepts.push(decoded.status == admitd::wire::Status::Accept);
    }
    drop(stream);
    let occupied = world.occupied(0).expect("origin cell");
    shutdown.store(true, std::sync::atomic::Ordering::SeqCst);
    handle.join().expect("server thread");
    (accepts, occupied)
}

/// One scenario, every controller family the server can host: the
/// paper's single-cell batch workload at a capacity that forces a mix
/// of accepts, policy rejections and capacity rejections.
#[test]
fn server_replay_is_bit_identical_to_the_engine() {
    let n = 400;
    let config = SimConfig::paper_default().with_seed(0xAD817D);
    for spec in [
        ControllerSpec::FacsPLut,
        ControllerSpec::Facs,
        ControllerSpec::Scc,
    ] {
        let (engine_accepts, engine_occupied) = engine_sequence(&config, n, &spec);
        let (server_accepts, server_occupied) = server_sequence(&config, n, &spec);
        assert_eq!(
            engine_accepts,
            server_accepts,
            "accept/reject sequence diverged for {}",
            spec.label()
        );
        assert_eq!(
            engine_occupied,
            server_occupied,
            "final occupancy diverged for {}",
            spec.label()
        );
        // The workload must exercise all three outcomes to be a real
        // determinism proof, not a vacuous all-accept run.
        assert!(engine_accepts.iter().any(|&a| a), "{}", spec.label());
        assert!(engine_accepts.iter().any(|&a| !a), "{}", spec.label());
    }
}

/// The reference construction above must itself match `run_batch` —
/// pinning the frame builder to the engine's seeding rules.
#[test]
fn reference_sequence_matches_run_batch_totals() {
    let n = 400;
    let config = SimConfig::paper_default().with_seed(0xAD817D);
    let spec = ControllerSpec::FacsPLut;
    let (accepts, _) = engine_sequence(&config, n, &spec);
    let mut sim = Simulator::new(config);
    let mut controller = spec.build();
    let report = sim.run_batch(&mut *controller, n);
    assert_eq!(report.offered, n as u64);
    assert_eq!(
        report.accepted,
        accepts.iter().filter(|&&a| a).count() as u64
    );
}
