//! Exit-code and error-message contract of the `admitd` binary: every
//! operator mistake (dead server, missing file, bad flag) must exit
//! nonzero with a message that names the problem, never a panic or a
//! silent success.

use std::process::{Command, Output};

fn admitd(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_admitd"))
        .args(args)
        .output()
        .expect("spawn admitd")
}

fn stderr(output: &Output) -> String {
    String::from_utf8_lossy(&output.stderr).into_owned()
}

/// A loopback port with nothing listening on it: bind, read the port,
/// drop the listener.
fn dead_port() -> u16 {
    std::net::TcpListener::bind("127.0.0.1:0")
        .expect("bind probe")
        .local_addr()
        .expect("probe addr")
        .port()
}

#[test]
fn bench_against_unreachable_server_exits_nonzero_with_context() {
    let addr = format!("127.0.0.1:{}", dead_port());
    let out = admitd(&["bench", "--addr", &addr, "--requests", "10"]);
    assert!(!out.status.success(), "bench must fail without a server");
    let err = stderr(&out);
    assert!(err.contains("admitd:"), "prefixed for scripts: {err}");
    assert!(
        err.contains(&addr) && err.contains("is `admitd serve` running"),
        "error must say where it tried and hint at the fix: {err}"
    );
}

#[test]
fn bench_retries_report_the_attempt_count() {
    let addr = format!("127.0.0.1:{}", dead_port());
    let out = admitd(&[
        "bench",
        "--addr",
        &addr,
        "--requests",
        "10",
        "--retries",
        "2",
    ]);
    assert!(!out.status.success());
    assert!(
        stderr(&out).contains("failed after 3 attempt(s)"),
        "attempt count (1 try + 2 retries) missing: {}",
        stderr(&out)
    );
}

#[test]
fn check_metrics_on_missing_file_exits_nonzero() {
    let out = admitd(&["check-metrics", "/nonexistent/metrics.prom"]);
    assert!(!out.status.success());
    let err = stderr(&out);
    assert!(
        err.contains("cannot read") && err.contains("/nonexistent/metrics.prom"),
        "must name the unreadable file: {err}"
    );
}

#[test]
fn serve_with_missing_restore_file_exits_nonzero() {
    let out = admitd(&["serve", "--restore", "/nonexistent/world.json"]);
    assert!(!out.status.success());
    assert!(
        stderr(&out).contains("cannot read snapshot"),
        "must explain the failed restore: {}",
        stderr(&out)
    );
}

#[test]
fn bad_invocations_exit_nonzero_with_usage_or_reason() {
    for (args, want) in [
        (vec!["frobnicate"], "unknown command"),
        (vec!["serve", "--chaos"], "--chaos"),
        (vec!["serve", "--snapshot-every", "-1"], "--snapshot-every"),
        (vec!["bench", "--deadline-ms", "0"], "--deadline-ms"),
        (vec!["bench", "--connections", "zero"], "--connections"),
    ] {
        let out = admitd(&args);
        assert!(!out.status.success(), "{args:?} must fail");
        assert!(
            stderr(&out).contains(want),
            "{args:?} must mention `{want}`: {}",
            stderr(&out)
        );
    }
    let out = admitd(&[]);
    assert!(!out.status.success(), "no command is an error");
}

#[test]
fn help_exits_zero_and_documents_the_robustness_flags() {
    let out = admitd(&["--help"]);
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout).into_owned();
    for flag in [
        "--chaos",
        "--snapshot",
        "--restore",
        "--release-on-disconnect",
        "--retries",
        "--deadline-ms",
    ] {
        assert!(text.contains(flag), "usage must document {flag}");
    }
}
