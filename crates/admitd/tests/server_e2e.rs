//! End-to-end server tests over real sockets: pipelined binary
//! traffic, the HTTP observability endpoints, and clean shutdown.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;

use admitd::wire::{self, Status};
use admitd::{client, scenario, Server, ServerConfig, World, WorldConfig};
use cellsim::SimConfig;
use sweep::ControllerSpec;

struct Running {
    addr: std::net::SocketAddr,
    shutdown: Arc<std::sync::atomic::AtomicBool>,
    handle: std::thread::JoinHandle<admitd::ServerSummary>,
    world: Arc<World>,
}

fn start_server(world_config: &WorldConfig, spec: ControllerSpec) -> Running {
    let world = Arc::new(World::new(world_config, &spec.label(), || spec.build()));
    let server = Server::bind(Arc::clone(&world), "127.0.0.1:0", ServerConfig::default())
        .expect("bind loopback");
    let addr = server.local_addr().expect("bound address");
    let shutdown = server.shutdown_handle();
    let handle = std::thread::spawn(move || server.run().expect("server run"));
    Running {
        addr,
        shutdown,
        handle,
        world,
    }
}

fn stop(running: Running) -> admitd::ServerSummary {
    running
        .shutdown
        .store(true, std::sync::atomic::Ordering::SeqCst);
    running.handle.join().expect("server thread")
}

fn http_get(addr: std::net::SocketAddr, target: &str) -> (String, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .write_all(format!("GET {target} HTTP/1.1\r\nHost: admitd\r\n\r\n").as_bytes())
        .expect("send request");
    let mut raw = String::new();
    stream.read_to_string(&mut raw).expect("read response");
    let (head, body) = raw.split_once("\r\n\r\n").expect("header/body split");
    (head.to_string(), body.to_string())
}

#[test]
fn pipelined_replay_gets_one_response_per_frame_in_order() {
    let running = start_server(&WorldConfig::paper_default(), ControllerSpec::FacsPLut);
    let config = client::BenchConfig {
        addr: running.addr.to_string(),
        connections: 3,
        requests_per_connection: 500,
        sim: SimConfig::paper_default(),
        ..client::BenchConfig::default()
    };
    let report = client::run(&config).expect("bench run");
    assert_eq!(report.requests, 1500);
    assert_eq!(report.errors, 0);
    assert_eq!(
        report.accepted + report.rejected + report.overloaded,
        report.requests
    );
    assert!(report.accepted > 0, "some requests must be admitted");
    assert!(report.requests_per_sec > 0.0);
    let summary = stop(running);
    assert_eq!(summary.connections, 3);
    assert_eq!(summary.frames + summary.overloaded, 1500);
}

#[test]
fn metrics_endpoint_lints_clean_and_state_reports_occupancy() {
    let running = start_server(&WorldConfig::paper_default(), ControllerSpec::FacsP);
    // Admit some traffic first so the exposition has non-zero series.
    let config = client::BenchConfig {
        addr: running.addr.to_string(),
        connections: 1,
        requests_per_connection: 200,
        sim: SimConfig::paper_default(),
        ..client::BenchConfig::default()
    };
    client::run(&config).expect("bench run");

    let (head, body) = http_get(running.addr, "/metrics");
    assert!(head.starts_with("HTTP/1.1 200 OK"), "{head}");
    telemetry::lint_prometheus(&body).expect("valid Prometheus exposition");
    assert!(body.contains("admitd_frames_total"), "{body}");
    assert!(body.contains("admitd_batches_total"), "{body}");

    let (head, body) = http_get(running.addr, "/state");
    assert!(head.starts_with("HTTP/1.1 200 OK"), "{head}");
    let state: serde_json::Value = serde_json::from_str(&body).expect("valid JSON");
    assert_eq!(state["cells"], 1u64);
    assert_eq!(
        state["occupied_total"].as_u64(),
        running.world.occupied(0).map(u64::from)
    );

    let (head, _) = http_get(running.addr, "/healthz");
    assert!(head.starts_with("HTTP/1.1 200 OK"), "{head}");
    let (head, _) = http_get(running.addr, "/nope");
    assert!(head.starts_with("HTTP/1.1 404"), "{head}");

    stop(running);
}

#[test]
fn oversized_length_prefix_drops_the_connection() {
    let running = start_server(&WorldConfig::paper_default(), ControllerSpec::AlwaysAccept);
    let mut stream = TcpStream::connect(running.addr).expect("connect");
    stream.write_all(&wire::MAGIC).expect("magic");
    stream
        .write_all(&u32::MAX.to_le_bytes())
        .expect("bogus length");
    let mut buf = [0u8; 16];
    // The server must close; the read drains to EOF rather than hang.
    let n = stream.read(&mut buf).expect("read EOF");
    assert_eq!(n, 0, "connection closed without a response");
    stop(running);
}

#[test]
fn every_frame_of_a_large_single_write_is_answered() {
    let running = start_server(&WorldConfig::paper_default(), ControllerSpec::AlwaysAccept);
    let config = SimConfig::paper_default();
    let frames = scenario::batch_frames(&config, 300, 0);
    let mut buf = Vec::new();
    buf.extend_from_slice(&wire::MAGIC);
    for frame in &frames {
        wire::encode_request(frame, &mut buf);
    }
    let mut stream = TcpStream::connect(running.addr).expect("connect");
    stream.write_all(&buf).expect("one large write");

    let mut seen = Vec::new();
    let mut inbuf = Vec::new();
    let mut chunk = [0u8; 8192];
    while seen.len() < frames.len() {
        while let Some((start, end)) = wire::next_frame(&inbuf).expect("well-formed responses") {
            let response = wire::decode_response(&inbuf[start..end]).expect("decode");
            inbuf.drain(..end);
            seen.push(response);
        }
        if seen.len() == frames.len() {
            break;
        }
        let n = stream.read(&mut chunk).expect("read responses");
        assert_ne!(n, 0, "server closed early");
        inbuf.extend_from_slice(&chunk[..n]);
    }
    // Exactly one response per frame, echoing ids in request order;
    // any mix of decided and overload statuses is legal, errors not.
    for (frame, response) in frames.iter().zip(&seen) {
        assert_eq!(frame.id(), response.id);
        assert_ne!(response.status, Status::Error);
    }
    stop(running);
}
