//! Robustness end to end: the bench client must complete through
//! server-side chaos, disconnect releases must free abandoned calls,
//! and a snapshot taken before a SIGKILL must restore the exact
//! per-cell occupancy in a fresh process.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::{Duration, Instant};

use admitd::chaos::ChaosConfig;
use admitd::client::{self, RetryConfig};
use admitd::state;
use admitd::wire::{self, AdmitFrame, Request, Status};
use admitd::{Server, ServerConfig, World, WorldConfig};
use cellsim::{ServiceClass, SimConfig};
use sweep::ControllerSpec;

fn start_server(world_config: &WorldConfig, spec: ControllerSpec, config: ServerConfig) -> Running {
    let world = Arc::new(World::new(world_config, &spec.label(), || spec.build()));
    let server = Server::bind(Arc::clone(&world), "127.0.0.1:0", config).expect("bind loopback");
    let addr = server.local_addr().expect("bound address");
    let shutdown = server.shutdown_handle();
    let handle = std::thread::spawn(move || server.run().expect("server run"));
    Running {
        addr,
        shutdown,
        handle,
        world,
    }
}

struct Running {
    addr: std::net::SocketAddr,
    shutdown: Arc<std::sync::atomic::AtomicBool>,
    handle: std::thread::JoinHandle<admitd::ServerSummary>,
    world: Arc<World>,
}

impl Running {
    fn stop(self) -> admitd::ServerSummary {
        self.shutdown
            .store(true, std::sync::atomic::Ordering::SeqCst);
        self.handle.join().expect("server thread")
    }
}

fn admit(cell: u32, id: u64, holding: f64) -> Request {
    Request::Admit(AdmitFrame {
        cell,
        id,
        class: ServiceClass::Voice,
        is_handoff: false,
        bandwidth: 5,
        time: 0.0,
        holding_time: holding,
        speed_kmh: 30.0,
        angle_deg: 0.0,
        distance_m: Some(250.0),
    })
}

/// The bench client must finish a replay — every frame acknowledged
/// exactly once — against a server that resets, delays and truncates
/// its responses, by backing off and reconnecting transparently.
#[test]
fn bench_completes_through_chaos() {
    let running = start_server(
        &WorldConfig::paper_default(),
        ControllerSpec::FacsPLut,
        ServerConfig {
            chaos: Some(ChaosConfig::with_seed(0xC4A05)),
            ..ServerConfig::default()
        },
    );
    let config = client::BenchConfig {
        addr: running.addr.to_string(),
        connections: 2,
        requests_per_connection: 800,
        sim: SimConfig::paper_default(),
        retry: RetryConfig {
            max_attempts: 64,
            base_backoff: Duration::from_millis(1),
            max_backoff: Duration::from_millis(20),
            deadline: Some(Duration::from_secs(5)),
            seed: 0x7E57,
        },
    };
    let report = client::run(&config).expect("bench must survive chaos");
    assert_eq!(report.requests, 1600, "every frame acknowledged once");
    assert_eq!(
        report.accepted + report.rejected + report.overloaded + report.errors,
        report.requests
    );
    assert!(
        report.reconnects > 0,
        "the chaos profile must actually cut connections"
    );
    running.stop();
}

/// Without retries the same chaos profile kills the run — proving the
/// resilience comes from the client policy, not from a soft server.
#[test]
fn chaos_without_retries_fails_fast_with_context() {
    let running = start_server(
        &WorldConfig::paper_default(),
        ControllerSpec::AlwaysAccept,
        ServerConfig {
            chaos: Some(ChaosConfig {
                reset_prob: 1.0, // every window dies
                ..ChaosConfig::with_seed(1)
            }),
            ..ServerConfig::default()
        },
    );
    let config = client::BenchConfig {
        addr: running.addr.to_string(),
        connections: 1,
        requests_per_connection: 200,
        sim: SimConfig::paper_default(),
        retry: RetryConfig::default(), // one attempt, the pre-chaos policy
    };
    let err = client::run(&config).expect_err("one attempt cannot survive 100% resets");
    assert!(
        err.to_string().contains("failed after 1 attempt"),
        "error must say what failed and how often: {err}"
    );
    running.stop();
}

/// `release_on_disconnect` frees whatever an abruptly dropped client
/// still held; with it off, the same workload leaks occupancy.
#[test]
fn disconnect_releases_abandoned_calls_only_when_enabled() {
    for (enabled, expect_occupied_after) in [(true, 0u32), (false, 15u32)] {
        let running = start_server(
            &WorldConfig::paper_default(),
            ControllerSpec::AlwaysAccept,
            ServerConfig {
                release_on_disconnect: enabled,
                ..ServerConfig::default()
            },
        );
        let mut stream = TcpStream::connect(running.addr).expect("connect");
        stream.write_all(&wire::MAGIC).expect("magic");
        let mut buf = Vec::new();
        for id in 0..3 {
            wire::encode_request(&admit(0, id, 1e6), &mut buf);
        }
        stream.write_all(&buf).expect("send admits");
        let mut response = [0u8; 4 + wire::RESPONSE_PAYLOAD_LEN];
        for _ in 0..3 {
            stream.read_exact(&mut response).expect("read response");
            let decoded = wire::decode_response(&response[4..]).expect("decode");
            assert_eq!(decoded.status, Status::Accept);
        }
        assert_eq!(running.world.occupied(0), Some(15));
        drop(stream);

        let deadline = Instant::now() + Duration::from_secs(5);
        loop {
            let occupied = running.world.occupied(0).expect("origin cell");
            if occupied == expect_occupied_after {
                break;
            }
            assert!(
                Instant::now() < deadline,
                "occupancy stuck at {occupied}, wanted {expect_occupied_after} \
                 (release_on_disconnect = {enabled})"
            );
            std::thread::sleep(Duration::from_millis(10));
        }
        let summary = running.stop();
        assert_eq!(summary.connections, 1);
    }
}

/// An explicit client release must take the connection out of the
/// disconnect-cleanup set: dropping the client afterwards releases
/// only what it still held.
#[test]
fn explicit_releases_shrink_the_cleanup_set() {
    let running = start_server(
        &WorldConfig::paper_default(),
        ControllerSpec::AlwaysAccept,
        ServerConfig {
            release_on_disconnect: true,
            ..ServerConfig::default()
        },
    );
    let mut stream = TcpStream::connect(running.addr).expect("connect");
    stream.write_all(&wire::MAGIC).expect("magic");
    let mut buf = Vec::new();
    for id in 0..2 {
        wire::encode_request(&admit(0, id, 1e6), &mut buf);
    }
    wire::encode_request(
        &Request::Release(wire::ReleaseFrame {
            cell: 0,
            id: 0,
            time: 1.0,
        }),
        &mut buf,
    );
    stream.write_all(&buf).expect("send");
    let mut response = [0u8; 4 + wire::RESPONSE_PAYLOAD_LEN];
    for _ in 0..3 {
        stream.read_exact(&mut response).expect("read response");
    }
    assert_eq!(running.world.occupied(0), Some(5), "one call released");
    drop(stream);
    let deadline = Instant::now() + Duration::from_secs(5);
    while running.world.occupied(0) != Some(0) {
        assert!(Instant::now() < deadline, "abandoned call never freed");
        std::thread::sleep(Duration::from_millis(10));
    }
    running.stop();
}

/// `World::release_abandoned` itself: unknown ids and out-of-grid
/// cells are skipped, live ones freed and counted.
#[test]
fn release_abandoned_skips_what_is_already_gone() {
    let world = World::new(&WorldConfig::paper_default(), "always-accept", || {
        ControllerSpec::AlwaysAccept.build()
    });
    let mut out = Vec::new();
    world.process(&[admit(0, 1, 1e6), admit(0, 2, 1e6)], &mut out);
    assert!(out.iter().all(|r| r.status == Status::Accept));
    let freed = world.release_abandoned(&[(0, 1), (0, 999), (77, 1), (0, 2), (0, 2)]);
    assert_eq!(freed, 2);
    assert_eq!(world.occupied(0), Some(0));
}

/// Replayed admits (the at-least-once path after a reconnect) must be
/// answered idempotently: same Accept, no double occupancy.
#[test]
fn replayed_admits_are_idempotent() {
    let world = World::new(&WorldConfig::paper_default(), "FACS-P", || {
        ControllerSpec::FacsP.build()
    });
    let mut out = Vec::new();
    world.process(&[admit(0, 7, 1e6)], &mut out);
    assert_eq!(out[0].status, Status::Accept);
    let occupied = world.occupied(0).unwrap();
    out.clear();
    world.process(&[admit(0, 7, 1e6), admit(0, 7, 1e6)], &mut out);
    assert!(out.iter().all(|r| r.status == Status::Accept));
    assert_eq!(world.occupied(0), Some(occupied), "no double admission");
}

/// Snapshot → restore into a fresh world reproduces the authoritative
/// state byte for byte (stations, live connections, clocks).
#[test]
fn snapshot_restores_bit_identical_state() {
    let config = WorldConfig {
        grid_radius_cells: 2,
        cell_radius_m: 500.0,
        station_capacity: 40,
        shards: 3,
    };
    let world = World::new(&config, "FACS-P", || ControllerSpec::FacsP.build());
    let cells = world.grid().len() as u32;
    let mut out = Vec::new();
    for id in 0..60u64 {
        world.process(&[admit(id as u32 % cells, id, 500.0 + id as f64)], &mut out);
    }
    let snapshot = world.snapshot();
    assert!(snapshot.stations.iter().any(|s| s.occupied() > 0));

    let restored = World::new(&config, "FACS-P", || ControllerSpec::FacsP.build());
    let live = restored.restore(&snapshot).expect("same-shape world");
    assert!(live > 0);
    assert_eq!(
        serde_json::to_string(&restored.snapshot()).unwrap(),
        serde_json::to_string(&snapshot).unwrap(),
        "restore must reproduce the checkpoint exactly"
    );

    // And both worlds answer the traffic that follows identically.
    let mut a = Vec::new();
    let mut b = Vec::new();
    for id in 100..140u64 {
        world.process(&[admit(id as u32 % cells, id, 50.0)], &mut a);
        restored.process(&[admit(id as u32 % cells, id, 50.0)], &mut b);
    }
    assert_eq!(a, b, "restored world must decide like the original");

    let wrong_shape = World::new(&WorldConfig::paper_default(), "FACS-P", || {
        ControllerSpec::FacsP.build()
    });
    assert!(wrong_shape.restore(&snapshot).is_err());
}

/// Round-trip through the on-disk format used by `--snapshot` /
/// `--restore`, including the atomic temp-file rename.
#[test]
fn snapshot_files_round_trip() {
    let world = World::new(&WorldConfig::paper_default(), "always-accept", || {
        ControllerSpec::AlwaysAccept.build()
    });
    let mut out = Vec::new();
    world.process(&[admit(0, 1, 1e6)], &mut out);
    let path = std::env::temp_dir().join(format!("admitd-snap-{}.json", std::process::id()));
    state::save_snapshot(&world, &path).expect("write snapshot");
    let loaded = state::load_snapshot(&path).expect("read snapshot");
    assert_eq!(loaded.cells, 1);
    assert_eq!(loaded.stations[0].occupied(), 5);
    assert!(
        !path.with_extension("tmp").exists(),
        "temp file renamed away"
    );
    std::fs::remove_file(&path).ok();

    let missing = state::load_snapshot(std::path::Path::new("/nonexistent/snap.json"));
    assert!(missing.unwrap_err().contains("cannot read snapshot"));
}

/// The headline robustness proof: admit traffic through a chaotic
/// server that checkpoints continuously, SIGKILL it mid-flight, restart
/// from the snapshot and require the exact per-cell occupancy back.
#[test]
fn sigkill_then_restore_recovers_per_cell_occupancy() {
    let bin = env!("CARGO_BIN_EXE_admitd");
    let dir = std::env::temp_dir().join(format!("admitd-crash-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("scratch dir");
    let snap = dir.join("world.json");

    let mut serve = std::process::Command::new(bin)
        .args([
            "serve",
            "--addr",
            "127.0.0.1:0",
            "--controller",
            "facs-p-lut",
            "--chaos",
            "7",
            "--snapshot",
            snap.to_str().unwrap(),
            "--snapshot-every",
            "0.05",
        ])
        .stdout(std::process::Stdio::piped())
        .stderr(std::process::Stdio::null())
        .spawn()
        .expect("spawn admitd serve");
    let addr = read_bound_addr(serve.stdout.as_mut().expect("piped stdout"));

    // Load it through chaos with the resilient client.
    let report = client::run(&client::BenchConfig {
        addr: addr.clone(),
        connections: 2,
        requests_per_connection: 400,
        sim: SimConfig::paper_default(),
        retry: RetryConfig {
            max_attempts: 64,
            base_backoff: Duration::from_millis(1),
            max_backoff: Duration::from_millis(20),
            deadline: Some(Duration::from_secs(5)),
            seed: 1,
        },
    })
    .expect("bench through chaos");
    assert_eq!(report.requests, 800);

    // The world is now quiescent; wait for a checkpoint that captures
    // it (two snapshot intervals after the last admission).
    std::thread::sleep(Duration::from_millis(250));
    let before = state::load_snapshot(&snap).expect("snapshot written");
    let expected: Vec<u32> = before.stations.iter().map(|s| s.occupied()).collect();
    assert!(
        expected.iter().sum::<u32>() > 0,
        "bench must leave live calls"
    );

    serve.kill().expect("SIGKILL the server"); // SIGKILL: no shutdown path runs
    serve.wait().expect("reap");

    let mut revived = std::process::Command::new(bin)
        .args([
            "serve",
            "--addr",
            "127.0.0.1:0",
            "--controller",
            "facs-p-lut",
            "--restore",
            snap.to_str().unwrap(),
        ])
        .stdout(std::process::Stdio::piped())
        .stderr(std::process::Stdio::null())
        .spawn()
        .expect("spawn restored admitd");
    let addr = read_bound_addr(revived.stdout.as_mut().expect("piped stdout"));

    let state_json = http_get_body(&addr, "/state");
    let state: serde_json::Value = serde_json::from_str(&state_json).expect("valid /state JSON");
    let per_cell = state["per_cell"].as_array().expect("per_cell array");
    let recovered: Vec<u64> = per_cell
        .iter()
        .map(|c| c["occupied"].as_u64().expect("occupied"))
        .collect();
    assert_eq!(
        recovered,
        expected.iter().map(|&o| u64::from(o)).collect::<Vec<u64>>(),
        "restored server must report the checkpointed per-cell occupancy"
    );

    revived.kill().expect("stop restored server");
    revived.wait().expect("reap");
    std::fs::remove_dir_all(&dir).ok();
}

/// Parse the bound address out of the serve banner
/// (`admitd: serving ... on 127.0.0.1:PORT`).
fn read_bound_addr(stdout: &mut std::process::ChildStdout) -> String {
    let mut reader = BufReader::new(stdout);
    let mut line = String::new();
    loop {
        line.clear();
        let n = reader.read_line(&mut line).expect("read serve banner");
        assert_ne!(n, 0, "server exited before announcing its address");
        if let Some((_, addr)) = line.trim_end().rsplit_once(" on ") {
            return addr.to_string();
        }
    }
}

fn http_get_body(addr: &str, target: &str) -> String {
    let mut stream = TcpStream::connect(addr).expect("connect for HTTP");
    stream
        .write_all(format!("GET {target} HTTP/1.1\r\nHost: admitd\r\n\r\n").as_bytes())
        .expect("send request");
    let mut raw = String::new();
    stream.read_to_string(&mut raw).expect("read response");
    raw.split_once("\r\n\r\n")
        .expect("header/body split")
        .1
        .to_string()
}
