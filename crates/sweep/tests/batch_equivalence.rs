//! The one-snapshot batch contract, proven for every controller a spec
//! can build: `decide_batch` over a boxed trait object must equal the
//! sequential `decide` loop against the same frozen station, and must
//! not mutate controller state (only `on_admitted` / `on_released`
//! may).  The per-crate unit tests cover the concrete FACS, FACS-P and
//! SCC types; this test covers the [`BoxedController`] path the sweep
//! workers, the sharded engine and the `admitd` server all dispatch
//! through.
//!
//! [`BoxedController`]: cellsim::shard::BoxedController

use cellsim::geometry::CellId;
use cellsim::sim::{AdmissionDecision, AdmissionRequest};
use cellsim::station::BaseStation;
use cellsim::traffic::ServiceClass;
use sweep::ControllerSpec;

fn request(id: u64, i: usize) -> AdmissionRequest {
    let class = [ServiceClass::Text, ServiceClass::Voice, ServiceClass::Video][i % 3];
    AdmissionRequest {
        id,
        cell: CellId::origin(),
        time: 0.0,
        class,
        bandwidth: class.paper_bandwidth(),
        holding_time: 180.0,
        speed_kmh: 7.5 * i as f64,
        angle_deg: 22.5 * i as f64 - 180.0,
        distance_m: Some(300.0),
        is_handoff: i % 4 == 0,
    }
}

/// A partially-filled station whose admitted calls the controller has
/// been told about, so stateful controllers (SCC's cluster estimator)
/// are exercised with real projections, not an empty slate.
fn seeded_station(controller: &mut dyn cellsim::AdmissionController) -> BaseStation {
    let mut station = BaseStation::paper_default();
    for id in 0..3u64 {
        let req = AdmissionRequest {
            is_handoff: false,
            ..request(id, id as usize)
        };
        station
            .admit(id, ServiceClass::Video, 10, 0.0, 600.0, false)
            .expect("station has room");
        controller.on_admitted(&req, &station);
    }
    station
}

#[test]
fn boxed_decide_batch_matches_sequential_decide_for_every_spec() {
    let specs = [
        ControllerSpec::FacsP,
        ControllerSpec::FacsPLut,
        ControllerSpec::Facs,
        ControllerSpec::Scc,
        ControllerSpec::AlwaysAccept,
        ControllerSpec::Threshold {
            new_call: 0.6,
            handoff: 0.9,
        },
    ];
    for spec in specs {
        let mut boxed = spec.build();
        let station = seeded_station(&mut *boxed);
        let requests: Vec<AdmissionRequest> = (0..24).map(|i| request(100 + i as u64, i)).collect();

        let mut batch: Vec<AdmissionDecision> = Vec::new();
        boxed.decide_batch(&requests, &station, &mut batch);
        assert_eq!(batch.len(), requests.len(), "{}", spec.label());

        // Sequential reference on a *fresh* controller seeded the same
        // way — if the batch pass had leaked state into `boxed`, the two
        // sequences would diverge.
        let mut fresh = spec.build();
        let fresh_station = seeded_station(&mut *fresh);
        for (r, d) in requests.iter().zip(&batch) {
            assert_eq!(
                *d,
                fresh.decide(r, &fresh_station),
                "{}: diverged on request {}",
                spec.label(),
                r.id
            );
        }

        // And the batch itself must be repeatable: decide_batch is
        // observation-only, so a second pass sees the same snapshot.
        let mut again: Vec<AdmissionDecision> = Vec::new();
        boxed.decide_batch(&requests, &station, &mut again);
        assert_eq!(batch, again, "{}: decide_batch mutated state", spec.label());
    }
}
