//! Declarative experiment descriptions.
//!
//! A [`ScenarioSpec`] captures *everything* a full experiment needs — the
//! network (grid size, cell radius, station capacity), the workload
//! (traffic mix, mobility ranges, load axis), the admission controllers to
//! compare, and the statistical design (replication count, base seed) — as
//! one serde-serializable value.  A spec can therefore live in a JSON file,
//! be shipped to another machine, and reproduce the exact same numbers,
//! because every random draw of every replication is derived from the
//! spec's `base_seed` by a fixed rule ([`ScenarioSpec::seed_for`]).

use cellsim::shard::BoxedController;
use cellsim::sim::{AlwaysAccept, CapacityThreshold, SimConfig};
use cellsim::traffic::{TrafficConfig, TrafficModel};
use cellsim::{Bandwidth, FaultPlan, MobilityModel};
use facs::{FacsController, FacsPController};
use scc::SccAdmission;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Which admission controller a scenario runs (the controller factory:
/// every variant knows how to build its boxed
/// [`AdmissionController`](cellsim::sim::AdmissionController)).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ControllerSpec {
    /// The proposed FACS-P controller.
    FacsP,
    /// FACS-P with the LUT decision backend: FLC2 pre-tabulated into
    /// per-class `(Cv, Cs)` surfaces (decisions within the measured LUT
    /// error of `FacsP`, lookups independent of rule count).
    FacsPLut,
    /// The authors' previous FACS controller.
    Facs,
    /// The Shadow Cluster Concept baseline.
    Scc,
    /// Admit-if-it-fits upper bound.
    AlwaysAccept,
    /// Guard-channel style utilisation threshold.
    Threshold {
        /// Maximum post-admission utilisation for new calls, in `[0, 1]`.
        new_call: f64,
        /// Maximum post-admission utilisation for handoffs, in `[0, 1]`.
        handoff: f64,
    },
}

impl ControllerSpec {
    /// Label used in reports and figure series.
    #[must_use]
    pub fn label(&self) -> String {
        match self {
            ControllerSpec::FacsP => "FACS-P".to_string(),
            ControllerSpec::FacsPLut => "FACS-P-LUT".to_string(),
            ControllerSpec::Facs => "FACS".to_string(),
            ControllerSpec::Scc => "SCC".to_string(),
            ControllerSpec::AlwaysAccept => "always-accept".to_string(),
            ControllerSpec::Threshold { new_call, handoff } => {
                format!("threshold({new_call:.2}/{handoff:.2})")
            }
        }
    }

    /// Instantiate a fresh controller for one replication.
    ///
    /// The box is `Send` so the same factory drives both the sequential
    /// per-cell sweep workers and the sharded engine's per-shard
    /// controller banks.
    #[must_use]
    pub fn build(&self) -> BoxedController {
        match self {
            ControllerSpec::FacsP => FacsPController::boxed_paper_default(),
            ControllerSpec::FacsPLut => FacsPController::boxed_paper_default_lut(),
            ControllerSpec::Facs => FacsController::boxed_paper_default(),
            ControllerSpec::Scc => SccAdmission::boxed_paper_default(),
            ControllerSpec::AlwaysAccept => Box::new(AlwaysAccept),
            ControllerSpec::Threshold { new_call, handoff } => {
                Box::new(CapacityThreshold::new(*new_call, *handoff))
            }
        }
    }
}

impl fmt::Display for ControllerSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label())
    }
}

/// How a load point `n` translates into offered traffic.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum LoadMode {
    /// The paper's figure shape: `n` requesting connections arrive over a
    /// fixed observation window (`mean_interarrival_s = window_s / n`),
    /// driven through the Poisson event loop.
    RequestsPerWindow {
        /// Observation window length (seconds).
        window_s: f64,
    },
    /// `n` Poisson arrivals at the inter-arrival time already configured in
    /// the spec's [`TrafficConfig`] — the load axis is the run length.
    TotalRequests,
    /// `n` requests all offered at time zero against the origin cell (the
    /// paper's batch shape; capacity is the binding resource).
    Batch,
}

/// Errors produced when validating or loading a [`ScenarioSpec`].
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SpecError {
    /// A structural problem with the spec (empty axis, zero capacity, …).
    Invalid(String),
    /// The spec could not be parsed from JSON.
    Parse(String),
}

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpecError::Invalid(msg) => write!(f, "invalid scenario spec: {msg}"),
            SpecError::Parse(msg) => write!(f, "could not parse scenario spec: {msg}"),
        }
    }
}

impl std::error::Error for SpecError {}

/// A complete, serializable description of one experiment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScenarioSpec {
    /// Scenario name (used in reports and file names).
    pub name: String,
    /// One-line human description.
    pub description: String,
    /// Radius of the hexagonal grid in cells (0 = the paper's single cell).
    pub grid_radius_cells: u32,
    /// Cell radius in metres.
    pub cell_radius_m: f64,
    /// Capacity of every base station (BU).
    pub station_capacity: Bandwidth,
    /// Workload parameters: service mix, holding times, speed and angle
    /// ranges, handoff fraction, direction predictability.  When the load
    /// mode is [`LoadMode::RequestsPerWindow`] the configured
    /// `mean_interarrival_s` is overridden per load point.
    pub traffic: TrafficConfig,
    /// The arrival process: Poisson (the paper's workload and the
    /// default), MMPP bursts, trace replay or correlated groups.
    ///
    /// The field is optional in spec JSON — absent means Poisson, so
    /// every spec written before the field existed parses to the exact
    /// same experiment:
    ///
    /// ```
    /// use sweep::ScenarioSpec;
    /// use cellsim::traffic::TrafficModel;
    ///
    /// let mut spec = sweep::builtin("paper-default").unwrap();
    /// assert_eq!(spec.traffic_model, TrafficModel::Poisson);
    ///
    /// // A JSON spec without the field round-trips to Poisson...
    /// let json = spec.to_json().replace("\"traffic_model\": \"Poisson\",", "");
    /// assert!(!json.contains("traffic_model"));
    /// assert_eq!(
    ///     ScenarioSpec::from_json(&json).unwrap().traffic_model,
    ///     TrafficModel::Poisson,
    /// );
    ///
    /// // ...and a bursty model is validated like the rest of the spec.
    /// spec.traffic_model = TrafficModel::Mmpp(cellsim::MmppConfig::new());
    /// assert!(spec.validate().is_err(), "empty MMPP must be rejected");
    /// ```
    #[serde(default)]
    pub traffic_model: TrafficModel,
    /// Scheduled cell faults — outages and capacity degradation —
    /// applied identically to every `(controller, load, replication)`
    /// cell of the sweep, so robustness comparisons are paired exactly
    /// like the load comparisons.  Absent in spec JSON means no faults,
    /// so every spec written before the field existed parses to the
    /// exact same experiment.
    #[serde(default)]
    pub fault_plan: FaultPlan,
    /// Mobility model for admitted users in multi-cell runs.
    pub mobility: MobilityModel,
    /// Interval between utilisation samples (seconds); 0 disables sampling.
    pub utilization_sample_interval_s: f64,
    /// The controllers to compare.  Every controller sees the identical
    /// arrival sequence at each (load, replication) point, so comparisons
    /// are paired exactly like the paper's Fig. 7 / Fig. 10 methodology.
    pub controllers: Vec<ControllerSpec>,
    /// How a load point translates into offered traffic.
    pub load_mode: LoadMode,
    /// The load axis: numbers of requesting connections to sweep.
    pub load_points: Vec<usize>,
    /// Independent replications (distinct seeds) aggregated per point.
    pub replications: usize,
    /// Base RNG seed; see [`ScenarioSpec::seed_for`] for the derivation.
    pub base_seed: u64,
}

/// One round of the SplitMix64 finalizer: the standard avalanching mix
/// used to turn structured counters into decorrelated seed streams.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// FNV-1a over a byte string: a stable, dependency-free label hash.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = 0xCBF2_9CE4_8422_2325u64;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

impl ScenarioSpec {
    /// The seed of one `(controller, load point, replication)` cell: a
    /// SplitMix64-style hash of `(base_seed, controller label, load index,
    /// replication)`.
    ///
    /// The previous `base + 1000·load + replication` formula was
    /// collision-prone (structured, and adjacent load points were only
    /// 1000 seeds apart, capping replications) and handed *correlated*
    /// `StdRng` neighbour streams to "independent" replications.  The
    /// hashed derivation gives every cell of the grid a provably distinct,
    /// decorrelated stream — including across controllers, so the per-point
    /// spread measures genuine run-to-run variance rather than reusing one
    /// arrival sequence per cell.  (Cross-controller comparisons are still
    /// exact at the *aggregate* level: every controller sweeps the same
    /// load axis with the same replication count.)
    ///
    /// The derivation depends on the controller's [`ControllerSpec::label`]
    /// — not its position in the controller list — so adding or reordering
    /// controllers never moves another controller's numbers, and sweeping a
    /// controller alone reproduces its curve from a joint sweep exactly.
    ///
    /// This rule is part of the spec format: published results are
    /// reproducible from their specs only while it stays fixed.
    #[must_use]
    pub fn seed_for(
        &self,
        controller: &ControllerSpec,
        load_index: usize,
        replication: usize,
    ) -> u64 {
        let mut z = splitmix64(self.base_seed);
        z = splitmix64(z ^ fnv1a(controller.label().as_bytes()));
        z = splitmix64(z ^ (load_index as u64));
        splitmix64(z ^ (replication as u64))
    }

    /// The simulator configuration of one `(controller, load point,
    /// replication)` cell; `load_index` indexes
    /// [`ScenarioSpec::load_points`].
    ///
    /// # Panics
    /// Panics when `load_index` is out of range.
    #[must_use]
    pub fn sim_config(
        &self,
        controller: &ControllerSpec,
        load_index: usize,
        replication: usize,
    ) -> SimConfig {
        let load = self.load_points[load_index];
        let mut traffic = self.traffic.clone();
        if let LoadMode::RequestsPerWindow { window_s } = self.load_mode {
            traffic.mean_interarrival_s = if load == 0 {
                window_s
            } else {
                window_s / load as f64
            };
        }
        SimConfig::paper_default()
            .with_grid_radius(self.grid_radius_cells)
            .with_cell_radius(self.cell_radius_m)
            .with_capacity(self.station_capacity)
            .with_traffic(traffic)
            .with_traffic_model(self.traffic_model.clone())
            .with_fault_plan(self.fault_plan.clone())
            .with_mobility(self.mobility.clone())
            .with_utilization_sampling(self.utilization_sample_interval_s)
            .with_seed(self.seed_for(controller, load_index, replication))
    }

    /// Check the spec is runnable.
    pub fn validate(&self) -> Result<(), SpecError> {
        if self.name.is_empty() {
            return Err(SpecError::Invalid("scenario name is empty".into()));
        }
        if self.controllers.is_empty() {
            return Err(SpecError::Invalid("no controllers configured".into()));
        }
        if self.load_points.is_empty() {
            return Err(SpecError::Invalid("load axis is empty".into()));
        }
        if self.load_points.contains(&0) {
            return Err(SpecError::Invalid("load points must be positive".into()));
        }
        if self.replications == 0 {
            return Err(SpecError::Invalid("replications must be at least 1".into()));
        }
        if self.station_capacity == 0 {
            return Err(SpecError::Invalid("station capacity is zero".into()));
        }
        if let LoadMode::RequestsPerWindow { window_s } = self.load_mode {
            if !(window_s.is_finite() && window_s > 0.0) {
                return Err(SpecError::Invalid(format!(
                    "observation window must be positive, got {window_s}"
                )));
            }
        }
        self.traffic_model.validate().map_err(SpecError::Invalid)?;
        self.fault_plan.validate().map_err(SpecError::Invalid)?;
        Ok(())
    }

    /// A cheaper variant for CI smoke runs: at most three load points
    /// (first, middle, last) and at most three replications.
    #[must_use]
    pub fn quick(mut self) -> Self {
        if self.load_points.len() > 3 {
            let first = *self.load_points.first().expect("non-empty");
            let mid = self.load_points[self.load_points.len() / 2];
            let last = *self.load_points.last().expect("non-empty");
            self.load_points = vec![first, mid, last];
            self.load_points.dedup();
        }
        self.replications = self.replications.clamp(1, 3);
        self
    }

    /// Override the base seed.
    #[must_use]
    pub fn with_base_seed(mut self, seed: u64) -> Self {
        self.base_seed = seed;
        self
    }

    /// Override the replication count (at least 1).
    #[must_use]
    pub fn with_replications(mut self, replications: usize) -> Self {
        self.replications = replications.max(1);
        self
    }

    /// Override the load axis.
    #[must_use]
    pub fn with_load_points(mut self, points: Vec<usize>) -> Self {
        self.load_points = points;
        self
    }

    /// Override the controller list.
    #[must_use]
    pub fn with_controllers(mut self, controllers: Vec<ControllerSpec>) -> Self {
        self.controllers = controllers;
        self
    }

    /// Serialise to pretty-printed JSON.
    #[must_use]
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).unwrap_or_else(|_| "{}".to_string())
    }

    /// Parse a spec from JSON and validate it.
    pub fn from_json(text: &str) -> Result<Self, SpecError> {
        let spec: ScenarioSpec =
            serde_json::from_str(text).map_err(|e| SpecError::Parse(e.to_string()))?;
        spec.validate()?;
        Ok(spec)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenarios::builtin;

    #[test]
    fn controller_specs_build_matching_controllers() {
        for (spec, expected_name) in [
            (ControllerSpec::FacsP, "facs-p"),
            (ControllerSpec::FacsPLut, "facs-p-lut"),
            (ControllerSpec::Facs, "facs"),
            (ControllerSpec::Scc, "scc"),
            (ControllerSpec::AlwaysAccept, "always-accept"),
            (
                ControllerSpec::Threshold {
                    new_call: 0.8,
                    handoff: 1.0,
                },
                "capacity-threshold",
            ),
        ] {
            assert_eq!(spec.build().name(), expected_name);
            assert!(!spec.label().is_empty());
        }
        assert_eq!(
            ControllerSpec::Threshold {
                new_call: 0.8,
                handoff: 1.0
            }
            .to_string(),
            "threshold(0.80/1.00)"
        );
    }

    #[test]
    fn seed_derivation_is_deterministic_and_input_sensitive() {
        let spec = builtin("paper-default").unwrap().with_base_seed(100);
        let c = ControllerSpec::FacsP;
        // Deterministic.
        assert_eq!(spec.seed_for(&c, 3, 0), spec.seed_for(&c, 3, 0));
        // Sensitive to every component of the cell coordinate.
        assert_ne!(spec.seed_for(&c, 3, 0), spec.seed_for(&c, 3, 1));
        assert_ne!(spec.seed_for(&c, 3, 0), spec.seed_for(&c, 4, 0));
        assert_ne!(
            spec.seed_for(&c, 3, 0),
            spec.seed_for(&ControllerSpec::Facs, 3, 0)
        );
        assert_ne!(
            spec.seed_for(&c, 3, 0),
            spec.clone().with_base_seed(101).seed_for(&c, 3, 0)
        );
        // Keyed on the controller *label*, not its list position: a
        // controller's stream is the same whether swept alone or jointly.
        assert_eq!(
            spec.seed_for(&ControllerSpec::Facs, 2, 1),
            spec.clone()
                .with_controllers(vec![ControllerSpec::Facs])
                .seed_for(&ControllerSpec::Facs, 2, 1)
        );
        // Wrapping, never panicking.
        let spec = spec.with_base_seed(u64::MAX);
        let _ = spec.seed_for(&c, usize::MAX, usize::MAX);
    }

    #[test]
    fn seeds_are_distinct_across_a_large_cell_grid() {
        // The satellite guarantee of the SplitMix64 derivation: every
        // (controller, load index, replication) cell of a large grid gets
        // its own seed — the old affine formula collided as soon as
        // replications crossed the 1000-seed load spacing.
        let spec = builtin("paper-default").unwrap().with_base_seed(0xFACADE);
        let controllers = [
            ControllerSpec::FacsP,
            ControllerSpec::Facs,
            ControllerSpec::Scc,
            ControllerSpec::AlwaysAccept,
            ControllerSpec::Threshold {
                new_call: 0.8,
                handoff: 1.0,
            },
        ];
        let loads = 40;
        let reps = 250;
        let mut seeds = std::collections::HashSet::new();
        for c in &controllers {
            for load_index in 0..loads {
                for rep in 0..reps {
                    seeds.insert(spec.seed_for(c, load_index, rep));
                }
            }
        }
        assert_eq!(
            seeds.len(),
            controllers.len() * loads * reps,
            "every cell must draw a distinct seed"
        );
    }

    #[test]
    fn requests_per_window_scales_interarrival() {
        let spec = builtin("paper-default").unwrap();
        let LoadMode::RequestsPerWindow { window_s } = spec.load_mode else {
            panic!("paper-default sweeps requests per window");
        };
        let c = ControllerSpec::FacsP;
        let load_index = spec.load_points.iter().position(|&l| l == 50).unwrap();
        let cfg = spec.sim_config(&c, load_index, 0);
        assert!((cfg.traffic.mean_interarrival_s - window_s / 50.0).abs() < 1e-12);
        assert_eq!(cfg.seed, spec.seed_for(&c, load_index, 0));
        assert_eq!(cfg.station_capacity, spec.station_capacity);
    }

    #[test]
    fn total_requests_keeps_configured_interarrival() {
        let mut spec = builtin("highway-handoff").unwrap();
        spec.load_mode = LoadMode::TotalRequests;
        let expected = spec.traffic.mean_interarrival_s;
        let cfg = spec.sim_config(&ControllerSpec::Scc, 0, 2);
        assert_eq!(cfg.traffic.mean_interarrival_s, expected);
    }

    #[test]
    fn validation_rejects_degenerate_specs() {
        let good = builtin("paper-default").unwrap();
        assert!(good.validate().is_ok());
        assert!(good.clone().with_controllers(vec![]).validate().is_err());
        assert!(good.clone().with_load_points(vec![]).validate().is_err());
        assert!(good
            .clone()
            .with_load_points(vec![10, 0])
            .validate()
            .is_err());
        let mut zero_cap = good.clone();
        zero_cap.station_capacity = 0;
        assert!(zero_cap.validate().is_err());
        // The hashed seed derivation has no replication ceiling (the old
        // affine formula capped replications at its 1000-seed spacing).
        assert!(good.clone().with_replications(100_000).validate().is_ok());
        let mut bad_window = good.clone();
        bad_window.load_mode = LoadMode::RequestsPerWindow { window_s: -1.0 };
        assert!(bad_window.validate().is_err());
        let mut unnamed = good;
        unnamed.name.clear();
        assert!(unnamed.validate().is_err());
    }

    #[test]
    fn quick_shrinks_points_and_replications() {
        let spec = builtin("paper-default").unwrap();
        let quick = spec.clone().quick();
        assert!(quick.load_points.len() <= 3);
        assert!(quick.replications <= 3);
        assert_eq!(
            quick.load_points.first(),
            spec.load_points.first(),
            "quick keeps the endpoints"
        );
        assert_eq!(quick.load_points.last(), spec.load_points.last());
        assert!(quick.validate().is_ok());
    }

    #[test]
    fn specs_round_trip_through_json() {
        for name in crate::scenarios::builtin_names() {
            let spec = builtin(name).unwrap();
            let back = ScenarioSpec::from_json(&spec.to_json()).unwrap();
            assert_eq!(back, spec, "{name} must round-trip");
        }
    }

    #[test]
    fn fault_plan_is_optional_and_validated() {
        use cellsim::fault::FaultKind;
        // Pre-fault spec JSON (no `fault_plan` key) parses to no faults.
        let spec = builtin("paper-default").unwrap();
        assert!(spec.fault_plan.is_empty());
        let serde::Value::Object(mut fields) =
            serde_json::from_str::<serde::Value>(&spec.to_json()).unwrap()
        else {
            panic!("spec JSON is an object");
        };
        fields.retain(|(key, _)| key != "fault_plan");
        let stripped = serde_json::to_string(&serde::Value::Object(fields)).unwrap();
        assert_eq!(ScenarioSpec::from_json(&stripped).unwrap(), spec);
        // A plan rides through sim_config into every sweep cell.
        let mut faulted = builtin("highway-handoff").unwrap();
        faulted.fault_plan = FaultPlan::new().with_outage(3, 100.0, 50.0);
        let cfg = faulted.sim_config(&ControllerSpec::Facs, 0, 0);
        assert_eq!(cfg.fault_plan, faulted.fault_plan);
        let back = ScenarioSpec::from_json(&faulted.to_json()).unwrap();
        assert_eq!(back, faulted);
        // Invalid plans are rejected like any other bad spec field.
        faulted.fault_plan = FaultPlan::new().with_event(
            10.0,
            0,
            FaultKind::Degrade {
                capacity_fraction: 2.0,
            },
        );
        assert!(matches!(faulted.validate(), Err(SpecError::Invalid(_))));
    }

    #[test]
    fn from_json_rejects_garbage_and_invalid_specs() {
        assert!(matches!(
            ScenarioSpec::from_json("not json"),
            Err(SpecError::Parse(_))
        ));
        let mut spec = builtin("paper-default").unwrap();
        spec.replications = 0;
        assert!(matches!(
            ScenarioSpec::from_json(&spec.to_json()),
            Err(SpecError::Invalid(_))
        ));
    }
}
