//! The unified result of a sweep run, with JSON / CSV / table rendering.

use cellsim::{Metrics, SummaryStats};
use serde::{Deserialize, Serialize};

/// Aggregated result of one `(controller, load)` cell across all
/// replications.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PointReport {
    /// The load point (number of requesting connections).
    pub load: usize,
    /// Percentage of accepted calls (0–100) across replications.
    pub acceptance: SummaryStats,
    /// Blocking probability in `[0, 1]` across replications.
    pub blocking: SummaryStats,
    /// Dropping probability among admitted calls across replications.
    pub dropping: SummaryStats,
    /// Raw counters merged over all replications (offered, accepted,
    /// per-class breakdowns, handoffs, …).
    pub merged: Metrics,
}

/// One controller's curve over the load axis.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CurveReport {
    /// Controller label (e.g. "FACS-P").
    pub controller: String,
    /// One aggregated point per swept load, in axis order.
    pub points: Vec<PointReport>,
}

/// The unified report of one scenario run: every controller's aggregated
/// curve plus enough provenance (scenario name, seed, replication count)
/// to reproduce it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunReport {
    /// Name of the scenario that produced this report.
    pub scenario: String,
    /// The scenario's one-line description.
    pub description: String,
    /// Replications aggregated per point.
    pub replications: usize,
    /// Base seed the per-replication seeds were derived from.
    pub base_seed: u64,
    /// The swept load axis.
    pub load_points: Vec<usize>,
    /// One curve per controller, in spec order.
    pub curves: Vec<CurveReport>,
}

/// Quote a CSV field when it contains a comma, quote or newline
/// (RFC 4180); scenario names and controller labels are free-form text.
fn csv_field(raw: &str) -> String {
    if raw.contains(',') || raw.contains('"') || raw.contains('\n') {
        format!("\"{}\"", raw.replace('"', "\"\""))
    } else {
        raw.to_string()
    }
}

impl RunReport {
    /// `true` when the report carries no data points.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.curves.iter().all(|c| c.points.is_empty())
    }

    /// Look up a controller's curve by label.
    #[must_use]
    pub fn curve(&self, controller: &str) -> Option<&CurveReport> {
        self.curves.iter().find(|c| c.controller == controller)
    }

    /// Serialise to pretty-printed JSON.
    #[must_use]
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).unwrap_or_else(|_| "{}".to_string())
    }

    /// Flatten to CSV: one row per `(controller, load)` cell.
    #[must_use]
    pub fn to_csv(&self) -> String {
        let mut out = String::from(
            "scenario,controller,load,replications,\
             acceptance_mean,acceptance_std,acceptance_ci95_lo,acceptance_ci95_hi,\
             blocking_mean,dropping_mean,\
             offered,accepted,blocked,dropped,completed,\
             handoff_offered,handoff_accepted,handoff_failed\n",
        );
        for curve in &self.curves {
            for p in &curve.points {
                let (ho, ha, hf) = p.merged.handoffs();
                out.push_str(&format!(
                    "{},{},{},{},{:.6},{:.6},{:.6},{:.6},{:.6},{:.6},{},{},{},{},{},{},{},{}\n",
                    csv_field(&self.scenario),
                    csv_field(&curve.controller),
                    p.load,
                    self.replications,
                    p.acceptance.mean,
                    p.acceptance.std_dev,
                    p.acceptance.ci95_lo,
                    p.acceptance.ci95_hi,
                    p.blocking.mean,
                    p.dropping.mean,
                    p.merged.offered(),
                    p.merged.accepted(),
                    p.merged.blocked(),
                    p.merged.dropped(),
                    p.merged.completed(),
                    ho,
                    ha,
                    hf,
                ));
            }
        }
        out
    }

    /// Render a plain-text table: one row per load point, one
    /// `mean ± ci95` column per controller.
    #[must_use]
    pub fn render_table(&self) -> String {
        let title = format!(
            "{} — % accepted calls (mean ± 95% CI over {} replications, seed {:#x})",
            self.scenario, self.replications, self.base_seed
        );
        let mut out = String::new();
        out.push_str(&title);
        out.push('\n');
        out.push_str(&"=".repeat(title.len()));
        out.push('\n');
        if self.curves.is_empty() {
            out.push_str("(no curves)\n");
            return out;
        }
        out.push_str(&format!("{:>8}", "load"));
        for c in &self.curves {
            out.push_str(&format!("  {:>22}", c.controller));
        }
        out.push('\n');
        for (i, load) in self.load_points.iter().enumerate() {
            out.push_str(&format!("{load:>8}"));
            for c in &self.curves {
                match c.points.get(i) {
                    Some(p) => out.push_str(&format!(
                        "  {:>13.1}% ± {:>4.1}%",
                        p.acceptance.mean,
                        p.acceptance.ci95_hi - p.acceptance.mean
                    )),
                    None => out.push_str(&format!("  {:>22}", "-")),
                }
            }
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cellsim::StatAccumulator;

    fn sample() -> RunReport {
        let mut acc = StatAccumulator::new();
        acc.push(90.0);
        acc.push(94.0);
        let point = |load| PointReport {
            load,
            acceptance: acc.summary(),
            blocking: StatAccumulator::new().summary(),
            dropping: StatAccumulator::new().summary(),
            merged: Metrics::new(),
        };
        RunReport {
            scenario: "unit-test".into(),
            description: "sample".into(),
            replications: 2,
            base_seed: 7,
            load_points: vec![10, 20],
            curves: vec![CurveReport {
                controller: "FACS-P".into(),
                points: vec![point(10), point(20)],
            }],
        }
    }

    #[test]
    fn report_helpers() {
        let r = sample();
        assert!(!r.is_empty());
        assert!(r.curve("FACS-P").is_some());
        assert!(r.curve("nope").is_none());
        let empty = RunReport {
            curves: vec![],
            ..r.clone()
        };
        assert!(empty.is_empty());
    }

    #[test]
    fn json_round_trips() {
        let r = sample();
        let json = r.to_json();
        let value: serde_json::Value = serde_json::from_str(&json).unwrap();
        assert_eq!(value["scenario"], "unit-test");
        let back: RunReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back, r);
    }

    #[test]
    fn csv_has_header_and_one_row_per_cell() {
        let csv = sample().to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 3, "header + 2 points");
        assert!(lines[0].starts_with("scenario,controller,load"));
        assert!(lines[1].starts_with("unit-test,FACS-P,10,2,92.0"));
    }

    #[test]
    fn csv_quotes_free_form_names() {
        let mut r = sample();
        r.scenario = "rush hour, v2".into();
        r.curves[0].controller = "say \"hi\"".into();
        let csv = r.to_csv();
        let row = csv.lines().nth(1).unwrap();
        assert!(
            row.starts_with("\"rush hour, v2\",\"say \"\"hi\"\"\",10,"),
            "fields with commas/quotes must be RFC 4180-quoted: {row}"
        );
    }

    #[test]
    fn table_renders_means_and_cis() {
        let table = sample().render_table();
        assert!(table.contains("unit-test"));
        assert!(table.contains("FACS-P"));
        assert!(table.contains("92.0%"));
        assert!(table.contains("±"));
        let empty = RunReport {
            curves: vec![],
            ..sample()
        };
        assert!(empty.render_table().contains("(no curves)"));
    }
}
