//! The built-in scenario library.
//!
//! Ready-to-run [`ScenarioSpec`]s covering the paper's evaluation, the
//! workloads the ROADMAP asks the system to grow into, and the `burst-*`
//! non-Poisson variants behind the burstiness study (see
//! `docs/TRAFFIC_MODELS.md`).  Each is a plain value: fetch it with
//! [`builtin`], tweak it with the spec's builders, or dump it with
//! [`ScenarioSpec::to_json`] as a starting point for a custom spec file.

use crate::spec::{ControllerSpec, LoadMode, ScenarioSpec};
use cellsim::traffic::{
    GroupConfig, MmppConfig, TraceConfig, TrafficConfig, TrafficMix, TrafficModel,
};
use cellsim::{FaultPlan, MobilityModel};

/// Names of all built-in scenarios, in presentation order.
#[must_use]
pub fn builtin_names() -> &'static [&'static str] {
    &[
        "paper-default",
        "highway-handoff",
        "downtown-hotspot",
        "flash-crowd",
        "mixed-multimedia",
        "metro",
        "burst-mmpp",
        "burst-trace",
        "burst-groups",
        "outage-wave",
    ]
}

/// Fetch a built-in scenario by name; `None` for unknown names.
#[must_use]
pub fn builtin(name: &str) -> Option<ScenarioSpec> {
    match name {
        "paper-default" => Some(paper_default()),
        "highway-handoff" => Some(highway_handoff()),
        "downtown-hotspot" => Some(downtown_hotspot()),
        "flash-crowd" => Some(flash_crowd()),
        "mixed-multimedia" => Some(mixed_multimedia()),
        "metro" => Some(metro()),
        "burst-mmpp" => Some(burst_mmpp()),
        "burst-trace" => Some(burst_trace()),
        "burst-groups" => Some(burst_groups()),
        "outage-wave" => Some(outage_wave()),
        _ => None,
    }
}

/// Every built-in scenario, in presentation order.
#[must_use]
pub fn all_builtins() -> Vec<ScenarioSpec> {
    builtin_names()
        .iter()
        .map(|n| builtin(n).expect("builtin_names lists only builtins"))
        .collect()
}

/// The paper's evaluation setup (Figs. 7–10): one 40-BU cell, the
/// 70/20/10 % text/voice/video mix, 0–120 km/h users, 10–100 requesting
/// connections over a 450-second window, 20 replications.
fn paper_default() -> ScenarioSpec {
    ScenarioSpec {
        name: "paper-default".to_string(),
        description: "Single 40-BU cell, 70/20/10 multimedia mix, the paper's \
                      requesting-connections sweep"
            .to_string(),
        grid_radius_cells: 0,
        cell_radius_m: 1000.0,
        station_capacity: 40,
        traffic: TrafficConfig {
            mean_holding_s: 180.0,
            direction_predictability: 1.0,
            ..TrafficConfig::paper_default()
        },
        traffic_model: TrafficModel::Poisson,
        fault_plan: FaultPlan::new(),
        mobility: MobilityModel::paper_default(),
        utilization_sample_interval_s: 0.0,
        controllers: vec![
            ControllerSpec::FacsP,
            ControllerSpec::Facs,
            ControllerSpec::Scc,
        ],
        load_mode: LoadMode::RequestsPerWindow { window_s: 450.0 },
        load_points: (1..=10).map(|i| i * 10).collect(),
        replications: 20,
        base_seed: 0x2009,
    }
}

/// Fast vehicular users crossing a 19-cell network with small cells: calls
/// hand off several times during their lifetime, so the dropping
/// probability — the QoS violation the paper's controllers are designed to
/// avoid — dominates the comparison.
fn highway_handoff() -> ScenarioSpec {
    ScenarioSpec {
        name: "highway-handoff".to_string(),
        description: "19 hexagonal cells of 300 m, 60-120 km/h users, long calls; \
                      handoff protection under saturation"
            .to_string(),
        grid_radius_cells: 2,
        cell_radius_m: 300.0,
        station_capacity: 40,
        traffic: TrafficConfig {
            mean_interarrival_s: 1.0,
            mean_holding_s: 300.0,
            min_speed_kmh: 60.0,
            max_speed_kmh: 120.0,
            direction_predictability: 1.0,
            ..TrafficConfig::paper_default()
        },
        traffic_model: TrafficModel::Poisson,
        fault_plan: FaultPlan::new(),
        mobility: MobilityModel::ConstantVelocity,
        utilization_sample_interval_s: 60.0,
        controllers: vec![
            ControllerSpec::FacsP,
            ControllerSpec::Facs,
            ControllerSpec::Scc,
            ControllerSpec::AlwaysAccept,
        ],
        load_mode: LoadMode::TotalRequests,
        load_points: vec![500, 1000, 2000],
        replications: 5,
        base_seed: 0xCAFE,
    }
}

/// A dense urban core: a 7-cell cluster of small cells, slow (pedestrian)
/// users whose heading wanders, and sustained overload — the regime where
/// direction prediction is hardest for the FLC1 cascade.
fn downtown_hotspot() -> ScenarioSpec {
    ScenarioSpec {
        name: "downtown-hotspot".to_string(),
        description: "7-cell downtown cluster, 0-15 km/h pedestrians with wandering \
                      headings, sustained overload"
            .to_string(),
        grid_radius_cells: 1,
        cell_radius_m: 250.0,
        station_capacity: 40,
        traffic: TrafficConfig {
            mean_interarrival_s: 2.0,
            mean_holding_s: 240.0,
            min_speed_kmh: 0.0,
            max_speed_kmh: 15.0,
            ..TrafficConfig::paper_default()
        },
        traffic_model: TrafficModel::Poisson,
        fault_plan: FaultPlan::new(),
        mobility: MobilityModel::RandomDirection { max_turn_deg: 60.0 },
        utilization_sample_interval_s: 60.0,
        controllers: vec![
            ControllerSpec::FacsP,
            ControllerSpec::Facs,
            ControllerSpec::Scc,
        ],
        load_mode: LoadMode::TotalRequests,
        load_points: vec![300, 600, 1200],
        replications: 8,
        base_seed: 0xD057,
    }
}

/// A stadium flash crowd: everyone requests admission at once against a
/// single cell, so the batch size is the load axis and capacity is the
/// binding resource from the first request on.
fn flash_crowd() -> ScenarioSpec {
    ScenarioSpec {
        name: "flash-crowd".to_string(),
        description: "Stadium flash crowd: simultaneous batch arrivals against one \
                      40-BU cell, growing crowd size"
            .to_string(),
        grid_radius_cells: 0,
        cell_radius_m: 500.0,
        station_capacity: 40,
        traffic: TrafficConfig {
            mean_holding_s: 120.0,
            min_speed_kmh: 0.0,
            max_speed_kmh: 6.0,
            ..TrafficConfig::paper_default()
        },
        traffic_model: TrafficModel::Poisson,
        fault_plan: FaultPlan::new(),
        mobility: MobilityModel::paper_default(),
        utilization_sample_interval_s: 0.0,
        controllers: vec![
            ControllerSpec::FacsP,
            ControllerSpec::AlwaysAccept,
            ControllerSpec::Threshold {
                new_call: 0.8,
                handoff: 1.0,
            },
        ],
        load_mode: LoadMode::Batch,
        load_points: vec![20, 40, 80, 160, 320],
        replications: 10,
        base_seed: 0xF1A5,
    }
}

/// A video-heavy multimedia mix (streaming era): half the paper's text
/// share moves to voice and video, so large 10-BU requests contend for the
/// same 40-BU cell and per-class fairness becomes the interesting output.
fn mixed_multimedia() -> ScenarioSpec {
    ScenarioSpec {
        name: "mixed-multimedia".to_string(),
        description: "Video-heavy 40/30/30 mix in one 40-BU cell: large requests \
                      contend, per-class fairness under load"
            .to_string(),
        grid_radius_cells: 0,
        cell_radius_m: 1000.0,
        station_capacity: 40,
        traffic: TrafficConfig {
            mix: TrafficMix::new(0.4, 0.3, 0.3),
            mean_holding_s: 180.0,
            direction_predictability: 1.0,
            ..TrafficConfig::paper_default()
        },
        traffic_model: TrafficModel::Poisson,
        fault_plan: FaultPlan::new(),
        mobility: MobilityModel::paper_default(),
        utilization_sample_interval_s: 0.0,
        controllers: vec![
            ControllerSpec::FacsP,
            ControllerSpec::Facs,
            ControllerSpec::Scc,
        ],
        load_mode: LoadMode::RequestsPerWindow { window_s: 450.0 },
        load_points: (1..=8).map(|i| i * 10).collect(),
        replications: 12,
        base_seed: 0x3D1A,
    }
}

/// The ROADMAP's metro-scale north star: a city-sized network of 2107
/// cells (grid radius 26) with 2000-BU macro stations.  At the top load
/// point the offered traffic saturates the whole metro — about 1.5 million
/// concurrent users — which is the workload the sharded engine's 1/2/4
/// thread headline numbers in `BENCH_perf.json` are measured on.
///
/// Arrivals come every 0.5 ms with 20-minute mean holding times, so the
/// population ramps to saturation within the run; 0–60 km/h users on
/// 1.5 km cells hand off several times per call, exercising cross-shard
/// migration.  One replication: at metro scale a single run already
/// aggregates millions of calls, and the perf harness re-runs the same
/// seed for timing stability.
///
/// The paper's fuzzy controllers are tuned to 40-BU cells (FLC2's counter
/// state and the LUT tabulation are absolute-BU quantities), so at
/// 2000 BU they reject almost everything; the metro baselines are the
/// capacity-*relative* controllers — admit-if-it-fits and a guard-channel
/// threshold — which scale with station size.
fn metro() -> ScenarioSpec {
    ScenarioSpec {
        name: "metro".to_string(),
        description: "Metro-scale saturation: 2107 cells of 1.5 km, 2000-BU stations, \
                      ~1.5M concurrent users at the top load point"
            .to_string(),
        grid_radius_cells: 26,
        cell_radius_m: 1500.0,
        station_capacity: 2000,
        traffic: TrafficConfig {
            mean_interarrival_s: 0.0005,
            mean_holding_s: 1200.0,
            min_speed_kmh: 0.0,
            max_speed_kmh: 60.0,
            direction_predictability: 1.0,
            ..TrafficConfig::paper_default()
        },
        traffic_model: TrafficModel::Poisson,
        fault_plan: FaultPlan::new(),
        mobility: MobilityModel::ConstantVelocity,
        utilization_sample_interval_s: 60.0,
        controllers: vec![
            ControllerSpec::AlwaysAccept,
            ControllerSpec::Threshold {
                new_call: 0.95,
                handoff: 1.0,
            },
        ],
        load_mode: LoadMode::TotalRequests,
        load_points: vec![200_000, 600_000, 1_800_000],
        replications: 1,
        base_seed: 0x3E7,
    }
}

/// The paper's Figs. 7–10 sweep re-run under a Markov-modulated Poisson
/// process: the same single 40-BU cell, mix, controllers and load axis
/// as `paper-default`, but arrivals alternate between a quiet quarter-rate
/// background and 4x flash bursts ([`MmppConfig::flash_crowd`]).  The
/// process is rate-preserving (time-average multiplier 1), so each load
/// point offers the same long-run traffic as the Poisson original —
/// every acceptance difference against `paper-default` is the burstiness
/// itself.  This is the headline scenario of the FACS-vs-SCC burstiness
/// study (`examples/burst_study.rs`).
fn burst_mmpp() -> ScenarioSpec {
    ScenarioSpec {
        name: "burst-mmpp".to_string(),
        description: "paper-default under rate-preserving MMPP flash bursts \
                      (quiet 0.25x / burst 4x)"
            .to_string(),
        traffic_model: TrafficModel::Mmpp(MmppConfig::flash_crowd()),
        base_seed: 0xB0057,
        ..paper_default()
    }
}

/// A recorded stadium-exit arrival pattern replayed against the paper's
/// cell: clustered bursts of voice/video with a long quiet tail, looped
/// for the length of the run.  The load axis is the run length
/// ([`LoadMode::TotalRequests`]) — the arrival *rate* is pinned by the
/// trace, so longer runs tighten the estimate rather than raising load.
fn burst_trace() -> ScenarioSpec {
    let trace = TraceConfig::from_text(
        "# stadium-exit recording: two clustered bursts per ~3-minute cycle\n\
         0.0    90.0  voice\n\
         0.4   180.0  video\n\
         0.7    45.0  text\n\
         1.2   120.0  voice\n\
         2.0    60.0  text\n\
         3.5   240.0  video\n\
         45.0   75.0  voice\n\
         0.3    30.0  text\n\
         0.8   150.0  voice\n\
         1.5    90.0  text\n\
         2.2   300.0  video\n\
         120.0  60.0  voice\n",
    )
    .expect("the embedded trace is well-formed");
    ScenarioSpec {
        name: "burst-trace".to_string(),
        description: "Looped replay of a recorded stadium-exit arrival trace \
                      against the paper's 40-BU cell"
            .to_string(),
        grid_radius_cells: 0,
        cell_radius_m: 1000.0,
        station_capacity: 40,
        traffic: TrafficConfig {
            mean_holding_s: 180.0,
            direction_predictability: 1.0,
            ..TrafficConfig::paper_default()
        },
        traffic_model: TrafficModel::Trace(trace),
        fault_plan: FaultPlan::new(),
        mobility: MobilityModel::paper_default(),
        utilization_sample_interval_s: 0.0,
        controllers: vec![
            ControllerSpec::FacsP,
            ControllerSpec::Facs,
            ControllerSpec::Scc,
        ],
        load_mode: LoadMode::TotalRequests,
        load_points: vec![240, 480, 960],
        replications: 10,
        base_seed: 0x7ACE,
    }
}

/// The highway-handoff network under correlated group arrivals: trains of
/// 5–15 calls hit one cell simultaneously (`same_cell`), with leader gaps
/// stretched so the long-run per-call rate matches `highway-handoff`.
/// Fast users and small cells keep handoffs frequent, so this is also the
/// scenario `tests/golden_sharded.rs` pins solo-vs-sharded under bursty
/// traffic.
fn burst_groups() -> ScenarioSpec {
    ScenarioSpec {
        name: "burst-groups".to_string(),
        description: "19-cell highway network under correlated same-cell group \
                      arrivals of 5-15 calls"
            .to_string(),
        traffic_model: TrafficModel::Groups(GroupConfig::new(5, 15)),
        base_seed: 0x6B05,
        ..highway_handoff()
    }
}

/// The highway-handoff network hit by a rolling wave of cell outages plus
/// a degraded neighbour: cells 0–4 (the origin and its first ring) go dark
/// one after another for 90 s each, staggered a minute apart, while cell 5
/// runs at half capacity for the whole wave.  Every active call in a dark
/// cell is force-dropped and its traffic spills onto the survivors, so the
/// scenario measures how gracefully each controller sheds and re-absorbs
/// load ([`examples/outage_study.rs`]) — and, because faults stress every
/// engine stream at once, it is also the fault plan
/// `tests/golden_sharded.rs` and `tests/fault_determinism.rs` pin
/// solo-vs-sharded.
///
/// The wave finishes by t = 450 s, inside the horizon of even the lowest
/// load point (500 arrivals at 1 s mean spacing), so every sweep cell
/// experiences the full fault schedule.
fn outage_wave() -> ScenarioSpec {
    ScenarioSpec {
        name: "outage-wave".to_string(),
        description: "19-cell highway network under a rolling 5-cell outage wave \
                      with a half-capacity degraded neighbour"
            .to_string(),
        fault_plan: FaultPlan::new()
            .with_outage_wave(0, 5, 120.0, 90.0, 60.0)
            .with_degrade(5, 120.0, 330.0, 0.5),
        base_seed: 0xFA17,
        ..highway_handoff()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_builtin_is_valid_and_named_consistently() {
        for name in builtin_names() {
            let spec = builtin(name).unwrap();
            assert_eq!(&spec.name, name);
            spec.validate().unwrap();
            assert!(!spec.description.is_empty());
            assert!(!spec.controllers.is_empty());
        }
        assert_eq!(all_builtins().len(), builtin_names().len());
        assert!(builtin("no-such-scenario").is_none());
    }

    #[test]
    fn library_covers_every_load_mode() {
        let modes: Vec<&str> = all_builtins()
            .iter()
            .map(|s| match s.load_mode {
                LoadMode::RequestsPerWindow { .. } => "window",
                LoadMode::TotalRequests => "total",
                LoadMode::Batch => "batch",
            })
            .collect();
        assert!(modes.contains(&"window"));
        assert!(modes.contains(&"total"));
        assert!(modes.contains(&"batch"));
    }

    #[test]
    fn metro_is_metro_scale() {
        let spec = builtin("metro").unwrap();
        let cells = 3 * spec.grid_radius_cells * (spec.grid_radius_cells + 1) + 1;
        assert!(cells >= 2000, "thousands of cells, got {cells}");
        // Offered concurrent demand at the top load point exceeds the whole
        // metro's capacity in bandwidth units, so the saturated population
        // (capacity / mean request) clears the 1M-concurrent-users bar.
        let mean_bu = 0.7 * 1.0 + 0.2 * 5.0 + 0.1 * 10.0;
        let saturated_users = f64::from(cells * spec.station_capacity) / mean_bu;
        assert!(
            saturated_users >= 1_000_000.0,
            "saturated population must exceed 1M users, got {saturated_users:.0}"
        );
        let top = *spec.load_points.last().unwrap() as f64;
        let offered_bu = top * mean_bu;
        assert!(
            offered_bu >= f64::from(cells * spec.station_capacity),
            "top load point must saturate the metro"
        );
        spec.validate().unwrap();
    }

    #[test]
    fn outage_wave_fits_inside_the_lowest_load_horizon() {
        let spec = builtin("outage-wave").unwrap();
        assert!(!spec.fault_plan.is_empty());
        spec.fault_plan.validate().unwrap();
        let cells = 3 * spec.grid_radius_cells * (spec.grid_radius_cells + 1) + 1;
        let last_event = spec
            .fault_plan
            .sorted_events()
            .last()
            .map(|e| e.time)
            .unwrap();
        // Lowest load point at the configured mean inter-arrival time.
        let horizon = *spec.load_points.first().unwrap() as f64 * spec.traffic.mean_interarrival_s;
        assert!(
            last_event <= horizon,
            "wave must finish (t={last_event}) inside the horizon (~{horizon}s)"
        );
        for event in &spec.fault_plan.events {
            assert!(event.cell < cells, "faults target real cells");
        }
    }

    #[test]
    fn paper_default_matches_the_paper_axes() {
        let spec = builtin("paper-default").unwrap();
        assert_eq!(spec.station_capacity, 40);
        assert_eq!(spec.grid_radius_cells, 0);
        assert_eq!(
            spec.load_points,
            vec![10, 20, 30, 40, 50, 60, 70, 80, 90, 100]
        );
        assert_eq!(spec.replications, 20);
    }
}
