//! Run a scenario spec end to end from the command line.
//!
//! ```text
//! sweep --scenario paper-default [--quick] [--threads N] [--seed N]
//!       [--json PATH] [--csv PATH] [--telemetry PATH] [--quiet]
//! sweep --spec experiment.json          # load a ScenarioSpec from JSON
//! sweep --all --quick                   # every built-in scenario
//! sweep --list                          # list built-in scenario names
//! sweep --print-spec highway-handoff    # dump a spec as editable JSON
//! sweep --scenario paper-default --trace calls.trace   # replay a trace
//! ```
//!
//! `--trace PATH` loads a measured arrival trace (one
//! `inter_arrival_s duration_s class` line per call — the
//! [`cellsim::parse_trace`] format) and replays it as every selected
//! scenario's traffic model in place of the synthetic generator.
//!
//! `--telemetry PATH` runs the grid with the instrumented recorder and
//! writes the merged telemetry snapshot — Prometheus text exposition when
//! the path ends in `.prom`, JSON otherwise.  Reports are byte-identical
//! with and without it.  A live progress line (cells done, cells/s, ETA)
//! is written to stderr when it is a terminal; `--quiet` suppresses it.

use std::io::IsTerminal;
use std::io::Write;
use std::process::ExitCode;
use sweep::{builtin, builtin_names, RunReport, ScenarioSpec, SweepProgress, SweepRunner};

struct Args {
    scenario: Option<String>,
    spec_path: Option<String>,
    all: bool,
    list: bool,
    print_spec: Option<String>,
    help: bool,
    quick: bool,
    threads: Option<usize>,
    seed: Option<u64>,
    json: Option<String>,
    csv: Option<String>,
    telemetry: Option<String>,
    trace: Option<String>,
    quiet: bool,
}

fn usage() -> &'static str {
    "usage: sweep (--scenario NAME | --spec PATH.json | --all | --list | --print-spec NAME)\n\
     \x20      [--quick] [--threads N] [--seed N] [--json PATH] [--csv PATH]\n\
     \x20      [--telemetry PATH(.prom|.json)] [--trace PATH] [--quiet]\n\
     built-in scenarios: paper-default, highway-handoff, downtown-hotspot, \
     flash-crowd, mixed-multimedia, metro"
}

fn parse_args(argv: &[String]) -> Result<Args, String> {
    let mut args = Args {
        scenario: None,
        spec_path: None,
        all: false,
        list: false,
        print_spec: None,
        help: false,
        quick: false,
        threads: None,
        seed: None,
        json: None,
        csv: None,
        telemetry: None,
        trace: None,
        quiet: false,
    };
    let mut it = argv.iter();
    while let Some(arg) = it.next() {
        let mut value = |flag: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{flag} needs a value"))
        };
        match arg.as_str() {
            "--scenario" => args.scenario = Some(value("--scenario")?),
            "--spec" => args.spec_path = Some(value("--spec")?),
            "--all" => args.all = true,
            "--list" => args.list = true,
            "--print-spec" => args.print_spec = Some(value("--print-spec")?),
            "--quick" => args.quick = true,
            "--threads" => {
                args.threads = Some(
                    value("--threads")?
                        .parse()
                        .map_err(|e| format!("--threads: {e}"))?,
                );
            }
            "--seed" => {
                args.seed = Some(
                    value("--seed")?
                        .parse()
                        .map_err(|e| format!("--seed: {e}"))?,
                );
            }
            "--json" => args.json = Some(value("--json")?),
            "--csv" => args.csv = Some(value("--csv")?),
            "--telemetry" => args.telemetry = Some(value("--telemetry")?),
            "--trace" => args.trace = Some(value("--trace")?),
            "--quiet" => args.quiet = true,
            "--help" | "-h" => {
                args.help = true;
                return Ok(args);
            }
            other => return Err(format!("unknown argument `{other}`\n{}", usage())),
        }
    }
    Ok(args)
}

fn load_specs(args: &Args) -> Result<Vec<ScenarioSpec>, String> {
    if args.all {
        return Ok(sweep::all_builtins());
    }
    if let Some(path) = &args.spec_path {
        let text =
            std::fs::read_to_string(path).map_err(|e| format!("could not read {path}: {e}"))?;
        return Ok(vec![
            ScenarioSpec::from_json(&text).map_err(|e| e.to_string())?
        ]);
    }
    if let Some(name) = &args.scenario {
        return builtin(name).map(|s| vec![s]).ok_or_else(|| {
            format!(
                "unknown scenario `{name}`; built-ins: {}",
                builtin_names().join(", ")
            )
        });
    }
    Err(usage().to_string())
}

/// Load a `--trace` file into a replayable traffic model.
///
/// Errors carry the path plus the parser's own diagnosis (which names
/// the offending line), so a malformed trace fails with a message the
/// user can act on rather than a bare parse error.
fn load_trace(path: &str) -> Result<cellsim::TraceConfig, String> {
    let text =
        std::fs::read_to_string(path).map_err(|e| format!("could not read trace {path}: {e}"))?;
    cellsim::TraceConfig::from_text(&text).map_err(|e| format!("invalid trace {path}: {e}"))
}

fn write_or_die(path: &str, contents: &str) -> Result<(), String> {
    std::fs::write(path, contents).map_err(|e| format!("could not write {path}: {e}"))
}

/// With one scenario the output paths are used as-is; with several, each
/// report goes to `<stem>-<scenario>.<ext>` so nothing is overwritten.
/// Only the file name's extension is split — dots in directory components
/// are left alone.
fn output_path(template: &str, scenario: &str, many: bool) -> String {
    if !many {
        return template.to_string();
    }
    let path = std::path::Path::new(template);
    let stem = path
        .file_stem()
        .map(|s| s.to_string_lossy().into_owned())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "report".to_string());
    let suffix = match path.extension() {
        Some(ext) => format!("{stem}-{scenario}.{}", ext.to_string_lossy()),
        None => format!("{stem}-{scenario}"),
    };
    match path.parent() {
        Some(dir) if !dir.as_os_str().is_empty() => dir.join(suffix).to_string_lossy().into_owned(),
        _ => suffix,
    }
}

fn run() -> Result<(), String> {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let args = parse_args(&argv)?;

    if args.help {
        println!("{}", usage());
        return Ok(());
    }
    if args.list {
        for name in builtin_names() {
            let spec = builtin(name).expect("listed names are built-ins");
            println!("{name:<20} {}", spec.description);
        }
        return Ok(());
    }
    if let Some(name) = &args.print_spec {
        let spec = builtin(name).ok_or_else(|| format!("unknown scenario `{name}`"))?;
        println!("{}", spec.to_json());
        return Ok(());
    }

    let mut specs = load_specs(&args)?;
    let many = specs.len() > 1;
    let trace = args.trace.as_deref().map(load_trace).transpose()?;
    for spec in &mut specs {
        if args.quick {
            *spec = spec.clone().quick();
        }
        if let Some(seed) = args.seed {
            *spec = spec.clone().with_base_seed(seed);
        }
        if let Some(config) = &trace {
            spec.traffic_model = cellsim::TrafficModel::Trace(config.clone());
        }
    }

    let runner = match args.threads {
        Some(n) => SweepRunner::with_threads(n),
        None => SweepRunner::new(),
    };
    let show_progress = !args.quiet && std::io::stderr().is_terminal();
    let progress = |p: SweepProgress| {
        let eta = match p.eta_s() {
            Some(eta) => format!("{eta:.0}s"),
            None => "?".to_string(),
        };
        eprint!(
            "\r{}/{} cells  {:.1} cells/s  ETA {eta}   ",
            p.done,
            p.total,
            p.cells_per_sec()
        );
        let _ = std::io::stderr().flush();
    };
    for spec in &specs {
        let (report, telemetry): (RunReport, _) = if args.telemetry.is_some() {
            let (report, snapshot) = runner
                .run_instrumented(spec, show_progress.then_some(&progress as _))
                .map_err(|e| e.to_string())?;
            (report, Some(snapshot))
        } else if show_progress {
            let report = runner
                .run_with_progress(spec, &progress)
                .map_err(|e| e.to_string())?;
            (report, None)
        } else {
            (runner.run(spec).map_err(|e| e.to_string())?, None)
        };
        if show_progress {
            eprintln!();
        }
        if report.is_empty() {
            return Err(format!("scenario `{}` produced an empty report", spec.name));
        }
        println!("{}", report.render_table());
        if let Some(path) = &args.json {
            write_or_die(&output_path(path, &spec.name, many), &report.to_json())?;
        }
        if let Some(path) = &args.csv {
            write_or_die(&output_path(path, &spec.name, many), &report.to_csv())?;
        }
        if let (Some(path), Some(snapshot)) = (&args.telemetry, &telemetry) {
            let path = output_path(path, &spec.name, many);
            let text = if path.ends_with(".prom") {
                snapshot.to_prometheus()
            } else {
                snapshot.to_json()
            };
            write_or_die(&path, &text)?;
        }
    }
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("{message}");
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_scenario_uses_the_template_verbatim() {
        assert_eq!(output_path("out.json", "paper-default", false), "out.json");
    }

    #[test]
    fn multi_scenario_suffixes_only_the_file_name() {
        assert_eq!(
            output_path("out.json", "flash-crowd", true),
            "out-flash-crowd.json"
        );
        assert_eq!(
            output_path("results.v1/report.csv", "flash-crowd", true),
            "results.v1/report-flash-crowd.csv"
        );
        assert_eq!(
            output_path("./report", "flash-crowd", true),
            "./report-flash-crowd"
        );
        assert_eq!(output_path("report", "x", true), "report-x");
    }

    #[test]
    fn help_flag_parses_as_a_success() {
        let args = parse_args(&["--help".to_string()]).unwrap();
        assert!(args.help);
        assert!(parse_args(&["--bogus".to_string()]).is_err());
    }

    #[test]
    fn trace_flag_parses() {
        let argv: Vec<String> = ["--scenario", "paper-default", "--trace", "calls.trace"]
            .iter()
            .map(ToString::to_string)
            .collect();
        let args = parse_args(&argv).unwrap();
        assert_eq!(args.trace.as_deref(), Some("calls.trace"));
        assert!(parse_args(&["--trace".to_string()]).is_err());
    }

    #[test]
    fn trace_loader_reads_a_valid_file() {
        let path = std::env::temp_dir().join("sweep-trace-valid.trace");
        std::fs::write(
            &path,
            "# gap duration class\n0.0 120.0 voice\n1.5 300.0 video\n",
        )
        .unwrap();
        let config = load_trace(path.to_str().unwrap()).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(config.entries.len(), 2);
        assert!(config.loop_replay);
    }

    #[test]
    fn trace_loader_names_the_file_and_line_of_a_malformed_entry() {
        let path = std::env::temp_dir().join("sweep-trace-malformed.trace");
        std::fs::write(&path, "0.0 120.0 voice\n1.0 oops video\n").unwrap();
        let err = load_trace(path.to_str().unwrap()).unwrap_err();
        std::fs::remove_file(&path).ok();
        assert!(
            err.contains("sweep-trace-malformed.trace"),
            "error must name the file: {err}"
        );
        assert!(err.contains("line 2"), "error must name the line: {err}");

        let missing = load_trace("/nonexistent/calls.trace").unwrap_err();
        assert!(missing.contains("could not read trace"), "{missing}");
    }

    #[test]
    fn telemetry_and_quiet_flags_parse() {
        let argv: Vec<String> = [
            "--scenario",
            "paper-default",
            "--telemetry",
            "t.prom",
            "--quiet",
        ]
        .iter()
        .map(ToString::to_string)
        .collect();
        let args = parse_args(&argv).unwrap();
        assert_eq!(args.telemetry.as_deref(), Some("t.prom"));
        assert!(args.quiet);
        assert!(parse_args(&["--telemetry".to_string()]).is_err());
    }
}
