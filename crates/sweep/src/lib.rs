//! `facs-sweep` — declarative scenario specs and a deterministic parallel
//! experiment engine.
//!
//! The paper's evaluation is a handful of fixed single-cell workloads; this
//! crate turns "an experiment" into a first-class value so any workload the
//! simulator can express is one JSON file away:
//!
//! * [`ScenarioSpec`] — a serde-serializable description of a full
//!   experiment: grid size, cell radius and capacity, traffic mix, mobility
//!   and speed/angle ranges, controller choices, load axis, replication
//!   count and base seed;
//! * [`scenarios`] — a built-in library of six ready-to-run specs
//!   (`paper-default`, `highway-handoff`, `downtown-hotspot`,
//!   `flash-crowd`, `mixed-multimedia`, and the metro-scale `metro`);
//! * [`SweepRunner`] — fans the spec's `(controller, load, replication)`
//!   grid out across `std::thread` workers; per-replication seeds are
//!   derived from the base seed and aggregation order is fixed, so reports
//!   are **bit-identical for any worker count**;
//! * [`RunReport`] — cross-replication aggregates (mean / std / 95 % CI
//!   per point plus merged raw counters) with JSON, CSV and plain-table
//!   rendering.
//!
//! # Example
//!
//! ```
//! use sweep::{builtin, SweepRunner};
//!
//! let spec = builtin("paper-default").unwrap().quick();
//! let report = SweepRunner::with_threads(2).run(&spec).unwrap();
//! assert_eq!(report.curves.len(), spec.controllers.len());
//! ```
//!
//! The `sweep` binary drives the same machinery from the command line:
//!
//! ```text
//! cargo run --release -p facs-sweep --bin sweep -- --scenario paper-default --quick
//! cargo run --release -p facs-sweep --bin sweep -- --spec my_experiment.json --csv out.csv
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod report;
pub mod runner;
pub mod scenarios;
pub mod spec;

pub use report::{CurveReport, PointReport, RunReport};
pub use runner::{host_parallelism, ProgressFn, SweepProgress, SweepRunner};
pub use scenarios::{all_builtins, builtin, builtin_names};
pub use spec::{ControllerSpec, LoadMode, ScenarioSpec, SpecError};
