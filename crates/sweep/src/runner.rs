//! The deterministic parallel experiment engine.
//!
//! A [`SweepRunner`] expands a [`ScenarioSpec`] into its grid of
//! `(controller, load point, replication)` cells, fans the cells out across
//! `std::thread` workers, and folds the finished cells into a
//! [`RunReport`].  Two properties make the engine deterministic:
//!
//! 1. every cell is **self-seeded** — its RNG stream comes from
//!    [`ScenarioSpec::seed_for`], never from shared state, so a cell
//!    computes the same result no matter which worker runs it or when;
//! 2. aggregation is **order-fixed** — workers only *store* finished cells
//!    (indexed by their position in the grid); the merge into means,
//!    standard deviations and confidence intervals happens after all
//!    workers join, walking the grid in replication order.
//!
//! Together these make the report **bit-identical** for any worker count,
//! which `tests/determinism.rs` asserts for 1, 2 and 4 threads.
//!
//! Because results never depend on the worker count, the engine spawns at
//! most [`host_parallelism`] workers regardless of the configured thread
//! count: oversubscribing a small machine only adds context switches and
//! cache churn (the root cause of the historical "more threads, less
//! throughput" regression).  Workers also collect finished cells into
//! thread-local buffers merged after the join, so the hot loop takes no
//! locks at all.

use crate::report::{CurveReport, PointReport, RunReport};
use crate::spec::{LoadMode, ScenarioSpec, SpecError};
use cellsim::sim::Simulator;
use cellsim::{Metrics, StatAccumulator};
use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicUsize, Ordering};

/// The machine's available parallelism (1 when it cannot be determined).
#[must_use]
pub fn host_parallelism() -> usize {
    std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
}

/// Result of one finished `(controller, load, replication)` cell.
#[derive(Debug, Clone)]
struct CellOutcome {
    acceptance_percentage: f64,
    blocking_probability: f64,
    dropping_probability: f64,
    metrics: Metrics,
}

/// The parallel sweep engine.  See the module docs for the determinism
/// guarantees.
#[derive(Debug, Clone, Copy)]
pub struct SweepRunner {
    threads: usize,
}

impl SweepRunner {
    /// An engine sized to the machine ([`host_parallelism`], capped at 16
    /// workers).
    #[must_use]
    pub fn new() -> Self {
        Self::with_threads(host_parallelism().min(16))
    }

    /// An engine with an explicit worker count (floored at 1).  The worker
    /// count only affects wall-clock time, never results.
    #[must_use]
    pub fn with_threads(threads: usize) -> Self {
        Self {
            threads: threads.max(1),
        }
    }

    /// The configured worker count.
    #[must_use]
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Workers actually spawned for a grid of `total` cells: never more
    /// than the configured count, the cell count, or the machine's
    /// available parallelism.  Requesting 4 workers on a 1-core host runs
    /// 1 — identical results, none of the oversubscription penalty.
    #[must_use]
    fn effective_workers(&self, total: usize) -> usize {
        self.threads.min(total.max(1)).min(host_parallelism())
    }

    /// Run `spec` end to end and aggregate the result.
    pub fn run(&self, spec: &ScenarioSpec) -> Result<RunReport, SpecError> {
        spec.validate()?;
        let n_controllers = spec.controllers.len();
        let n_points = spec.load_points.len();
        let n_reps = spec.replications;
        let total = n_controllers * n_points * n_reps;

        // Cell index layout: controller-major, then load point, then
        // replication — the same order aggregation walks below.
        let next_cell = AtomicUsize::new(0);
        let workers = self.effective_workers(total);

        // Each worker owns ONE simulator and re-arms it per cell with
        // `Simulator::reset` — stations, slabs, the event heap and the
        // arrival buffers all get reused, so a worker pays the engine's
        // allocation cost once instead of once per cell.  `reset` is
        // bit-identical to building a fresh simulator (asserted by the
        // engine's tests), so this is purely a throughput change.
        let run_cell = |index: usize, sim_slot: &mut Option<Simulator>| {
            let rep = index % n_reps;
            let point = (index / n_reps) % n_points;
            let controller_idx = index / (n_reps * n_points);
            let load = spec.load_points[point];
            let controller_spec = &spec.controllers[controller_idx];
            let mut controller = controller_spec.build();
            let config = spec.sim_config(controller_spec, point, rep);
            let sim = match sim_slot {
                Some(sim) => {
                    sim.reset(config);
                    sim
                }
                None => sim_slot.insert(Simulator::new(config)),
            };
            let report = match spec.load_mode {
                LoadMode::Batch => sim.run_batch(controller.as_mut(), load),
                LoadMode::RequestsPerWindow { .. } | LoadMode::TotalRequests => {
                    sim.run_poisson(controller.as_mut(), load)
                }
            };
            CellOutcome {
                acceptance_percentage: report.acceptance_percentage,
                blocking_probability: report.blocking_probability,
                dropping_probability: report.dropping_probability,
                metrics: report.metrics,
            }
        };

        // Workers buffer finished cells locally and hand the buffer back
        // at join time — no lock on the hot path, and each worker touches
        // only its own cache lines while simulating.
        let worker_loop = || {
            let mut sim: Option<Simulator> = None;
            let mut local: Vec<(usize, CellOutcome)> = Vec::new();
            loop {
                let index = next_cell.fetch_add(1, Ordering::Relaxed);
                if index >= total {
                    break;
                }
                local.push((index, run_cell(index, &mut sim)));
            }
            local
        };

        let mut cells: Vec<Option<CellOutcome>> = vec![None; total];
        if workers <= 1 {
            for (index, outcome) in worker_loop() {
                cells[index] = Some(outcome);
            }
        } else {
            let batches = std::thread::scope(|scope| {
                let handles: Vec<_> = (0..workers).map(|_| scope.spawn(worker_loop)).collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("sweep worker panicked"))
                    .collect::<Vec<_>>()
            });
            for batch in batches {
                for (index, outcome) in batch {
                    cells[index] = Some(outcome);
                }
            }
        }
        let mut curves = Vec::with_capacity(n_controllers);
        for (controller_idx, controller) in spec.controllers.iter().enumerate() {
            let mut points = Vec::with_capacity(n_points);
            for (point, &load) in spec.load_points.iter().enumerate() {
                let mut acceptance = StatAccumulator::new();
                let mut blocking = StatAccumulator::new();
                let mut dropping = StatAccumulator::new();
                let mut merged = Metrics::new();
                // Replication order is fixed here; worker scheduling cannot
                // influence it.
                for rep in 0..n_reps {
                    let index = (controller_idx * n_points + point) * n_reps + rep;
                    let outcome = cells[index]
                        .as_ref()
                        .expect("every cell is filled before workers join");
                    acceptance.push(outcome.acceptance_percentage);
                    blocking.push(outcome.blocking_probability);
                    dropping.push(outcome.dropping_probability);
                    merged.merge(&outcome.metrics);
                }
                points.push(PointReport {
                    load,
                    acceptance: acceptance.summary(),
                    blocking: blocking.summary(),
                    dropping: dropping.summary(),
                    merged,
                });
            }
            curves.push(CurveReport {
                controller: controller.label(),
                points,
            });
        }

        Ok(RunReport {
            scenario: spec.name.clone(),
            description: spec.description.clone(),
            replications: n_reps,
            base_seed: spec.base_seed,
            load_points: spec.load_points.clone(),
            curves,
        })
    }
}

impl Default for SweepRunner {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenarios::builtin;
    use crate::spec::ControllerSpec;

    fn tiny_spec() -> ScenarioSpec {
        builtin("paper-default")
            .unwrap()
            .with_load_points(vec![10, 60])
            .with_replications(2)
            .with_controllers(vec![ControllerSpec::FacsP, ControllerSpec::AlwaysAccept])
    }

    #[test]
    fn report_shape_matches_the_spec() {
        let spec = tiny_spec();
        let report = SweepRunner::with_threads(2).run(&spec).unwrap();
        assert_eq!(report.scenario, "paper-default");
        assert_eq!(report.curves.len(), 2);
        assert_eq!(report.load_points, vec![10, 60]);
        for curve in &report.curves {
            assert_eq!(curve.points.len(), 2);
            for p in &curve.points {
                assert_eq!(p.acceptance.n, 2);
                assert!(p.acceptance.mean >= 0.0 && p.acceptance.mean <= 100.0);
                assert_eq!(
                    p.merged.offered(),
                    2 * p.load as u64,
                    "merged counters cover every replication"
                );
            }
        }
    }

    #[test]
    fn worker_count_does_not_change_results() {
        let spec = tiny_spec();
        let one = SweepRunner::with_threads(1).run(&spec).unwrap();
        let three = SweepRunner::with_threads(3).run(&spec).unwrap();
        let many = SweepRunner::with_threads(64).run(&spec).unwrap();
        assert_eq!(one, three);
        assert_eq!(one, many);
    }

    #[test]
    fn controllers_draw_decorrelated_streams_over_the_same_load_axis() {
        // Every controller sweeps the same load axis with the same
        // replication count (offered totals match per point in the
        // single-cell batch-free scenario), but each controller's cells
        // draw their own hashed seed stream — the per-point spread
        // measures genuine run-to-run variance instead of replaying one
        // arrival sequence.
        let spec = tiny_spec();
        let report = SweepRunner::with_threads(2).run(&spec).unwrap();
        let facs_p = report.curve("FACS-P").unwrap();
        let upper = report.curve("always-accept").unwrap();
        for (i, (a, b)) in facs_p.points.iter().zip(&upper.points).enumerate() {
            assert_eq!(a.load, b.load);
            assert_eq!(
                a.merged.offered(),
                spec.replications as u64 * a.load as u64,
                "every replication offers exactly the load point"
            );
            assert_eq!(a.merged.offered(), b.merged.offered());
            assert_ne!(
                spec.seed_for(&spec.controllers[0], i, 0),
                spec.seed_for(&spec.controllers[1], i, 0),
                "controller streams are decorrelated"
            );
        }
    }

    #[test]
    fn invalid_specs_are_rejected_before_spawning() {
        let spec = tiny_spec().with_controllers(vec![]);
        assert!(SweepRunner::new().run(&spec).is_err());
    }

    #[test]
    fn thread_count_is_floored_and_capped() {
        assert_eq!(SweepRunner::with_threads(0).threads(), 1);
        assert!(SweepRunner::new().threads() >= 1);
        assert!(SweepRunner::new().threads() <= 16);
    }

    #[test]
    fn spawned_workers_never_oversubscribe_the_host() {
        let runner = SweepRunner::with_threads(64);
        assert_eq!(runner.threads(), 64, "the configured count is preserved");
        assert!(runner.effective_workers(1000) <= host_parallelism());
        assert_eq!(runner.effective_workers(0), 1);
        assert_eq!(
            SweepRunner::with_threads(8).effective_workers(3),
            3.min(host_parallelism()),
            "small grids never spawn idle workers"
        );
    }
}
