//! The deterministic parallel experiment engine.
//!
//! A [`SweepRunner`] expands a [`ScenarioSpec`] into its grid of
//! `(controller, load point, replication)` cells, fans the cells out across
//! `std::thread` workers, and folds the finished cells into a
//! [`RunReport`].  Two properties make the engine deterministic:
//!
//! 1. every cell is **self-seeded** — its RNG stream comes from
//!    [`ScenarioSpec::seed_for`], never from shared state, so a cell
//!    computes the same result no matter which worker runs it or when;
//! 2. aggregation is **order-fixed** — workers only *store* finished cells
//!    (indexed by their position in the grid); the merge into means,
//!    standard deviations and confidence intervals happens after all
//!    workers join, walking the grid in replication order.
//!
//! Together these make the report **bit-identical** for any worker count,
//! which `tests/determinism.rs` asserts for 1, 2 and 4 threads.
//!
//! Because results never depend on the worker count, the engine spawns at
//! most [`host_parallelism`] workers regardless of the configured thread
//! count: oversubscribing a small machine only adds context switches and
//! cache churn (the root cause of the historical "more threads, less
//! throughput" regression).  Workers also collect finished cells into
//! thread-local buffers merged after the join, so the hot loop takes no
//! locks at all.

use crate::report::{CurveReport, PointReport, RunReport};
use crate::spec::{LoadMode, ScenarioSpec, SpecError};
use cellsim::sim::Simulator;
use cellsim::telem::DefaultRecorder;
use cellsim::telemetry::{
    CounterSnapshot, LabelPair, Recorder, Registry, SpanSnapshot, TelemetrySnapshot,
};
use cellsim::{Metrics, StatAccumulator};
use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::time::Instant;

/// The machine's available parallelism (1 when it cannot be determined).
#[must_use]
pub fn host_parallelism() -> usize {
    std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
}

/// Result of one finished `(controller, load, replication)` cell.
#[derive(Debug, Clone)]
struct CellOutcome {
    acceptance_percentage: f64,
    blocking_probability: f64,
    dropping_probability: f64,
    metrics: Metrics,
}

/// Live progress of a running sweep, delivered to the callback passed to
/// [`SweepRunner::run_with_progress`] roughly ten times a second (from a
/// dedicated monitor thread — the workers only bump an atomic counter, so
/// observing progress never perturbs results).
#[derive(Debug, Clone, Copy)]
pub struct SweepProgress {
    /// Cells finished so far.
    pub done: usize,
    /// Total cells in the grid.
    pub total: usize,
    /// Wall-clock seconds since the run started.
    pub elapsed_s: f64,
}

impl SweepProgress {
    /// Cells completed per wall-clock second so far (0 until the clock
    /// has measurably advanced).
    #[must_use]
    pub fn cells_per_sec(&self) -> f64 {
        if self.elapsed_s > 1e-9 {
            self.done as f64 / self.elapsed_s
        } else {
            0.0
        }
    }

    /// Estimated seconds to completion from the current rate (`None`
    /// until at least one cell has finished).
    #[must_use]
    pub fn eta_s(&self) -> Option<f64> {
        let rate = self.cells_per_sec();
        if rate > 0.0 {
            Some((self.total.saturating_sub(self.done)) as f64 / rate)
        } else {
            None
        }
    }
}

/// A progress observer: called from the monitor thread, so it must be
/// `Sync` (stderr writes are).
pub type ProgressFn<'a> = &'a (dyn Fn(SweepProgress) + Sync);

/// What one worker did during a run, in worker-spawn order.
struct WorkerStats {
    cells: u64,
    wall_ns: u64,
    telemetry: TelemetrySnapshot,
}

/// The parallel sweep engine.  See the module docs for the determinism
/// guarantees.
#[derive(Debug, Clone, Copy)]
pub struct SweepRunner {
    threads: usize,
}

impl SweepRunner {
    /// An engine sized to the machine ([`host_parallelism`], capped at 16
    /// workers).
    #[must_use]
    pub fn new() -> Self {
        Self::with_threads(host_parallelism().min(16))
    }

    /// An engine with an explicit worker count (floored at 1).  The worker
    /// count only affects wall-clock time, never results.
    #[must_use]
    pub fn with_threads(threads: usize) -> Self {
        Self {
            threads: threads.max(1),
        }
    }

    /// The configured worker count.
    #[must_use]
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Workers actually spawned for a grid of `total` cells: never more
    /// than the configured count, the cell count, or the machine's
    /// available parallelism.  Requesting 4 workers on a 1-core host runs
    /// 1 — identical results, none of the oversubscription penalty.
    #[must_use]
    fn effective_workers(&self, total: usize) -> usize {
        self.threads.min(total.max(1)).min(host_parallelism())
    }

    /// Run `spec` end to end and aggregate the result.
    pub fn run(&self, spec: &ScenarioSpec) -> Result<RunReport, SpecError> {
        self.run_impl::<DefaultRecorder>(spec, None)
            .map(|(report, _)| report)
    }

    /// [`SweepRunner::run`] with a live progress observer (used by the
    /// `sweep` binary's stderr progress line).  Progress reporting reads
    /// one atomic counter from a monitor thread and never changes
    /// results.
    pub fn run_with_progress(
        &self,
        spec: &ScenarioSpec,
        progress: ProgressFn<'_>,
    ) -> Result<RunReport, SpecError> {
        self.run_impl::<DefaultRecorder>(spec, Some(progress))
            .map(|(report, _)| report)
    }

    /// Run `spec` with the instrumented recorder (regardless of the
    /// `telemetry` cargo feature) and return the report together with the
    /// merged telemetry of the whole run: every worker's simulator series
    /// (merged in worker order) plus the sweep-level per-worker
    /// throughput series.  The report is byte-identical to
    /// [`SweepRunner::run`]'s.
    pub fn run_instrumented(
        &self,
        spec: &ScenarioSpec,
        progress: Option<ProgressFn<'_>>,
    ) -> Result<(RunReport, TelemetrySnapshot), SpecError> {
        let (report, stats) = self.run_impl::<Registry>(spec, progress)?;
        Ok((report, compose_sweep_snapshot(&stats)))
    }

    /// The engine core, generic over the telemetry recorder the workers'
    /// simulators carry (static dispatch: the default build's no-op
    /// recorder keeps the hot loop allocation- and syscall-free).
    fn run_impl<R: Recorder + Send>(
        &self,
        spec: &ScenarioSpec,
        progress: Option<ProgressFn<'_>>,
    ) -> Result<(RunReport, Vec<WorkerStats>), SpecError> {
        spec.validate()?;
        let n_controllers = spec.controllers.len();
        let n_points = spec.load_points.len();
        let n_reps = spec.replications;
        let total = n_controllers * n_points * n_reps;

        // Cell index layout: controller-major, then load point, then
        // replication — the same order aggregation walks below.
        let next_cell = AtomicUsize::new(0);
        let cells_done = AtomicUsize::new(0);
        let workers = self.effective_workers(total);

        // Each worker owns ONE simulator and re-arms it per cell with
        // `Simulator::reset` — stations, slabs, the event heap and the
        // arrival buffers all get reused, so a worker pays the engine's
        // allocation cost once instead of once per cell.  `reset` is
        // bit-identical to building a fresh simulator (asserted by the
        // engine's tests), so this is purely a throughput change.
        let run_cell = |index: usize, sim_slot: &mut Option<Simulator<R>>| {
            let rep = index % n_reps;
            let point = (index / n_reps) % n_points;
            let controller_idx = index / (n_reps * n_points);
            let load = spec.load_points[point];
            let controller_spec = &spec.controllers[controller_idx];
            let mut controller = controller_spec.build();
            let config = spec.sim_config(controller_spec, point, rep);
            let sim = match sim_slot {
                Some(sim) => {
                    sim.reset(config);
                    sim
                }
                None => sim_slot.insert(Simulator::with_telemetry(config)),
            };
            let report = match spec.load_mode {
                LoadMode::Batch => sim.run_batch(controller.as_mut(), load),
                LoadMode::RequestsPerWindow { .. } | LoadMode::TotalRequests => {
                    sim.run_poisson(controller.as_mut(), load)
                }
            };
            CellOutcome {
                acceptance_percentage: report.acceptance_percentage,
                blocking_probability: report.blocking_probability,
                dropping_probability: report.dropping_probability,
                metrics: report.metrics,
            }
        };

        // Workers buffer finished cells locally and hand the buffer back
        // at join time — no lock on the hot path, and each worker touches
        // only its own cache lines while simulating.  Each worker also
        // reports what it did (cell count, wall time, its simulator's
        // telemetry) for the sweep-level observability series.
        let worker_loop = || {
            let started = Instant::now();
            let mut sim: Option<Simulator<R>> = None;
            let mut local: Vec<(usize, CellOutcome)> = Vec::new();
            loop {
                let index = next_cell.fetch_add(1, Ordering::Relaxed);
                if index >= total {
                    break;
                }
                local.push((index, run_cell(index, &mut sim)));
                cells_done.fetch_add(1, Ordering::Relaxed);
            }
            let stats = WorkerStats {
                cells: local.len() as u64,
                wall_ns: u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX),
                telemetry: sim.as_ref().map(Simulator::telemetry).unwrap_or_default(),
            };
            (local, stats)
        };

        let started = Instant::now();
        let mut cells: Vec<Option<CellOutcome>> = vec![None; total];
        let mut worker_stats: Vec<WorkerStats> = Vec::with_capacity(workers);
        if workers <= 1 && progress.is_none() {
            let (batch, stats) = worker_loop();
            for (index, outcome) in batch {
                cells[index] = Some(outcome);
            }
            worker_stats.push(stats);
        } else {
            let finished = AtomicBool::new(false);
            let batches = std::thread::scope(|scope| {
                let handles: Vec<_> = (0..workers).map(|_| scope.spawn(worker_loop)).collect();
                // The monitor only reads `cells_done`; it cannot affect
                // worker scheduling or results.
                let monitor = progress.map(|callback| {
                    let finished = &finished;
                    let cells_done = &cells_done;
                    scope.spawn(move || {
                        while !finished.load(Ordering::Relaxed) {
                            callback(SweepProgress {
                                done: cells_done.load(Ordering::Relaxed),
                                total,
                                elapsed_s: started.elapsed().as_secs_f64(),
                            });
                            std::thread::sleep(std::time::Duration::from_millis(100));
                        }
                        callback(SweepProgress {
                            done: cells_done.load(Ordering::Relaxed),
                            total,
                            elapsed_s: started.elapsed().as_secs_f64(),
                        });
                    })
                });
                let batches: Vec<_> = handles
                    .into_iter()
                    .map(|h| h.join().expect("sweep worker panicked"))
                    .collect();
                finished.store(true, Ordering::Relaxed);
                if let Some(monitor) = monitor {
                    monitor.join().expect("progress monitor panicked");
                }
                batches
            });
            for (batch, stats) in batches {
                for (index, outcome) in batch {
                    cells[index] = Some(outcome);
                }
                worker_stats.push(stats);
            }
        }
        let mut curves = Vec::with_capacity(n_controllers);
        for (controller_idx, controller) in spec.controllers.iter().enumerate() {
            let mut points = Vec::with_capacity(n_points);
            for (point, &load) in spec.load_points.iter().enumerate() {
                let mut acceptance = StatAccumulator::new();
                let mut blocking = StatAccumulator::new();
                let mut dropping = StatAccumulator::new();
                let mut merged = Metrics::new();
                // Replication order is fixed here; worker scheduling cannot
                // influence it.
                for rep in 0..n_reps {
                    let index = (controller_idx * n_points + point) * n_reps + rep;
                    let outcome = cells[index]
                        .as_ref()
                        .expect("every cell is filled before workers join");
                    acceptance.push(outcome.acceptance_percentage);
                    blocking.push(outcome.blocking_probability);
                    dropping.push(outcome.dropping_probability);
                    merged.merge(&outcome.metrics);
                }
                points.push(PointReport {
                    load,
                    acceptance: acceptance.summary(),
                    blocking: blocking.summary(),
                    dropping: dropping.summary(),
                    merged,
                });
            }
            curves.push(CurveReport {
                controller: controller.label(),
                points,
            });
        }

        Ok((
            RunReport {
                scenario: spec.name.clone(),
                description: spec.description.clone(),
                replications: n_reps,
                base_seed: spec.base_seed,
                load_points: spec.load_points.clone(),
                curves,
            },
            worker_stats,
        ))
    }
}

/// Compose the sweep-level snapshot: total cell throughput, one
/// `{worker="i"}` series per worker (spawn order), and every worker
/// simulator's own series merged in the same fixed order.
fn compose_sweep_snapshot(stats: &[WorkerStats]) -> TelemetrySnapshot {
    let mut snapshot = TelemetrySnapshot {
        counters: vec![CounterSnapshot {
            name: "sweep_cells_completed_total".to_string(),
            help: "Sweep cells completed across all workers".to_string(),
            labels: Vec::new(),
            value: stats.iter().map(|s| s.cells).sum(),
        }],
        ..TelemetrySnapshot::default()
    };
    for (worker, s) in stats.iter().enumerate() {
        let labels = vec![LabelPair {
            key: "worker".to_string(),
            value: worker.to_string(),
        }];
        snapshot.counters.push(CounterSnapshot {
            name: "sweep_worker_cells_total".to_string(),
            help: "Sweep cells completed by each worker".to_string(),
            labels: labels.clone(),
            value: s.cells,
        });
        snapshot.spans.push(SpanSnapshot {
            name: "sweep_worker_wall_ns".to_string(),
            help: "Wall time each worker spent draining the cell queue".to_string(),
            labels,
            count: s.cells,
            total_ns: s.wall_ns,
            min_ns: s.wall_ns,
            max_ns: s.wall_ns,
        });
    }
    for s in stats {
        snapshot.merge(&s.telemetry);
    }
    snapshot
}

impl Default for SweepRunner {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenarios::builtin;
    use crate::spec::ControllerSpec;

    fn tiny_spec() -> ScenarioSpec {
        builtin("paper-default")
            .unwrap()
            .with_load_points(vec![10, 60])
            .with_replications(2)
            .with_controllers(vec![ControllerSpec::FacsP, ControllerSpec::AlwaysAccept])
    }

    #[test]
    fn report_shape_matches_the_spec() {
        let spec = tiny_spec();
        let report = SweepRunner::with_threads(2).run(&spec).unwrap();
        assert_eq!(report.scenario, "paper-default");
        assert_eq!(report.curves.len(), 2);
        assert_eq!(report.load_points, vec![10, 60]);
        for curve in &report.curves {
            assert_eq!(curve.points.len(), 2);
            for p in &curve.points {
                assert_eq!(p.acceptance.n, 2);
                assert!(p.acceptance.mean >= 0.0 && p.acceptance.mean <= 100.0);
                assert_eq!(
                    p.merged.offered(),
                    2 * p.load as u64,
                    "merged counters cover every replication"
                );
            }
        }
    }

    #[test]
    fn worker_count_does_not_change_results() {
        let spec = tiny_spec();
        let one = SweepRunner::with_threads(1).run(&spec).unwrap();
        let three = SweepRunner::with_threads(3).run(&spec).unwrap();
        let many = SweepRunner::with_threads(64).run(&spec).unwrap();
        assert_eq!(one, three);
        assert_eq!(one, many);
    }

    #[test]
    fn controllers_draw_decorrelated_streams_over_the_same_load_axis() {
        // Every controller sweeps the same load axis with the same
        // replication count (offered totals match per point in the
        // single-cell batch-free scenario), but each controller's cells
        // draw their own hashed seed stream — the per-point spread
        // measures genuine run-to-run variance instead of replaying one
        // arrival sequence.
        let spec = tiny_spec();
        let report = SweepRunner::with_threads(2).run(&spec).unwrap();
        let facs_p = report.curve("FACS-P").unwrap();
        let upper = report.curve("always-accept").unwrap();
        for (i, (a, b)) in facs_p.points.iter().zip(&upper.points).enumerate() {
            assert_eq!(a.load, b.load);
            assert_eq!(
                a.merged.offered(),
                spec.replications as u64 * a.load as u64,
                "every replication offers exactly the load point"
            );
            assert_eq!(a.merged.offered(), b.merged.offered());
            assert_ne!(
                spec.seed_for(&spec.controllers[0], i, 0),
                spec.seed_for(&spec.controllers[1], i, 0),
                "controller streams are decorrelated"
            );
        }
    }

    #[test]
    fn invalid_specs_are_rejected_before_spawning() {
        let spec = tiny_spec().with_controllers(vec![]);
        assert!(SweepRunner::new().run(&spec).is_err());
    }

    #[test]
    fn thread_count_is_floored_and_capped() {
        assert_eq!(SweepRunner::with_threads(0).threads(), 1);
        assert!(SweepRunner::new().threads() >= 1);
        assert!(SweepRunner::new().threads() <= 16);
    }

    #[test]
    fn instrumented_run_matches_plain_run_and_exposes_sweep_series() {
        let spec = tiny_spec();
        let runner = SweepRunner::with_threads(2);
        let plain = runner.run(&spec).unwrap();
        let (instrumented, snapshot) = runner.run_instrumented(&spec, None).unwrap();
        assert_eq!(
            plain.to_json(),
            instrumented.to_json(),
            "telemetry must not perturb the report"
        );
        let total = (spec.controllers.len() * spec.load_points.len() * spec.replications) as u64;
        let cells = snapshot
            .counters
            .iter()
            .find(|c| c.name == "sweep_cells_completed_total")
            .expect("sweep counter present");
        assert_eq!(cells.value, total);
        let per_worker: u64 = snapshot
            .counters
            .iter()
            .filter(|c| c.name == "sweep_worker_cells_total")
            .map(|c| c.value)
            .sum();
        assert_eq!(per_worker, total, "worker series partition the grid");
        assert!(
            snapshot
                .counters
                .iter()
                .any(|c| c.name == "sim_events_total" && c.value > 0),
            "worker simulator series are merged in"
        );
        cellsim::telemetry::lint_prometheus(&snapshot.to_prometheus())
            .expect("sweep exposition lints clean");
    }

    #[test]
    fn progress_observer_sees_completion_without_changing_results() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let spec = tiny_spec();
        let runner = SweepRunner::with_threads(2);
        let last_done = AtomicUsize::new(usize::MAX);
        let calls = AtomicUsize::new(0);
        let observed = runner
            .run_with_progress(&spec, &|p: SweepProgress| {
                calls.fetch_add(1, Ordering::Relaxed);
                last_done.store(p.done, Ordering::Relaxed);
                assert!(p.done <= p.total);
                assert_eq!(
                    p.total,
                    spec.controllers.len() * spec.load_points.len() * spec.replications
                );
            })
            .unwrap();
        assert!(calls.load(Ordering::Relaxed) >= 1, "monitor fired");
        assert_eq!(
            last_done.load(Ordering::Relaxed),
            spec.controllers.len() * spec.load_points.len() * spec.replications,
            "final callback reports a drained queue"
        );
        assert_eq!(observed, runner.run(&spec).unwrap());
    }

    #[test]
    fn progress_math_is_sane() {
        let p = SweepProgress {
            done: 50,
            total: 100,
            elapsed_s: 10.0,
        };
        assert!((p.cells_per_sec() - 5.0).abs() < 1e-12);
        assert!((p.eta_s().unwrap() - 10.0).abs() < 1e-12);
        let idle = SweepProgress {
            done: 0,
            total: 100,
            elapsed_s: 0.0,
        };
        assert_eq!(idle.cells_per_sec(), 0.0);
        assert!(idle.eta_s().is_none());
    }

    #[test]
    fn spawned_workers_never_oversubscribe_the_host() {
        let runner = SweepRunner::with_threads(64);
        assert_eq!(runner.threads(), 64, "the configured count is preserved");
        assert!(runner.effective_workers(1000) <= host_parallelism());
        assert_eq!(runner.effective_workers(0), 1);
        assert_eq!(
            SweepRunner::with_threads(8).effective_workers(3),
            3.min(host_parallelism()),
            "small grids never spawn idle workers"
        );
    }
}
