//! Deterministic-safe telemetry for the FACS-P workspace.
//!
//! This crate provides the observability layer shared by the simulator,
//! the sharded engine, the sweep runner, and the benchmark harness:
//!
//! * **monotonic counters** — dense-indexed `u64` adds, no hashing and no
//!   allocation on the hot path;
//! * **fixed-bucket histograms** — power-of-two (log2) buckets, so two
//!   histograms built on different machines or shards merge exactly;
//! * **span timers** — count/total/min/max nanosecond aggregates;
//! * **a bounded ring-buffer tracer** — the most recent `N` coarse events
//!   with an overflow (dropped) count, never an unbounded log.
//!
//! Everything hangs off the [`Recorder`] trait. Instrumented code is
//! generic over `R: Recorder` — never `dyn` — so the no-op implementation
//! ([`NoopRecorder`], a zero-sized type whose methods are empty `#[inline]`
//! bodies) compiles to literally nothing: the disabled build keeps the
//! engine's ≤1-allocation guarantee and its exact instruction stream.
//! The real implementation ([`Registry`]) preallocates every cell at
//! construction from a `'static` [`Schema`] and is allocation-free while
//! recording.
//!
//! # Determinism contract
//!
//! Telemetry is **observation-only**. A [`Recorder`] never feeds back into
//! simulation state, never draws from an RNG stream, and never reorders
//! events; wall-clock reads ([`Stopwatch`]) are gated on
//! [`Recorder::ENABLED`] so the disabled build performs none. Golden
//! snapshots are therefore byte-identical with telemetry on and off —
//! asserted by `cellsim/tests/telemetry_invariance.rs` and by running the
//! golden suites under `--features telemetry` in CI.
//!
//! # Exporters
//!
//! A [`TelemetrySnapshot`] (the cold-path, owned view of a recorder) can be
//! rendered as Prometheus text exposition ([`TelemetrySnapshot::to_prometheus`])
//! or pretty JSON ([`TelemetrySnapshot::to_json`]); [`lint_prometheus`]
//! validates the exposition syntax and backs the CI smoke check.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use serde::{Deserialize, Serialize};

/// Number of log2 histogram buckets: bucket `0` holds the value `0`,
/// bucket `i ≥ 1` holds values in `[2^(i-1), 2^i)`, up to bucket 64.
pub const HISTOGRAM_BUCKETS: usize = 65;

/// Static description of one metric: its exposition name, help text, and
/// constant labels. Lives in a `'static` [`Schema`] so identifying a
/// metric at record time is a dense integer index, not a name lookup.
#[derive(Debug, Clone, Copy)]
pub struct MetricDef {
    /// Prometheus-style metric name (`[a-zA-Z_:][a-zA-Z0-9_:]*`).
    pub name: &'static str,
    /// One-line help text for the `# HELP` exposition line.
    pub help: &'static str,
    /// Constant `(key, value)` label pairs attached to every sample.
    pub labels: &'static [(&'static str, &'static str)],
}

/// The full metric layout a [`Registry`] is built from. One static
/// `Schema` per subsystem; ids are indices into these slices.
#[derive(Debug, Clone, Copy)]
pub struct Schema {
    /// Monotonic counters, indexed by [`CounterId`].
    pub counters: &'static [MetricDef],
    /// Log2-bucket histograms, indexed by [`HistogramId`].
    pub histograms: &'static [MetricDef],
    /// High-water-mark gauges, indexed by [`GaugeId`].
    pub gauges: &'static [MetricDef],
    /// Span timers, indexed by [`SpanId`].
    pub spans: &'static [MetricDef],
    /// Human-readable names for [`TraceEvent::kind`] values.
    pub trace_kinds: &'static [&'static str],
    /// Ring-buffer capacity of the event tracer (0 disables tracing).
    pub trace_capacity: usize,
}

/// Index of a counter within [`Schema::counters`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CounterId(pub u16);

/// Index of a histogram within [`Schema::histograms`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistogramId(pub u16);

/// Index of a gauge within [`Schema::gauges`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GaugeId(pub u16);

/// Index of a span timer within [`Schema::spans`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanId(pub u16);

/// One coarse trace record: a simulation-time stamp, a kind (an index
/// into [`Schema::trace_kinds`]), and a free-form value.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceEvent {
    /// Simulation time of the event, in seconds.
    pub time_s: f64,
    /// Index into [`Schema::trace_kinds`].
    pub kind: u16,
    /// Kind-specific payload (a count, a depth, an id…).
    pub value: u64,
}

/// Count/total/min/max aggregate of recorded span durations. Mergeable,
/// so per-shard and per-worker spans combine without losing the extremes.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct SpanStats {
    /// Number of recorded spans.
    pub count: u64,
    /// Sum of all recorded durations, in nanoseconds.
    pub total_ns: u64,
    /// Shortest recorded duration, in nanoseconds (0 when empty).
    pub min_ns: u64,
    /// Longest recorded duration, in nanoseconds (0 when empty).
    pub max_ns: u64,
}

impl SpanStats {
    /// Fold one duration into the aggregate.
    #[inline]
    pub fn record(&mut self, ns: u64) {
        self.min_ns = if self.count == 0 {
            ns
        } else {
            self.min_ns.min(ns)
        };
        self.max_ns = self.max_ns.max(ns);
        self.count += 1;
        self.total_ns += ns;
    }

    /// Combine two aggregates (commutative and associative).
    pub fn merge(&mut self, other: &SpanStats) {
        if other.count == 0 {
            return;
        }
        self.min_ns = if self.count == 0 {
            other.min_ns
        } else {
            self.min_ns.min(other.min_ns)
        };
        self.max_ns = self.max_ns.max(other.max_ns);
        self.count += other.count;
        self.total_ns += other.total_ns;
    }

    /// Mean duration in nanoseconds, `0.0` when empty.
    #[must_use]
    pub fn mean_ns(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.total_ns as f64 / self.count as f64
        }
    }
}

/// The instrumentation sink. Hot-path code is generic over `R: Recorder`
/// (static dispatch); [`NoopRecorder`] makes every call vanish at compile
/// time, [`Registry`] records into preallocated dense arrays.
///
/// Anything whose *arguments* cost something to compute (a wall-clock
/// read, a derived ratio) must be gated on [`Recorder::ENABLED`] at the
/// call site so the disabled build does not even compute the operands.
pub trait Recorder {
    /// `true` only for implementations that actually record; lets call
    /// sites skip computing expensive operands (e.g. `Instant::now`)
    /// behind a compile-time constant branch.
    const ENABLED: bool;

    /// Build a recorder for `schema`. [`Registry`] preallocates every
    /// metric cell here so recording never allocates.
    fn for_schema(schema: &'static Schema) -> Self
    where
        Self: Sized;

    /// Add `delta` to a monotonic counter.
    fn add(&mut self, counter: CounterId, delta: u64);

    /// Record one observation into a log2-bucket histogram.
    fn observe(&mut self, histogram: HistogramId, value: u64);

    /// Raise a high-water-mark gauge to at least `value`.
    fn high_water(&mut self, gauge: GaugeId, value: u64);

    /// Fold one measured duration into a span timer.
    fn span_ns(&mut self, span: SpanId, ns: u64);

    /// Push one event into the bounded ring tracer (oldest entries are
    /// overwritten once the ring is full; overwrites are counted).
    fn trace(&mut self, event: TraceEvent);

    /// Owned cold-path view of everything recorded so far.
    fn snapshot(&self) -> TelemetrySnapshot;

    /// Clear all recorded values (capacity is retained).
    fn reset(&mut self);
}

/// The disabled recorder: a zero-sized type whose methods are empty
/// inline bodies, so instrumented code monomorphised over it is
/// instruction-for-instruction the uninstrumented code.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NoopRecorder;

impl Recorder for NoopRecorder {
    const ENABLED: bool = false;

    #[inline(always)]
    fn for_schema(_schema: &'static Schema) -> Self {
        NoopRecorder
    }

    #[inline(always)]
    fn add(&mut self, _counter: CounterId, _delta: u64) {}

    #[inline(always)]
    fn observe(&mut self, _histogram: HistogramId, _value: u64) {}

    #[inline(always)]
    fn high_water(&mut self, _gauge: GaugeId, _value: u64) {}

    #[inline(always)]
    fn span_ns(&mut self, _span: SpanId, _ns: u64) {}

    #[inline(always)]
    fn trace(&mut self, _event: TraceEvent) {}

    fn snapshot(&self) -> TelemetrySnapshot {
        TelemetrySnapshot::default()
    }

    #[inline(always)]
    fn reset(&mut self) {}
}

/// Dense log2-bucket histogram cell (internal to [`Registry`]).
#[derive(Clone)]
struct Hist {
    buckets: [u64; HISTOGRAM_BUCKETS],
    count: u64,
    sum: u64,
}

impl Hist {
    fn new() -> Self {
        Hist {
            buckets: [0; HISTOGRAM_BUCKETS],
            count: 0,
            sum: 0,
        }
    }
}

/// Bucket index for a value: `0` for `0`, else `64 - leading_zeros`, so
/// bucket `i ≥ 1` covers `[2^(i-1), 2^i)`.
#[inline]
#[must_use]
pub fn bucket_index(value: u64) -> usize {
    (64 - value.leading_zeros()) as usize
}

/// Inclusive upper bound of bucket `index` (the Prometheus `le` value).
#[must_use]
pub fn bucket_upper_bound(index: usize) -> u64 {
    if index == 0 {
        0
    } else if index >= 64 {
        u64::MAX
    } else {
        (1u64 << index) - 1
    }
}

/// The real recorder: every counter, histogram, gauge, span, and the
/// trace ring are preallocated from the schema at construction, so the
/// recording path is a handful of integer stores — no hashing, no
/// branching on names, and no allocation.
///
/// `Registry` is always available (not feature-gated) so a default,
/// telemetry-off build can still instantiate an instrumented simulator
/// explicitly — that is how the on-vs-off invariance test and the
/// telemetry-overhead benchmark case run inside one binary.
#[derive(Clone)]
pub struct Registry {
    schema: &'static Schema,
    counters: Vec<u64>,
    histograms: Vec<Hist>,
    gauges: Vec<u64>,
    spans: Vec<SpanStats>,
    trace: Vec<TraceEvent>,
    trace_next: usize,
    trace_dropped: u64,
}

impl std::fmt::Debug for Registry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Registry")
            .field("counters", &self.counters.len())
            .field("histograms", &self.histograms.len())
            .field("gauges", &self.gauges.len())
            .field("spans", &self.spans.len())
            .field("trace_len", &self.trace.len())
            .finish()
    }
}

impl Registry {
    /// The schema this registry was built from.
    #[must_use]
    pub fn schema(&self) -> &'static Schema {
        self.schema
    }

    /// Current value of one counter.
    #[must_use]
    pub fn counter(&self, counter: CounterId) -> u64 {
        self.counters[counter.0 as usize]
    }

    /// Current high-water value of one gauge.
    #[must_use]
    pub fn gauge(&self, gauge: GaugeId) -> u64 {
        self.gauges[gauge.0 as usize]
    }

    /// Aggregate of one span timer.
    #[must_use]
    pub fn span(&self, span: SpanId) -> SpanStats {
        self.spans[span.0 as usize]
    }
}

impl Recorder for Registry {
    const ENABLED: bool = true;

    fn for_schema(schema: &'static Schema) -> Self {
        Registry {
            schema,
            counters: vec![0; schema.counters.len()],
            histograms: vec![Hist::new(); schema.histograms.len()],
            gauges: vec![0; schema.gauges.len()],
            spans: vec![SpanStats::default(); schema.spans.len()],
            trace: Vec::with_capacity(schema.trace_capacity),
            trace_next: 0,
            trace_dropped: 0,
        }
    }

    #[inline]
    fn add(&mut self, counter: CounterId, delta: u64) {
        self.counters[counter.0 as usize] += delta;
    }

    #[inline]
    fn observe(&mut self, histogram: HistogramId, value: u64) {
        let h = &mut self.histograms[histogram.0 as usize];
        h.buckets[bucket_index(value)] += 1;
        h.count += 1;
        h.sum = h.sum.saturating_add(value);
    }

    #[inline]
    fn high_water(&mut self, gauge: GaugeId, value: u64) {
        let g = &mut self.gauges[gauge.0 as usize];
        if value > *g {
            *g = value;
        }
    }

    #[inline]
    fn span_ns(&mut self, span: SpanId, ns: u64) {
        self.spans[span.0 as usize].record(ns);
    }

    #[inline]
    fn trace(&mut self, event: TraceEvent) {
        if self.schema.trace_capacity == 0 {
            return;
        }
        if self.trace.len() < self.schema.trace_capacity {
            self.trace.push(event);
        } else {
            self.trace[self.trace_next] = event;
            self.trace_dropped += 1;
        }
        self.trace_next = (self.trace_next + 1) % self.schema.trace_capacity;
    }

    fn snapshot(&self) -> TelemetrySnapshot {
        let labels = |def: &MetricDef| {
            def.labels
                .iter()
                .map(|(k, v)| LabelPair {
                    key: (*k).to_string(),
                    value: (*v).to_string(),
                })
                .collect::<Vec<_>>()
        };
        let counters = self
            .schema
            .counters
            .iter()
            .zip(&self.counters)
            .map(|(def, &value)| CounterSnapshot {
                name: def.name.to_string(),
                help: def.help.to_string(),
                labels: labels(def),
                value,
            })
            .collect();
        let histograms = self
            .schema
            .histograms
            .iter()
            .zip(&self.histograms)
            .map(|(def, h)| HistogramSnapshot {
                name: def.name.to_string(),
                help: def.help.to_string(),
                labels: labels(def),
                count: h.count,
                sum: h.sum,
                buckets: h
                    .buckets
                    .iter()
                    .enumerate()
                    .filter(|(_, &c)| c > 0)
                    .map(|(i, &c)| BucketCount {
                        le: bucket_upper_bound(i),
                        count: c,
                    })
                    .collect(),
            })
            .collect();
        let gauges = self
            .schema
            .gauges
            .iter()
            .zip(&self.gauges)
            .map(|(def, &value)| GaugeSnapshot {
                name: def.name.to_string(),
                help: def.help.to_string(),
                labels: labels(def),
                value,
            })
            .collect();
        let spans = self
            .schema
            .spans
            .iter()
            .zip(&self.spans)
            .map(|(def, stats)| SpanSnapshot {
                name: def.name.to_string(),
                help: def.help.to_string(),
                labels: labels(def),
                count: stats.count,
                total_ns: stats.total_ns,
                min_ns: stats.min_ns,
                max_ns: stats.max_ns,
            })
            .collect();
        // Replay the ring oldest-first so the trace reads chronologically.
        let mut traces = Vec::with_capacity(self.trace.len());
        let start = if self.trace.len() < self.schema.trace_capacity {
            0
        } else {
            self.trace_next
        };
        for i in 0..self.trace.len() {
            let event = self.trace[(start + i) % self.trace.len()];
            let kind = self
                .schema
                .trace_kinds
                .get(event.kind as usize)
                .map_or_else(|| format!("kind{}", event.kind), |k| (*k).to_string());
            traces.push(TraceSnapshot {
                time_s: event.time_s,
                kind,
                value: event.value,
            });
        }
        TelemetrySnapshot {
            counters,
            histograms,
            gauges,
            spans,
            traces,
            dropped_traces: self.trace_dropped,
        }
    }

    fn reset(&mut self) {
        for c in &mut self.counters {
            *c = 0;
        }
        for h in &mut self.histograms {
            h.buckets = [0; HISTOGRAM_BUCKETS];
            h.count = 0;
            h.sum = 0;
        }
        for g in &mut self.gauges {
            *g = 0;
        }
        for s in &mut self.spans {
            *s = SpanStats::default();
        }
        self.trace.clear();
        self.trace_next = 0;
        self.trace_dropped = 0;
    }
}

/// A wall-clock timer that only reads the clock when `enabled` — pass
/// `R::ENABLED` so the disabled build folds the branch away and performs
/// no `Instant::now` syscall at all.
#[derive(Debug, Clone, Copy)]
pub struct Stopwatch(Option<std::time::Instant>);

impl Stopwatch {
    /// Start the timer if `enabled`, otherwise return an inert stopwatch.
    #[inline]
    #[must_use]
    pub fn started(enabled: bool) -> Self {
        Stopwatch(if enabled {
            Some(std::time::Instant::now())
        } else {
            None
        })
    }

    /// Elapsed nanoseconds since [`Stopwatch::started`], or `None` for an
    /// inert stopwatch.
    #[inline]
    #[must_use]
    pub fn elapsed_ns(&self) -> Option<u64> {
        self.0
            .map(|t| u64::try_from(t.elapsed().as_nanos()).unwrap_or(u64::MAX))
    }
}

/// One `key="value"` exposition label.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct LabelPair {
    /// Label name (`[a-zA-Z_][a-zA-Z0-9_]*`).
    pub key: String,
    /// Label value (escaped on exposition).
    pub value: String,
}

/// Snapshot of one monotonic counter.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct CounterSnapshot {
    /// Metric name.
    pub name: String,
    /// Help text.
    pub help: String,
    /// Constant labels.
    pub labels: Vec<LabelPair>,
    /// Accumulated count.
    pub value: u64,
}

/// One non-empty histogram bucket: `count` observations with
/// `value <= le`.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct BucketCount {
    /// Inclusive upper bound of the bucket.
    pub le: u64,
    /// Observations that landed in this bucket (non-cumulative).
    pub count: u64,
}

/// Snapshot of one log2-bucket histogram.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct HistogramSnapshot {
    /// Metric name.
    pub name: String,
    /// Help text.
    pub help: String,
    /// Constant labels.
    pub labels: Vec<LabelPair>,
    /// Total number of observations.
    pub count: u64,
    /// Sum of all observed values (saturating).
    pub sum: u64,
    /// Non-empty buckets, ascending by `le`.
    pub buckets: Vec<BucketCount>,
}

/// Snapshot of one high-water-mark gauge.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct GaugeSnapshot {
    /// Metric name.
    pub name: String,
    /// Help text.
    pub help: String,
    /// Constant labels.
    pub labels: Vec<LabelPair>,
    /// Highest value observed.
    pub value: u64,
}

/// Snapshot of one span timer.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct SpanSnapshot {
    /// Metric name (by convention ends in `_ns`).
    pub name: String,
    /// Help text.
    pub help: String,
    /// Constant labels.
    pub labels: Vec<LabelPair>,
    /// Number of recorded spans.
    pub count: u64,
    /// Sum of all durations, nanoseconds.
    pub total_ns: u64,
    /// Shortest duration, nanoseconds.
    pub min_ns: u64,
    /// Longest duration, nanoseconds.
    pub max_ns: u64,
}

/// One chronological trace entry.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct TraceSnapshot {
    /// Simulation time, seconds.
    pub time_s: f64,
    /// Human-readable trace kind.
    pub kind: String,
    /// Kind-specific payload.
    pub value: u64,
}

/// Owned, mergeable, serialisable view of everything a [`Recorder`]
/// collected. This is the cold path: building, merging, and exporting a
/// snapshot may allocate freely.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct TelemetrySnapshot {
    /// Counter samples.
    pub counters: Vec<CounterSnapshot>,
    /// Histogram samples.
    pub histograms: Vec<HistogramSnapshot>,
    /// Gauge samples.
    pub gauges: Vec<GaugeSnapshot>,
    /// Span samples.
    pub spans: Vec<SpanSnapshot>,
    /// Recent trace events, oldest first.
    pub traces: Vec<TraceSnapshot>,
    /// Trace events overwritten because the ring was full.
    pub dropped_traces: u64,
}

fn same_series(
    name: &str,
    labels: &[LabelPair],
    other_name: &str,
    other_labels: &[LabelPair],
) -> bool {
    name == other_name && labels == other_labels
}

impl TelemetrySnapshot {
    /// `true` when nothing was recorded (and no series are declared).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty()
            && self.histograms.is_empty()
            && self.gauges.is_empty()
            && self.spans.is_empty()
            && self.traces.is_empty()
    }

    /// Fold `other` into `self`, matching series by `(name, labels)`:
    /// counters and histogram buckets add, gauges take the max, spans
    /// merge their aggregates, traces concatenate. Unmatched series are
    /// appended, so snapshots from different schemas combine losslessly.
    pub fn merge(&mut self, other: &TelemetrySnapshot) {
        for c in &other.counters {
            match self
                .counters
                .iter_mut()
                .find(|m| same_series(&m.name, &m.labels, &c.name, &c.labels))
            {
                Some(m) => m.value += c.value,
                None => self.counters.push(c.clone()),
            }
        }
        for h in &other.histograms {
            match self
                .histograms
                .iter_mut()
                .find(|m| same_series(&m.name, &m.labels, &h.name, &h.labels))
            {
                Some(m) => {
                    m.count += h.count;
                    m.sum = m.sum.saturating_add(h.sum);
                    for b in &h.buckets {
                        match m.buckets.iter_mut().find(|mb| mb.le == b.le) {
                            Some(mb) => mb.count += b.count,
                            None => m.buckets.push(b.clone()),
                        }
                    }
                    m.buckets.sort_by_key(|b| b.le);
                }
                None => self.histograms.push(h.clone()),
            }
        }
        for g in &other.gauges {
            match self
                .gauges
                .iter_mut()
                .find(|m| same_series(&m.name, &m.labels, &g.name, &g.labels))
            {
                Some(m) => m.value = m.value.max(g.value),
                None => self.gauges.push(g.clone()),
            }
        }
        for s in &other.spans {
            match self
                .spans
                .iter_mut()
                .find(|m| same_series(&m.name, &m.labels, &s.name, &s.labels))
            {
                Some(m) => {
                    let mut stats = SpanStats {
                        count: m.count,
                        total_ns: m.total_ns,
                        min_ns: m.min_ns,
                        max_ns: m.max_ns,
                    };
                    stats.merge(&SpanStats {
                        count: s.count,
                        total_ns: s.total_ns,
                        min_ns: s.min_ns,
                        max_ns: s.max_ns,
                    });
                    m.count = stats.count;
                    m.total_ns = stats.total_ns;
                    m.min_ns = stats.min_ns;
                    m.max_ns = stats.max_ns;
                }
                None => self.spans.push(s.clone()),
            }
        }
        self.traces.extend(other.traces.iter().cloned());
        self.dropped_traces += other.dropped_traces;
    }

    /// Pretty-printed JSON export.
    #[must_use]
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("snapshot serialisation cannot fail")
    }

    /// Prometheus text exposition (format version 0.0.4).
    ///
    /// Histograms emit cumulative `_bucket{le=...}` series plus `_sum`
    /// and `_count`; spans emit `_count`/`_total`/`_min`/`_max` series;
    /// counters and gauges emit plain samples. Output passes
    /// [`lint_prometheus`], which CI smoke-checks.
    #[must_use]
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        let esc = |v: &str| {
            v.replace('\\', "\\\\")
                .replace('"', "\\\"")
                .replace('\n', "\\n")
        };
        let label_block = |labels: &[LabelPair], extra: Option<(&str, String)>| {
            let mut parts: Vec<String> = labels
                .iter()
                .map(|l| format!("{}=\"{}\"", l.key, esc(&l.value)))
                .collect();
            if let Some((k, v)) = extra {
                parts.push(format!("{k}=\"{v}\""));
            }
            if parts.is_empty() {
                String::new()
            } else {
                format!("{{{}}}", parts.join(","))
            }
        };
        for c in &self.counters {
            out.push_str(&format!("# HELP {} {}\n", c.name, c.help));
            out.push_str(&format!("# TYPE {} counter\n", c.name));
            out.push_str(&format!(
                "{}{} {}\n",
                c.name,
                label_block(&c.labels, None),
                c.value
            ));
        }
        for h in &self.histograms {
            out.push_str(&format!("# HELP {} {}\n", h.name, h.help));
            out.push_str(&format!("# TYPE {} histogram\n", h.name));
            let mut cumulative = 0u64;
            for b in &h.buckets {
                cumulative += b.count;
                out.push_str(&format!(
                    "{}_bucket{} {}\n",
                    h.name,
                    label_block(&h.labels, Some(("le", b.le.to_string()))),
                    cumulative
                ));
            }
            out.push_str(&format!(
                "{}_bucket{} {}\n",
                h.name,
                label_block(&h.labels, Some(("le", "+Inf".to_string()))),
                h.count
            ));
            out.push_str(&format!(
                "{}_sum{} {}\n",
                h.name,
                label_block(&h.labels, None),
                h.sum
            ));
            out.push_str(&format!(
                "{}_count{} {}\n",
                h.name,
                label_block(&h.labels, None),
                h.count
            ));
        }
        for g in &self.gauges {
            out.push_str(&format!("# HELP {} {}\n", g.name, g.help));
            out.push_str(&format!("# TYPE {} gauge\n", g.name));
            out.push_str(&format!(
                "{}{} {}\n",
                g.name,
                label_block(&g.labels, None),
                g.value
            ));
        }
        for s in &self.spans {
            for (suffix, value) in [
                ("count", s.count),
                ("total", s.total_ns),
                ("min", s.min_ns),
                ("max", s.max_ns),
            ] {
                let name = format!("{}_{suffix}", s.name);
                out.push_str(&format!("# HELP {name} {} ({suffix})\n", s.help));
                out.push_str(&format!("# TYPE {name} gauge\n"));
                out.push_str(&format!("{name}{} {value}\n", label_block(&s.labels, None)));
            }
        }
        if !self.traces.is_empty() || self.dropped_traces > 0 {
            let name = "telemetry_trace_dropped";
            out.push_str(&format!(
                "# HELP {name} Trace events overwritten because the ring buffer was full\n"
            ));
            out.push_str(&format!("# TYPE {name} counter\n"));
            out.push_str(&format!("{name} {}\n", self.dropped_traces));
        }
        out
    }
}

fn valid_metric_name(name: &str) -> bool {
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' || c == ':' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

/// Byte index one past the closing quote of the `"`-opened string at the
/// start of `s`, honouring `\"`/`\\` escapes; `None` when unterminated.
fn scan_quoted(s: &str) -> Option<usize> {
    let bytes = s.as_bytes();
    let mut i = 1;
    while i < bytes.len() {
        match bytes[i] {
            b'\\' => i += 2,
            b'"' => return Some(i + 1),
            _ => i += 1,
        }
    }
    None
}

fn valid_label_name(name: &str) -> bool {
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_')
}

/// Validate Prometheus text exposition syntax: every line must be a
/// well-formed `# HELP`/`# TYPE` comment or a `name{labels} value`
/// sample with legal metric/label names and a parseable value. Returns
/// the first offending line on failure. This is the lint behind the CI
/// smoke check on exporter output.
pub fn lint_prometheus(text: &str) -> Result<(), String> {
    for (lineno, line) in text.lines().enumerate() {
        let n = lineno + 1;
        if line.trim().is_empty() {
            continue;
        }
        if let Some(comment) = line.strip_prefix('#') {
            let rest = comment.trim_start();
            if let Some(help) = rest.strip_prefix("HELP ") {
                let name = help.split_whitespace().next().unwrap_or("");
                if !valid_metric_name(name) {
                    return Err(format!("line {n}: bad metric name in HELP: `{line}`"));
                }
            } else if let Some(ty) = rest.strip_prefix("TYPE ") {
                let mut parts = ty.split_whitespace();
                let name = parts.next().unwrap_or("");
                let kind = parts.next().unwrap_or("");
                if !valid_metric_name(name) {
                    return Err(format!("line {n}: bad metric name in TYPE: `{line}`"));
                }
                if !matches!(
                    kind,
                    "counter" | "gauge" | "histogram" | "summary" | "untyped"
                ) {
                    return Err(format!("line {n}: bad metric type `{kind}`: `{line}`"));
                }
            } else {
                return Err(format!("line {n}: unknown comment form: `{line}`"));
            }
            continue;
        }
        // Sample line: name[{labels}] value
        let (series, value) = match line.rsplit_once(' ') {
            Some(pair) => pair,
            None => return Err(format!("line {n}: no value: `{line}`")),
        };
        if value.parse::<f64>().is_err() && !matches!(value, "+Inf" | "-Inf" | "NaN") {
            return Err(format!("line {n}: unparseable value `{value}`: `{line}`"));
        }
        let (name, labels) = match series.split_once('{') {
            Some((name, rest)) => {
                let labels = match rest.strip_suffix('}') {
                    Some(l) => l,
                    None => return Err(format!("line {n}: unterminated label block: `{line}`")),
                };
                (name, Some(labels))
            }
            None => (series, None),
        };
        if !valid_metric_name(name) {
            return Err(format!("line {n}: bad metric name `{name}`: `{line}`"));
        }
        if let Some(labels) = labels {
            // Walk the label block left to right rather than splitting on
            // commas: quoted label values may legally contain commas,
            // spaces, and escaped quotes.
            let mut rest = labels;
            while !rest.is_empty() {
                let (key, after) = match rest.split_once('=') {
                    Some(kv) => kv,
                    None => return Err(format!("line {n}: bad label pair `{rest}`: `{line}`")),
                };
                if !valid_label_name(key) {
                    return Err(format!("line {n}: bad label name `{key}`: `{line}`"));
                }
                if !after.starts_with('"') {
                    return Err(format!(
                        "line {n}: unquoted label value `{after}`: `{line}`"
                    ));
                }
                let end = match scan_quoted(after) {
                    Some(end) => end,
                    None => return Err(format!("line {n}: unterminated label value: `{line}`")),
                };
                rest = &after[end..];
                match rest.strip_prefix(',') {
                    Some(r) => rest = r,
                    None if rest.is_empty() => break,
                    None => {
                        return Err(format!(
                            "line {n}: junk after label value `{rest}`: `{line}`"
                        ))
                    }
                }
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    static TEST_SCHEMA: Schema = Schema {
        counters: &[
            MetricDef {
                name: "test_events_total",
                help: "Events seen",
                labels: &[("kind", "arrival")],
            },
            MetricDef {
                name: "test_events_total",
                help: "Events seen",
                labels: &[("kind", "departure")],
            },
        ],
        histograms: &[MetricDef {
            name: "test_depth",
            help: "Queue depth",
            labels: &[],
        }],
        gauges: &[MetricDef {
            name: "test_high_water",
            help: "High water",
            labels: &[],
        }],
        spans: &[MetricDef {
            name: "test_phase_ns",
            help: "Phase wall time",
            labels: &[],
        }],
        trace_kinds: &["epoch"],
        trace_capacity: 4,
    };

    const ARRIVAL: CounterId = CounterId(0);
    const DEPARTURE: CounterId = CounterId(1);
    const DEPTH: HistogramId = HistogramId(0);
    const HIGH: GaugeId = GaugeId(0);
    const PHASE: SpanId = SpanId(0);

    #[test]
    fn noop_recorder_is_zero_sized_and_disabled() {
        assert_eq!(std::mem::size_of::<NoopRecorder>(), 0);
        const { assert!(!NoopRecorder::ENABLED) }
        const { assert!(Registry::ENABLED) }
        let mut r = NoopRecorder::for_schema(&TEST_SCHEMA);
        r.add(ARRIVAL, 5);
        r.observe(DEPTH, 1);
        assert!(r.snapshot().is_empty());
    }

    #[test]
    fn bucket_index_matches_log2_ranges() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(1023), 10);
        assert_eq!(bucket_index(1024), 11);
        assert_eq!(bucket_index(u64::MAX), 64);
        assert_eq!(bucket_upper_bound(0), 0);
        assert_eq!(bucket_upper_bound(1), 1);
        assert_eq!(bucket_upper_bound(2), 3);
        assert_eq!(bucket_upper_bound(11), 2047);
        assert_eq!(bucket_upper_bound(64), u64::MAX);
        // Every value lands in the bucket whose bound covers it.
        for v in [0u64, 1, 2, 3, 7, 8, 1000, 1 << 40, u64::MAX] {
            assert!(v <= bucket_upper_bound(bucket_index(v)));
            if bucket_index(v) > 0 {
                assert!(v > bucket_upper_bound(bucket_index(v) - 1));
            }
        }
    }

    #[test]
    fn registry_records_and_snapshots() {
        let mut r = Registry::for_schema(&TEST_SCHEMA);
        r.add(ARRIVAL, 3);
        r.add(DEPARTURE, 1);
        r.observe(DEPTH, 0);
        r.observe(DEPTH, 5);
        r.observe(DEPTH, 5);
        r.high_water(HIGH, 10);
        r.high_water(HIGH, 7);
        r.span_ns(PHASE, 100);
        r.span_ns(PHASE, 50);
        let snap = r.snapshot();
        assert_eq!(snap.counters[0].value, 3);
        assert_eq!(snap.counters[0].labels[0].value, "arrival");
        assert_eq!(snap.counters[1].value, 1);
        let h = &snap.histograms[0];
        assert_eq!(h.count, 3);
        assert_eq!(h.sum, 10);
        assert_eq!(h.buckets.len(), 2); // value 0 and two 5s
        assert_eq!(snap.gauges[0].value, 10);
        let s = &snap.spans[0];
        assert_eq!((s.count, s.total_ns, s.min_ns, s.max_ns), (2, 150, 50, 100));
        r.reset();
        let empty = r.snapshot();
        assert_eq!(empty.counters[0].value, 0);
        assert_eq!(empty.histograms[0].count, 0);
    }

    #[test]
    fn trace_ring_wraps_and_counts_drops() {
        let mut r = Registry::for_schema(&TEST_SCHEMA);
        for i in 0..6u64 {
            r.trace(TraceEvent {
                time_s: i as f64,
                kind: 0,
                value: i,
            });
        }
        let snap = r.snapshot();
        assert_eq!(snap.traces.len(), 4);
        assert_eq!(snap.dropped_traces, 2);
        // Oldest-first replay: events 2,3,4,5 survive.
        let values: Vec<u64> = snap.traces.iter().map(|t| t.value).collect();
        assert_eq!(values, vec![2, 3, 4, 5]);
        assert_eq!(snap.traces[0].kind, "epoch");
    }

    #[test]
    fn snapshot_merge_adds_counters_and_buckets() {
        let mut a = Registry::for_schema(&TEST_SCHEMA);
        let mut b = Registry::for_schema(&TEST_SCHEMA);
        a.add(ARRIVAL, 2);
        b.add(ARRIVAL, 3);
        b.add(DEPARTURE, 1);
        a.observe(DEPTH, 4);
        b.observe(DEPTH, 4);
        b.observe(DEPTH, 100);
        a.high_water(HIGH, 5);
        b.high_water(HIGH, 9);
        a.span_ns(PHASE, 10);
        b.span_ns(PHASE, 30);
        let mut merged = a.snapshot();
        merged.merge(&b.snapshot());
        assert_eq!(merged.counters[0].value, 5);
        assert_eq!(merged.counters[1].value, 1);
        let h = &merged.histograms[0];
        assert_eq!(h.count, 3);
        assert_eq!(h.sum, 108);
        assert_eq!(merged.gauges[0].value, 9);
        let s = &merged.spans[0];
        assert_eq!((s.count, s.total_ns, s.min_ns, s.max_ns), (2, 40, 10, 30));
        // Merge is commutative on the aggregates.
        let mut flipped = b.snapshot();
        flipped.merge(&a.snapshot());
        assert_eq!(flipped.counters[0].value, merged.counters[0].value);
        assert_eq!(flipped.histograms[0].count, merged.histograms[0].count);
        assert_eq!(flipped.gauges[0].value, merged.gauges[0].value);
    }

    #[test]
    fn prometheus_exposition_passes_lint() {
        let mut r = Registry::for_schema(&TEST_SCHEMA);
        r.add(ARRIVAL, 7);
        r.observe(DEPTH, 3);
        r.observe(DEPTH, 300);
        r.high_water(HIGH, 42);
        r.span_ns(PHASE, 1234);
        r.trace(TraceEvent {
            time_s: 1.0,
            kind: 0,
            value: 9,
        });
        let text = r.snapshot().to_prometheus();
        lint_prometheus(&text).expect("exposition must lint clean");
        assert!(text.contains("test_events_total{kind=\"arrival\"} 7"));
        assert!(text.contains("# TYPE test_depth histogram"));
        assert!(text.contains("test_depth_bucket{le=\"+Inf\"} 2"));
        assert!(text.contains("test_depth_count 2"));
        assert!(text.contains("test_high_water 42"));
        assert!(text.contains("test_phase_ns_total 1234"));
    }

    #[test]
    fn prometheus_histogram_buckets_are_cumulative() {
        let mut r = Registry::for_schema(&TEST_SCHEMA);
        r.observe(DEPTH, 1);
        r.observe(DEPTH, 1);
        r.observe(DEPTH, 8);
        let text = r.snapshot().to_prometheus();
        assert!(text.contains("test_depth_bucket{le=\"1\"} 2"));
        assert!(text.contains("test_depth_bucket{le=\"15\"} 3"));
        assert!(text.contains("test_depth_sum 10"));
    }

    #[test]
    fn lint_rejects_malformed_exposition() {
        assert!(lint_prometheus("9metric 1\n").is_err());
        assert!(lint_prometheus("metric{9bad=\"x\"} 1\n").is_err());
        assert!(lint_prometheus("metric{k=unquoted} 1\n").is_err());
        assert!(lint_prometheus("metric one\n").is_err());
        assert!(lint_prometheus("metric{k=\"v\" 1\n").is_err());
        assert!(lint_prometheus("# BOGUS metric counter\n").is_err());
        assert!(lint_prometheus("# TYPE metric widget\n").is_err());
        assert!(lint_prometheus("metric{k=\"v\"} 1\n# TYPE metric counter\n").is_ok());
        assert!(lint_prometheus("metric +Inf\n").is_ok());
        // Quoted values may contain commas, spaces, and escaped quotes.
        assert!(lint_prometheus("metric{k=\"a, b (c)\",j=\"x\"} 1\n").is_ok());
        assert!(lint_prometheus("metric{k=\"a \\\"b\\\", c\"} 1\n").is_ok());
        assert!(lint_prometheus("metric{k=\"open} 1\n").is_err());
        assert!(lint_prometheus("metric{k=\"v\"junk} 1\n").is_err());
    }

    #[test]
    fn snapshot_round_trips_through_json() {
        let mut r = Registry::for_schema(&TEST_SCHEMA);
        r.add(ARRIVAL, 11);
        r.observe(DEPTH, 6);
        r.span_ns(PHASE, 5);
        r.trace(TraceEvent {
            time_s: 2.5,
            kind: 0,
            value: 1,
        });
        let snap = r.snapshot();
        let json = snap.to_json();
        let back: TelemetrySnapshot = serde_json::from_str(&json).expect("round trip");
        assert_eq!(back, snap);
    }

    #[test]
    fn span_stats_merge_is_order_independent() {
        let mut a = SpanStats::default();
        let mut b = SpanStats::default();
        a.record(10);
        a.record(90);
        b.record(40);
        let mut ab = a;
        ab.merge(&b);
        let mut ba = b;
        ba.merge(&a);
        assert_eq!(ab, ba);
        let empty = SpanStats::default();
        let mut with_empty = a;
        with_empty.merge(&empty);
        assert_eq!(with_empty, a);
        assert_eq!(a.mean_ns(), 50.0);
        assert_eq!(empty.mean_ns(), 0.0);
    }
}
