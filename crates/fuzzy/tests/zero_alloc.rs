//! The headline guarantee of the compile/execute split: once a
//! [`CompiledEngine`] and its [`Scratch`] exist, `infer_into` performs
//! **zero heap allocations** — asserted with a counting global allocator.
//!
//! This file holds exactly one test: the allocation counter is global, so
//! a concurrently running sibling test would pollute the count.

use fuzzy::prelude::*;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

/// A `System` wrapper that counts every allocation and reallocation.
struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

// SAFETY: delegates verbatim to `System`; the counter has no safety impact.
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static COUNTING: CountingAllocator = CountingAllocator;

/// An engine with the structural features of the paper's controllers:
/// multiple inputs, several terms each, a 3-antecedent rule grid, and a
/// single output defuzzified by centroid.
fn paper_shaped_engine() -> MamdaniEngine {
    let speed = LinguisticVariable::builder("speed", 0.0, 120.0)
        .triangle("slow", 0.0, 0.0, 60.0)
        .triangle("mid", 30.0, 60.0, 120.0)
        .trapezoid("fast", 60.0, 120.0, 120.0, 120.0)
        .build()
        .unwrap();
    let angle = LinguisticVariable::builder("angle", -180.0, 180.0)
        .trapezoid("back", -180.0, -180.0, -135.0, -90.0)
        .triangle("side", -135.0, -45.0, 45.0)
        .triangle("straight", -45.0, 0.0, 45.0)
        .trapezoid("away", 90.0, 135.0, 180.0, 180.0)
        .build()
        .unwrap();
    let request = LinguisticVariable::builder("request", 0.0, 10.0)
        .triangle("small", 0.0, 0.0, 5.0)
        .triangle("medium", 0.0, 5.0, 10.0)
        .triangle("big", 5.0, 10.0, 10.0)
        .build()
        .unwrap();
    let score = LinguisticVariable::builder("score", 0.0, 1.0)
        .triangle("low", 0.0, 0.0, 0.5)
        .triangle("mid", 0.25, 0.5, 0.75)
        .triangle("high", 0.5, 1.0, 1.0)
        .build()
        .unwrap();
    let mut engine = MamdaniEngine::builder()
        .input(speed)
        .input(angle)
        .input(request)
        .output(score)
        .build()
        .unwrap();
    for sp in ["slow", "mid", "fast"] {
        for an in ["back", "side", "straight", "away"] {
            for rq in ["small", "medium", "big"] {
                let out = match (sp, an) {
                    (_, "straight") => "high",
                    ("fast", _) => "mid",
                    (_, "away") | (_, "back") => "low",
                    _ => "mid",
                };
                engine
                    .add_rule_str(&format!(
                        "IF speed IS {sp} AND angle IS {an} AND request IS {rq} THEN score IS {out}"
                    ))
                    .unwrap();
            }
        }
    }
    engine
}

#[test]
fn infer_into_is_allocation_free_in_steady_state() {
    let engine = paper_shaped_engine();
    let compiled = engine.compile().unwrap();
    let mut scratch = compiled.scratch();

    // Warm up: first calls may touch lazily initialised runtime state.
    let mut acc = 0.0;
    for i in 0..10 {
        let x = f64::from(i);
        acc += compiled.infer_into(&[x * 12.0, x * 36.0 - 180.0, x], &mut scratch)[0];
    }

    // Steady state: thousands of inferences across the whole input space
    // must not allocate a single time.
    let before = ALLOCATIONS.load(Ordering::SeqCst);
    for i in 0..40 {
        for j in 0..40 {
            let speed = f64::from(i) * 3.0;
            let angle = f64::from(j) * 9.0 - 180.0;
            let request = f64::from((i + j) % 11);
            acc += compiled.infer_into(&[speed, angle, request], &mut scratch)[0];
        }
    }
    let after = ALLOCATIONS.load(Ordering::SeqCst);
    assert_eq!(
        after - before,
        0,
        "CompiledEngine::infer_into allocated in steady state"
    );
    // The accumulator keeps the loops observable.
    assert!(acc.is_finite());

    // Contrast: the interpreted path allocates every call (this is exactly
    // what the compile/execute split removes from the hot path).
    let before = ALLOCATIONS.load(Ordering::SeqCst);
    let _ = engine.infer(&[60.0, 10.0, 5.0]).unwrap();
    let after = ALLOCATIONS.load(Ordering::SeqCst);
    assert!(
        after - before > 0,
        "the interpreted reference path is expected to allocate"
    );
}
